//! The simplified engine-controller CCD of Fig. 7 and its deployment.
//!
//! Fig. 7 shows "an AutoMoDe CCD representing a simplified engine
//! controller": a flat network of clusters with explicit rates. We build a
//! three-cluster version: `fuel_control` and `ignition_control` at the fast
//! rate, `diagnosis_monitoring` at the slow rate. The diagnosis cluster
//! consumes the fast signals (fast→slow: no delay needed) and feeds a
//! limit back to fuel control (slow→fast: requires an explicit delay
//! operator on the OSEK target, Sec. 3.3).

use std::collections::BTreeMap;

use automode_core::ccd::{Ccd, CcdChannel, Cluster};
use automode_core::model::{Behavior, Component, ComponentId, Model};
use automode_core::types::DataType;
use automode_core::CoreError;
use automode_lang::parse;

/// The three clusters of the simplified engine controller CCD.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineClusterIds {
    /// Fuel control component (fast rate).
    pub fuel: ComponentId,
    /// Ignition control component (fast rate).
    pub ignition: ComponentId,
    /// Diagnosis/monitoring component (slow rate).
    pub diagnosis: ComponentId,
}

/// Builds the Fig. 7 CCD. `fast`/`slow` are the cluster periods in base
/// ticks (e.g. 1 and 10 for 10 ms / 100 ms).
///
/// # Errors
///
/// Propagates meta-model construction errors.
///
/// # Panics
///
/// Panics if `fast == 0` or `slow == 0` (cluster periods must be positive).
pub fn build_engine_ccd(
    model: &mut Model,
    fast: u32,
    slow: u32,
) -> Result<(Ccd, EngineClusterIds), CoreError> {
    // Reuse components if they were already built into this model (e.g. a
    // second CCD variant over the same components).
    if let (Some(fuel), Some(ignition), Some(diagnosis)) = (
        model.find("FuelControl"),
        model.find("IgnitionControl"),
        model.find("DiagnosisMonitoring"),
    ) {
        return Ok((
            assemble_ccd(fuel, ignition, diagnosis, fast, slow),
            EngineClusterIds {
                fuel,
                ignition,
                diagnosis,
            },
        ));
    }
    let fuel = model.add_component(
        Component::new("FuelControl")
            .input("rpm", DataType::physical("EngineSpeed", "rpm"))
            .input("throttle", DataType::Float)
            .input("ti_limit", DataType::Float)
            .output("ti", DataType::Float)
            .with_behavior(Behavior::expr(
                "ti",
                parse("min(1.0 + throttle * 8.0 + rpm * 0.0001, ti_limit)").unwrap(),
            )),
    )?;
    let ignition = model.add_component(
        Component::new("IgnitionControl")
            .input("rpm", DataType::physical("EngineSpeed", "rpm"))
            .output("advance", DataType::Float)
            .with_behavior(Behavior::expr(
                "advance",
                parse("clamp(10.0 + rpm * 0.003, 10.0, 35.0)").unwrap(),
            )),
    )?;
    let diagnosis = model.add_component(
        Component::new("DiagnosisMonitoring")
            .input("ti", DataType::Float)
            .input("advance", DataType::Float)
            .output("ti_limit", DataType::Float)
            .with_behavior(Behavior::expr(
                // Derate fuel when the engine runs hot (proxy: sustained
                // high injection + high advance).
                "ti_limit",
                parse("if ti + advance * 0.1 > 12.0 then 6.0 else 20.0").unwrap(),
            )),
    )?;

    Ok((
        assemble_ccd(fuel, ignition, diagnosis, fast, slow),
        EngineClusterIds {
            fuel,
            ignition,
            diagnosis,
        },
    ))
}

fn assemble_ccd(
    fuel: ComponentId,
    ignition: ComponentId,
    diagnosis: ComponentId,
    fast: u32,
    slow: u32,
) -> Ccd {
    Ccd::new()
        .cluster(Cluster::new("fuel_control", fuel, fast))
        .cluster(Cluster::new("ignition_control", ignition, fast))
        .cluster(Cluster::new("diagnosis_monitoring", diagnosis, slow))
        // Fast -> slow: no delay operator required.
        .channel(CcdChannel::direct(
            "fuel_control",
            "ti",
            "diagnosis_monitoring",
            "ti",
        ))
        .channel(CcdChannel::direct(
            "ignition_control",
            "advance",
            "diagnosis_monitoring",
            "advance",
        ))
        // Slow -> fast: one delay operator required by the OSEK target.
        .channel(
            CcdChannel::direct(
                "diagnosis_monitoring",
                "ti_limit",
                "fuel_control",
                "ti_limit",
            )
            .with_delays(1),
        )
}

/// An ill-formed variant of the same CCD: the slow→fast feedback channel
/// lacks its delay operator. Used by the Fig. 7 experiment to demonstrate
/// rule detection.
///
/// # Errors
///
/// Propagates meta-model construction errors.
pub fn build_engine_ccd_missing_delay(
    model: &mut Model,
    fast: u32,
    slow: u32,
) -> Result<Ccd, CoreError> {
    let (ccd, _) = build_engine_ccd(model, fast, slow)?;
    let mut bad = Ccd::new();
    for c in &ccd.clusters {
        bad = bad.cluster(Cluster::new(format!("{}2", c.name), c.component, c.period));
    }
    for ch in &ccd.channels {
        let mut ch2 = CcdChannel::direct(
            format!("{}2", ch.from_cluster),
            ch.from_port.clone(),
            format!("{}2", ch.to_cluster),
            ch.to_port.clone(),
        );
        // Strip the delay from every channel.
        ch2.delays = 0;
        bad = bad.channel(ch2);
    }
    Ok(bad)
}

/// The default WCET budget per cluster (µs) used by deployment examples and
/// benches.
pub fn engine_cluster_wcets() -> BTreeMap<String, u64> {
    let mut w = BTreeMap::new();
    w.insert("fuel_control".to_string(), 800);
    w.insert("ignition_control".to_string(), 400);
    w.insert("diagnosis_monitoring".to_string(), 2_000);
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use automode_core::ccd::{FixedPriorityDataIntegrityPolicy, PermissivePolicy};
    use automode_transform::deploy::{deploy, DeploymentSpec};

    #[test]
    fn fig7_ccd_is_well_defined_for_osek() {
        let mut m = Model::new("fig7");
        let (ccd, _) = build_engine_ccd(&mut m, 1, 10).unwrap();
        ccd.validate_against(&m, &FixedPriorityDataIntegrityPolicy::new())
            .unwrap();
    }

    #[test]
    fn missing_delay_is_detected_exactly_once() {
        let mut m = Model::new("fig7bad");
        let bad = build_engine_ccd_missing_delay(&mut m, 1, 10).unwrap();
        let violations = bad.violations(&m, &FixedPriorityDataIntegrityPolicy::new());
        assert_eq!(violations.len(), 1, "exactly the slow->fast channel");
        assert!(violations[0].to_string().contains("delay"));
        // A permissive (time-triggered) target accepts the same CCD:
        // well-definedness conditions are target-dependent.
        bad.validate_against(&m, &PermissivePolicy).unwrap();
    }

    #[test]
    fn fig7_ccd_deploys_to_one_ecu() {
        let mut m = Model::new("fig7");
        let (ccd, _) = build_engine_ccd(&mut m, 10, 100).unwrap();
        let mut spec = DeploymentSpec::new(["engine_ecu"]);
        for (c, w) in engine_cluster_wcets() {
            spec = spec.wcet(c, w);
        }
        let d = deploy(&m, &ccd, &FixedPriorityDataIntegrityPolicy::new(), &spec).unwrap();
        assert!(d.clusters_unsplit());
        let ecu = d.ta.ecu("engine_ecu").unwrap();
        assert_eq!(ecu.tasks.len(), 2); // 10-tick and 100-tick tasks
        assert!(ecu.utilization() < 0.5);
        // Single ECU: no bus traffic.
        assert!(d.comm_matrix.signals.is_empty());
        // The generated project contains all three clusters as modules.
        let manifest = d.projects[0].file("engine_ecu/project.amdesc").unwrap();
        for module in ["fuel_control", "ignition_control", "diagnosis_monitoring"] {
            assert!(manifest.contains(module), "missing {module}");
        }
    }

    #[test]
    fn split_deployment_generates_comm_matrix() {
        let mut m = Model::new("fig7");
        let (ccd, _) = build_engine_ccd(&mut m, 10, 100).unwrap();
        let spec = DeploymentSpec::new(["engine_ecu", "diag_ecu"])
            .pin("fuel_control", "engine_ecu")
            .pin("ignition_control", "engine_ecu")
            .pin("diagnosis_monitoring", "diag_ecu");
        let d = deploy(&m, &ccd, &FixedPriorityDataIntegrityPolicy::new(), &spec).unwrap();
        // Three signals cross the ECU boundary.
        assert_eq!(d.comm_matrix.signals.len(), 3);
        assert_eq!(d.projects.len(), 2);
        assert_eq!(d.ta.buses.len(), 1);
        // Bus load must be sane.
        let bus = &d.ta.buses[0];
        assert!(bus.load() < 0.2, "load {}", bus.load());
    }
}
