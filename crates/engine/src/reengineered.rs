//! White-box reengineering of the original engine controller (Sec. 5).
//!
//! Reproduces the case study end to end: the flag-based ASCET model of
//! [`ascet_original`](crate::ascet_original) is lifted to an FDA AutoMoDe
//! model; implicit If-Then-Else modes become explicit MTDs (Fig. 8:
//! `ThrottleRateOfChange` splits into `CrankingOverrun` / `FuelEnabled`);
//! and the paper's qualitative claims become measurable:
//!
//! * implicit modes made explicit ([`EngineReengineering::report`]);
//! * If-Then-Else control flow removed
//!   ([`EngineReengineering::ifs_before`] vs. the surviving `if_count`);
//! * behaviour preserved (trace equivalence tests below).

use std::collections::BTreeMap;

use automode_core::metrics::ModelMetrics;
use automode_core::model::{
    Behavior, Component, ComponentId, Composite, CompositeKind, Direction, Endpoint, Model,
};
use automode_transform::reengineer::{reengineer_module, ReengineeringReport};
use automode_transform::TransformError;

use crate::ascet_original::original_engine_model;

/// The result of reengineering the engine controller.
#[derive(Debug, Clone)]
pub struct EngineReengineering {
    /// The FDA model containing all reengineered components plus the wired
    /// root composite.
    pub model: Model,
    /// The root composite (all processes wired by message name).
    pub root: ComponentId,
    /// Per-process components with their original periods (ms).
    pub components: BTreeMap<String, (ComponentId, u32)>,
    /// Aggregated reengineering report across all modules.
    pub report: ReengineeringReport,
    /// If-Then-Else count of the *original* ASCET model.
    pub ifs_before: usize,
    /// Flag count of the original model.
    pub flags_before: usize,
    /// Structural metrics of the reengineered model.
    pub metrics_after: ModelMetrics,
}

/// Runs the full white-box reengineering of the engine controller.
///
/// # Errors
///
/// Propagates reengineering and meta-model errors.
pub fn reengineer_engine() -> Result<EngineReengineering, TransformError> {
    let ascet = original_engine_model();
    let ifs_before = ascet.if_count();
    let flags_before = ascet.flag_count();

    let mut model = Model::new("engine_fda");
    let mut report = ReengineeringReport {
        components: Vec::new(),
        mtds_extracted: 0,
        modes_made_explicit: 0,
        ifs_removed: 0,
    };
    let mut components = BTreeMap::new();
    for module in &ascet.modules {
        let r = reengineer_module(&ascet, &module.name, &mut model)?;
        for (i, process) in module.processes.iter().enumerate() {
            let (id, period) = r.components[i];
            components.insert(format!("{}_{}", module.name, process.name), (id, period));
        }
        report.components.extend(r.components);
        report.mtds_extracted += r.mtds_extracted;
        report.modes_made_explicit += r.modes_made_explicit;
        report.ifs_removed += r.ifs_removed;
    }

    // Wire the root composite: connect inputs to same-named producer
    // outputs, everything else to the boundary.
    let mut producers: BTreeMap<String, (String, String)> = BTreeMap::new();
    for (name, (id, _)) in &components {
        for p in model.component(*id).outputs() {
            producers.insert(p.name.clone(), (name.clone(), p.name.clone()));
        }
    }
    let mut net = Composite::new(CompositeKind::Dfd);
    for (name, (id, _)) in &components {
        net.instantiate(name.clone(), *id);
    }
    let mut boundary_inputs: Vec<(String, automode_core::types::DataType)> = Vec::new();
    let mut boundary_outputs: Vec<(String, automode_core::types::DataType)> = Vec::new();
    for (name, (id, _)) in &components {
        for p in model.component(*id).ports.clone() {
            match p.direction {
                Direction::In => match producers.get(&p.name) {
                    Some((producer, port)) => net.connect(
                        Endpoint::child(producer.clone(), port.clone()),
                        Endpoint::child(name.clone(), p.name.clone()),
                    ),
                    None => {
                        if !boundary_inputs.iter().any(|(n, _)| *n == p.name) {
                            boundary_inputs.push((p.name.clone(), p.ty.clone()));
                        }
                        net.connect(
                            Endpoint::boundary(p.name.clone()),
                            Endpoint::child(name.clone(), p.name.clone()),
                        );
                    }
                },
                Direction::Out => {
                    // Expose the controller's actuating signals.
                    if ["rate", "ti", "advance", "idle_trim", "lam_trim"].contains(&p.name.as_str())
                    {
                        boundary_outputs.push((p.name.clone(), p.ty.clone()));
                        net.connect(
                            Endpoint::child(name.clone(), p.name.clone()),
                            Endpoint::boundary(p.name.clone()),
                        );
                    }
                }
            }
        }
    }
    let mut root_comp = Component::new("EngineController");
    for (n, ty) in &boundary_inputs {
        root_comp = root_comp.input(n.clone(), ty.clone());
    }
    for (n, ty) in &boundary_outputs {
        root_comp = root_comp.output(n.clone(), ty.clone());
    }
    root_comp = root_comp.with_behavior(Behavior::Composite(net));
    let root = model.add_component(root_comp)?;
    model.set_root(root);
    automode_core::levels::validate_fda(&model)?;

    let metrics_after = ModelMetrics::measure(&model);
    Ok(EngineReengineering {
        model,
        root,
        components,
        report,
        ifs_before,
        flags_before,
        metrics_after,
    })
}

/// The period assignment of the engine's processes (base tick = 10 ms, so
/// the 10 ms processes get period 1 and the 100 ms idle trim gets 10) —
/// the input to clock-based clustering.
pub fn engine_periods() -> BTreeMap<String, u32> {
    let mut p = BTreeMap::new();
    p.insert("engine_state_compute_flags".to_string(), 1);
    p.insert("throttle_ctrl_calc_rate".to_string(), 1);
    p.insert("fuel_calc_ti".to_string(), 1);
    p.insert("ignition_calc_adv".to_string(), 1);
    p.insert("lambda_control_lambda".to_string(), 1);
    p.insert("idle_speed_trim".to_string(), 10);
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use automode_ascet::{AscetInterp, Stimulus};
    use automode_kernel::{Message, Stream, Value};
    use automode_sim::simulate_component;

    #[test]
    fn reengineering_extracts_the_expected_mtds() {
        let r = reengineer_engine().unwrap();
        // throttle_ctrl, fuel, ignition are stateless single-If processes:
        // three MTDs with two modes each.
        assert_eq!(r.report.mtds_extracted, 3);
        assert_eq!(r.report.modes_made_explicit, 6);
        assert_eq!(r.ifs_before, 7);
        assert_eq!(r.flags_before, 5);
        assert_eq!(r.metrics_after.mtds, 3);
        // Explicit modes shrink implicit control flow: the only surviving
        // ifs are fuel's inner cascade (2) and the idle trim's (1).
        assert!(
            r.metrics_after.if_count < r.ifs_before,
            "ifs after: {}",
            r.metrics_after.if_count
        );
    }

    /// The headline case-study check: the reengineered FDA model is trace
    /// equivalent to the original ASCET model on the 10 ms activation grid.
    #[test]
    fn reengineered_controller_matches_original_traces() {
        let r = reengineer_engine().unwrap();
        let ascet = original_engine_model();

        // Scenario: key on, rpm sweep crossing all flag regimes.
        let rpm_at = |k: u64| match k {
            0..=4 => 200.0,    // cranking
            5..=9 => 900.0,    // running, idle-ish
            10..=14 => 3000.0, // part load
            _ => 2500.0,       // closing throttle -> overrun
        };
        let throttle_at = |k: u64| match k {
            0..=4 => 0.0,
            5..=9 => 0.02,
            10..=14 => 0.95, // full load
            _ => 0.0,        // overrun
        };
        let ticks = 20u64;

        // ASCET execution at 1 ms; sample at each 10 ms activation.
        let mut stim = Stimulus::new();
        stim.insert("key_on".into(), Box::new(|_| Some(Value::Bool(true))));
        stim.insert("o2".into(), Box::new(|_| Some(Value::Float(0.9))));
        stim.insert(
            "rpm".into(),
            Box::new(move |t| Some(Value::Float(rpm_at(t / 10)))),
        );
        stim.insert(
            "throttle".into(),
            Box::new(move |t| Some(Value::Float(throttle_at(t / 10)))),
        );
        let mut interp = AscetInterp::new(&ascet).unwrap();
        let ascet_trace = interp
            .run(ticks * 10, &stim, &["rate", "ti", "advance", "lam_trim"])
            .unwrap();

        // Reengineered model: one tick per 10 ms activation.
        let rpm: Stream = (0..ticks)
            .map(|k| Message::present(Value::Float(rpm_at(k))))
            .collect();
        let throttle: Stream = (0..ticks)
            .map(|k| Message::present(Value::Float(throttle_at(k))))
            .collect();
        let key: Stream = (0..ticks)
            .map(|_| Message::present(Value::Bool(true)))
            .collect();
        let o2: Stream = (0..ticks)
            .map(|_| Message::present(Value::Float(0.9)))
            .collect();
        let run = simulate_component(
            &r.model,
            r.root,
            &[
                ("rpm", rpm),
                ("throttle", throttle),
                ("key_on", key),
                ("o2", o2),
            ],
            ticks as usize,
        )
        .unwrap();

        for sig in ["rate", "ti", "advance", "lam_trim"] {
            let ascet_vals: Vec<Value> = (0..ticks)
                .map(|k| {
                    ascet_trace.signal(sig).unwrap()[(10 * k) as usize]
                        .value()
                        .unwrap()
                        .clone()
                })
                .collect();
            let model_vals = run.trace.signal(sig).unwrap().present_values();
            assert_eq!(ascet_vals, model_vals, "signal `{sig}` diverged");
        }
    }

    /// The stateful 100 ms idle trim is equivalent on its own activation
    /// grid.
    #[test]
    fn idle_trim_equivalent_on_100ms_grid() {
        let r = reengineer_engine().unwrap();
        let ascet = original_engine_model();
        let (idle_id, period) = r.components["idle_speed_trim"];
        assert_eq!(period, 100);

        let mut stim = Stimulus::new();
        stim.insert("key_on".into(), Box::new(|_| Some(Value::Bool(true))));
        stim.insert("rpm".into(), Box::new(|_| Some(Value::Float(700.0))));
        stim.insert("throttle".into(), Box::new(|_| Some(Value::Float(0.0))));
        let mut interp = AscetInterp::new(&ascet).unwrap();
        let ascet_trace = interp.run(1000, &stim, &["idle_trim"]).unwrap();
        let ascet_vals: Vec<Value> = (0..10)
            .map(|k| {
                ascet_trace.signal("idle_trim").unwrap()[100 * k]
                    .value()
                    .unwrap()
                    .clone()
            })
            .collect();

        // One tick per 100 ms activation; b_idle is true throughout.
        let ticks = 10usize;
        let run = simulate_component(
            &r.model,
            idle_id,
            &[
                (
                    "b_idle",
                    automode_sim::stimulus::constant(Value::Bool(true), ticks),
                ),
                (
                    "rpm",
                    automode_sim::stimulus::constant(Value::Float(700.0), ticks),
                ),
            ],
            ticks,
        )
        .unwrap();
        assert_eq!(
            run.trace.signal("idle_trim").unwrap().present_values(),
            ascet_vals
        );
    }

    #[test]
    fn periods_cover_all_components() {
        let r = reengineer_engine().unwrap();
        let periods = engine_periods();
        for name in r.components.keys() {
            assert!(periods.contains_key(name), "missing period for {name}");
        }
    }
}
