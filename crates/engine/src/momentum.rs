//! The longitudinal momentum controller DFD of Fig. 5.
//!
//! A PI controller with feed-forward: the error between desired and actual
//! vehicle speed drives a proportional path and a clamped integrator
//! (a delayed feedback loop — legal in a DFD because the delay breaks the
//! instantaneous cycle), and the three contributions are summed by the
//! paper's `ADD` block, "defined by the function ch1+ch2+ch3" (Sec. 3.2),
//! then limited.

use automode_core::model::{
    Behavior, Component, ComponentId, Composite, CompositeKind, Endpoint, Model, Primitive,
};
use automode_core::types::DataType;
use automode_core::CoreError;
use automode_kernel::Value;
use automode_lang::parse;

/// Controller gains and limits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MomentumGains {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain (per tick).
    pub ki: f64,
    /// Feed-forward gain on the desired speed.
    pub kff: f64,
    /// Integrator anti-windup clamp.
    pub i_max: f64,
    /// Output momentum limit.
    pub m_max: f64,
}

impl Default for MomentumGains {
    fn default() -> Self {
        MomentumGains {
            kp: 0.4,
            ki: 0.05,
            kff: 0.1,
            i_max: 5.0,
            m_max: 10.0,
        }
    }
}

/// Builds the momentum controller into `model`; returns its component id.
///
/// Interface: inputs `v_des`, `v_act` (m/s); output `m_dem` (momentum
/// demand).
///
/// # Errors
///
/// Propagates meta-model construction errors.
pub fn build_momentum_controller(
    model: &mut Model,
    gains: MomentumGains,
) -> Result<ComponentId, CoreError> {
    let speed = || DataType::physical("Speed", "m/s");
    let err = model.add_component(
        Component::new("SpeedError")
            .input("v_des", speed())
            .input("v_act", speed())
            .output("err", DataType::Float)
            .with_behavior(Behavior::expr("err", parse("v_des - v_act").unwrap())),
    )?;
    let p_term = model.add_component(
        Component::new("PTerm")
            .input("err", DataType::Float)
            .output("p", DataType::Float)
            .with_behavior(Behavior::expr(
                "p",
                parse(&format!("err * {}", gains.kp)).unwrap(),
            )),
    )?;
    // Clamped integrator: i_next = clamp(i_prev + err*ki, -imax, imax).
    let i_step = model.add_component(
        Component::new("IStep")
            .input("err", DataType::Float)
            .input("i_prev", DataType::Float)
            .output("i", DataType::Float)
            .with_behavior(Behavior::expr(
                "i",
                parse(&format!(
                    "clamp(i_prev + err * {}, -{}, {})",
                    gains.ki, gains.i_max, gains.i_max
                ))
                .unwrap(),
            )),
    )?;
    let i_delay = model.add_component(
        Component::new("IDelay")
            .input("x", DataType::Float)
            .output("y", DataType::Float)
            .with_behavior(Behavior::Primitive(Primitive::Delay {
                init: Some(Value::Float(0.0)),
            })),
    )?;
    let ff = model.add_component(
        Component::new("FeedForward")
            .input("v_des", speed())
            .output("ff", DataType::Float)
            .with_behavior(Behavior::expr(
                "ff",
                parse(&format!("v_des * {}", gains.kff)).unwrap(),
            )),
    )?;
    // The paper's ADD block: ch1+ch2+ch3.
    let add = model.add_component(
        Component::new("ADD")
            .input("ch1", DataType::Float)
            .input("ch2", DataType::Float)
            .input("ch3", DataType::Float)
            .output("sum", DataType::Float)
            .with_behavior(Behavior::expr("sum", parse("ch1 + ch2 + ch3").unwrap())),
    )?;
    let limit = model.add_component(
        Component::new("MomentumLimit")
            .input("u", DataType::Float)
            .output("m", DataType::Float)
            .with_behavior(Behavior::expr(
                "m",
                parse(&format!("clamp(u, -{}, {})", gains.m_max, gains.m_max)).unwrap(),
            )),
    )?;

    let mut net = Composite::new(CompositeKind::Dfd);
    net.instantiate("err", err);
    net.instantiate("p_term", p_term);
    net.instantiate("i_step", i_step);
    net.instantiate("i_delay", i_delay);
    net.instantiate("ff", ff);
    net.instantiate("add", add);
    net.instantiate("limit", limit);
    net.connect(Endpoint::boundary("v_des"), Endpoint::child("err", "v_des"));
    net.connect(Endpoint::boundary("v_act"), Endpoint::child("err", "v_act"));
    net.connect(Endpoint::boundary("v_des"), Endpoint::child("ff", "v_des"));
    net.connect(
        Endpoint::child("err", "err"),
        Endpoint::child("p_term", "err"),
    );
    net.connect(
        Endpoint::child("err", "err"),
        Endpoint::child("i_step", "err"),
    );
    net.connect(
        Endpoint::child("i_delay", "y"),
        Endpoint::child("i_step", "i_prev"),
    );
    net.connect(
        Endpoint::child("i_step", "i"),
        Endpoint::child("i_delay", "x"),
    );
    net.connect(
        Endpoint::child("p_term", "p"),
        Endpoint::child("add", "ch1"),
    );
    net.connect(
        Endpoint::child("i_step", "i"),
        Endpoint::child("add", "ch2"),
    );
    net.connect(Endpoint::child("ff", "ff"), Endpoint::child("add", "ch3"));
    net.connect(Endpoint::child("add", "sum"), Endpoint::child("limit", "u"));
    net.connect(Endpoint::child("limit", "m"), Endpoint::boundary("m_dem"));

    model.add_component(
        Component::new("LongitudinalMomentumController")
            .input("v_des", speed())
            .input("v_act", speed())
            .output("m_dem", DataType::Float)
            .with_behavior(Behavior::Composite(net)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use automode_kernel::Value;
    use automode_sim::{simulate_component, stimulus};

    fn outputs(
        m: &Model,
        id: ComponentId,
        v_des: automode_kernel::Stream,
        v_act: automode_kernel::Stream,
        ticks: usize,
    ) -> Vec<f64> {
        let run = simulate_component(m, id, &[("v_des", v_des), ("v_act", v_act)], ticks).unwrap();
        run.trace
            .signal("m_dem")
            .unwrap()
            .present_values()
            .iter()
            .map(|v| v.as_float().unwrap())
            .collect()
    }

    #[test]
    fn validates_as_fda_and_is_causal() {
        let mut m = Model::new("fig5");
        let id = build_momentum_controller(&mut m, MomentumGains::default()).unwrap();
        m.set_root(id);
        automode_core::levels::validate_fda(&m).unwrap();
        automode_core::causality_struct::check_component(&m, id).unwrap();
    }

    #[test]
    fn zero_error_yields_pure_feedforward() {
        let mut m = Model::new("t");
        let g = MomentumGains::default();
        let id = build_momentum_controller(&mut m, g).unwrap();
        let v = stimulus::constant(Value::Float(10.0), 5);
        let out = outputs(&m, id, v.clone(), v, 5);
        for x in out {
            assert!((x - 10.0 * g.kff).abs() < 1e-9);
        }
    }

    #[test]
    fn integrator_ramps_and_saturates_under_constant_error() {
        let mut m = Model::new("t");
        let g = MomentumGains::default();
        let id = build_momentum_controller(&mut m, g).unwrap();
        let v_des = stimulus::constant(Value::Float(10.0), 300);
        let v_act = stimulus::constant(Value::Float(0.0), 300);
        let out = outputs(&m, id, v_des, v_act, 300);
        // Monotonically non-decreasing while the integrator charges...
        for w in out.windows(2) {
            assert!(w[1] >= w[0] - 1e-9);
        }
        // ...up to the saturation point p + i_max + ff.
        let expected_sat = 10.0 * g.kp + g.i_max + 10.0 * g.kff;
        let last = *out.last().unwrap();
        assert!((last - expected_sat.min(g.m_max)).abs() < 1e-6);
    }

    #[test]
    fn output_respects_momentum_limit() {
        let mut m = Model::new("t");
        let g = MomentumGains {
            kp: 100.0,
            ..MomentumGains::default()
        };
        let id = build_momentum_controller(&mut m, g).unwrap();
        let v_des = stimulus::constant(Value::Float(100.0), 10);
        let v_act = stimulus::constant(Value::Float(0.0), 10);
        let out = outputs(&m, id, v_des, v_act, 10);
        for x in out {
            assert!(x <= g.m_max + 1e-9);
        }
    }

    #[test]
    fn sign_symmetry() {
        let mut m = Model::new("t");
        let g = MomentumGains {
            kff: 0.0,
            ..MomentumGains::default()
        };
        let id = build_momentum_controller(&mut m, g).unwrap();
        let pos = outputs(
            &m,
            id,
            stimulus::constant(Value::Float(5.0), 50),
            stimulus::constant(Value::Float(0.0), 50),
            50,
        );
        let neg = outputs(
            &m,
            id,
            stimulus::constant(Value::Float(-5.0), 50),
            stimulus::constant(Value::Float(0.0), 50),
            50,
        );
        for (p, n) in pos.iter().zip(&neg) {
            assert!((p + n).abs() < 1e-9);
        }
    }
}
