//! # automode-engine
//!
//! The **case-study models** of the AutoMoDe paper, rebuilt as a synthetic
//! but faithful workload (the original four-stroke gasoline engine
//! controller was a proprietary ASCET-SD model):
//!
//! * [`door_lock`] — the `DoorLockControl` component of Fig. 1/Fig. 4:
//!   message-based, time-synchronous communication with explicit absence,
//!   event-triggered behaviour, and the body-electronics SSD around it.
//! * [`momentum`] — the longitudinal momentum controller DFD of Fig. 5,
//!   including the `ADD` block defined by `ch1+ch2+ch3` and a delayed
//!   integrator loop.
//! * [`modes`] — the engine-operation MTD of Fig. 6 (Stop, Cranking, Idle,
//!   PartLoad, FullLoad, Overrun).
//! * [`ascet_original`] — the "original" ASCET-style engine controller of
//!   Sec. 5: a central component emitting a large number of flags, and
//!   If-Then-Else cascades hiding implicit modes (`ThrottleRateOfChange`).
//! * [`reengineered`] — the white-box reengineering of that model into an
//!   FDA AutoMoDe model with explicit MTDs (Fig. 8), plus the metric and
//!   trace-equivalence comparisons the experiments report.
//! * [`ccd`] — the simplified engine-controller CCD of Fig. 7 and its
//!   deployment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ascet_original;
pub mod ccd;
pub mod cosim_scenarios;
pub mod door_lock;
pub mod faults;
pub mod modes;
pub mod momentum;
pub mod reengineered;
pub mod sequencer;

pub use ascet_original::original_engine_model;
pub use ccd::build_engine_ccd;
pub use cosim_scenarios::{
    engine_ccd_stimulus, engine_cosim_parts, engine_platform_scenarios, PlatformScenario,
};
pub use door_lock::{build_door_lock, build_door_lock_system};
pub use faults::{
    compiled_engine, engine_contract_monitor, engine_fault_scenarios, nominal_engine_inputs,
    EngineFaultError, EngineFaultScenario, ENGINE_OUTPUTS,
};
pub use modes::build_engine_modes;
pub use momentum::build_momentum_controller;
pub use reengineered::reengineer_engine;
pub use sequencer::build_start_sequencer;
