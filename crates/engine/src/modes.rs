//! The engine-operation MTD of Fig. 6.
//!
//! "An AutoMoDe MTD specifying engine operation modes": Stop, Cranking,
//! Idle, PartLoad, FullLoad, Overrun. Each mode's behaviour is a
//! subordinate expression component computing the injection time `ti`
//! (together the "global mode transition system which is then correct by
//! construction" that the case study contrasts against flag soup, Sec. 5).

use automode_core::model::{Behavior, Component, ComponentId, Model};
use automode_core::types::DataType;
use automode_core::{CoreError, Mtd};
use automode_lang::parse;

/// Names of the six engine operation modes, in MTD order.
pub const MODE_NAMES: [&str; 6] = [
    "Stop", "Cranking", "Idle", "PartLoad", "FullLoad", "Overrun",
];

/// Builds the Fig. 6 MTD into `model`; returns the owner component.
///
/// Interface: inputs `key_on : bool`, `rpm`, `throttle`; output `ti`
/// (injection time, ms). Mode outputs are chosen so every mode is
/// distinguishable in a trace:
///
/// | mode     | ti                                  |
/// |----------|-------------------------------------|
/// | Stop     | 0.0                                 |
/// | Cranking | 4.0 (rich start mixture)            |
/// | Idle     | 1.0                                 |
/// | PartLoad | 1.0 + throttle * 8.0                |
/// | FullLoad | 1.2 * (1.0 + throttle * 8.0)        |
/// | Overrun  | 0.0 (fuel cut-off)                  |
///
/// # Errors
///
/// Propagates meta-model construction errors.
pub fn build_engine_modes(model: &mut Model) -> Result<ComponentId, CoreError> {
    let iface = |name: &str| {
        Component::new(name)
            .input("key_on", DataType::Bool)
            .input("rpm", DataType::physical("EngineSpeed", "rpm"))
            .input("throttle", DataType::Float)
            .output("ti", DataType::Float)
    };
    let behaviors: [(&str, &str); 6] = [
        ("StopBehavior", "0.0 + rpm * 0.0 + throttle * 0.0"),
        ("CrankingBehavior", "4.0 + rpm * 0.0 + throttle * 0.0"),
        ("IdleBehavior", "1.0 + rpm * 0.0 + throttle * 0.0"),
        ("PartLoadBehavior", "1.0 + throttle * 8.0 + rpm * 0.0"),
        (
            "FullLoadBehavior",
            "(1.0 + throttle * 8.0 + rpm * 0.0) * 1.2",
        ),
        ("OverrunBehavior", "0.0 + rpm * 0.0 + throttle * 0.0"),
    ];
    let mut ids = Vec::new();
    for (name, expr) in behaviors {
        ids.push(model.add_component(
            iface(name).with_behavior(Behavior::expr("ti", parse(expr).unwrap())),
        )?);
    }

    let mut mtd = Mtd::new();
    let [stop, cranking, idle, part, full, overrun]: [usize; 6] = MODE_NAMES
        .iter()
        .zip(&ids)
        .map(|(name, id)| mtd.add_mode(*name, *id))
        .collect::<Vec<_>>()
        .try_into()
        .expect("six modes");
    mtd.initial = stop;

    let t = |src: usize, dst: usize, expr: &str, prio: u32| (src, dst, parse(expr).unwrap(), prio);
    let transitions = [
        // Key-off dominates from everywhere.
        t(cranking, stop, "not key_on", 0),
        t(idle, stop, "not key_on", 0),
        t(part, stop, "not key_on", 0),
        t(full, stop, "not key_on", 0),
        t(overrun, stop, "not key_on", 0),
        // Start sequence (plus restart detection when already spinning).
        t(stop, cranking, "key_on and rpm < 600.0", 0),
        t(stop, idle, "key_on and rpm >= 600.0", 1),
        t(cranking, idle, "rpm >= 600.0", 1),
        // Load transitions.
        t(idle, part, "throttle >= 0.1", 1),
        t(part, full, "throttle >= 0.9", 1),
        t(full, part, "throttle < 0.9", 1),
        t(part, overrun, "throttle < 0.01 and rpm > 1500.0", 2),
        t(part, idle, "throttle < 0.1", 3),
        t(overrun, idle, "rpm <= 1500.0", 1),
        t(idle, overrun, "throttle < 0.01 and rpm > 1500.0", 2),
        // Stall back to cranking while key on.
        t(idle, cranking, "rpm < 400.0", 4),
    ];
    for (src, dst, expr, prio) in transitions {
        mtd.add_transition(src, dst, expr, prio);
    }

    let owner = model.add_component(iface("EngineOperation").with_behavior(Behavior::Mtd(mtd)))?;
    Ok(owner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use automode_core::mtd::reachable_modes;
    use automode_kernel::{Stream, Value};
    use automode_sim::simulate_component;
    use automode_sim::stimulus::{constant, standard_engine_cycle};

    #[test]
    fn mtd_validates_and_all_modes_reachable() {
        let mut m = Model::new("fig6");
        let id = build_engine_modes(&mut m).unwrap();
        m.set_root(id);
        automode_core::levels::validate_fda(&m).unwrap();
        match &m.component(id).behavior {
            Behavior::Mtd(mtd) => {
                assert_eq!(mtd.modes.len(), 6);
                assert_eq!(reachable_modes(mtd).len(), 6);
            }
            _ => panic!("expected MTD"),
        }
    }

    /// Drives the standard cycle and decodes the visited modes from the
    /// distinctive `ti` values.
    #[test]
    fn drive_cycle_visits_expected_mode_sequence() {
        let mut m = Model::new("fig6");
        let id = build_engine_modes(&mut m).unwrap();
        let (rpm, throttle) = standard_engine_cycle();
        let ticks = rpm.len();
        // Key on for the whole cycle except the final stop phase.
        let key: Stream = (0..ticks)
            .map(|t| automode_kernel::Message::present(Value::Bool(t < ticks - 5)))
            .collect();
        let run = simulate_component(
            &m,
            id,
            &[("key_on", key), ("rpm", rpm), ("throttle", throttle)],
            ticks,
        )
        .unwrap();
        let tis: Vec<f64> = run
            .trace
            .signal("ti")
            .unwrap()
            .present_values()
            .iter()
            .map(|v| v.as_float().unwrap())
            .collect();
        // Phase checks: cranking-rich early, fuel cut in the overrun phase,
        // full-load enrichment somewhere in between, and stop at the end.
        assert!(tis[..5].iter().any(|&x| (x - 4.0).abs() < 1e-9), "cranking");
        assert!(
            tis.iter().any(|&x| x > 8.0),
            "full load enrichment expected, max was {}",
            tis.iter().fold(0.0f64, |a, &b| a.max(b))
        );
        // Overrun fuel cut while rpm still high (end of phase 5, where the
        // throttle finally closes below 1%).
        assert!(tis[80..105].contains(&0.0), "overrun fuel cut expected");
        assert_eq!(*tis.last().unwrap(), 0.0, "stop at key-off");
    }

    #[test]
    fn key_off_always_stops() {
        let mut m = Model::new("fig6");
        let id = build_engine_modes(&mut m).unwrap();
        let ticks = 20;
        let run = simulate_component(
            &m,
            id,
            &[
                ("key_on", constant(Value::Bool(false), ticks)),
                ("rpm", constant(Value::Float(3000.0), ticks)),
                ("throttle", constant(Value::Float(0.5), ticks)),
            ],
            ticks,
        )
        .unwrap();
        for v in run.trace.signal("ti").unwrap().present_values() {
            assert_eq!(v.as_float().unwrap(), 0.0);
        }
    }

    #[test]
    fn overrun_requires_closed_throttle_and_high_rpm() {
        let mut m = Model::new("fig6");
        let id = build_engine_modes(&mut m).unwrap();
        // Reach part load, then close the throttle at high rpm.
        let ticks = 10;
        let rpm = constant(Value::Float(3000.0), ticks);
        let throttle: Stream = (0..ticks)
            .map(|t| automode_kernel::Message::present(Value::Float(if t < 5 { 0.5 } else { 0.0 })))
            .collect();
        let run = simulate_component(
            &m,
            id,
            &[
                ("key_on", constant(Value::Bool(true), ticks)),
                ("rpm", rpm),
                ("throttle", throttle),
            ],
            ticks,
        )
        .unwrap();
        let tis: Vec<f64> = run
            .trace
            .signal("ti")
            .unwrap()
            .present_values()
            .iter()
            .map(|v| v.as_float().unwrap())
            .collect();
        // Part load first (1 + 0.5*8 = 5), then overrun cut (0).
        assert!(tis[..5].iter().any(|&x| (x - 5.0).abs() < 1e-9));
        assert_eq!(*tis.last().unwrap(), 0.0);
    }
}
