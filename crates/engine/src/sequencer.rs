//! A start sequencer as a State Transition Diagram (STD).
//!
//! Exercises the third behavioural notation of Sec. 3.2 on the case study:
//! the engine-start sequence is classical extended-FSM territory — fuel
//! pump priming with a timeout, starter engagement, start verification,
//! stall detection. The machine obeys the STD restrictions (flat,
//! deterministic priorities, no same-tick self-observation).

use automode_core::model::{Behavior, Component, ComponentId, Model};
use automode_core::std_machine::{Assign, StdMachine, StdTransition};
use automode_core::types::DataType;
use automode_core::CoreError;
use automode_lang::parse;

/// Builds the start-sequencer STD into `model`.
///
/// Interface: inputs `key_on : bool`, `rpm : float`; outputs
/// `fuel_pump : bool`, `starter : bool`. States:
///
/// * `Off` — everything off;
/// * `Prime` — fuel pump on for `PRIME_TICKS` ticks (local counter);
/// * `Crank` — starter engaged until the engine catches (rpm ≥ 600);
/// * `Run` — self-sustained; stall (rpm < 100) returns to `Prime`.
///
/// # Errors
///
/// Propagates meta-model construction errors.
pub fn build_start_sequencer(model: &mut Model) -> Result<ComponentId, CoreError> {
    const PRIME_TICKS: i64 = 3;
    let mut fsm = StdMachine::new();
    let off = fsm.add_state("Off");
    let prime = fsm.add_state("Prime");
    let crank = fsm.add_state("Crank");
    let run = fsm.add_state("Run");
    fsm.add_var("prime_count", 0i64);

    let assign = |target: &str, src: &str| Assign {
        target: target.to_string(),
        expr: parse(src).unwrap(),
    };

    // Off -> Prime on key-on: start the pump, reset the counter.
    fsm.add_transition(StdTransition {
        from: off,
        to: prime,
        guard: parse("key_on").unwrap(),
        actions: vec![
            assign("fuel_pump", "true"),
            assign("starter", "false"),
            assign("prime_count", "0"),
        ],
        priority: 0,
    });
    // Prime: count ticks; after PRIME_TICKS engage the starter.
    fsm.add_transition(StdTransition {
        from: prime,
        to: off,
        guard: parse("not key_on").unwrap(),
        actions: vec![assign("fuel_pump", "false"), assign("starter", "false")],
        priority: 0,
    });
    fsm.add_transition(StdTransition {
        from: prime,
        to: crank,
        guard: parse(&format!("prime_count >= {PRIME_TICKS}")).unwrap(),
        actions: vec![assign("starter", "true"), assign("fuel_pump", "true")],
        priority: 1,
    });
    fsm.add_transition(StdTransition {
        from: prime,
        to: prime,
        guard: parse("key_on").unwrap(),
        actions: vec![
            assign("prime_count", "prime_count + 1"),
            assign("fuel_pump", "true"),
        ],
        priority: 2,
    });
    // Crank: until the engine catches; give up on key-off.
    fsm.add_transition(StdTransition {
        from: crank,
        to: off,
        guard: parse("not key_on").unwrap(),
        actions: vec![assign("fuel_pump", "false"), assign("starter", "false")],
        priority: 0,
    });
    fsm.add_transition(StdTransition {
        from: crank,
        to: run,
        guard: parse("rpm >= 600.0").unwrap(),
        actions: vec![assign("starter", "false"), assign("fuel_pump", "true")],
        priority: 1,
    });
    // Run: stall detection; key-off.
    fsm.add_transition(StdTransition {
        from: run,
        to: off,
        guard: parse("not key_on").unwrap(),
        actions: vec![assign("fuel_pump", "false"), assign("starter", "false")],
        priority: 0,
    });
    fsm.add_transition(StdTransition {
        from: run,
        to: prime,
        guard: parse("rpm < 100.0").unwrap(),
        actions: vec![assign("prime_count", "0"), assign("fuel_pump", "true")],
        priority: 1,
    });

    model.add_component(
        Component::new("StartSequencer")
            .input("key_on", DataType::Bool)
            .input("rpm", DataType::physical("EngineSpeed", "rpm"))
            .output("fuel_pump", DataType::Bool)
            .output("starter", DataType::Bool)
            .with_behavior(Behavior::Std(fsm)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use automode_kernel::{Message, Stream, Value};
    use automode_sim::simulate_component;

    fn run(
        model: &Model,
        id: ComponentId,
        key: &[bool],
        rpm: &[f64],
    ) -> (Vec<Option<bool>>, Vec<Option<bool>>) {
        let ticks = key.len();
        let key: Stream = key
            .iter()
            .map(|&k| Message::present(Value::Bool(k)))
            .collect();
        let rpm: Stream = rpm
            .iter()
            .map(|&r| Message::present(Value::Float(r)))
            .collect();
        let out = simulate_component(model, id, &[("key_on", key), ("rpm", rpm)], ticks).unwrap();
        let decode = |sig: &str| -> Vec<Option<bool>> {
            (0..ticks)
                .map(|t| {
                    out.trace.signal(sig).unwrap()[t]
                        .value()
                        .and_then(Value::as_bool)
                })
                .collect()
        };
        (decode("fuel_pump"), decode("starter"))
    }

    #[test]
    fn validates_as_std() {
        let mut m = Model::new("seq");
        let id = build_start_sequencer(&mut m).unwrap();
        m.set_root(id);
        automode_core::levels::validate_fda(&m).unwrap();
    }

    #[test]
    fn normal_start_sequence() {
        let mut m = Model::new("seq");
        let id = build_start_sequencer(&mut m).unwrap();
        // Key on at t0; engine catches at t8.
        let key = [true; 12];
        let mut rpm = [100.0f64; 12];
        for r in rpm.iter_mut().skip(8) {
            *r = 900.0;
        }
        let (pump, starter) = run(&m, id, &key, &rpm);
        // t0: Off->Prime (pump on, starter off).
        assert_eq!(pump[0], Some(true));
        assert_eq!(starter[0], Some(false));
        // Priming self-loops keep the pump on.
        assert_eq!(pump[1], Some(true));
        // Starter engages once primed (after 3 counted ticks + threshold).
        let starter_on = starter.iter().position(|s| *s == Some(true)).unwrap();
        assert!((3..=6).contains(&starter_on), "starter at {starter_on}");
        // Once rpm catches, the starter disengages.
        let starter_off_again = starter
            .iter()
            .enumerate()
            .skip(starter_on + 1)
            .find(|(_, s)| **s == Some(false))
            .map(|(i, _)| i)
            .unwrap();
        assert!(starter_off_again >= 8);
    }

    #[test]
    fn key_off_aborts_everywhere() {
        let mut m = Model::new("seq");
        let id = build_start_sequencer(&mut m).unwrap();
        let key = [true, true, false, false];
        let rpm = [100.0; 4];
        let (pump, starter) = run(&m, id, &key, &rpm);
        assert_eq!(pump[2], Some(false));
        assert_eq!(starter[2], Some(false));
    }

    #[test]
    fn stall_restarts_priming() {
        let mut m = Model::new("seq");
        let id = build_start_sequencer(&mut m).unwrap();
        // Start, run, then stall at t10.
        let key = [true; 14];
        let mut rpm = [100.0f64; 14];
        for (i, r) in rpm.iter_mut().enumerate() {
            if (6..10).contains(&i) {
                *r = 900.0;
            } else if i >= 10 {
                *r = 0.0;
            }
        }
        let (pump, _) = run(&m, id, &key, &rpm);
        // After the stall the machine re-primes: pump stays on.
        assert_eq!(pump[10].or(pump[11]), Some(true));
    }
}
