//! Platform co-simulation scenarios over the Fig. 7 engine deployment.
//!
//! The CLI `cosim` verb, the golden-trace snapshots, and the
//! `platform_cosim` bench all exercise the same subject: the simplified
//! engine-controller CCD of Fig. 7, split across two ECUs exactly like
//! [`crate::ccd`]'s deployment example (`fuel_control` and
//! `ignition_control` on `engine_ecu`, `diagnosis_monitoring` on
//! `diag_ecu`, cluster WCETs from [`engine_cluster_wcets`]). This module
//! holds that shared setup plus the named platform-fault scenarios, so all
//! three consumers stay in lock-step.

use automode_core::ccd::Ccd;
use automode_core::model::Model;
use automode_core::CoreError;
use automode_kernel::Trace;
use automode_platform::cosim::PlatformFault;
use automode_sim::stimulus;
use automode_transform::DeploymentSpec;

use crate::ccd::{build_engine_ccd, engine_cluster_wcets};

/// A named platform-fault configuration for the engine deployment.
#[derive(Debug, Clone)]
pub struct PlatformScenario {
    /// CLI/snapshot name (`nominal`, `lost-frame`, `bus-load`).
    pub name: &'static str,
    /// One-line description for reports.
    pub summary: &'static str,
    /// The faults to inject (empty for the nominal run).
    pub faults: Vec<PlatformFault>,
}

/// The Fig. 7 engine CCD split across two ECUs: fast clusters pinned to
/// `engine_ecu`, diagnosis to `diag_ecu`, periods 10/100 base ticks
/// (10 ms / 100 ms at the default 1 ms tick), WCETs from
/// [`engine_cluster_wcets`].
///
/// # Errors
///
/// Propagates meta-model construction errors.
pub fn engine_cosim_parts() -> Result<(Model, Ccd, DeploymentSpec), CoreError> {
    let mut m = Model::new("engine_la");
    let (ccd, _) = build_engine_ccd(&mut m, 10, 100)?;
    let mut spec = DeploymentSpec::new(["engine_ecu", "diag_ecu"])
        .pin("fuel_control", "engine_ecu")
        .pin("ignition_control", "engine_ecu")
        .pin("diagnosis_monitoring", "diag_ecu");
    for (c, w) in engine_cluster_wcets() {
        spec = spec.wcet(c, w);
    }
    Ok((m, ccd, spec))
}

/// A deterministic drive profile on the CCD's external inputs
/// (`{cluster}.{port}` columns): rpm ramping through the diagnosis derate
/// threshold, throttle opening to full. The ramp is chosen so
/// `diagnosis_monitoring` actually flips `ti_limit` 20 → 6 mid-run and the
/// slow→fast feedback channel carries live data.
pub fn engine_ccd_stimulus(ticks: u64) -> Trace {
    let n = ticks as usize;
    let rpm = stimulus::ramp(800.0, 7000.0, n);
    // Pedal to the floor within the first 40 % of the run, then held: the
    // diagnosis cluster only samples every 100 ticks, so the threshold must
    // be comfortably crossed by its later activations.
    let full = (n * 2 / 5).max(1);
    let throttle: automode_kernel::Stream = (0..n)
        .map(|k| {
            automode_kernel::Message::present(automode_kernel::Value::Float(
                (k as f64 / full as f64).min(1.0),
            ))
        })
        .collect();
    let mut t = Trace::new();
    t.insert("fuel_control.rpm", rpm.clone());
    t.insert("ignition_control.rpm", rpm);
    t.insert("fuel_control.throttle", throttle);
    t
}

/// The named platform-fault scenarios over the engine deployment.
///
/// * `nominal` — no faults; the fault-free refinement baseline.
/// * `lost-frame` — frame dropout: every 4th instance of the fast
///   `engine_ecu` frame (starting at instance 2) is lost on the wire, so
///   the diagnosis cluster sees holes in `ti`/`advance`.
/// * `bus-load` — a babbling high-priority node (CAN id 0x10, 8 bytes,
///   every 300 µs) occupies ~89 % of the 500 kbit/s bus: real frames are
///   delayed (jitter) but still meet their envelopes.
pub fn engine_platform_scenarios() -> Vec<PlatformScenario> {
    vec![
        PlatformScenario {
            name: "nominal",
            summary: "fault-free platform (refinement baseline)",
            faults: Vec::new(),
        },
        PlatformScenario {
            name: "lost-frame",
            summary: "every 4th f_engine_ecu_10tick instance lost (from instance 2)",
            faults: vec![PlatformFault::LostFrame {
                frame: "f_engine_ecu_10tick".into(),
                every: 4,
                phase: 2,
            }],
        },
        PlatformScenario {
            name: "bus-load",
            summary: "babbling idiot: 8-byte id-0x10 frame every 300 us (~89 % load)",
            faults: vec![PlatformFault::BusLoad {
                id: 0x10,
                dlc: 8,
                period_us: 300,
                offset_us: 50,
            }],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use automode_core::ccd::FixedPriorityDataIntegrityPolicy;
    use automode_platform::cosim::CosimConfig;
    use automode_transform::cosim::CosimHarness;
    use automode_transform::deploy;

    fn run_scenario(name: &str, ticks: u64) -> automode_transform::cosim::CosimReport {
        let (m, ccd, spec) = engine_cosim_parts().unwrap();
        let d = deploy(&m, &ccd, &FixedPriorityDataIntegrityPolicy::new(), &spec).unwrap();
        let scenario = engine_platform_scenarios()
            .into_iter()
            .find(|s| s.name == name)
            .unwrap();
        let config = CosimConfig {
            faults: scenario.faults,
            ..CosimConfig::default()
        };
        let harness = CosimHarness::new(&m, &ccd, &d, &spec, config).unwrap();
        harness.run(&engine_ccd_stimulus(ticks), ticks).unwrap()
    }

    #[test]
    fn nominal_engine_deployment_preserves_envelope() {
        let report = run_scenario("nominal", 240);
        assert!(!report.single_ecu);
        assert!(
            report.semantics_preserved(),
            "{:?}",
            report.outcome.channels
        );
        assert!(report.robustness.is_clean(), "{:?}", report.robustness);
        assert_eq!(report.outcome.deadline_misses(), 0);
        // The derate threshold is actually crossed: ti_limit takes both
        // values over the run.
        let ti_limit = report
            .outcome
            .trace
            .signal("diagnosis_monitoring.ti_limit")
            .unwrap();
        let values: std::collections::BTreeSet<String> = ti_limit
            .iter()
            .filter(|m| m.is_present())
            .map(|m| format!("{m}"))
            .collect();
        assert!(values.len() >= 2, "derate never fired: {values:?}");
    }

    #[test]
    fn lost_frame_scenario_is_detected() {
        let report = run_scenario("lost-frame", 240);
        assert!(!report.robustness.is_clean());
        assert!(report.metrics.detection_latency().is_some());
        let lost: u64 = report.outcome.frames.iter().map(|f| f.lost).sum();
        assert!(lost > 0);
    }

    #[test]
    fn bus_load_scenario_jitters_but_delivers() {
        let nominal = run_scenario("nominal", 240);
        let loaded = run_scenario("bus-load", 240);
        assert!(
            loaded.semantics_preserved(),
            "{:?}",
            loaded.outcome.channels
        );
        assert!(loaded.robustness.is_clean());
        assert!(loaded.outcome.bus_load() > nominal.outcome.bus_load() + 0.5);
        let worst = |r: &automode_transform::cosim::CosimReport| {
            r.outcome
                .channels
                .iter()
                .map(|c| c.envelope.worst_slack_us)
                .min()
                .unwrap()
        };
        assert!(worst(&loaded) < worst(&nominal), "no added jitter");
    }
}
