//! The `DoorLockControl` of Fig. 1 and its body-electronics SSD (Fig. 4).
//!
//! Fig. 1 shows the component with inputs `T4S:LockStatus`,
//! `CRSH:CrashStatus`, `FZG_V:Voltage` and outputs `T1C..T4C:LockCommand`,
//! and a trace in which channels carry either values or the `"-"` absence
//! marker. The behaviour modelled here:
//!
//! * a crash event forces `Unlock` on all four doors (event-triggered:
//!   `CRSH` is sporadic);
//! * otherwise, a change of the driver-door lock switch `T4S` is mirrored
//!   to all doors as a `Lock`/`Unlock` command — but only while the board
//!   voltage suffices (≥ 9 V);
//! * when nothing happens, **no message** is emitted (the `"-"` of Fig. 1).

use automode_core::model::{
    Behavior, Component, ComponentId, Composite, CompositeKind, Endpoint, Model, Primitive,
};
use automode_core::types::{DataType, EnumType};
use automode_core::CoreError;
use automode_lang::parse;

/// The `LockStatus` enumeration of Fig. 1.
pub fn lock_status_type() -> DataType {
    DataType::Enum(EnumType::new("LockStatus", ["Locked", "Unlocked"]))
}

/// The `CrashStatus` enumeration.
pub fn crash_status_type() -> DataType {
    DataType::Enum(EnumType::new("CrashStatus", ["NoCrash", "Crash"]))
}

/// The `LockCommand` enumeration.
pub fn lock_command_type() -> DataType {
    DataType::Enum(EnumType::new("LockCommand", ["Lock", "Unlock"]))
}

/// Builds the `DoorLockControl` component into `model` and returns its id.
///
/// Internally a DFD: a crash detector gated through a `when`, the mirrored
/// lock command gated by a voltage check, and an or-else merge giving the
/// crash path priority.
///
/// # Errors
///
/// Propagates meta-model construction errors.
pub fn build_door_lock(model: &mut Model) -> Result<ComponentId, CoreError> {
    // crash = (CRSH ? #NoCrash) == #Crash   -- absent CRSH means no crash.
    let crash_flag = model.add_component(
        Component::new("CrashFlag")
            .input("CRSH", crash_status_type())
            .output("crash", DataType::Bool)
            .with_behavior(Behavior::expr(
                "crash",
                parse("(CRSH ? #NoCrash) == #Crash").unwrap(),
            )),
    )?;
    let unlock_const = model.add_component(
        Component::new("UnlockConst")
            .output("cmd", lock_command_type())
            .with_behavior(Behavior::expr("cmd", parse("#Unlock").unwrap())),
    )?;
    let crash_gate = model.add_component(
        Component::new("CrashGate")
            .input("data", lock_command_type())
            .input("cond", DataType::Bool)
            .output("out", lock_command_type())
            .with_behavior(Behavior::Primitive(Primitive::When)),
    )?;
    let volt_ok = model.add_component(
        Component::new("VoltOk")
            .input("FZG_V", DataType::physical("Voltage", "V"))
            .output("ok", DataType::Bool)
            .with_behavior(Behavior::expr("ok", parse("FZG_V >= 9.0").unwrap())),
    )?;
    // Strict in T4S: absent switch event -> absent command.
    let mirror = model.add_component(
        Component::new("MirrorCommand")
            .input("T4S", lock_status_type())
            .output("cmd", lock_command_type())
            .with_behavior(Behavior::expr(
                "cmd",
                parse("if T4S == #Locked then #Lock else #Unlock").unwrap(),
            )),
    )?;
    let mirror_gate = model.add_component(
        Component::new("MirrorGate")
            .input("data", lock_command_type())
            .input("cond", DataType::Bool)
            .output("out", lock_command_type())
            .with_behavior(Behavior::Primitive(Primitive::When)),
    )?;
    // Crash command wins; otherwise the mirrored command; otherwise absent.
    let merge = model.add_component(
        Component::new("CommandMerge")
            .input("a", lock_command_type())
            .input("b", lock_command_type())
            .output("out", lock_command_type())
            .with_behavior(Behavior::expr("out", parse("a ? b").unwrap())),
    )?;

    let mut net = Composite::new(CompositeKind::Dfd);
    net.instantiate("crash_flag", crash_flag);
    net.instantiate("unlock_const", unlock_const);
    net.instantiate("crash_gate", crash_gate);
    net.instantiate("volt_ok", volt_ok);
    net.instantiate("mirror", mirror);
    net.instantiate("mirror_gate", mirror_gate);
    net.instantiate("merge", merge);
    net.connect(
        Endpoint::boundary("CRSH"),
        Endpoint::child("crash_flag", "CRSH"),
    );
    net.connect(
        Endpoint::child("unlock_const", "cmd"),
        Endpoint::child("crash_gate", "data"),
    );
    net.connect(
        Endpoint::child("crash_flag", "crash"),
        Endpoint::child("crash_gate", "cond"),
    );
    net.connect(
        Endpoint::boundary("FZG_V"),
        Endpoint::child("volt_ok", "FZG_V"),
    );
    net.connect(Endpoint::boundary("T4S"), Endpoint::child("mirror", "T4S"));
    net.connect(
        Endpoint::child("mirror", "cmd"),
        Endpoint::child("mirror_gate", "data"),
    );
    net.connect(
        Endpoint::child("volt_ok", "ok"),
        Endpoint::child("mirror_gate", "cond"),
    );
    net.connect(
        Endpoint::child("crash_gate", "out"),
        Endpoint::child("merge", "a"),
    );
    net.connect(
        Endpoint::child("mirror_gate", "out"),
        Endpoint::child("merge", "b"),
    );
    for out in ["T1C", "T2C", "T3C", "T4C"] {
        net.connect(Endpoint::child("merge", "out"), Endpoint::boundary(out));
    }

    let mut comp = Component::new("DoorLockControl")
        .input("T4S", lock_status_type())
        .input("CRSH", crash_status_type())
        .input("FZG_V", DataType::physical("Voltage", "V"));
    for out in ["T1C", "T2C", "T3C", "T4C"] {
        comp = comp.output(out, lock_command_type());
    }
    comp = comp
        .resource("T1C", "DoorActuatorFL")
        .resource("T2C", "DoorActuatorFR")
        .resource("T3C", "DoorActuatorRL")
        .resource("T4C", "DoorActuatorRR")
        .with_behavior(Behavior::Composite(net));
    model.add_component(comp)
}

/// Builds the body-electronics SSD of Fig. 4 around [`build_door_lock`]:
/// the `DoorLockControl` plus a crash sensor filter, connected by SSD
/// channels (each introducing one message delay). Returns the SSD root.
///
/// # Errors
///
/// Propagates meta-model construction errors.
pub fn build_door_lock_system(model: &mut Model) -> Result<ComponentId, CoreError> {
    let ctrl = build_door_lock(model)?;
    let crash_sensor = model.add_component(
        Component::new("CrashSensorFilter")
            .input("raw_accel", DataType::physical("Acceleration", "m/s^2"))
            .output("CRSH", crash_status_type())
            .with_behavior(Behavior::expr(
                "CRSH",
                parse("if abs(raw_accel) > 50.0 then #Crash else #NoCrash").unwrap(),
            )),
    )?;
    let mut ssd = Composite::new(CompositeKind::Ssd);
    ssd.instantiate("crash_sensor", crash_sensor);
    ssd.instantiate("door_lock", ctrl);
    ssd.connect(
        Endpoint::boundary("raw_accel"),
        Endpoint::child("crash_sensor", "raw_accel"),
    );
    ssd.connect(
        Endpoint::child("crash_sensor", "CRSH"),
        Endpoint::child("door_lock", "CRSH"),
    );
    ssd.connect(
        Endpoint::boundary("T4S"),
        Endpoint::child("door_lock", "T4S"),
    );
    ssd.connect(
        Endpoint::boundary("FZG_V"),
        Endpoint::child("door_lock", "FZG_V"),
    );
    ssd.connect(
        Endpoint::child("door_lock", "T1C"),
        Endpoint::boundary("T1C"),
    );

    let root = model.add_component(
        Component::new("BodyElectronics")
            .input("T4S", lock_status_type())
            .input("raw_accel", DataType::physical("Acceleration", "m/s^2"))
            .input("FZG_V", DataType::physical("Voltage", "V"))
            .output("T1C", lock_command_type())
            .with_behavior(Behavior::Composite(ssd)),
    )?;
    Ok(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use automode_kernel::{Message, Stream, Value};
    use automode_sim::{simulate_component, stimulus};

    fn lock_events() -> Stream {
        // Sporadic T4S events: locked at t1, unlocked at t4, else absent.
        let mut s = Stream::absent(6);
        // Indexing is immutable; rebuild instead.
        let mut v: Vec<Message> = s.clone().into_inner();
        v[1] = Message::present(Value::sym("Locked"));
        v[4] = Message::present(Value::sym("Unlocked"));
        s = v.into_iter().collect();
        s
    }

    #[test]
    fn fig1_trace_has_values_and_absences() {
        let mut m = Model::new("fig1");
        let ctrl = build_door_lock(&mut m).unwrap();
        automode_core::levels::validate_fda(&m).unwrap();

        let t4s = lock_events();
        let crsh = Stream::absent(6);
        let volt = stimulus::constant(Value::Float(12.0), 6);
        let run = simulate_component(
            &m,
            ctrl,
            &[("T4S", t4s), ("CRSH", crsh), ("FZG_V", volt)],
            6,
        )
        .unwrap();
        let t1c = run.trace.signal("T1C").unwrap();
        assert!(t1c[0].is_absent());
        assert_eq!(t1c[1], Message::present(Value::sym("Lock")));
        assert!(t1c[2].is_absent());
        assert_eq!(t1c[4], Message::present(Value::sym("Unlock")));
        // All four doors receive the same command.
        for door in ["T2C", "T3C", "T4C"] {
            assert_eq!(run.trace.signal(door).unwrap(), t1c);
        }
    }

    #[test]
    fn crash_overrides_and_is_event_triggered() {
        let mut m = Model::new("crash");
        let ctrl = build_door_lock(&mut m).unwrap();
        let mut crsh: Vec<Message> = vec![Message::Absent; 4];
        crsh[2] = Message::present(Value::sym("Crash"));
        let t4s: Stream = vec![
            Message::present(Value::sym("Locked")),
            Message::Absent,
            Message::present(Value::sym("Locked")),
            Message::Absent,
        ]
        .into_iter()
        .collect();
        let run = simulate_component(
            &m,
            ctrl,
            &[
                ("T4S", t4s),
                ("CRSH", crsh.into_iter().collect()),
                ("FZG_V", stimulus::constant(Value::Float(12.0), 4)),
            ],
            4,
        )
        .unwrap();
        let t1c = run.trace.signal("T1C").unwrap();
        assert_eq!(t1c[0], Message::present(Value::sym("Lock")));
        // At t2 the crash fires: unlock wins over the lock request.
        assert_eq!(t1c[2], Message::present(Value::sym("Unlock")));
    }

    #[test]
    fn low_voltage_suppresses_commands() {
        let mut m = Model::new("volt");
        let ctrl = build_door_lock(&mut m).unwrap();
        let t4s: Stream = vec![Message::present(Value::sym("Locked"))]
            .into_iter()
            .collect();
        let run = simulate_component(
            &m,
            ctrl,
            &[
                ("T4S", t4s),
                ("CRSH", Stream::absent(1)),
                ("FZG_V", stimulus::constant(Value::Float(6.0), 1)),
            ],
            1,
        )
        .unwrap();
        assert!(run.trace.signal("T1C").unwrap()[0].is_absent());
    }

    #[test]
    fn ssd_adds_one_delay_per_channel() {
        let mut m = Model::new("fig4");
        let root = build_door_lock_system(&mut m).unwrap();
        m.set_root(root);
        automode_core::levels::validate_fda(&m).unwrap();

        let t4s: Stream = vec![
            Message::present(Value::sym("Locked")),
            Message::Absent,
            Message::Absent,
        ]
        .into_iter()
        .collect();
        let run = simulate_component(
            &m,
            root,
            &[
                ("T4S", t4s),
                ("raw_accel", stimulus::constant(Value::Float(0.0), 3)),
                ("FZG_V", stimulus::constant(Value::Float(12.0), 3)),
            ],
            3,
        )
        .unwrap();
        let t1c = run.trace.signal("T1C").unwrap();
        // Boundary-in SSD channel (1 delay) + boundary-out channel (1
        // delay): the t0 event appears at t2.
        assert!(t1c[0].is_absent() && t1c[1].is_absent());
        assert_eq!(t1c[2], Message::present(Value::sym("Lock")));
    }

    #[test]
    fn door_actuator_resources_are_disjoint() {
        let mut m = Model::new("rules");
        build_door_lock(&mut m).unwrap();
        assert!(automode_core::rules::actuator_conflicts(&m).is_empty());
    }
}
