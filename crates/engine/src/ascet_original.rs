//! The "original" ASCET-style four-stroke gasoline engine controller.
//!
//! The case study (Sec. 5) was "provided in terms of a detailed ASCET-SD
//! model"; this module rebuilds a synthetic equivalent exhibiting exactly
//! the pathologies the paper describes:
//!
//! * a **central component that "emits a large number of flags which
//!   altogether represent the global state of the engine"** — the
//!   `engine_state` module with its `b_*` log messages;
//! * **implicit modes hidden in If-Then-Else control flow** — most
//!   prominently `throttle_ctrl.calc_rate`, the paper's
//!   `ThrottleRateOfChange`, whose two branches are the implicit
//!   `FuelEnabled` / `CrankingOverrun` modes of Fig. 8;
//! * nested conditional cascades (`fuel.calc_ti`) and stateful trimming
//!   (`idle_speed.trim`).

use automode_ascet::model::{
    AscetModel, AscetType, MessageDecl, MessageKind, Module, Process, Stmt,
};
use automode_lang::parse;

fn msg(name: &str, ty: AscetType, kind: MessageKind) -> MessageDecl {
    MessageDecl::new(name, ty, kind)
}

/// Builds the original flag-based engine controller model.
///
/// Modules:
///
/// * `engine_state` (10 ms) — computes the five global flags from `rpm`,
///   `throttle`, `key_on`;
/// * `throttle_ctrl` (10 ms) — `ThrottleRateOfChange`: rate limiting with
///   an implicit Cranking/Overrun mode;
/// * `fuel` (10 ms) — injection time with a nested If cascade over three
///   flags;
/// * `ignition` (10 ms) — spark advance with a cranking special case;
/// * `lambda_control` (10 ms) — stateful closed-loop lambda trim with an
///   open-loop hold guarded by three flags;
/// * `idle_speed` (100 ms) — stateful idle-speed trim integrator.
pub fn original_engine_model() -> AscetModel {
    let engine_state = Module::new("engine_state")
        .message(msg("rpm", AscetType::Cont, MessageKind::Receive))
        .message(msg("throttle", AscetType::Cont, MessageKind::Receive))
        .message(msg("key_on", AscetType::Log, MessageKind::Receive))
        .message(msg("b_cranking", AscetType::Log, MessageKind::Send))
        .message(msg("b_running", AscetType::Log, MessageKind::Send))
        .message(msg("b_idle", AscetType::Log, MessageKind::Send))
        .message(msg("b_overrun", AscetType::Log, MessageKind::Send))
        .message(msg("b_fullload", AscetType::Log, MessageKind::Send))
        .process(Process::new(
            "compute_flags",
            10,
            vec![
                Stmt::assign("b_cranking", parse("key_on and rpm < 600.0").unwrap()),
                Stmt::assign("b_running", parse("key_on and rpm >= 600.0").unwrap()),
                Stmt::assign(
                    "b_idle",
                    parse("key_on and rpm >= 600.0 and throttle < 0.05").unwrap(),
                ),
                Stmt::assign(
                    "b_overrun",
                    parse("key_on and rpm > 1500.0 and throttle < 0.01").unwrap(),
                ),
                Stmt::assign(
                    "b_fullload",
                    parse("key_on and rpm >= 600.0 and throttle > 0.9").unwrap(),
                ),
            ],
        ));

    // The paper's ThrottleRateOfChange: constant factor while cranking or
    // in overrun, detailed algorithm otherwise (Fig. 8).
    let throttle_ctrl = Module::new("throttle_ctrl")
        .message(msg("rate", AscetType::Cont, MessageKind::Send))
        .process(Process::new(
            "calc_rate",
            10,
            vec![Stmt::If {
                cond: parse("b_cranking or b_overrun").unwrap(),
                then_branch: vec![Stmt::assign("rate", parse("0.2").unwrap())],
                else_branch: vec![Stmt::assign(
                    "rate",
                    parse("clamp(throttle * 2.0 + rpm * 0.0001, 0.0, 2.0)").unwrap(),
                )],
            }],
        ));

    let fuel = Module::new("fuel")
        .message(msg("ti", AscetType::Cont, MessageKind::Send))
        .process(Process::new(
            "calc_ti",
            10,
            vec![Stmt::If {
                cond: parse("b_overrun").unwrap(),
                then_branch: vec![Stmt::assign("ti", parse("0.0").unwrap())],
                else_branch: vec![Stmt::If {
                    cond: parse("b_cranking").unwrap(),
                    then_branch: vec![Stmt::assign("ti", parse("4.0").unwrap())],
                    else_branch: vec![Stmt::If {
                        cond: parse("b_fullload").unwrap(),
                        then_branch: vec![Stmt::assign(
                            "ti",
                            parse("(1.0 + throttle * 8.0 + rpm * 0.0001) * 1.2").unwrap(),
                        )],
                        else_branch: vec![Stmt::assign(
                            "ti",
                            parse("1.0 + throttle * 8.0 + rpm * 0.0001").unwrap(),
                        )],
                    }],
                }],
            }],
        ));

    let ignition = Module::new("ignition")
        .message(msg("advance", AscetType::Cont, MessageKind::Send))
        .process(Process::new(
            "calc_adv",
            10,
            vec![Stmt::If {
                cond: parse("b_cranking").unwrap(),
                then_branch: vec![Stmt::assign("advance", parse("5.0").unwrap())],
                else_branch: vec![Stmt::assign(
                    "advance",
                    parse("clamp(10.0 + rpm * 0.003, 10.0, 35.0)").unwrap(),
                )],
            }],
        ));

    // Closed-loop lambda (air-fuel ratio) trim: integrates the O2-sensor
    // error while the engine is in its closed-loop window, holds the trim
    // in open-loop phases (cranking, full load, overrun).
    let lambda_control = Module::new("lambda_control")
        .message(msg("o2", AscetType::Cont, MessageKind::Receive))
        .message(msg("lam_trim", AscetType::Cont, MessageKind::Send))
        .process(Process::new(
            "lambda",
            10,
            vec![Stmt::If {
                cond: parse("b_running and not b_fullload and not b_overrun").unwrap(),
                then_branch: vec![Stmt::assign(
                    "lam_trim",
                    parse("clamp(lam_trim + (1.0 - o2) * 0.01, -0.3, 0.3)").unwrap(),
                )],
                else_branch: vec![Stmt::assign("lam_trim", parse("lam_trim").unwrap())],
            }],
        ));

    let idle_speed = Module::new("idle_speed")
        .message(msg("idle_trim", AscetType::Cont, MessageKind::Send))
        .process(Process::new(
            "trim",
            100,
            vec![Stmt::If {
                cond: parse("b_idle").unwrap(),
                then_branch: vec![Stmt::assign(
                    "idle_trim",
                    parse("clamp(idle_trim + (800.0 - rpm) * 0.0001, -0.5, 0.5)").unwrap(),
                )],
                else_branch: vec![Stmt::assign("idle_trim", parse("idle_trim").unwrap())],
            }],
        ));

    AscetModel::new("gasoline_engine_controller")
        .module(engine_state)
        .module(throttle_ctrl)
        .module(fuel)
        .module(ignition)
        .module(lambda_control)
        .module(idle_speed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use automode_ascet::{central_flag_module, mode_candidates, AscetInterp, Stimulus};
    use automode_kernel::Value;

    #[test]
    fn model_validates() {
        original_engine_model().validate().unwrap();
    }

    #[test]
    fn central_flag_component_is_engine_state() {
        let m = original_engine_model();
        let (name, count) = central_flag_module(&m).unwrap();
        assert_eq!(name, "engine_state");
        assert_eq!(count, 5, "the paper's 'large number of flags'");
        assert_eq!(m.flag_count(), 5);
    }

    #[test]
    fn implicit_modes_are_detectable() {
        let m = original_engine_model();
        let cands = mode_candidates(&m);
        // throttle_ctrl, fuel, ignition, idle_speed all hide modes in
        // flag-guarded conditionals.
        assert!(cands.len() >= 5, "found {}", cands.len());
        let throttle = cands
            .iter()
            .find(|c| c.process == "calc_rate")
            .expect("ThrottleRateOfChange candidate");
        assert!(throttle.is_exhaustive());
        assert_eq!(throttle.flags, vec!["b_cranking", "b_overrun"]);
        assert_eq!(m.if_count(), 7);
    }

    #[test]
    fn cranking_behaviour_observable_in_execution() {
        let m = original_engine_model();
        let mut interp = AscetInterp::new(&m).unwrap();
        let mut stim = Stimulus::new();
        stim.insert("key_on".into(), Box::new(|_| Some(Value::Bool(true))));
        stim.insert(
            "rpm".into(),
            Box::new(|t| Some(Value::Float(if t < 50 { 200.0 } else { 2000.0 }))),
        );
        stim.insert("throttle".into(), Box::new(|_| Some(Value::Float(0.3))));
        let trace = interp.run(100, &stim, &["rate", "ti", "advance"]).unwrap();
        // While cranking: rate pinned to 0.2, rich mixture, fixed advance.
        let rate0 = trace.signal("rate").unwrap()[10]
            .value()
            .unwrap()
            .as_float()
            .unwrap();
        assert_eq!(rate0, 0.2);
        let ti0 = trace.signal("ti").unwrap()[10]
            .value()
            .unwrap()
            .as_float()
            .unwrap();
        assert_eq!(ti0, 4.0);
        let adv0 = trace.signal("advance").unwrap()[10]
            .value()
            .unwrap()
            .as_float()
            .unwrap();
        assert_eq!(adv0, 5.0);
        // Once running: detailed computations take over.
        let rate1 = trace.signal("rate").unwrap()[90]
            .value()
            .unwrap()
            .as_float()
            .unwrap();
        assert!((rate1 - (0.3 * 2.0 + 2000.0 * 0.0001)).abs() < 1e-9);
    }

    #[test]
    fn idle_trim_accumulates_only_in_idle() {
        let m = original_engine_model();
        let mut interp = AscetInterp::new(&m).unwrap();
        let mut stim = Stimulus::new();
        stim.insert("key_on".into(), Box::new(|_| Some(Value::Bool(true))));
        stim.insert("rpm".into(), Box::new(|_| Some(Value::Float(700.0))));
        stim.insert("throttle".into(), Box::new(|_| Some(Value::Float(0.0))));
        let trace = interp.run(500, &stim, &["idle_trim"]).unwrap();
        let first = trace.signal("idle_trim").unwrap()[0]
            .value()
            .unwrap()
            .as_float()
            .unwrap();
        let last = trace.signal("idle_trim").unwrap()[499]
            .value()
            .unwrap()
            .as_float()
            .unwrap();
        assert!(last > first, "trim must integrate the 100 rpm deficit");
    }
}
