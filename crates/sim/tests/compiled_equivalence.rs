//! Differential tests of [`CompiledSim`] against the one-shot pipeline.
//!
//! A reused compiled handle must match a fresh elaborate-and-run for every
//! run, and `run_batch` must match per-scenario sequential runs — on a
//! stateless component and on a stateful mode-switching (MTD) component,
//! with lane parallelism off and on.

use automode_core::model::{Behavior, Component, ComponentId, Model};
use automode_core::types::DataType;
use automode_core::Mtd;
use automode_kernel::Stream;
use automode_lang::parse;
use automode_sim::{simulate_component, stimulus, BatchScenario, CompiledSim};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

fn gain_model() -> (Model, ComponentId) {
    let mut m = Model::new("t");
    let id = m
        .add_component(
            Component::new("Gain")
                .input("u", DataType::Float)
                .output("y", DataType::Float)
                .with_behavior(Behavior::expr("y", parse("u * 3.0 + 1.0").unwrap())),
        )
        .unwrap();
    (m, id)
}

/// A two-mode MTD (constant vs. pass-through) whose transitions fire on
/// thresholds inside the stimulus range, so lanes genuinely switch modes
/// at lane-dependent ticks — the stateful case batching must replicate.
fn mtd_model() -> (Model, ComponentId) {
    let mut m = Model::new("t");
    let leaf = |m: &mut Model, name: &str, expr: &str| -> ComponentId {
        m.add_component(
            Component::new(name)
                .input("x", DataType::Float)
                .output("y", DataType::Float)
                .with_behavior(Behavior::expr("y", parse(expr).unwrap())),
        )
        .unwrap()
    };
    let a = leaf(&mut m, "Constant", "0.2 + x * 0.0");
    let b = leaf(&mut m, "Linear", "x * 1.0");
    let mut mtd = Mtd::new();
    let ma = mtd.add_mode("A", a);
    let mb = mtd.add_mode("B", b);
    mtd.add_transition(ma, mb, parse("x > 10.0").unwrap(), 0);
    mtd.add_transition(mb, ma, parse("x < 5.0").unwrap(), 0);
    let id = m
        .add_component(
            Component::new("Switcher")
                .input("x", DataType::Float)
                .output("y", DataType::Float)
                .with_behavior(Behavior::Mtd(mtd)),
        )
        .unwrap();
    (m, id)
}

/// Per-lane scenario inputs: same port, lane-specific stream and horizon.
/// The 0..20 value range straddles both MTD thresholds (5 and 10).
fn lane_inputs(port: &'static str, k: usize, base_ticks: usize, seed: u64) -> Vec<ScenarioInput> {
    (0..k)
        .map(|l| {
            let ticks = base_ticks + l;
            ScenarioInput {
                inputs: vec![(
                    port,
                    stimulus::seeded_random(0.0, 20.0, ticks, seed.wrapping_add(l as u64)),
                )],
                ticks,
            }
        })
        .collect()
}

struct ScenarioInput {
    inputs: Vec<(&'static str, Stream)>,
    ticks: usize,
}

fn check_batch(
    model: &Model,
    component: ComponentId,
    scenarios: &[ScenarioInput],
    parallel: bool,
) -> Result<(), TestCaseError> {
    let mut sim = CompiledSim::new(model, component).unwrap();
    if parallel {
        sim.enable_parallel(2); // fan out even one-node-wide levels
        sim.set_parallel_workers(Some(2)); // real spawns even on 1 CPU
    }
    let specs: Vec<BatchScenario<'_>> = scenarios
        .iter()
        .map(|s| BatchScenario::new(&s.inputs, s.ticks))
        .collect();
    let batch = sim.run_batch(&specs).unwrap();
    prop_assert_eq!(batch.len(), scenarios.len());
    for (lane, s) in scenarios.iter().enumerate() {
        let fresh = simulate_component(model, component, &s.inputs, s.ticks).unwrap();
        prop_assert_eq!(&batch[lane], &fresh, "lane {}", lane);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A reused handle matches a fresh elaborate-and-run, run after run —
    /// including on the stateful MTD, whose mode register must be reset
    /// between runs.
    #[test]
    fn reused_compiled_sim_matches_fresh_runs(
        seed in any::<u64>(),
        runs in 1usize..5,
        ticks in 1usize..24,
    ) {
        for (model, component, port) in [
            { let (m, c) = gain_model(); (m, c, "u") },
            { let (m, c) = mtd_model(); (m, c, "x") },
        ] {
            let mut sim = CompiledSim::new(&model, component).unwrap();
            for r in 0..runs {
                let stream =
                    stimulus::seeded_random(0.0, 20.0, ticks, seed.wrapping_add(r as u64));
                let inputs = [(port, stream)];
                let reused = sim.run(&inputs, ticks).unwrap();
                let fresh = simulate_component(&model, component, &inputs, ticks).unwrap();
                prop_assert_eq!(reused, fresh, "run {}", r);
            }
        }
    }

    /// `run_batch` matches per-scenario sequential simulation on the
    /// stateless component (heterogeneous horizons, parallel off and on).
    #[test]
    fn batch_matches_sequential_on_stateless_model(
        seed in any::<u64>(),
        k in 1usize..5,
        base_ticks in 1usize..20,
    ) {
        let (model, component) = gain_model();
        let scenarios = lane_inputs("u", k, base_ticks, seed);
        check_batch(&model, component, &scenarios, false)?;
        check_batch(&model, component, &scenarios, true)?;
    }

    /// `run_batch` matches per-scenario sequential simulation on the
    /// stateful MTD (each lane owns an independent mode register).
    #[test]
    fn batch_matches_sequential_on_stateful_mtd(
        seed in any::<u64>(),
        k in 1usize..5,
        base_ticks in 1usize..20,
    ) {
        let (model, component) = mtd_model();
        let scenarios = lane_inputs("x", k, base_ticks, seed);
        check_batch(&model, component, &scenarios, false)?;
        check_batch(&model, component, &scenarios, true)?;
    }
}
