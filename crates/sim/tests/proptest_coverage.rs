//! Differential tests of discrete-state coverage collection.
//!
//! The covered execution paths must all report the *same* coverage for the
//! same scenario: `run_batch_covered` on the typed-lane path, on the
//! `Message`-lane path (vectorization off), in parallel mode, and with
//! clock gating disabled must each equal K sequential `run_covered` calls,
//! which in turn must equal the interpretive [`ReferenceExecutor`] replay —
//! across per-lane fault injection (gating-safe drops and value-rewriting
//! faults that force the dense schedule).

use automode_core::model::{Behavior, Component, ComponentId, Model};
use automode_core::std_machine::{Assign, StdMachine, StdTransition};
use automode_core::types::DataType;
use automode_core::Mtd;
use automode_kernel::network::rows_padded_with_absence;
use automode_kernel::{Corruptor, CoverageMap, FaultKind, FaultSpec, Stream, Value};
use automode_lang::parse;
use automode_sim::{elaborate, stimulus, BatchScenario, CompiledSim};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// A three-mode MTD whose thresholds sit inside the 0..20 stimulus range,
/// so random lanes genuinely walk the mode graph at lane-dependent ticks.
fn mtd_model() -> (Model, ComponentId) {
    let mut m = Model::new("t");
    let leaf = |m: &mut Model, name: &str, expr: &str| -> ComponentId {
        m.add_component(
            Component::new(name)
                .input("x", DataType::Float)
                .output("y", DataType::Float)
                .with_behavior(Behavior::expr("y", parse(expr).unwrap())),
        )
        .unwrap()
    };
    let lo = leaf(&mut m, "Low", "x * 0.0");
    let mid = leaf(&mut m, "Mid", "x * 1.0");
    let hi = leaf(&mut m, "High", "x * 2.0");
    let mut mtd = Mtd::new();
    let ml = mtd.add_mode("Low", lo);
    let mm = mtd.add_mode("Mid", mid);
    let mh = mtd.add_mode("High", hi);
    mtd.add_transition(ml, mm, parse("x > 5.0").unwrap(), 0);
    mtd.add_transition(mm, mh, parse("x > 15.0").unwrap(), 0);
    mtd.add_transition(mm, ml, parse("x < 2.0").unwrap(), 1);
    mtd.add_transition(mh, mm, parse("x < 10.0").unwrap(), 0);
    let id = m
        .add_component(
            Component::new("Regimes")
                .input("x", DataType::Float)
                .output("y", DataType::Float)
                .with_behavior(Behavior::Mtd(mtd)),
        )
        .unwrap();
    (m, id)
}

/// A three-state STD with a variable, so transition actions and guards both
/// participate in the walked state graph.
fn std_model() -> (Model, ComponentId) {
    let mut m = Model::new("t");
    let mut fsm = StdMachine::new();
    let idle = fsm.add_state("Idle");
    let armed = fsm.add_state("Armed");
    let fired = fsm.add_state("Fired");
    fsm.add_transition(StdTransition {
        from: idle,
        to: armed,
        guard: parse("x > 8.0").unwrap(),
        actions: vec![Assign {
            target: "y".into(),
            expr: parse("1.0").unwrap(),
        }],
        priority: 0,
    });
    fsm.add_transition(StdTransition {
        from: armed,
        to: fired,
        guard: parse("x > 16.0").unwrap(),
        actions: vec![Assign {
            target: "y".into(),
            expr: parse("2.0").unwrap(),
        }],
        priority: 0,
    });
    fsm.add_transition(StdTransition {
        from: armed,
        to: idle,
        guard: parse("x < 2.0").unwrap(),
        actions: vec![],
        priority: 1,
    });
    fsm.add_transition(StdTransition {
        from: fired,
        to: idle,
        guard: parse("x < 4.0").unwrap(),
        actions: vec![Assign {
            target: "y".into(),
            expr: parse("0.0").unwrap(),
        }],
        priority: 0,
    });
    let id = m
        .add_component(
            Component::new("Trigger")
                .input("x", DataType::Float)
                .output("y", DataType::Float)
                .with_behavior(Behavior::Std(fsm)),
        )
        .unwrap();
    (m, id)
}

/// Lane `l`'s fault set: a rotation through nothing, a gating-safe drop,
/// a stuck-at, and a corruptor — the latter two force the dense schedule.
fn lane_faults(l: usize, with_faults: bool) -> Vec<(String, FaultKind)> {
    if !with_faults {
        return Vec::new();
    }
    match l % 4 {
        0 => Vec::new(),
        1 => vec![(
            "x".to_string(),
            FaultKind::drop_every(2 + l as u64 % 3, l as u64 % 2),
        )],
        2 => vec![("x".to_string(), FaultKind::StuckAt(Value::Float(12.0)))],
        _ => vec![("x".to_string(), FaultKind::Corrupt(Corruptor::scale(1.5)))],
    }
}

struct Lane {
    stream: Stream,
    ticks: usize,
    faults: Vec<(String, FaultKind)>,
}

fn make_lanes(k: usize, base_ticks: usize, seed: u64, with_faults: bool) -> Vec<Lane> {
    (0..k)
        .map(|l| Lane {
            stream: stimulus::seeded_random(0.0, 20.0, base_ticks + l, seed.wrapping_add(l as u64)),
            ticks: base_ticks + l,
            faults: lane_faults(l, with_faults),
        })
        .collect()
}

/// Sequential oracle: one `run_covered` per lane on a freshly faulted clone.
fn sequential_maps(
    base: &CompiledSim,
    port: &str,
    lanes: &[Lane],
) -> Result<Vec<CoverageMap>, TestCaseError> {
    let mut maps = Vec::with_capacity(lanes.len());
    for lane in lanes {
        let mut sim = base.clone();
        let faults: Vec<(&str, FaultKind)> = lane
            .faults
            .iter()
            .map(|(n, kind)| (n.as_str(), kind.clone()))
            .collect();
        sim.set_faults(&faults).unwrap();
        let (_, cov) = sim
            .run_covered(&[(port, lane.stream.clone())], lane.ticks)
            .unwrap();
        maps.push(cov);
    }
    Ok(maps)
}

fn batch_maps(
    sim: &CompiledSim,
    port: &str,
    lanes: &[Lane],
) -> Result<Vec<CoverageMap>, TestCaseError> {
    let inputs: Vec<[(&str, Stream); 1]> =
        lanes.iter().map(|l| [(port, l.stream.clone())]).collect();
    let scenarios: Vec<BatchScenario<'_>> = lanes
        .iter()
        .zip(&inputs)
        .map(|(lane, inp)| {
            let mut sc = BatchScenario::new(inp.as_slice(), lane.ticks);
            for (name, kind) in &lane.faults {
                sc = sc.with_fault(name.clone(), kind.clone());
            }
            sc
        })
        .collect();
    let (_, maps) = sim.run_batch_covered(&scenarios).unwrap();
    Ok(maps)
}

/// Interpretive oracle: the `ReferenceExecutor` replay of each lane.
fn reference_maps(
    model: &Model,
    component: ComponentId,
    lanes: &[Lane],
) -> Result<Vec<CoverageMap>, TestCaseError> {
    let mut maps = Vec::with_capacity(lanes.len());
    for lane in lanes {
        let mut exec = elaborate(model, component)
            .unwrap()
            .prepare_reference()
            .unwrap();
        let specs: Vec<FaultSpec> = lane
            .faults
            .iter()
            .map(|(_, kind)| FaultSpec::on_input(0, kind.clone()))
            .collect();
        exec.set_faults(&specs).unwrap();
        let layout = std::sync::Arc::new(exec.coverage_layout());
        let mut cov = CoverageMap::new(layout);
        let stim = rows_padded_with_absence(&[&lane.stream], lane.ticks);
        exec.run_covered(&stim, &mut cov).unwrap();
        maps.push(cov);
    }
    Ok(maps)
}

fn check_all_paths(
    model: &Model,
    component: ComponentId,
    port: &str,
    lanes: &[Lane],
) -> Result<(), TestCaseError> {
    let base = CompiledSim::new(model, component).unwrap();
    let seq = sequential_maps(&base, port, lanes)?;

    // Typed-lane batch path (the default).
    let typed = batch_maps(&base, port, lanes)?;
    prop_assert_eq!(&typed, &seq, "typed batch != sequential");

    // `Message`-lane batch path.
    let mut messages_sim = base.clone();
    messages_sim.set_batch_vectorization(false);
    let messages = batch_maps(&messages_sim, port, lanes)?;
    prop_assert_eq!(&messages, &seq, "message batch != sequential");

    // Parallel batch path ((node, lane) work items on real threads).
    let mut parallel_sim = base.clone();
    parallel_sim.enable_parallel(2);
    parallel_sim.set_parallel_workers(Some(2));
    let parallel = batch_maps(&parallel_sim, port, lanes)?;
    prop_assert_eq!(&parallel, &seq, "parallel batch != sequential");

    // Clock gating disabled (dense schedule on every path).
    let mut dense_sim = base.clone();
    dense_sim.disable_clock_gating();
    let dense = batch_maps(&dense_sim, port, lanes)?;
    prop_assert_eq!(&dense, &seq, "ungated batch != sequential");

    // Interpretive replay.
    let reference = reference_maps(model, component, lanes)?;
    prop_assert_eq!(&reference, &seq, "reference replay != sequential");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// MTD mode coverage agrees across every execution path, nominal lanes.
    #[test]
    fn mtd_coverage_is_path_independent(
        seed in any::<u64>(),
        k in 1usize..6,
        base_ticks in 1usize..24,
    ) {
        let (model, component) = mtd_model();
        let lanes = make_lanes(k, base_ticks, seed, false);
        check_all_paths(&model, component, "x", &lanes)?;
    }

    /// MTD mode coverage agrees across every execution path under per-lane
    /// faults (drops, stuck-at, corruption).
    #[test]
    fn mtd_coverage_is_path_independent_under_faults(
        seed in any::<u64>(),
        k in 1usize..6,
        base_ticks in 1usize..24,
    ) {
        let (model, component) = mtd_model();
        let lanes = make_lanes(k, base_ticks, seed, true);
        check_all_paths(&model, component, "x", &lanes)?;
    }

    /// STD state/transition coverage agrees across every execution path,
    /// with and without faults.
    #[test]
    fn std_coverage_is_path_independent(
        seed in any::<u64>(),
        k in 1usize..6,
        base_ticks in 1usize..24,
        with_faults in any::<bool>(),
    ) {
        let (model, component) = std_model();
        let lanes = make_lanes(k, base_ticks, seed, with_faults);
        check_all_paths(&model, component, "x", &lanes)?;
    }

    /// Wide batches cross the sequential LANE_CHUNK boundary, so the
    /// chunked recursion must slice the coverage maps correctly.
    #[test]
    fn wide_batches_slice_coverage_per_chunk(
        seed in any::<u64>(),
        with_faults in any::<bool>(),
    ) {
        let (model, component) = mtd_model();
        let lanes = make_lanes(37, 12, seed, with_faults);
        check_all_paths(&model, component, "x", &lanes)?;
    }
}

#[test]
fn layouts_agree_between_compiled_and_reference() {
    let (model, component) = mtd_model();
    let sim = CompiledSim::new(&model, component).unwrap();
    let compiled = sim.coverage_layout();
    let reference = elaborate(&model, component)
        .unwrap()
        .prepare_reference()
        .unwrap()
        .coverage_layout();
    assert_eq!(compiled.total_states(), reference.total_states());
    assert_eq!(compiled.total_transitions(), reference.total_transitions());
    assert_eq!(compiled.sites().len(), reference.sites().len());
    for (a, b) in compiled.sites().iter().zip(reference.sites()) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.states, b.states);
        assert_eq!(a.transitions, b.transitions);
    }
    // 3 modes, 4 declared transitions, no self-loops.
    assert_eq!(compiled.total_states(), 3);
    assert_eq!(compiled.total_transitions(), 4);
}

#[test]
fn a_full_sweep_covers_the_whole_mode_graph() {
    let (model, component) = mtd_model();
    let mut sim = CompiledSim::new(&model, component).unwrap();
    // A triangle wave 0 -> 20 -> 0 walks Low->Mid->High->Mid->Low.
    let up: Vec<f64> = (0..21).map(f64::from).collect();
    let down: Vec<f64> = (0..21).rev().map(f64::from).collect();
    let wave: Vec<f64> = up.into_iter().chain(down).collect();
    let ticks = wave.len();
    let stream = Stream::from_values(wave.into_iter().map(Value::Float));
    let (_, cov) = sim.run_covered(&[("x", stream)], ticks).unwrap();
    assert_eq!(cov.states_covered(), 3);
    assert_eq!(cov.transitions_covered(), 4);
}
