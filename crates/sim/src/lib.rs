//! # automode-sim
//!
//! The AutoMoDe **simulator**: elaborates meta-models from `automode-core`
//! onto the executable kernel of `automode-kernel` and runs them against
//! stimuli, producing traces.
//!
//! The paper uses simulation in two roles, both covered here:
//!
//! * **FAA validation** — "the validation of functional concepts based on
//!   prototypical behavioral descriptions ... The simulation additionally
//!   considers the prototypical behavioral descriptions" (Sec. 3.1);
//! * **Transformation validation** — refactorings and refinements must be
//!   semantics-preserving; we check this as trace equivalence between the
//!   model before and after a transformation (e.g. the MTD-to-dataflow
//!   algorithm of Sec. 3.3 "transforms an MTD into a semantically
//!   equivalent, partitionable data-flow model").
//!
//! Elaboration rules (see [`elaborate`](mod@elaborate)):
//!
//! * DFD channels are wired directly (instantaneous);
//! * every SSD channel gets a [`UnitDelay`](automode_kernel::ops::UnitDelay)
//!   — "each SSD-level channel introduces a message delay" (Sec. 3.1);
//! * MTDs become mode-interpreter blocks holding one sub-network per mode;
//!   transitions are evaluated on the current inputs first (immediate
//!   switching, matching If-Then-Else branch selection), then only the
//!   active mode's network steps — inactive modes stay frozen;
//! * STDs become state-machine interpreter blocks;
//! * unspecified behaviours (legal at FAA) elaborate to all-absent stubs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ccd_sim;
pub mod compiled;
pub mod elaborate;
pub mod error;
pub mod report;
pub mod simulate;
pub mod stimulus;

pub use automode_kernel::{
    ChannelContract, ContractMonitor, Corruptor, CoverageLayout, CoverageMap, CoverageSite,
    CoverageSpace, FaultKind, FaultSpec, FaultTarget, PresenceViolation, RobustnessReport,
};
pub use ccd_sim::elaborate_ccd;
pub use compiled::{BatchScenario, CompiledSim, SimStats};
pub use elaborate::elaborate;
pub use error::SimError;
pub use simulate::{simulate, simulate_component, SimRun};
pub use stimulus::{constant, drive_cycle, ramp, seeded_random, step, InputSpec};
