//! JSON encodings of simulation results and compile-time facts.
//!
//! The sweep service streams one JSON document per scenario back to the
//! caller; these encoders render the pieces — [`SimStats`]/
//! [`PlanInfo`](automode_kernel::PlanInfo) compile facts, per-run summary
//! metrics, [`RobustnessReport`]s, and the canonical trace text — through
//! the minimal writer in [`automode_core::json`]. Everything here is a
//! pure function of its input, so the service encodes results on worker
//! threads without touching shared state, and the loopback tests can
//! assert byte equality between a streamed result and a direct
//! [`CompiledSim`](crate::CompiledSim) run encoded the same way.

use automode_core::json::JsonWriter;
use automode_kernel::{PlanInfo, RobustnessReport};

use crate::compiled::SimStats;
use crate::simulate::SimRun;

/// Encodes a [`PlanInfo`] into `w` as one object value.
pub fn plan_info_to_json(w: &mut JsonWriter, plan: &PlanInfo) {
    w.begin_object();
    w.field("engine").string(&plan.kind.to_string());
    match plan.hyperperiod {
        Some(h) => w.field("hyperperiod").uint(h),
        None => w.field("hyperperiod").null(),
    };
    match &plan.wheel_rejection {
        Some(r) => w.field("wheel_rejection").string(&r.to_string()),
        None => w.field("wheel_rejection").null(),
    };
    w.end_object();
}

/// Encodes [`SimStats`] into `w` as one object value.
pub fn sim_stats_to_json(w: &mut JsonWriter, stats: &SimStats) {
    w.begin_object();
    w.field("nodes").uint(stats.nodes as u64);
    w.field("inputs").uint(stats.inputs as u64);
    w.field("plan");
    plan_info_to_json(w, &stats.plan);
    w.end_object();
}

/// Encodes a [`RobustnessReport`] into `w` as one object value.
pub fn robustness_to_json(w: &mut JsonWriter, report: &RobustnessReport) {
    w.begin_object();
    w.field("ticks").uint(report.ticks as u64);
    w.field("contracts_checked")
        .uint(report.contracts_checked as u64);
    w.field("clean").boolean(report.is_clean());
    match report.first_violation_tick() {
        Some(t) => w.field("first_violation_tick").uint(t),
        None => w.field("first_violation_tick").null(),
    };
    w.field("violations").begin_array();
    for v in &report.violations {
        w.begin_object();
        w.field("signal").string(&v.signal);
        w.field("tick").uint(v.tick);
        w.field("expected_present").boolean(v.expected_present);
        w.field("observed_present").boolean(v.observed_present);
        w.end_object();
    }
    w.end_array();
    w.field("missing_signals").begin_array();
    for s in &report.missing_signals {
        w.string(s);
    }
    w.end_array();
    w.end_object();
}

/// Encodes one run's summary metrics into `w` as one object value:
/// tick count plus, per signal, how many ticks carried a present message.
/// This is the cheap always-on part of a streamed scenario result; the
/// full trace rides along only when the sweep asks for it.
pub fn run_metrics_to_json(w: &mut JsonWriter, run: &SimRun) {
    w.begin_object();
    w.field("ticks").uint(run.ticks as u64);
    w.field("signals").begin_array();
    for name in run.trace.signal_names() {
        let stream = run.trace.signal(name).expect("named signal exists");
        w.begin_object();
        w.field("name").string(name);
        w.field("present").uint(stream.present_count() as u64);
        w.end_object();
    }
    w.end_array();
    w.end_object();
}

/// Encodes one full scenario result into `w` as one object value:
/// summary metrics, optionally the canonical trace text, optionally a
/// [`RobustnessReport`], optionally a VCD dump.
pub fn sim_run_to_json(
    w: &mut JsonWriter,
    run: &SimRun,
    trace: bool,
    robustness: Option<&RobustnessReport>,
    vcd: Option<&str>,
) {
    w.begin_object();
    w.field("metrics");
    run_metrics_to_json(w, run);
    if trace {
        w.field("trace").string(&run.trace.to_canonical_text());
    }
    if let Some(r) = robustness {
        w.field("robustness");
        robustness_to_json(w, r);
    }
    if let Some(v) = vcd {
        w.field("vcd").string(v);
    }
    w.end_object();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiled::CompiledSim;
    use crate::stimulus;
    use automode_core::model::{Behavior, Component, Model};
    use automode_core::types::DataType;
    use automode_kernel::FaultKind;
    use automode_lang::parse;

    fn sim() -> CompiledSim {
        let mut m = Model::new("t");
        let id = m
            .add_component(
                Component::new("Gain")
                    .input("u", DataType::Float)
                    .output("y", DataType::Float)
                    .with_behavior(Behavior::expr("y", parse("u * 2.0").unwrap())),
            )
            .unwrap();
        m.set_root(id);
        CompiledSim::new(&m, id).unwrap()
    }

    #[test]
    fn stats_and_plan_encode() {
        let sim = sim();
        let mut w = JsonWriter::new();
        sim_stats_to_json(&mut w, &sim.stats());
        let text = w.finish();
        assert!(text.contains("\"nodes\":"), "{text}");
        assert!(text.contains("\"engine\":"), "{text}");
        assert!(text.contains("\"wheel_rejection\":\""), "{text}");
    }

    #[test]
    fn run_encoding_is_deterministic_and_complete() {
        let mut sim = sim();
        let u = stimulus::seeded_random(-1.0, 1.0, 8, 3);
        let run = sim.run(&[("u", u.clone())], 8).unwrap();
        let encode = |run: &SimRun| {
            let mut w = JsonWriter::new();
            sim_run_to_json(&mut w, run, true, None, None);
            w.finish()
        };
        let a = encode(&run);
        assert!(a.contains("\"metrics\":"), "{a}");
        assert!(a.contains("\"trace\":\"automode-trace v1"), "{a}");
        // Byte-identical across repeated runs of the same scenario — the
        // property the service loopback test leans on.
        let again = sim.run(&[("u", u)], 8).unwrap();
        assert_eq!(a, encode(&again));
    }

    #[test]
    fn robustness_report_encodes_violations() {
        let mut sim = sim();
        let monitor = sim
            .monitor()
            .expect_exact("y", automode_kernel::Clock::Base);
        sim.set_faults(&[("y", FaultKind::drop_every(2, 1))])
            .unwrap();
        let u = stimulus::constant(automode_kernel::Value::Float(1.0), 6);
        let (run, report) = sim.run_monitored(&[("u", u)], 6, &monitor).unwrap();
        let mut w = JsonWriter::new();
        sim_run_to_json(&mut w, &run, false, Some(&report), None);
        let text = w.finish();
        assert!(text.contains("\"clean\":false"), "{text}");
        assert!(text.contains("\"first_violation_tick\":1"), "{text}");
        assert!(!text.contains("\"trace\""), "{text}");
    }
}
