//! A reusable compiled simulation handle.
//!
//! Every [`simulate_component`](crate::simulate_component) call elaborates
//! the model, runs the causality check, and compiles the execution plan —
//! then throws all three away. The paper's methodology leans on *repeated*
//! simulation of one model against many stimuli (drive-cycle sweeps,
//! flag-space sampling, differential test suites), so [`CompiledSim`] does
//! that work exactly once and amortizes it across every subsequent
//! [`CompiledSim::run`] / [`CompiledSim::run_batch`] call — the same shape
//! as batched inference amortizing weights across a request batch.

use std::collections::HashMap;

use std::fmt;
use std::sync::Arc;

use automode_core::model::{ComponentId, Model};
use automode_kernel::network::rows_padded_with_absence;
use automode_kernel::{
    ContractMonitor, CoverageLayout, CoverageMap, FaultKind, FaultSpec, PlanInfo, RobustnessReport,
    Stream,
};

use crate::elaborate::elaborate;
use crate::error::SimError;
use crate::simulate::SimRun;

/// One lane of a batched simulation: named input streams plus a tick count,
/// optionally with lane-local fault injection.
///
/// Streams shorter than `ticks` are padded with absence, exactly like
/// [`simulate_component`](crate::simulate_component).
#[derive(Debug, Clone)]
pub struct BatchScenario<'a> {
    /// Named input streams driving this lane.
    pub inputs: &'a [(&'a str, Stream)],
    /// Number of ticks to execute for this lane.
    pub ticks: usize,
    /// Faults injected in this lane only, on top of any faults installed on
    /// the [`CompiledSim`] itself. Each entry names an input port or an
    /// output signal of the compiled component (resolution as in
    /// [`CompiledSim::set_faults`]).
    pub faults: Vec<(String, FaultKind)>,
}

impl<'a> BatchScenario<'a> {
    /// A nominal (fault-free) scenario.
    pub fn new(inputs: &'a [(&'a str, Stream)], ticks: usize) -> Self {
        BatchScenario {
            inputs,
            ticks,
            faults: Vec::new(),
        }
    }

    /// Adds a lane-local fault on a named input or output signal.
    /// Builder-style.
    pub fn with_fault(mut self, signal: impl Into<String>, kind: FaultKind) -> Self {
        self.faults.push((signal.into(), kind));
        self
    }
}

/// Compile-time facts about a [`CompiledSim`]: sizes plus how the kernel
/// will execute its ticks ([`PlanInfo`] — engine backend, wheel
/// hyperperiod, and the rejection reason when no wheel was compiled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimStats {
    /// Number of compiled kernel nodes.
    pub nodes: usize,
    /// Number of declared input ports.
    pub inputs: usize,
    /// The compiled clock-engine plan.
    pub plan: PlanInfo,
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} node(s), {} input(s), {}",
            self.nodes, self.inputs, self.plan
        )
    }
}

/// A component compiled for repeated simulation.
///
/// [`CompiledSim::new`] elaborates the component, runs the causality check,
/// and compiles the plan exactly once. [`CompiledSim::run`] then replays
/// scenarios from the initial state with none of that per-call cost, and
/// [`CompiledSim::run_batch`] runs many scenarios per schedule pass through
/// the kernel's lane-major batch executor
/// ([`ReadyNetwork::run_batch`](automode_kernel::ReadyNetwork::run_batch)).
#[derive(Debug, Clone)]
pub struct CompiledSim {
    ready: automode_kernel::ReadyNetwork,
    /// Declared input names, in port order.
    input_names: Vec<String>,
    /// Input name -> port index; the single-pass stimulus validator.
    input_index: HashMap<String, usize>,
}

// The sweep service shares one compiled handle across a work-stealing
// worker pool (`run_batch` takes `&self`), so `CompiledSim` must stay
// `Send + Sync`; this fails to compile the moment a block or plan grows a
// thread-bound member.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CompiledSim>();
};

impl CompiledSim {
    /// Elaborates and compiles `component` for repeated simulation.
    ///
    /// # Errors
    ///
    /// Fails on elaboration or causality errors.
    pub fn new(model: &Model, component: ComponentId) -> Result<CompiledSim, SimError> {
        let comp = model.component(component);
        let input_names: Vec<String> = comp.inputs().map(|p| p.name.clone()).collect();
        let input_index = input_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();
        let ready = elaborate(model, component)?.prepare()?;
        Ok(CompiledSim {
            ready,
            input_names,
            input_index,
        })
    }

    /// Compiles the model's root component.
    ///
    /// # Errors
    ///
    /// Fails if no root is set, plus the conditions of [`CompiledSim::new`].
    pub fn new_root(model: &Model) -> Result<CompiledSim, SimError> {
        let root = model
            .root()
            .ok_or_else(|| SimError::Unsupported("model has no root component".to_string()))?;
        CompiledSim::new(model, root)
    }

    /// The compiled component's input port names, in port order.
    pub fn input_names(&self) -> impl Iterator<Item = &str> {
        self.input_names.iter().map(String::as_str)
    }

    /// Enables lane/level-parallel stepping (see
    /// [`ReadyNetwork::enable_parallel`](automode_kernel::ReadyNetwork::enable_parallel)).
    pub fn enable_parallel(&mut self, min_width: usize) {
        self.ready.enable_parallel(min_width);
    }

    /// Restores sequential stepping.
    pub fn disable_parallel(&mut self) {
        self.ready.disable_parallel();
    }

    /// Disables clock-gated scheduling, falling back to the full per-tick
    /// schedule (see
    /// [`ReadyNetwork::disable_clock_gating`](automode_kernel::ReadyNetwork::disable_clock_gating)).
    /// Useful for differential testing and perf comparisons.
    pub fn disable_clock_gating(&mut self) {
        self.ready.disable_clock_gating();
    }

    /// Toggles the typed-column vectorized batch path (see
    /// [`ReadyNetwork::set_batch_vectorization`](automode_kernel::ReadyNetwork::set_batch_vectorization)).
    /// On by default; turning it off forces the per-lane `Message` path —
    /// the traces are bit-identical either way, so this only matters for
    /// differential testing and perf comparisons.
    pub fn set_batch_vectorization(&mut self, on: bool) {
        self.ready.set_batch_vectorization(on);
    }

    /// The hyperperiod of the compiled clock-gated plan, if one applies
    /// (see
    /// [`ReadyNetwork::gated_hyperperiod`](automode_kernel::ReadyNetwork::gated_hyperperiod)).
    pub fn gated_hyperperiod(&self) -> Option<u64> {
        self.ready.gated_hyperperiod()
    }

    /// How the kernel will execute this component's ticks (see
    /// [`ReadyNetwork::plan_info`](automode_kernel::ReadyNetwork::plan_info)):
    /// the engine backend, the wheel hyperperiod when one was compiled, and
    /// the rejection reason when one wasn't.
    pub fn plan_info(&self) -> PlanInfo {
        self.ready.plan_info()
    }

    /// Compile-time sizes and plan facts, for logs and perf triage.
    pub fn stats(&self) -> SimStats {
        SimStats {
            nodes: self.ready.node_count(),
            inputs: self.input_names.len(),
            plan: self.ready.plan_info(),
        }
    }

    /// Overrides the parallel worker count (see
    /// [`ReadyNetwork::set_parallel_workers`](automode_kernel::ReadyNetwork::set_parallel_workers)).
    pub fn set_parallel_workers(&mut self, workers: Option<usize>) {
        self.ready.set_parallel_workers(workers);
    }

    /// Resets the compiled network to its initial state.
    ///
    /// [`CompiledSim::run`] already starts every run from the initial state;
    /// this only matters after direct incremental stepping through
    /// [`CompiledSim::ready_mut`].
    pub fn reset(&mut self) {
        self.ready.reset();
    }

    /// The underlying compiled network, for incremental stepping.
    pub fn ready_mut(&mut self) -> &mut automode_kernel::ReadyNetwork {
        &mut self.ready
    }

    /// Resolves a user-facing signal name to a kernel fault spec.
    ///
    /// Names matching an input port fault that port's stimulus as delivered;
    /// any other name is resolved by the kernel against the component's
    /// observed output signals, so typos surface as
    /// [`KernelError::UnknownFaultTarget`](automode_kernel::KernelError::UnknownFaultTarget).
    fn fault_spec(&self, name: &str, kind: FaultKind) -> FaultSpec {
        match self.input_index.get(name) {
            Some(&i) => FaultSpec::on_input(i, kind),
            None => FaultSpec::on_signal(name, kind),
        }
    }

    /// Installs a deterministic fault plan on the compiled network.
    ///
    /// Each entry names either an input port (the fault intercepts that
    /// port's stimulus) or an output signal of the component (the fault
    /// intercepts the channel feeding that signal's probe, so every
    /// downstream reader inside the network observes the faulted stream).
    /// The plan stays installed across [`CompiledSim::run`] calls and seeds
    /// every lane of [`CompiledSim::run_batch`]; per-lane fault state is
    /// reset at the start of every run.
    ///
    /// # Errors
    ///
    /// Fails if a name resolves to neither an input nor an observed signal,
    /// or if a fault kind is malformed (e.g. `Drop { every: 0, .. }`).
    pub fn set_faults(&mut self, faults: &[(&str, FaultKind)]) -> Result<(), SimError> {
        let specs: Vec<FaultSpec> = faults
            .iter()
            .map(|(name, kind)| self.fault_spec(name, kind.clone()))
            .collect();
        self.ready.set_faults(&specs)?;
        Ok(())
    }

    /// Builder form of [`CompiledSim::set_faults`].
    ///
    /// # Errors
    ///
    /// As [`CompiledSim::set_faults`].
    pub fn with_faults(mut self, faults: &[(&str, FaultKind)]) -> Result<CompiledSim, SimError> {
        self.set_faults(faults)?;
        Ok(self)
    }

    /// Removes any installed fault plan, restoring nominal behavior.
    pub fn clear_faults(&mut self) {
        self.ready.clear_faults();
    }

    /// Presence contracts inferred from the compiled network's declared
    /// clocks, ready for [`ContractMonitor::check`] /
    /// [`CompiledSim::run_monitored`].
    pub fn monitor(&self) -> ContractMonitor {
        self.ready.inferred_contracts()
    }

    /// Runs one scenario and checks the resulting trace against `monitor`,
    /// returning both the run and its [`RobustnessReport`].
    ///
    /// # Errors
    ///
    /// Fails on stimulus naming errors or execution errors.
    pub fn run_monitored(
        &mut self,
        inputs: &[(&str, Stream)],
        ticks: usize,
        monitor: &ContractMonitor,
    ) -> Result<(SimRun, RobustnessReport), SimError> {
        let run = self.run(inputs, ticks)?;
        let report = monitor.check(&run.trace);
        Ok((run, report))
    }

    /// Resolves named streams to port order in one pass over `inputs`.
    ///
    /// Rejects names matching no input port ([`SimError::UnknownInput`]),
    /// names driven twice ([`SimError::DuplicateInput`]), and undriven ports
    /// ([`SimError::MissingInput`]).
    fn ordered<'a>(&self, inputs: &'a [(&str, Stream)]) -> Result<Vec<&'a Stream>, SimError> {
        let mut by_port: Vec<Option<&'a Stream>> = vec![None; self.input_names.len()];
        for (name, stream) in inputs {
            let i = *self
                .input_index
                .get(*name)
                .ok_or_else(|| SimError::UnknownInput((*name).to_string()))?;
            if by_port[i].is_some() {
                return Err(SimError::DuplicateInput((*name).to_string()));
            }
            by_port[i] = Some(stream);
        }
        by_port
            .iter()
            .zip(&self.input_names)
            .map(|(s, n)| s.ok_or_else(|| SimError::MissingInput(n.clone())))
            .collect()
    }

    /// Attaches the `in:` echo streams recorded by every simulator run.
    fn echo_inputs(trace: &mut automode_kernel::Trace, inputs: &[(&str, Stream)], ticks: usize) {
        for (name, stream) in inputs {
            trace.insert(format!("in:{name}"), stream.clipped(ticks));
        }
    }

    /// Runs one scenario from the initial state.
    ///
    /// Semantically identical to
    /// [`simulate_component`](crate::simulate_component) on the same
    /// component, without the per-call elaboration and causality cost.
    ///
    /// # Errors
    ///
    /// Fails on stimulus naming errors or execution errors.
    pub fn run(&mut self, inputs: &[(&str, Stream)], ticks: usize) -> Result<SimRun, SimError> {
        let ordered = self.ordered(inputs)?;
        let stim = rows_padded_with_absence(&ordered, ticks);
        self.ready.reset();
        let mut trace = self.ready.run(&stim)?;
        Self::echo_inputs(&mut trace, inputs, ticks);
        Ok(SimRun { trace, ticks })
    }

    /// Runs every scenario as one lane of a batched execution, returning one
    /// [`SimRun`] per scenario — trace-identical to calling
    /// [`CompiledSim::run`] per scenario, but stepping all lanes in one pass
    /// over the compiled plan.
    ///
    /// Lane state is replicated internally, so this takes `&self` and leaves
    /// any incremental stepping state untouched.
    ///
    /// # Errors
    ///
    /// Fails on stimulus naming errors or execution errors.
    pub fn run_batch(&self, scenarios: &[BatchScenario<'_>]) -> Result<Vec<SimRun>, SimError> {
        let mut stimuli = Vec::with_capacity(scenarios.len());
        for sc in scenarios {
            let ordered = self.ordered(sc.inputs)?;
            stimuli.push(rows_padded_with_absence(&ordered, sc.ticks));
        }
        let traces = if scenarios.iter().any(|sc| !sc.faults.is_empty()) {
            let lane_faults: Vec<Vec<FaultSpec>> = scenarios
                .iter()
                .map(|sc| {
                    sc.faults
                        .iter()
                        .map(|(name, kind)| self.fault_spec(name, kind.clone()))
                        .collect()
                })
                .collect();
            self.ready.run_batch_with_faults(&stimuli, &lane_faults)?
        } else {
            self.ready.run_batch(&stimuli)?
        };
        Ok(traces
            .into_iter()
            .zip(scenarios)
            .map(|(mut trace, sc)| {
                Self::echo_inputs(&mut trace, sc.inputs, sc.ticks);
                SimRun {
                    trace,
                    ticks: sc.ticks,
                }
            })
            .collect())
    }

    /// The discrete-state coverage layout of the compiled model: one site
    /// per MTD (modes and declared mode transitions) and STD (states and
    /// declared transitions) block, shared by every coverage map this
    /// handle produces.
    pub fn coverage_layout(&self) -> Arc<CoverageLayout> {
        Arc::new(self.ready.coverage_layout())
    }

    /// [`CompiledSim::run`] that also accumulates mode/state coverage.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CompiledSim::run`].
    pub fn run_covered(
        &mut self,
        inputs: &[(&str, Stream)],
        ticks: usize,
    ) -> Result<(SimRun, CoverageMap), SimError> {
        let ordered = self.ordered(inputs)?;
        let stim = rows_padded_with_absence(&ordered, ticks);
        self.ready.reset();
        let mut coverage = CoverageMap::new(self.coverage_layout());
        let mut trace = self.ready.run_covered(&stim, &mut coverage)?;
        Self::echo_inputs(&mut trace, inputs, ticks);
        Ok((SimRun { trace, ticks }, coverage))
    }

    /// [`CompiledSim::run_batch`] that also accumulates one coverage map
    /// per lane (all sharing one layout `Arc`), each identical to what
    /// [`CompiledSim::run_covered`] would collect for that scenario alone.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CompiledSim::run_batch`].
    pub fn run_batch_covered(
        &self,
        scenarios: &[BatchScenario<'_>],
    ) -> Result<(Vec<SimRun>, Vec<CoverageMap>), SimError> {
        let mut stimuli = Vec::with_capacity(scenarios.len());
        for sc in scenarios {
            let ordered = self.ordered(sc.inputs)?;
            stimuli.push(rows_padded_with_absence(&ordered, sc.ticks));
        }
        let layout = self.coverage_layout();
        let mut coverage: Vec<CoverageMap> = (0..scenarios.len())
            .map(|_| CoverageMap::new(layout.clone()))
            .collect();
        let lane_faults: Vec<Vec<FaultSpec>> = if scenarios.iter().any(|sc| !sc.faults.is_empty()) {
            scenarios
                .iter()
                .map(|sc| {
                    sc.faults
                        .iter()
                        .map(|(name, kind)| self.fault_spec(name, kind.clone()))
                        .collect()
                })
                .collect()
        } else {
            Vec::new()
        };
        let traces = self
            .ready
            .run_batch_covered(&stimuli, &lane_faults, &mut coverage)?;
        let runs = traces
            .into_iter()
            .zip(scenarios)
            .map(|(mut trace, sc)| {
                Self::echo_inputs(&mut trace, sc.inputs, sc.ticks);
                SimRun {
                    trace,
                    ticks: sc.ticks,
                }
            })
            .collect();
        Ok((runs, coverage))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::simulate_component;
    use crate::stimulus;
    use automode_core::model::{Behavior, Component};
    use automode_core::types::DataType;
    use automode_kernel::{Corruptor, Value};
    use automode_lang::parse;

    fn gain_model() -> (Model, ComponentId) {
        let mut m = Model::new("t");
        let id = m
            .add_component(
                Component::new("Gain")
                    .input("u", DataType::Float)
                    .output("y", DataType::Float)
                    .with_behavior(Behavior::expr("y", parse("u * 3.0").unwrap())),
            )
            .unwrap();
        m.set_root(id);
        (m, id)
    }

    #[test]
    fn reused_handle_matches_fresh_simulation() {
        let (m, id) = gain_model();
        let mut sim = CompiledSim::new(&m, id).unwrap();
        for seed in 0..4u64 {
            let s = stimulus::seeded_random(-1.0, 1.0, 16, seed);
            let reused = sim.run(&[("u", s.clone())], 16).unwrap();
            let fresh = simulate_component(&m, id, &[("u", s)], 16).unwrap();
            assert_eq!(reused, fresh, "seed {seed}");
        }
    }

    #[test]
    fn run_batch_matches_per_scenario_runs() {
        let (m, id) = gain_model();
        let mut sim = CompiledSim::new(&m, id).unwrap();
        let streams: Vec<Stream> = (0..5u64)
            .map(|seed| stimulus::seeded_random(-2.0, 2.0, 12, seed))
            .collect();
        let inputs: Vec<[(&str, Stream); 1]> = streams.iter().map(|s| [("u", s.clone())]).collect();
        let scenarios: Vec<BatchScenario<'_>> = inputs
            .iter()
            .enumerate()
            .map(|(i, inp)| BatchScenario::new(inp.as_slice(), 8 + i)) // heterogeneous lengths
            .collect();
        let batch = sim.run_batch(&scenarios).unwrap();
        for (i, sc) in scenarios.iter().enumerate() {
            let single = sim.run(sc.inputs, sc.ticks).unwrap();
            assert_eq!(batch[i], single, "lane {i}");
        }
    }

    #[test]
    fn stats_report_sizes_and_plan() {
        let (m, id) = gain_model();
        let sim = CompiledSim::new(&m, id).unwrap();
        let stats = sim.stats();
        assert!(stats.nodes >= 1);
        assert_eq!(stats.inputs, 1);
        // A purely combinational component has no declared clocks, so the
        // engine is dense and the rejection says why.
        assert_eq!(stats.plan.kind, automode_kernel::EngineKind::Dense);
        assert!(stats.plan.wheel_rejection.is_some());
        assert_eq!(stats.plan, sim.plan_info());
        let text = stats.to_string();
        assert!(text.contains("node") && text.contains("input"), "{text}");
    }

    #[test]
    fn unknown_stimulus_name_is_rejected() {
        let (m, id) = gain_model();
        let mut sim = CompiledSim::new(&m, id).unwrap();
        let err = sim
            .run(
                &[
                    ("u", stimulus::constant(Value::Float(1.0), 2)),
                    ("typo", stimulus::constant(Value::Float(1.0), 2)),
                ],
                2,
            )
            .unwrap_err();
        assert!(matches!(err, SimError::UnknownInput(n) if n == "typo"));
    }

    #[test]
    fn duplicate_stimulus_name_is_rejected() {
        let (m, id) = gain_model();
        let mut sim = CompiledSim::new(&m, id).unwrap();
        let err = sim
            .run(
                &[
                    ("u", stimulus::constant(Value::Float(1.0), 2)),
                    ("u", stimulus::constant(Value::Float(2.0), 2)),
                ],
                2,
            )
            .unwrap_err();
        assert!(matches!(err, SimError::DuplicateInput(n) if n == "u"));
    }

    #[test]
    fn new_root_requires_a_root() {
        let m = Model::new("empty");
        assert!(matches!(
            CompiledSim::new_root(&m),
            Err(SimError::Unsupported(_))
        ));
    }

    #[test]
    fn installed_faults_alter_output_and_clear_restores_nominal() {
        let (m, id) = gain_model();
        let mut sim = CompiledSim::new(&m, id).unwrap();
        let u = stimulus::seeded_random(-1.0, 1.0, 8, 7);
        let nominal = sim.run(&[("u", u.clone())], 8).unwrap();

        // Dropping every other delivery of the output signal `y`.
        sim.set_faults(&[("y", FaultKind::drop_every(2, 1))])
            .unwrap();
        let faulted = sim.run(&[("u", u.clone())], 8).unwrap();
        let y = faulted.trace.signal("y").unwrap();
        for t in 0..8 {
            assert_eq!(y[t].is_absent(), t % 2 == 1, "tick {t}");
        }
        assert_ne!(faulted, nominal);

        sim.clear_faults();
        assert_eq!(sim.run(&[("u", u)], 8).unwrap(), nominal);
    }

    #[test]
    fn input_faults_intercept_the_delivered_stimulus() {
        let (m, id) = gain_model();
        let mut sim = CompiledSim::new(&m, id)
            .unwrap()
            .with_faults(&[("u", FaultKind::StuckAt(Value::Float(2.0)))])
            .unwrap();
        let u = stimulus::seeded_random(-1.0, 1.0, 6, 3);
        let run = sim.run(&[("u", u)], 6).unwrap();
        let y = run.trace.signal("y").unwrap();
        for t in 0..6 {
            assert_eq!(y[t].value(), Some(&Value::Float(6.0)), "tick {t}");
        }
    }

    #[test]
    fn unknown_fault_target_is_rejected() {
        let (m, id) = gain_model();
        let mut sim = CompiledSim::new(&m, id).unwrap();
        let err = sim
            .set_faults(&[("ghost", FaultKind::Delay(1))])
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::Kernel(automode_kernel::KernelError::UnknownFaultTarget { .. })
        ));
    }

    #[test]
    fn batch_scenario_faults_match_sequential_faulted_runs() {
        let (m, id) = gain_model();
        let mut sim = CompiledSim::new(&m, id).unwrap();
        let streams: Vec<Stream> = (0..6u64)
            .map(|seed| stimulus::seeded_random(-2.0, 2.0, 10, seed))
            .collect();
        let inputs: Vec<[(&str, Stream); 1]> = streams.iter().map(|s| [("u", s.clone())]).collect();
        let kinds: Vec<Option<FaultKind>> = vec![
            None,
            Some(FaultKind::drop_every(3, 0)),
            Some(FaultKind::Delay(2)),
            Some(FaultKind::StuckAt(Value::Float(0.5))),
            Some(FaultKind::Jitter {
                seed: 11,
                hold: 0.4,
            }),
            Some(FaultKind::Corrupt(Corruptor::scale(-1.0))),
        ];
        let scenarios: Vec<BatchScenario<'_>> = inputs
            .iter()
            .zip(&kinds)
            .enumerate()
            .map(|(i, (inp, kind))| {
                let sc = BatchScenario::new(inp.as_slice(), 7 + i);
                match kind {
                    Some(k) => sc.with_fault("y", k.clone()),
                    None => sc,
                }
            })
            .collect();
        let batch = sim.run_batch(&scenarios).unwrap();
        for (i, (sc, kind)) in scenarios.iter().zip(&kinds).enumerate() {
            match kind {
                Some(k) => sim.set_faults(&[("y", k.clone())]).unwrap(),
                None => sim.clear_faults(),
            }
            let single = sim.run(sc.inputs, sc.ticks).unwrap();
            assert_eq!(batch[i], single, "lane {i}");
        }
        sim.clear_faults();
    }

    #[test]
    fn run_monitored_reports_the_first_violation_tick() {
        let (m, id) = gain_model();
        let mut sim = CompiledSim::new(&m, id).unwrap();
        // `y` is combinational on the base clock; state that as a contract.
        let monitor = sim
            .monitor()
            .expect_exact("y", automode_kernel::Clock::Base);
        let u = stimulus::constant(Value::Float(1.0), 6);
        let (_, clean) = sim.run_monitored(&[("u", u.clone())], 6, &monitor).unwrap();
        assert!(clean.is_clean());

        sim.set_faults(&[("y", FaultKind::drop_every(4, 2))])
            .unwrap();
        let (_, report) = sim.run_monitored(&[("u", u)], 6, &monitor).unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.first_violation_tick(), Some(2));
    }
}
