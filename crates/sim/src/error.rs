//! Errors of the simulator.

use std::error::Error;
use std::fmt;

use automode_core::CoreError;
use automode_kernel::KernelError;
use automode_lang::LangError;

/// Errors raised while elaborating or simulating a model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A meta-model error surfaced during elaboration.
    Core(CoreError),
    /// A kernel error (causality, execution, wiring).
    Kernel(KernelError),
    /// A base-language error in a behaviour expression.
    Lang(LangError),
    /// The stimulus did not cover a declared input.
    MissingInput(String),
    /// The stimulus drives a name that matches no declared input — almost
    /// always a typo that would otherwise silently hide a wiring bug.
    UnknownInput(String),
    /// The stimulus drives the same input twice.
    DuplicateInput(String),
    /// Elaboration hit an unsupported construct.
    Unsupported(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Core(e) => write!(f, "{e}"),
            SimError::Kernel(e) => write!(f, "{e}"),
            SimError::Lang(e) => write!(f, "{e}"),
            SimError::MissingInput(n) => write!(f, "stimulus does not drive input `{n}`"),
            SimError::UnknownInput(n) => {
                write!(f, "stimulus drives `{n}`, which matches no input port")
            }
            SimError::DuplicateInput(n) => write!(f, "stimulus drives input `{n}` more than once"),
            SimError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Core(e) => Some(e),
            SimError::Kernel(e) => Some(e),
            SimError::Lang(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for SimError {
    fn from(e: CoreError) -> Self {
        SimError::Core(e)
    }
}

impl From<KernelError> for SimError {
    fn from(e: KernelError) -> Self {
        SimError::Kernel(e)
    }
}

impl From<LangError> for SimError {
    fn from(e: LangError) -> Self {
        SimError::Lang(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: SimError = KernelError::Overflow("x").into();
        assert!(e.to_string().contains("overflow"));
        assert!(Error::source(&e).is_some());
        let e: SimError = CoreError::DuplicateName("a".into()).into();
        assert!(e.to_string().contains("duplicate"));
        let e: SimError = LangError::Unbound("q".into()).into();
        assert!(e.to_string().contains("unbound"));
    }
}
