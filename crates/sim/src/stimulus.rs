//! Stimulus generators for model simulation.
//!
//! FAA-level validation simulates "prototypical behavioral descriptions"
//! against representative inputs. The generators here produce the input
//! [`Stream`]s used by the examples, tests, and benches — including the
//! synthetic drive cycles that exercise the engine case study.

use automode_kernel::{Clock, Message, Stream, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A named input stream.
pub type InputSpec = (String, Stream);

/// A constant present value for `len` ticks.
pub fn constant(v: impl Into<Value>, len: usize) -> Stream {
    let v = v.into();
    (0..len).map(|_| Message::Present(v.clone())).collect()
}

/// A float ramp `from` → `to` over `len` ticks.
pub fn ramp(from: f64, to: f64, len: usize) -> Stream {
    (0..len)
        .map(|t| {
            let frac = if len <= 1 {
                0.0
            } else {
                t as f64 / (len - 1) as f64
            };
            Message::present(Value::Float(from + (to - from) * frac))
        })
        .collect()
}

/// A step: `before` until tick `at`, then `after`.
pub fn step(before: impl Into<Value>, after: impl Into<Value>, at: usize, len: usize) -> Stream {
    let (b, a) = (before.into(), after.into());
    (0..len)
        .map(|t| Message::Present(if t < at { b.clone() } else { a.clone() }))
        .collect()
}

/// Uniform random floats in `[lo, hi]` from a seeded RNG (reproducible).
pub fn seeded_random(lo: f64, hi: f64, len: usize, seed: u64) -> Stream {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| Message::present(Value::Float(rng.gen_range(lo..=hi))))
        .collect()
}

/// Random booleans with probability `p` of `true`.
pub fn seeded_random_bool(p: f64, len: usize, seed: u64) -> Stream {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| Message::present(Value::Bool(rng.gen_bool(p))))
        .collect()
}

/// A sporadic (event-triggered) stream: present with probability `p`,
/// carrying consecutive integers.
pub fn sporadic(p: f64, len: usize, seed: u64) -> Stream {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut n = 0i64;
    (0..len)
        .map(|_| {
            if rng.gen_bool(p) {
                n += 1;
                Message::present(Value::Int(n))
            } else {
                Message::Absent
            }
        })
        .collect()
}

/// A stream present only on `clock`, carrying values from `f`.
pub fn clocked(clock: &Clock, len: usize, f: impl FnMut(u64) -> Value) -> Stream {
    Stream::on_clock(clock, len, f)
}

/// One phase of a drive cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DrivePhase {
    /// Duration in ticks.
    pub ticks: usize,
    /// Engine speed at the end of the phase (linearly interpolated).
    pub rpm: f64,
    /// Throttle position at the end of the phase (0..1).
    pub throttle: f64,
}

/// A synthetic drive cycle: returns `(rpm, throttle)` streams through the
/// listed phases, starting from `(0, 0)`. Used by the engine case study:
/// key-on, cranking, idle, acceleration, cruise, overrun, stop.
pub fn drive_cycle(phases: &[DrivePhase]) -> (Stream, Stream) {
    let mut rpm = Stream::new();
    let mut throttle = Stream::new();
    let (mut cur_rpm, mut cur_thr) = (0.0f64, 0.0f64);
    for phase in phases {
        for t in 0..phase.ticks {
            let frac = (t + 1) as f64 / phase.ticks as f64;
            let r = cur_rpm + (phase.rpm - cur_rpm) * frac;
            let th = cur_thr + (phase.throttle - cur_thr) * frac;
            rpm.push(Message::present(Value::Float(r)));
            throttle.push(Message::present(Value::Float(th)));
        }
        cur_rpm = phase.rpm;
        cur_thr = phase.throttle;
    }
    (rpm, throttle)
}

/// The standard test cycle used across the engine experiments: start,
/// cranking, idle, part load, full load, overrun, back to idle, stop.
pub fn standard_engine_cycle() -> (Stream, Stream) {
    drive_cycle(&[
        DrivePhase {
            ticks: 10,
            rpm: 250.0,
            throttle: 0.0,
        }, // cranking
        DrivePhase {
            ticks: 20,
            rpm: 800.0,
            throttle: 0.05,
        }, // idle
        DrivePhase {
            ticks: 30,
            rpm: 3000.0,
            throttle: 0.5,
        }, // part load
        DrivePhase {
            ticks: 20,
            rpm: 5500.0,
            throttle: 0.95,
        }, // full load
        DrivePhase {
            ticks: 20,
            rpm: 2000.0,
            throttle: 0.0,
        }, // overrun
        DrivePhase {
            ticks: 20,
            rpm: 800.0,
            throttle: 0.05,
        }, // idle
        DrivePhase {
            ticks: 10,
            rpm: 0.0,
            throttle: 0.0,
        }, // stop
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_and_step() {
        let c = constant(5i64, 3);
        assert_eq!(c.present_values(), vec![Value::Int(5); 3]);
        let s = step(false, true, 2, 4);
        assert_eq!(
            s.present_values(),
            vec![
                Value::Bool(false),
                Value::Bool(false),
                Value::Bool(true),
                Value::Bool(true)
            ]
        );
    }

    #[test]
    fn ramp_endpoints() {
        let r = ramp(0.0, 10.0, 11);
        assert_eq!(r[0], Message::present(Value::Float(0.0)));
        assert_eq!(r[10], Message::present(Value::Float(10.0)));
        let single = ramp(3.0, 9.0, 1);
        assert_eq!(single[0], Message::present(Value::Float(3.0)));
    }

    #[test]
    fn seeded_random_is_reproducible_and_bounded() {
        let a = seeded_random(-1.0, 1.0, 100, 7);
        let b = seeded_random(-1.0, 1.0, 100, 7);
        assert_eq!(a, b);
        let c = seeded_random(-1.0, 1.0, 100, 8);
        assert_ne!(a, c);
        for m in &a {
            let x = m.value().unwrap().as_float().unwrap();
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn sporadic_has_absences_and_ordered_values() {
        let s = sporadic(0.3, 200, 9);
        assert!(s.present_count() > 0);
        assert!(s.present_count() < 200);
        let vals: Vec<i64> = s
            .present_values()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        for w in vals.windows(2) {
            assert_eq!(w[1], w[0] + 1);
        }
    }

    #[test]
    fn drive_cycle_interpolates() {
        let (rpm, thr) = drive_cycle(&[DrivePhase {
            ticks: 4,
            rpm: 400.0,
            throttle: 1.0,
        }]);
        assert_eq!(rpm.len(), 4);
        assert_eq!(rpm[3], Message::present(Value::Float(400.0)));
        assert_eq!(thr[0], Message::present(Value::Float(0.25)));
    }

    #[test]
    fn standard_cycle_covers_all_phases() {
        let (rpm, thr) = standard_engine_cycle();
        assert_eq!(rpm.len(), 130);
        assert_eq!(thr.len(), 130);
        let max_rpm = rpm
            .present_values()
            .iter()
            .map(|v| v.as_float().unwrap())
            .fold(0.0f64, f64::max);
        assert!(max_rpm >= 5000.0);
    }

    #[test]
    fn clocked_respects_clock() {
        let s = clocked(&Clock::every(3, 0), 9, |t| Value::Int(t as i64));
        assert_eq!(s.present_count(), 3);
        assert!(s.conforms_to_clock(&Clock::every(3, 0)));
    }
}
