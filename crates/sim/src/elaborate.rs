//! Elaboration: meta-model → executable kernel network.
//!
//! ## Stable block naming — the internal fault-injection surface
//!
//! Every block created during elaboration carries a deterministic name
//! derived from the component instance path, so tools (in particular
//! [`FaultTarget::Block`](automode_kernel::FaultTarget::Block)) can address
//! *internal* channels of an elaborated model without knowing arena indices:
//!
//! * `in:{path}.{port}` — the pass-through block fanning out input `port`
//!   of the instance at `path`; faulting its output port 0 intercepts
//!   everything that instance reads on that port.
//! * `{path}.{output}` — the expression block defining output `output` of a
//!   `Behavior::Expr` component.
//! * `stub:{path}.{port}` — the all-absent stub standing in for an
//!   unspecified output (legal at FAA).
//! * `mtd:{path}` / `std:{path}` — mode- and state-machine interpreter
//!   blocks.
//!
//! Composite instance paths join with `/` (`Root/child/grandchild`), so the
//! names are unique per instance; primitive blocks (`Delay`, `When`, ...)
//! keep their generic operator names and should be addressed through the
//! `in:` boundary of their owning instance instead.

use std::collections::BTreeMap;

use automode_core::model::{Behavior, ComponentId, CompositeKind, Model, Primitive};
use automode_core::CoreError;
use automode_kernel::network::{Network, PortRef};
use automode_kernel::ops::{self, Block, PureFn};
use automode_kernel::{Clock, KernelError, Message, Tick, Value};
use automode_lang::{Env, ExprBlock, Program, Scratch};

use crate::error::SimError;

/// The wiring interface of one elaborated component instance.
#[derive(Debug, Clone)]
struct Iface {
    /// Where to connect each input port's source.
    inputs: BTreeMap<String, PortRef>,
    /// Where each output port's value is produced.
    outputs: BTreeMap<String, PortRef>,
}

// Port-boundary wires use `ops::Identity` rather than an opaque closure:
// `Identity` declares `ClockBehavior::Passthrough`, so static clock
// information survives component boundaries and downstream nodes stay
// eligible for clock-gated scheduling.

fn absent_stub(name: String) -> PureFn {
    PureFn::new(name, 0, 1, |_, _: &[Message]| Ok(vec![Message::Absent]))
}

/// Elaborates `root` into a standalone [`Network`]: one external input per
/// input port, one exposed output per output port (both keep their port
/// names).
///
/// # Errors
///
/// Returns structural, typing, or causality errors discovered during
/// elaboration.
pub fn elaborate(model: &Model, root: ComponentId) -> Result<Network, SimError> {
    let comp = model.component(root);
    let mut net = Network::new(comp.name.clone());
    let mut ext = BTreeMap::new();
    for p in comp.inputs() {
        ext.insert(p.name.clone(), net.add_input(p.name.clone()));
    }
    let iface = build_instance(&mut net, model, root, comp.name.clone())?;
    for p in comp.inputs() {
        net.connect_input(ext[&p.name], iface.inputs[&p.name])?;
    }
    for p in comp.outputs() {
        net.expose_output(p.name.clone(), iface.outputs[&p.name])?;
    }
    Ok(net)
}

fn build_instance(
    net: &mut Network,
    model: &Model,
    cid: ComponentId,
    path: String,
) -> Result<Iface, SimError> {
    let comp = model.component(cid);
    let input_names: Vec<String> = comp.inputs().map(|p| p.name.clone()).collect();
    let output_names: Vec<String> = comp.outputs().map(|p| p.name.clone()).collect();

    // One pass-through block per input port: gives every input a stable
    // internal fan-out point.
    let mut in_handles = BTreeMap::new();
    for name in &input_names {
        let h = net.add_block(ops::Identity::new(format!("in:{path}.{name}")));
        in_handles.insert(name.clone(), h);
    }
    let inputs: BTreeMap<String, PortRef> = in_handles
        .iter()
        .map(|(n, h)| (n.clone(), h.input(0)))
        .collect();
    let mut outputs: BTreeMap<String, PortRef> = BTreeMap::new();

    match &comp.behavior {
        Behavior::Unspecified => {
            for name in &output_names {
                let h = net.add_block(absent_stub(format!("stub:{path}.{name}")));
                outputs.insert(name.clone(), h.output(0));
            }
        }
        Behavior::Expr(defs) => {
            for name in &output_names {
                let expr = defs.get(name).ok_or_else(|| CoreError::Level {
                    level: "FDA",
                    message: format!("output `{path}.{name}` has no defining expression"),
                })?;
                let blk = ExprBlock::with_inputs(
                    format!("{path}.{name}"),
                    input_names.clone(),
                    expr.clone(),
                );
                let h = net.add_block(blk);
                for (i, inp) in input_names.iter().enumerate() {
                    net.connect(in_handles[inp].output(0), h.input(i))?;
                }
                outputs.insert(name.clone(), h.output(0));
            }
        }
        Behavior::Primitive(p) => {
            let h = match p {
                Primitive::Delay { init } => {
                    net.add_block(ops::Delay::on_clock(init.clone(), Clock::base()))
                }
                Primitive::UnitDelay { init } => net.add_block(ops::UnitDelay::new(
                    init.clone()
                        .map(Message::Present)
                        .unwrap_or(Message::Absent),
                )),
                Primitive::When => net.add_block(ops::When::new()),
                Primitive::Current { init } => net.add_block(ops::Current::new(init.clone())),
            };
            for (i, inp) in input_names.iter().enumerate() {
                net.connect(in_handles[inp].output(0), h.input(i))?;
            }
            let out_name = output_names.first().ok_or_else(|| {
                SimError::Unsupported(format!("primitive `{path}` has no output port"))
            })?;
            outputs.insert(out_name.clone(), h.output(0));
        }
        Behavior::Mtd(mtd) => {
            mtd.validate(model, cid)?;
            let mut subnets = Vec::with_capacity(mtd.modes.len());
            let mut mode_names = Vec::with_capacity(mtd.modes.len());
            for mode in &mtd.modes {
                let sub = elaborate(model, mode.behavior)?;
                subnets.push(std::sync::Arc::new(sub.prepare()?));
                mode_names.push(mode.name.clone());
            }
            // Transition triggers are compiled to bytecode once, at
            // elaboration — evaluation per tick is then a register-machine
            // run with ports pre-resolved to input slots.
            let mut triggers: Vec<Vec<(usize, Program)>> = vec![Vec::new(); mtd.modes.len()];
            for (mode_idx, trigger_list) in triggers.iter_mut().enumerate() {
                for t in mtd.transitions_from(mode_idx) {
                    trigger_list.push((t.to, Program::compile(&t.trigger, &input_names)));
                }
            }
            let out_cols: Vec<Vec<Option<usize>>> = subnets
                .iter()
                .map(|sub| {
                    let probes: Vec<&str> = sub.probe_names().collect();
                    output_names
                        .iter()
                        .map(|n| probes.iter().position(|p| p == n))
                        .collect()
                })
                .collect();
            let h = net.add_block(MtdBlock {
                name: format!("mtd:{path}").into(),
                input_names: input_names.clone().into(),
                output_names: output_names.clone().into(),
                mode_names: mode_names.into(),
                pristine: subnets.clone(),
                subnets,
                out_cols: out_cols.into(),
                triggers: triggers.into(),
                scratch: Scratch::new(),
                initial: mtd.initial,
                current: mtd.initial,
            });
            for (i, inp) in input_names.iter().enumerate() {
                net.connect(in_handles[inp].output(0), h.input(i))?;
            }
            for (o, name) in output_names.iter().enumerate() {
                outputs.insert(name.clone(), h.output(o));
            }
        }
        Behavior::Std(fsm) => {
            fsm.validate(model, cid)?;
            let h = net.add_block(StdBlock {
                name: format!("std:{path}").into(),
                input_names: input_names.clone().into(),
                output_names: output_names.clone().into(),
                machine: std::sync::Arc::new(fsm.clone()),
                state: fsm.initial,
                vars: fsm.vars.iter().cloned().collect(),
            });
            for (i, inp) in input_names.iter().enumerate() {
                net.connect(in_handles[inp].output(0), h.input(i))?;
            }
            for (o, name) in output_names.iter().enumerate() {
                outputs.insert(name.clone(), h.output(o));
            }
        }
        Behavior::Composite(c) => {
            model.validate_composite(cid)?;
            let is_ssd = c.kind == CompositeKind::Ssd;
            let mut child_ifaces: BTreeMap<String, Iface> = BTreeMap::new();
            for inst in &c.instances {
                let iface =
                    build_instance(net, model, inst.component, format!("{path}/{}", inst.name))?;
                child_ifaces.insert(inst.name.clone(), iface);
            }
            for ch in &c.channels {
                let src: PortRef = match &ch.from.instance {
                    Some(inst) => child_ifaces[inst].outputs[&ch.from.port],
                    None => in_handles[&ch.from.port].output(0),
                };
                // "Each SSD-level channel introduces a message delay."
                let src = if is_ssd {
                    let d = net.add_block(ops::UnitDelay::new(Message::Absent));
                    net.connect(src, d.input(0))?;
                    d.output(0)
                } else {
                    src
                };
                match &ch.to.instance {
                    Some(inst) => {
                        net.connect(src, child_ifaces[inst].inputs[&ch.to.port])?;
                    }
                    None => {
                        outputs.insert(ch.to.port.clone(), src);
                    }
                }
            }
            for name in &output_names {
                if !outputs.contains_key(name) {
                    let h = net.add_block(absent_stub(format!("stub:{path}.{name}")));
                    outputs.insert(name.clone(), h.output(0));
                }
            }
        }
    }
    Ok(Iface { inputs, outputs })
}

/// The MTD interpreter block: one elaborated sub-network per mode; only the
/// active mode steps; transitions are evaluated over the current inputs and
/// take effect at the next tick (see `automode_core::mtd` docs).
///
/// Mode subnetworks are held copy-on-write: cloning an `MtdBlock` (per-lane
/// replication in batched execution) and [`Block::reset`] are O(modes)
/// reference bumps, and each clone deep-copies only the modes it actually
/// steps — a lane sweeping one operating region never pays for the others.
#[derive(Clone)]
struct MtdBlock {
    // All descriptor fields are shared and immutable after elaboration, so
    // replicating an `MtdBlock` is a handful of refcount bumps; only
    // `current` and the copy-on-write `subnets` carry per-replica state.
    name: std::sync::Arc<str>,
    input_names: std::sync::Arc<[String]>,
    output_names: std::sync::Arc<[String]>,
    mode_names: std::sync::Arc<[String]>,
    /// Working per-mode subnetworks; materialized from `pristine` on first
    /// step of a mode.
    subnets: Vec<std::sync::Arc<automode_kernel::network::ReadyNetwork>>,
    /// Never-stepped per-mode subnetworks in their initial state; `reset`
    /// restores these by reference.
    pristine: Vec<std::sync::Arc<automode_kernel::network::ReadyNetwork>>,
    /// Per mode: the probe column of each declared output in the subnet's
    /// observed row (`None` -> output is absent in that mode).
    out_cols: std::sync::Arc<[Vec<Option<usize>>]>,
    /// Per mode: (target, compiled trigger) in priority order.
    triggers: std::sync::Arc<[Vec<(usize, Program)>]>,
    /// Reusable trigger-VM registers (per-replica, contents transient).
    scratch: Scratch,
    initial: usize,
    current: usize,
}

impl std::fmt::Debug for MtdBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MtdBlock")
            .field("name", &self.name)
            .field("modes", &self.mode_names)
            .field("current", &self.current)
            .finish()
    }
}

impl MtdBlock {
    /// The currently active mode's name (used in tests via downcasting is
    /// overkill; the name is also surfaced in Debug output).
    #[allow(dead_code)]
    fn current_mode(&self) -> &str {
        &self.mode_names[self.current]
    }
}

impl Block for MtdBlock {
    fn name(&self) -> &str {
        &self.name
    }
    fn input_arity(&self) -> usize {
        self.input_names.len()
    }
    fn output_arity(&self) -> usize {
        self.output_names.len()
    }
    fn step(&mut self, _t: Tick, inputs: &[Message]) -> Result<Vec<Message>, KernelError> {
        // Evaluate transitions over the current inputs FIRST (immediate
        // switching): the mode that produces this tick's outputs is the one
        // reached after the triggers fired — exactly the branch-selection
        // semantics of the If-Then-Else cascades MTDs make explicit.
        let triggers = std::sync::Arc::clone(&self.triggers);
        for (target, trigger) in &triggers[self.current] {
            let fired = trigger
                .eval(inputs, &mut self.scratch)
                .map_err(|e| KernelError::Block {
                    block: self.name.to_string(),
                    message: e.to_string(),
                })?
                .value()
                .and_then(Value::as_bool)
                == Some(true);
            if fired {
                self.current = *target;
                break;
            }
        }
        let observed =
            std::sync::Arc::make_mut(&mut self.subnets[self.current]).step_tick_observed(inputs)?;
        let outputs: Vec<Message> = self.out_cols[self.current]
            .iter()
            .map(|col| col.map_or(Message::Absent, |j| observed[j].clone()))
            .collect();
        Ok(outputs)
    }
    fn needs_commit(&self) -> bool {
        false
    }
    fn reset(&mut self) {
        self.current = self.initial;
        self.subnets.clone_from(&self.pristine);
    }
    fn clone_block(&self) -> Box<dyn Block + Send + Sync> {
        Box::new(self.clone())
    }
    fn coverage_space(&self) -> Option<automode_kernel::CoverageSpace> {
        let mut transitions = Vec::new();
        for (mode, trigger_list) in self.triggers.iter().enumerate() {
            for (target, _) in trigger_list {
                transitions.push((mode, *target));
            }
        }
        Some(automode_kernel::CoverageSpace {
            states: self.mode_names.to_vec(),
            transitions,
            initial: self.initial,
        })
    }
    fn coverage_state(&self) -> usize {
        self.current
    }
}

/// The STD interpreter block: a flat extended state machine with local
/// variables; the highest-priority enabled transition fires, executing its
/// actions against the pre-state environment.
#[derive(Clone)]
struct StdBlock {
    // Shared descriptors (see `MtdBlock`): only `state` and `vars` are
    // per-replica.
    name: std::sync::Arc<str>,
    input_names: std::sync::Arc<[String]>,
    output_names: std::sync::Arc<[String]>,
    machine: std::sync::Arc<automode_core::std_machine::StdMachine>,
    state: usize,
    vars: BTreeMap<String, Value>,
}

impl std::fmt::Debug for StdBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StdBlock")
            .field("name", &self.name)
            .field("state", &self.machine.states.get(self.state))
            .finish()
    }
}

impl Block for StdBlock {
    fn name(&self) -> &str {
        &self.name
    }
    fn input_arity(&self) -> usize {
        self.input_names.len()
    }
    fn output_arity(&self) -> usize {
        self.output_names.len()
    }
    fn step(&mut self, _t: Tick, inputs: &[Message]) -> Result<Vec<Message>, KernelError> {
        let mut env: Env = self
            .input_names
            .iter()
            .zip(inputs)
            .map(|(n, m)| (n.clone(), m.clone()))
            .collect();
        for (v, val) in &self.vars {
            env.bind(v.clone(), Message::Present(val.clone()));
        }
        let wrap = |e: automode_lang::LangError, name: &str| KernelError::Block {
            block: name.to_string(),
            message: e.to_string(),
        };
        let mut outputs = vec![Message::Absent; self.output_names.len()];
        let fired = {
            let mut fired = None;
            for t in self.machine.transitions_from(self.state) {
                let enabled = t
                    .guard
                    .eval(&env)
                    .map_err(|e| wrap(e, &self.name))?
                    .value()
                    .and_then(Value::as_bool)
                    == Some(true);
                if enabled {
                    fired = Some(t.clone());
                    break;
                }
            }
            fired
        };
        if let Some(t) = fired {
            // All actions evaluate against the pre-state environment.
            let mut writes: Vec<(String, Value)> = Vec::with_capacity(t.actions.len());
            for a in &t.actions {
                match a.expr.eval(&env).map_err(|e| wrap(e, &self.name))? {
                    Message::Present(v) => writes.push((a.target.clone(), v)),
                    Message::Absent => {}
                }
            }
            for (target, v) in writes {
                if let Some(pos) = self.output_names.iter().position(|n| *n == target) {
                    outputs[pos] = Message::Present(v);
                } else {
                    self.vars.insert(target, v);
                }
            }
            self.state = t.to;
        }
        Ok(outputs)
    }
    fn needs_commit(&self) -> bool {
        false
    }
    fn reset(&mut self) {
        self.state = self.machine.initial;
        self.vars = self.machine.vars.iter().cloned().collect();
    }
    fn clone_block(&self) -> Box<dyn Block + Send + Sync> {
        Box::new(self.clone())
    }
    fn coverage_space(&self) -> Option<automode_kernel::CoverageSpace> {
        Some(automode_kernel::CoverageSpace {
            states: self.machine.states.clone(),
            transitions: self
                .machine
                .transitions
                .iter()
                .map(|t| (t.from, t.to))
                .collect(),
            initial: self.machine.initial,
        })
    }
    fn coverage_state(&self) -> usize {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automode_core::model::{Component, Composite, Endpoint};
    use automode_core::std_machine::{Assign, StdMachine, StdTransition};
    use automode_core::types::DataType;
    use automode_core::Mtd;
    use automode_kernel::network::stimulus_from_streams;
    use automode_kernel::Stream;
    use automode_lang::parse;

    fn leaf(m: &mut Model, name: &str, expr: &str) -> ComponentId {
        m.add_component(
            Component::new(name)
                .input("x", DataType::Float)
                .output("y", DataType::Float)
                .with_behavior(Behavior::expr("y", parse(expr).unwrap())),
        )
        .unwrap()
    }

    #[test]
    fn expr_component_elaborates_and_runs() {
        let mut m = Model::new("t");
        let id = leaf(&mut m, "Twice", "x * 2.0");
        let net = elaborate(&m, id).unwrap();
        let stim =
            stimulus_from_streams(&[Stream::from_values([Value::Float(1.0), Value::Float(2.5)])]);
        let trace = net.run(&stim).unwrap();
        assert_eq!(
            trace.signal("y").unwrap().present_values(),
            vec![Value::Float(2.0), Value::Float(5.0)]
        );
    }

    #[test]
    fn dfd_is_instantaneous_ssd_delays() {
        let mut m = Model::new("t");
        let l = leaf(&mut m, "Id", "x");
        for (kind, name, delay) in [
            (CompositeKind::Dfd, "DfdTop", 0usize),
            (CompositeKind::Ssd, "SsdTop", 2usize),
        ] {
            let mut net = Composite::new(kind);
            net.instantiate("a", l);
            net.connect(Endpoint::boundary("in"), Endpoint::child("a", "x"));
            net.connect(Endpoint::child("a", "y"), Endpoint::boundary("out"));
            let top = m
                .add_component(
                    Component::new(name)
                        .input("in", DataType::Float)
                        .output("out", DataType::Float)
                        .with_behavior(Behavior::Composite(net)),
                )
                .unwrap();
            let knet = elaborate(&m, top).unwrap();
            let stim = stimulus_from_streams(&[Stream::from_values([
                Value::Float(7.0),
                Value::Float(8.0),
                Value::Float(9.0),
            ])]);
            let trace = knet.run(&stim).unwrap();
            let out = trace.signal("out").unwrap();
            // SSD: both boundary channels delay -> total shift `delay`.
            if delay == 0 {
                assert_eq!(out[0], Message::present(Value::Float(7.0)));
            } else {
                assert!(out[0].is_absent() && out[1].is_absent());
                assert_eq!(out[2], Message::present(Value::Float(7.0)));
            }
        }
    }

    #[test]
    fn stable_block_names_address_internal_channels_for_faults() {
        use automode_kernel::{FaultKind, FaultSpec, Value};

        // Composite `Top` with one instance `a` of `Twice`; the stable
        // `in:` boundary name lets a fault intercept what `a` reads on `x`
        // without touching the external stimulus name space.
        let mut m = Model::new("t");
        let l = leaf(&mut m, "Twice", "x * 2.0");
        let mut comp = Composite::new(CompositeKind::Dfd);
        comp.instantiate("a", l);
        comp.connect(Endpoint::boundary("in"), Endpoint::child("a", "x"));
        comp.connect(Endpoint::child("a", "y"), Endpoint::boundary("out"));
        let top = m
            .add_component(
                Component::new("Top")
                    .input("in", DataType::Float)
                    .output("out", DataType::Float)
                    .with_behavior(Behavior::Composite(comp)),
            )
            .unwrap();

        let mut ready = elaborate(&m, top).unwrap().prepare().unwrap();
        ready
            .set_faults(&[FaultSpec::on_block(
                "in:Top/a.x",
                0,
                FaultKind::StuckAt(Value::Float(10.0)),
            )])
            .unwrap();
        let stim =
            stimulus_from_streams(&[Stream::from_values([Value::Float(1.0), Value::Float(2.0)])]);
        let trace = ready.run(&stim).unwrap();
        assert_eq!(
            trace.signal("out").unwrap().present_values(),
            vec![Value::Float(20.0), Value::Float(20.0)]
        );

        // Typos in internal names are rejected at install time.
        let err = ready
            .set_faults(&[FaultSpec::on_block("in:Top/b.x", 0, FaultKind::Delay(1))])
            .unwrap_err();
        assert!(matches!(
            err,
            automode_kernel::KernelError::UnknownFaultTarget { .. }
        ));
    }

    #[test]
    fn unspecified_behavior_yields_absent() {
        let mut m = Model::new("t");
        let id = m
            .add_component(
                Component::new("U")
                    .input("x", DataType::Float)
                    .output("y", DataType::Float),
            )
            .unwrap();
        let net = elaborate(&m, id).unwrap();
        let stim = stimulus_from_streams(&[Stream::from_values([Value::Float(1.0)])]);
        let trace = net.run(&stim).unwrap();
        assert_eq!(trace.signal("y").unwrap().present_count(), 0);
    }

    #[test]
    fn mtd_switches_modes_immediately() {
        let mut m = Model::new("t");
        let a = leaf(&mut m, "Constant", "0.2 + x * 0.0");
        let b = leaf(&mut m, "Linear", "x * 1.0");
        let mut mtd = Mtd::new();
        let ma = mtd.add_mode("A", a);
        let mb = mtd.add_mode("B", b);
        mtd.add_transition(ma, mb, parse("x > 10.0").unwrap(), 0);
        mtd.add_transition(mb, ma, parse("x < 5.0").unwrap(), 0);
        let owner = m
            .add_component(
                Component::new("Switcher")
                    .input("x", DataType::Float)
                    .output("y", DataType::Float)
                    .with_behavior(Behavior::Mtd(mtd)),
            )
            .unwrap();
        let net = elaborate(&m, owner).unwrap();
        let xs = [1.0, 20.0, 20.0, 2.0, 2.0];
        let stim = stimulus_from_streams(&[Stream::from_values(
            xs.iter().map(|&x| Value::Float(x)).collect::<Vec<_>>(),
        )]);
        let trace = net.run(&stim).unwrap();
        let ys: Vec<f64> = trace
            .signal("y")
            .unwrap()
            .present_values()
            .iter()
            .map(|v| v.as_float().unwrap())
            .collect();
        // t0: x=1, stays A -> 0.2.
        // t1: x=20 fires A->B immediately -> 20.0.
        // t2: x=20, stays B -> 20.0.
        // t3: x=2 fires B->A immediately -> 0.2.
        // t4: x=2, stays A -> 0.2.
        assert_eq!(ys, vec![0.2, 20.0, 20.0, 0.2, 0.2]);
    }

    #[test]
    fn mtd_transition_priorities_respected() {
        let mut m = Model::new("t");
        let a = leaf(&mut m, "A", "1.0 + x * 0.0");
        let b = leaf(&mut m, "B", "2.0 + x * 0.0");
        let c = leaf(&mut m, "C", "3.0 + x * 0.0");
        let mut mtd = Mtd::new();
        let ma = mtd.add_mode("A", a);
        let mb = mtd.add_mode("B", b);
        let mc = mtd.add_mode("C", c);
        // Both triggers true; priority 0 (to B) must win over 1 (to C).
        mtd.add_transition(ma, mc, parse("x > 0.0").unwrap(), 1);
        mtd.add_transition(ma, mb, parse("x > 0.0").unwrap(), 0);
        let owner = m
            .add_component(
                Component::new("P")
                    .input("x", DataType::Float)
                    .output("y", DataType::Float)
                    .with_behavior(Behavior::Mtd(mtd)),
            )
            .unwrap();
        let net = elaborate(&m, owner).unwrap();
        let stim =
            stimulus_from_streams(&[Stream::from_values([Value::Float(1.0), Value::Float(1.0)])]);
        let trace = net.run(&stim).unwrap();
        let ys: Vec<f64> = trace
            .signal("y")
            .unwrap()
            .present_values()
            .iter()
            .map(|v| v.as_float().unwrap())
            .collect();
        // Immediate switching: already at t0 the priority-0 transition to B
        // wins over the priority-1 transition to C.
        assert_eq!(ys, vec![2.0, 2.0]);
    }

    #[test]
    fn std_block_latches() {
        let mut m = Model::new("t");
        let mut fsm = StdMachine::new();
        let off = fsm.add_state("Off");
        let on = fsm.add_state("On");
        fsm.add_transition(StdTransition {
            from: off,
            to: on,
            guard: parse("set").unwrap(),
            actions: vec![Assign {
                target: "q".into(),
                expr: parse("true").unwrap(),
            }],
            priority: 0,
        });
        fsm.add_transition(StdTransition {
            from: on,
            to: off,
            guard: parse("rst").unwrap(),
            actions: vec![Assign {
                target: "q".into(),
                expr: parse("false").unwrap(),
            }],
            priority: 0,
        });
        let owner = m
            .add_component(
                Component::new("Latch")
                    .input("set", DataType::Bool)
                    .input("rst", DataType::Bool)
                    .output("q", DataType::Bool)
                    .with_behavior(Behavior::Std(fsm)),
            )
            .unwrap();
        let net = elaborate(&m, owner).unwrap();
        let set = Stream::from_values([true, false, false, false]);
        let rst = Stream::from_values([false, false, true, false]);
        let stim = stimulus_from_streams(&[set, rst]);
        let trace = net.run(&stim).unwrap();
        let q = trace.signal("q").unwrap();
        assert_eq!(q[0], Message::present(true)); // fired Off->On
        assert!(q[1].is_absent()); // no transition enabled
        assert_eq!(q[2], Message::present(false)); // fired On->Off
        assert!(q[3].is_absent());
    }

    #[test]
    fn std_vars_accumulate() {
        let mut m = Model::new("t");
        let mut fsm = StdMachine::new();
        let s = fsm.add_state("S");
        fsm.add_var("count", 0i64);
        fsm.add_transition(StdTransition {
            from: s,
            to: s,
            guard: parse("tick").unwrap(),
            actions: vec![
                Assign {
                    target: "count".into(),
                    expr: parse("count + 1").unwrap(),
                },
                Assign {
                    target: "n".into(),
                    expr: parse("count + 1").unwrap(),
                },
            ],
            priority: 0,
        });
        let owner = m
            .add_component(
                Component::new("Counter")
                    .input("tick", DataType::Bool)
                    .output("n", DataType::Int)
                    .with_behavior(Behavior::Std(fsm)),
            )
            .unwrap();
        let net = elaborate(&m, owner).unwrap();
        let stim = stimulus_from_streams(&[Stream::from_values([true, true, false, true])]);
        let trace = net.run(&stim).unwrap();
        let ns: Vec<i64> = trace
            .signal("n")
            .unwrap()
            .present_values()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(ns, vec![1, 2, 3]);
    }

    #[test]
    fn dfd_instantaneous_loop_rejected_at_prepare() {
        let mut m = Model::new("t");
        let f = leaf(&mut m, "F", "x + 1.0");
        let g = leaf(&mut m, "G", "x * 2.0");
        let mut net = Composite::new(CompositeKind::Dfd);
        net.instantiate("f", f);
        net.instantiate("g", g);
        net.connect(Endpoint::child("f", "y"), Endpoint::child("g", "x"));
        net.connect(Endpoint::child("g", "y"), Endpoint::child("f", "x"));
        let top = m
            .add_component(Component::new("Loop").with_behavior(Behavior::Composite(net)))
            .unwrap();
        let knet = elaborate(&m, top).unwrap();
        assert!(matches!(knet.prepare(), Err(KernelError::Causality(_))));
    }

    #[test]
    fn primitive_delay_elaborates() {
        let mut m = Model::new("t");
        let d = m
            .add_component(
                Component::new("D")
                    .input("x", DataType::Float)
                    .output("y", DataType::Float)
                    .with_behavior(Behavior::Primitive(Primitive::Delay {
                        init: Some(Value::Float(-1.0)),
                    })),
            )
            .unwrap();
        let net = elaborate(&m, d).unwrap();
        let stim =
            stimulus_from_streams(&[Stream::from_values([Value::Float(1.0), Value::Float(2.0)])]);
        let trace = net.run(&stim).unwrap();
        assert_eq!(
            trace.signal("y").unwrap().present_values(),
            vec![Value::Float(-1.0), Value::Float(1.0)]
        );
    }

    #[test]
    fn nested_composites_wire_through() {
        let mut m = Model::new("t");
        let l = leaf(&mut m, "Inc", "x + 1.0");
        let mut inner = Composite::new(CompositeKind::Dfd);
        inner.instantiate("i1", l);
        inner.connect(Endpoint::boundary("in"), Endpoint::child("i1", "x"));
        inner.connect(Endpoint::child("i1", "y"), Endpoint::boundary("out"));
        let mid = m
            .add_component(
                Component::new("Mid")
                    .input("in", DataType::Float)
                    .output("out", DataType::Float)
                    .with_behavior(Behavior::Composite(inner)),
            )
            .unwrap();
        let mut outer = Composite::new(CompositeKind::Dfd);
        outer.instantiate("m1", mid);
        outer.instantiate("m2", mid);
        outer.connect(Endpoint::boundary("in"), Endpoint::child("m1", "in"));
        outer.connect(Endpoint::child("m1", "out"), Endpoint::child("m2", "in"));
        outer.connect(Endpoint::child("m2", "out"), Endpoint::boundary("out"));
        let top = m
            .add_component(
                Component::new("Top")
                    .input("in", DataType::Float)
                    .output("out", DataType::Float)
                    .with_behavior(Behavior::Composite(outer)),
            )
            .unwrap();
        let net = elaborate(&m, top).unwrap();
        let stim = stimulus_from_streams(&[Stream::from_values([Value::Float(1.0)])]);
        let trace = net.run(&stim).unwrap();
        assert_eq!(
            trace.signal("out").unwrap().present_values(),
            vec![Value::Float(3.0)]
        );
    }
}
