//! High-level simulation API.

use automode_core::model::{ComponentId, Model};
use automode_kernel::{Stream, Trace};

use crate::compiled::CompiledSim;
use crate::error::SimError;

/// The result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimRun {
    /// The recorded trace: every output of the simulated component plus
    /// every driven input.
    pub trace: Trace,
    /// The number of ticks executed.
    pub ticks: usize,
}

/// Simulates a component against named input streams for `ticks` ticks,
/// recording all outputs and the driven inputs.
///
/// Inputs not covered by `inputs` are an error, and so are stimulus names
/// matching no input port or driving a port twice — partial and misspelled
/// stimuli hide wiring bugs. Streams shorter than `ticks` are padded with
/// absence.
///
/// This is the one-shot convenience over [`CompiledSim`]; when simulating
/// the same component repeatedly, build a [`CompiledSim`] once and call
/// [`CompiledSim::run`] or [`CompiledSim::run_batch`] instead.
///
/// ```
/// use automode_core::model::{Behavior, Component, Model};
/// use automode_core::types::DataType;
/// use automode_lang::parse;
/// use automode_sim::{simulate_component, stimulus};
/// use automode_kernel::Value;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut model = Model::new("demo");
/// let gain = model.add_component(
///     Component::new("Gain")
///         .input("u", DataType::Float)
///         .output("y", DataType::Float)
///         .with_behavior(Behavior::expr("y", parse("u * 3.0")?)),
/// )?;
/// let run = simulate_component(
///     &model,
///     gain,
///     &[("u", stimulus::constant(Value::Float(2.0), 4))],
///     4,
/// )?;
/// assert_eq!(run.trace.signal("y").unwrap().present_count(), 4);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Fails on elaboration errors, missing inputs, or execution errors.
pub fn simulate_component(
    model: &Model,
    component: ComponentId,
    inputs: &[(&str, Stream)],
    ticks: usize,
) -> Result<SimRun, SimError> {
    CompiledSim::new(model, component)?.run(inputs, ticks)
}

/// Simulates the model's root component.
///
/// # Errors
///
/// Fails if no root is set, plus the conditions of
/// [`simulate_component`].
pub fn simulate(
    model: &Model,
    inputs: &[(&str, Stream)],
    ticks: usize,
) -> Result<SimRun, SimError> {
    let root = model
        .root()
        .ok_or_else(|| SimError::Unsupported("model has no root component".to_string()))?;
    simulate_component(model, root, inputs, ticks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stimulus;
    use automode_core::model::{Behavior, Component};
    use automode_core::types::DataType;
    use automode_kernel::{Message, TraceEquivalence, Value};
    use automode_lang::parse;

    fn model() -> (Model, ComponentId) {
        let mut m = Model::new("t");
        let id = m
            .add_component(
                Component::new("Gain")
                    .input("u", DataType::Float)
                    .output("y", DataType::Float)
                    .with_behavior(Behavior::expr("y", parse("u * 3.0").unwrap())),
            )
            .unwrap();
        m.set_root(id);
        (m, id)
    }

    #[test]
    fn simulate_records_inputs_and_outputs() {
        let (m, _) = model();
        let run = simulate(&m, &[("u", stimulus::constant(Value::Float(2.0), 5))], 5).unwrap();
        assert_eq!(run.ticks, 5);
        assert_eq!(run.trace.signal("y").unwrap().present_count(), 5);
        assert_eq!(run.trace.signal("in:u").unwrap().present_count(), 5);
        assert_eq!(
            run.trace.signal("y").unwrap()[0],
            Message::present(Value::Float(6.0))
        );
    }

    #[test]
    fn missing_input_is_an_error() {
        let (m, id) = model();
        assert!(matches!(
            simulate_component(&m, id, &[], 3),
            Err(SimError::MissingInput(n)) if n == "u"
        ));
    }

    #[test]
    fn unknown_stimulus_name_is_an_error() {
        // A typo'd name used to be silently ignored (so the real input was
        // reported missing at best, or — with all ports driven — the typo'd
        // stream was dropped without a sound).
        let (m, id) = model();
        let err = simulate_component(
            &m,
            id,
            &[
                ("u", stimulus::constant(Value::Float(1.0), 3)),
                ("throtle", stimulus::constant(Value::Float(9.0), 3)),
            ],
            3,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::UnknownInput(n) if n == "throtle"));
    }

    #[test]
    fn duplicate_stimulus_name_is_an_error() {
        let (m, id) = model();
        let err = simulate_component(
            &m,
            id,
            &[
                ("u", stimulus::constant(Value::Float(1.0), 3)),
                ("u", stimulus::constant(Value::Float(2.0), 3)),
            ],
            3,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::DuplicateInput(n) if n == "u"));
    }

    #[test]
    fn short_streams_pad_with_absence() {
        let (m, id) = model();
        let run = simulate_component(
            &m,
            id,
            &[("u", stimulus::constant(Value::Float(1.0), 2))],
            4,
        )
        .unwrap();
        let y = run.trace.signal("y").unwrap();
        assert!(y[0].is_present() && y[1].is_present());
        assert!(y[2].is_absent() && y[3].is_absent());
    }

    #[test]
    fn no_root_is_an_error() {
        let m = Model::new("empty");
        assert!(matches!(
            simulate(&m, &[], 1),
            Err(SimError::Unsupported(_))
        ));
    }

    #[test]
    fn repeated_runs_are_deterministic() {
        let (m, id) = model();
        let s = stimulus::seeded_random(0.0, 1.0, 20, 3);
        let a = simulate_component(&m, id, &[("u", s.clone())], 20).unwrap();
        let b = simulate_component(&m, id, &[("u", s)], 20).unwrap();
        assert!(a.trace.equivalent(&b.trace, &TraceEquivalence::exact()));
    }
}
