//! Direct simulation of CCDs — the executable LA level.
//!
//! The CCD of Sec. 3.3 makes "signal frequencies explicit": every cluster
//! runs on its own period/phase. This module elaborates a CCD into a
//! kernel network in which
//!
//! * each cluster becomes a rate-gated block: it steps (and emits) only at
//!   its active ticks and is frozen in between, exactly like a periodic
//!   OS task running the cluster's step function;
//! * each channel elaborates to the platform's rate-transition machinery:
//!   an optional per-writer-period delay chain (the CCD `delay` operators)
//!   followed by a *hold* — the reader always samples the latest published
//!   value, as the OSEK data-integrity buffers provide.
//!
//! This gives the LA level an operational semantics of its own, so
//! refinements into CCDs can be validated by trace equivalence like every
//! other transformation.

use automode_core::ccd::Ccd;
use automode_core::model::{Direction, Model};
use automode_kernel::network::{Network, ReadyNetwork};
use automode_kernel::ops::{Block, ClockBehavior, Current, Delay};
use automode_kernel::{Clock, KernelError, Message, Tick};

use crate::elaborate::elaborate;
use crate::error::SimError;

/// A cluster as a rate-gated block: the wrapped component network steps
/// only at the cluster clock's active ticks.
#[derive(Clone)]
struct ClusterBlock {
    name: String,
    clock: Clock,
    inner: ReadyNetwork,
    inputs: usize,
    outputs: usize,
}

impl std::fmt::Debug for ClusterBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterBlock")
            .field("name", &self.name)
            .field("clock", &self.clock)
            .finish()
    }
}

impl Block for ClusterBlock {
    fn name(&self) -> &str {
        &self.name
    }
    fn input_arity(&self) -> usize {
        self.inputs
    }
    fn output_arity(&self) -> usize {
        self.outputs
    }
    fn step(&mut self, t: Tick, inputs: &[Message]) -> Result<Vec<Message>, KernelError> {
        let mut out = vec![Message::Absent; self.outputs];
        self.step_into(t, inputs, &mut out)?;
        Ok(out)
    }
    fn step_into(
        &mut self,
        t: Tick,
        inputs: &[Message],
        out: &mut [Message],
    ) -> Result<(), KernelError> {
        if !self.clock.is_active(t) {
            out.fill(Message::Absent);
            return Ok(());
        }
        let observed = self.inner.step_tick_observed(inputs)?;
        out.clone_from_slice(observed);
        Ok(())
    }
    fn needs_commit(&self) -> bool {
        false
    }
    fn clock_behavior(&self) -> ClockBehavior {
        // Outputs are a subclock of the cluster clock: absent between active
        // ticks, and possibly absent at active ticks too (the inner network
        // decides). This feeds both the gated scheduler and the inferred
        // presence contracts of `ContractMonitor`.
        ClockBehavior::Declared(self.clock.clone())
    }
    fn reset(&mut self) {
        self.inner.reset();
    }
    fn clone_block(&self) -> Box<dyn Block + Send + Sync> {
        Box::new(self.clone())
    }
}

/// Elaborates a CCD into an executable network.
///
/// External inputs are created for every cluster input port without a
/// writer, named `{cluster}.{port}`; every cluster output is exposed as
/// `{cluster}.{port}`.
///
/// # Errors
///
/// Propagates CCD validation and elaboration errors.
pub fn elaborate_ccd(model: &Model, ccd: &Ccd) -> Result<Network, SimError> {
    ccd.validate_structure(model)?;
    let mut net = Network::new("ccd");

    // Build the cluster blocks.
    let mut handles = Vec::new();
    for cluster in &ccd.clusters {
        let comp = model.component(cluster.component);
        let inner = elaborate(model, cluster.component)?.prepare()?;
        let block = ClusterBlock {
            name: cluster.name.clone(),
            // `try_every` surfaces a zero period as a `SimError` instead of
            // panicking inside the kernel on first use.
            clock: Clock::try_every(cluster.period, cluster.phase)?,
            inner,
            inputs: comp.inputs().count(),
            outputs: comp.outputs().count(),
        };
        handles.push(net.add_block(block));
    }
    let cluster_index = |name: &str| {
        ccd.clusters
            .iter()
            .position(|c| c.name == name)
            .expect("validated")
    };
    let port_index = |cluster: usize, port: &str, dir: Direction| {
        let comp = model.component(ccd.clusters[cluster].component);
        comp.ports
            .iter()
            .filter(|p| p.direction == dir)
            .position(|p| p.name == port)
            .expect("validated")
    };

    // Channels: [delays on writer clock] -> hold -> reader input.
    for ch in &ccd.channels {
        let from = cluster_index(&ch.from_cluster);
        let to = cluster_index(&ch.to_cluster);
        let writer_clock = Clock::try_every(ccd.clusters[from].period, ccd.clusters[from].phase)?;
        let mut src = handles[from].output(port_index(from, &ch.from_port, Direction::Out));
        for _ in 0..ch.delays {
            let d = net.add_block(Delay::on_clock(None, writer_clock.clone()));
            net.connect(src, d.input(0))?;
            src = d.output(0);
        }
        // Hold the latest published value for the (possibly faster) reader,
        // seeding with a type-conforming default until the first write.
        let from_ty = &model
            .component(ccd.clusters[from].component)
            .find_port(&ch.from_port)
            .expect("validated")
            .ty;
        let seed = match from_ty {
            automode_core::types::DataType::Bool => automode_kernel::Value::Bool(false),
            automode_core::types::DataType::Int => automode_kernel::Value::Int(0),
            automode_core::types::DataType::Enum(e) => {
                automode_kernel::Value::sym(e.literals.first().cloned().unwrap_or_default())
            }
            _ => automode_kernel::Value::Float(0.0),
        };
        let hold = net.add_block(Current::new(seed));
        net.connect(src, hold.input(0))?;
        net.connect(
            hold.output(0),
            handles[to].input(port_index(to, &ch.to_port, Direction::In)),
        )?;
    }

    // Open inputs become network inputs; all outputs are probed.
    for (ci, cluster) in ccd.clusters.iter().enumerate() {
        let comp = model.component(cluster.component);
        for (pi, port) in comp.inputs().enumerate() {
            let written = ccd
                .channels
                .iter()
                .any(|ch| ch.to_cluster == cluster.name && ch.to_port == port.name);
            if !written {
                let ext = net.add_input(format!("{}.{}", cluster.name, port.name));
                net.connect_input(ext, handles[ci].input(pi))?;
            }
        }
        for (po, port) in comp.outputs().enumerate() {
            net.expose_output(
                format!("{}.{}", cluster.name, port.name),
                handles[ci].output(po),
            )?;
        }
    }
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use automode_core::ccd::{CcdChannel, Cluster};
    use automode_core::model::{Behavior, Component};
    use automode_core::types::DataType;
    use automode_kernel::{Stream, Value};
    use automode_lang::parse;

    fn counter_component(m: &mut Model, name: &str) -> automode_core::model::ComponentId {
        // A stateless ramp follower: y = x (so its activity is visible).
        m.add_component(
            Component::new(name)
                .input("x", DataType::Float)
                .output("y", DataType::Float)
                .with_behavior(Behavior::expr("y", parse("x + 0.0").unwrap())),
        )
        .unwrap()
    }

    fn run_ccd(
        model: &Model,
        ccd: &Ccd,
        inputs: &[(&str, Stream)],
        ticks: usize,
    ) -> automode_kernel::Trace {
        let net = elaborate_ccd(model, ccd).unwrap();
        let names: Vec<String> = net.input_names().map(String::from).collect();
        let stim: Vec<Vec<Message>> = (0..ticks)
            .map(|t| {
                names
                    .iter()
                    .map(|n| {
                        inputs
                            .iter()
                            .find(|(k, _)| k == n)
                            .and_then(|(_, s)| s.get(t).cloned())
                            .unwrap_or(Message::Absent)
                    })
                    .collect()
            })
            .collect();
        net.run(&stim).unwrap()
    }

    #[test]
    fn cluster_emits_only_on_its_clock() {
        let mut m = Model::new("t");
        let c = counter_component(&mut m, "C");
        let ccd = Ccd::new().cluster(Cluster::new("slow", c, 3));
        let input = crate::stimulus::ramp(0.0, 9.0, 10);
        let trace = run_ccd(&m, &ccd, &[("slow.x", input)], 10);
        let y = trace.signal("slow.y").unwrap();
        assert!(y.conforms_to_clock(&Clock::every(3, 0)));
        assert_eq!(y.present_count(), 4); // t = 0, 3, 6, 9
    }

    #[test]
    fn cluster_clock_is_declared_for_contract_inference() {
        use automode_kernel::{FaultKind, FaultSpec};

        let mut m = Model::new("t");
        let c = counter_component(&mut m, "C");
        let ccd = Ccd::new().cluster(Cluster::new("slow", c, 3));
        let mut ready = elaborate_ccd(&m, &ccd).unwrap().prepare().unwrap();

        // The declared cluster clock surfaces as an inferred subclock
        // contract on `slow.y`.
        let monitor = ready.inferred_contracts();
        assert!(monitor
            .contracts()
            .iter()
            .any(|c| c.signal == "slow.y" && c.clock == Clock::every(3, 0)));

        let stim: Vec<Vec<Message>> = (0..9)
            .map(|t| vec![Message::present(Value::Float(t as f64))])
            .collect();
        let nominal = ready.run(&stim).unwrap();
        assert!(monitor.check(&nominal).is_clean());

        // Delaying the cluster output by one tick moves every publication
        // off the cluster clock — the monitor flags the first shifted tick.
        ready
            .set_faults(&[FaultSpec::on_signal("slow.y", FaultKind::Delay(1))])
            .unwrap();
        ready.reset();
        let faulted = ready.run(&stim).unwrap();
        let report = monitor.check(&faulted);
        assert_eq!(report.first_violation_tick(), Some(1));
    }

    #[test]
    fn fast_to_slow_sampling_takes_latest_value() {
        let mut m = Model::new("t");
        let fast = counter_component(&mut m, "Fast");
        let slow = counter_component(&mut m, "Slow");
        let ccd = Ccd::new()
            .cluster(Cluster::new("f", fast, 1))
            .cluster(Cluster::new("s", slow, 4))
            .channel(CcdChannel::direct("f", "y", "s", "x"));
        let input = crate::stimulus::ramp(0.0, 9.0, 10);
        let trace = run_ccd(&m, &ccd, &[("f.x", input)], 10);
        let s = trace.signal("s.y").unwrap();
        // At t=4 the slow cluster samples the fast cluster's t=4 value.
        assert_eq!(s[4].value().unwrap().as_float().unwrap(), 4.0);
        assert_eq!(s[8].value().unwrap().as_float().unwrap(), 8.0);
    }

    #[test]
    fn slow_to_fast_delay_gives_previous_period_value() {
        let mut m = Model::new("t");
        let fast = counter_component(&mut m, "Fast");
        let slow = counter_component(&mut m, "Slow");
        let ccd = Ccd::new()
            .cluster(Cluster::new("f", fast, 1))
            .cluster(Cluster::new("s", slow, 4))
            .channel(CcdChannel::direct("s", "y", "f", "x").with_delays(1));
        let input: Stream = (0..12)
            .map(|t| Message::present(Value::Float(t as f64)))
            .collect();
        let trace = run_ccd(&m, &ccd, &[("s.x", input)], 12);
        let f = trace.signal("f.y").unwrap();
        // Slow publishes at t=0,4,8 (values 0,4,8); delayed by one slow
        // period, the fast reader sees the previous publication:
        // t in [4,8): value 0; t in [8,12): value 4.
        assert_eq!(f[5].value().unwrap().as_float().unwrap(), 0.0);
        assert_eq!(f[9].value().unwrap().as_float().unwrap(), 4.0);
        // Matches the OSEK-platform experiment: deterministic per period.
    }

    #[test]
    fn engine_ccd_executes_with_feedback_limit() {
        let mut m = Model::new("engine");
        let (ccd, _) = automode_engine_build(&mut m);
        let rpm = crate::stimulus::constant(Value::Float(3000.0), 40);
        let throttle = crate::stimulus::constant(Value::Float(0.9), 40);
        let trace = run_ccd(
            &m,
            &ccd,
            &[
                ("fuel_control.rpm", rpm.clone()),
                ("fuel_control.throttle", throttle),
                ("ignition_control.rpm", rpm),
            ],
            40,
        );
        let ti = trace.signal("fuel_control.ti").unwrap();
        // Initially the hold supplies limit 0.0 -> ti = min(base, 0) = 0;
        // after the first diagnosis publication the limit opens up.
        let vals: Vec<f64> = ti
            .present_values()
            .iter()
            .map(|v| v.as_float().unwrap())
            .collect();
        assert!(vals.iter().any(|&v| v > 0.0), "limit must open: {vals:?}");
    }

    /// Local copy of the Fig. 7 builder to avoid a dev-dependency cycle
    /// with `automode-engine`.
    fn automode_engine_build(m: &mut Model) -> (Ccd, ()) {
        let fuel = m
            .add_component(
                Component::new("FuelControl")
                    .input("rpm", DataType::Float)
                    .input("throttle", DataType::Float)
                    .input("ti_limit", DataType::Float)
                    .output("ti", DataType::Float)
                    .with_behavior(Behavior::expr(
                        "ti",
                        parse("min(1.0 + throttle * 8.0 + rpm * 0.0001, ti_limit)").unwrap(),
                    )),
            )
            .unwrap();
        let ignition = m
            .add_component(
                Component::new("IgnitionControl")
                    .input("rpm", DataType::Float)
                    .output("advance", DataType::Float)
                    .with_behavior(Behavior::expr(
                        "advance",
                        parse("clamp(10.0 + rpm * 0.003, 10.0, 35.0)").unwrap(),
                    )),
            )
            .unwrap();
        let diagnosis = m
            .add_component(
                Component::new("DiagnosisMonitoring")
                    .input("ti", DataType::Float)
                    .input("advance", DataType::Float)
                    .output("ti_limit", DataType::Float)
                    .with_behavior(Behavior::expr(
                        "ti_limit",
                        parse("if ti + advance * 0.1 > 12.0 then 6.0 else 20.0").unwrap(),
                    )),
            )
            .unwrap();
        let ccd = Ccd::new()
            .cluster(Cluster::new("fuel_control", fuel, 1))
            .cluster(Cluster::new("ignition_control", ignition, 1))
            .cluster(Cluster::new("diagnosis_monitoring", diagnosis, 10))
            .channel(CcdChannel::direct(
                "fuel_control",
                "ti",
                "diagnosis_monitoring",
                "ti",
            ))
            .channel(CcdChannel::direct(
                "ignition_control",
                "advance",
                "diagnosis_monitoring",
                "advance",
            ))
            .channel(
                CcdChannel::direct(
                    "diagnosis_monitoring",
                    "ti_limit",
                    "fuel_control",
                    "ti_limit",
                )
                .with_delays(1),
            );
        (ccd, ())
    }
}
