//! Interpreter for the miniature ASCET model.
//!
//! Executes an [`AscetModel`] on a 1 ms time base: at every millisecond,
//! each process whose period divides the current time runs to completion
//! (module order, then process order — ASCET's deterministic static
//! schedule within a rate). Message values persist between activations.
//!
//! The interpreter produces a kernel [`Trace`] so that reengineered
//! AutoMoDe models can be validated against the original by trace
//! equivalence — the ground truth of the paper's case study (Sec. 5).

use std::collections::BTreeMap;

use automode_kernel::{Message, Trace, Value};
use automode_lang::{Env, Expr};

use crate::error::AscetError;
use crate::model::{AscetModel, Stmt};

/// An external stimulus: values driven onto `Receive` messages each
/// millisecond, before any process runs.
pub type Stimulus = BTreeMap<String, Box<dyn Fn(u64) -> Option<Value>>>;

/// Builds a stimulus from `(message, f)` pairs.
pub fn stimulus(
    pairs: impl IntoIterator<Item = (String, Box<dyn Fn(u64) -> Option<Value>>)>,
) -> Stimulus {
    pairs.into_iter().collect()
}

/// The interpreter state.
#[derive(Debug)]
pub struct AscetInterp<'m> {
    model: &'m AscetModel,
    state: BTreeMap<String, Value>,
    time_ms: u64,
}

impl<'m> AscetInterp<'m> {
    /// Creates an interpreter, validating the model first.
    ///
    /// # Errors
    ///
    /// Propagates model validation errors.
    pub fn new(model: &'m AscetModel) -> Result<Self, AscetError> {
        model.validate()?;
        // Writer declarations carry the authoritative initial value.
        let mut state = BTreeMap::new();
        for (_, d) in model.all_messages() {
            if !state.contains_key(&d.name) {
                let authoritative = model.find_message(&d.name).expect("exists");
                state.insert(d.name.clone(), authoritative.init.clone());
            }
        }
        Ok(AscetInterp {
            model,
            state,
            time_ms: 0,
        })
    }

    /// Current value of a message.
    pub fn value(&self, msg: &str) -> Option<&Value> {
        self.state.get(msg)
    }

    /// Executes one millisecond: applies the stimulus, then runs all due
    /// processes.
    ///
    /// # Errors
    ///
    /// Returns evaluation errors from process bodies.
    pub fn step_ms(&mut self, stim: &Stimulus) -> Result<(), AscetError> {
        for (msg, f) in stim {
            if let Some(v) = f(self.time_ms) {
                self.state.insert(msg.clone(), v);
            }
        }
        for module in &self.model.modules {
            for p in &module.processes {
                if self.time_ms.is_multiple_of(p.period_ms as u64) {
                    for s in &p.body {
                        self.exec(s)?;
                    }
                }
            }
        }
        self.time_ms += 1;
        Ok(())
    }

    fn env(&self) -> Env {
        self.state
            .iter()
            .map(|(k, v)| (k.clone(), Message::Present(v.clone())))
            .collect()
    }

    fn eval(&self, expr: &Expr) -> Result<Value, AscetError> {
        match expr.eval(&self.env())? {
            Message::Present(v) => Ok(v),
            Message::Absent => Err(AscetError::Condition(
                "expression evaluated to absent in imperative context".to_string(),
            )),
        }
    }

    fn exec(&mut self, stmt: &Stmt) -> Result<(), AscetError> {
        match stmt {
            Stmt::Assign { target, expr } => {
                let v = self.eval(expr)?;
                self.state.insert(target.clone(), v);
                Ok(())
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.eval(cond)?;
                let branch = match c {
                    Value::Bool(true) => then_branch,
                    Value::Bool(false) => else_branch,
                    other => {
                        return Err(AscetError::Condition(format!(
                            "evaluated to {} `{other}`",
                            other.type_name()
                        )))
                    }
                };
                for s in branch {
                    self.exec(s)?;
                }
                Ok(())
            }
        }
    }

    /// Runs for `ms` milliseconds, recording the named messages each
    /// millisecond (after the due processes ran).
    ///
    /// # Errors
    ///
    /// Returns the first evaluation error.
    pub fn run(&mut self, ms: u64, stim: &Stimulus, record: &[&str]) -> Result<Trace, AscetError> {
        let mut trace = Trace::new();
        for name in record {
            trace.declare(*name);
        }
        for _ in 0..ms {
            self.step_ms(stim)?;
            let row: Vec<(String, Message)> = record
                .iter()
                .map(|name| {
                    (
                        name.to_string(),
                        self.state
                            .get(*name)
                            .cloned()
                            .map(Message::Present)
                            .unwrap_or(Message::Absent),
                    )
                })
                .collect();
            trace.push_row(&row).expect("record names are unique");
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AscetType, MessageDecl, MessageKind, Module, Process};
    use automode_lang::parse;

    fn counter_model() -> AscetModel {
        AscetModel::new("counter").module(
            Module::new("m")
                .message(MessageDecl::new(
                    "count",
                    AscetType::SDisc,
                    MessageKind::Send,
                ))
                .process(Process::new(
                    "inc",
                    10,
                    vec![Stmt::assign("count", parse("count + 1").unwrap())],
                )),
        )
    }

    #[test]
    fn periodic_process_runs_at_rate() {
        let model = counter_model();
        let mut interp = AscetInterp::new(&model).unwrap();
        let stim = Stimulus::new();
        for _ in 0..25 {
            interp.step_ms(&stim).unwrap();
        }
        // Activations at t = 0, 10, 20 -> count == 3.
        assert_eq!(interp.value("count"), Some(&Value::Int(3)));
    }

    #[test]
    fn stimulus_drives_receive_messages() {
        let model = AscetModel::new("t").module(
            Module::new("m")
                .message(MessageDecl::new(
                    "inp",
                    AscetType::Cont,
                    MessageKind::Receive,
                ))
                .message(MessageDecl::new("out", AscetType::Cont, MessageKind::Send))
                .process(Process::new(
                    "copy",
                    1,
                    vec![Stmt::assign("out", parse("inp * 2.0").unwrap())],
                )),
        );
        let mut interp = AscetInterp::new(&model).unwrap();
        let mut stim = Stimulus::new();
        stim.insert("inp".into(), Box::new(|t| Some(Value::Float(t as f64))));
        let trace = interp.run(4, &stim, &["out"]).unwrap();
        let vals: Vec<f64> = trace
            .signal("out")
            .unwrap()
            .present_values()
            .iter()
            .map(|v| v.as_float().unwrap())
            .collect();
        assert_eq!(vals, vec![0.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn if_branches_execute_exclusively() {
        let model = AscetModel::new("t").module(
            Module::new("m")
                .message(MessageDecl::new(
                    "flag",
                    AscetType::Log,
                    MessageKind::Receive,
                ))
                .message(MessageDecl::new("y", AscetType::SDisc, MessageKind::Send))
                .process(Process::new(
                    "p",
                    1,
                    vec![Stmt::If {
                        cond: parse("flag").unwrap(),
                        then_branch: vec![Stmt::assign("y", parse("1").unwrap())],
                        else_branch: vec![Stmt::assign("y", parse("2").unwrap())],
                    }],
                )),
        );
        let mut interp = AscetInterp::new(&model).unwrap();
        let mut stim = Stimulus::new();
        stim.insert("flag".into(), Box::new(|t| Some(Value::Bool(t % 2 == 0))));
        let trace = interp.run(4, &stim, &["y"]).unwrap();
        let vals: Vec<i64> = trace
            .signal("y")
            .unwrap()
            .present_values()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(vals, vec![1, 2, 1, 2]);
    }

    #[test]
    fn non_bool_condition_reported() {
        let model = AscetModel::new("t").module(
            Module::new("m")
                .message(MessageDecl::new("x", AscetType::SDisc, MessageKind::Send))
                .process(Process::new(
                    "p",
                    1,
                    vec![Stmt::If {
                        cond: parse("x").unwrap(),
                        then_branch: vec![],
                        else_branch: vec![],
                    }],
                )),
        );
        let mut interp = AscetInterp::new(&model).unwrap();
        let err = interp.step_ms(&Stimulus::new()).unwrap_err();
        assert!(matches!(err, AscetError::Condition(_)));
    }

    #[test]
    fn state_persists_between_activations() {
        let model = counter_model();
        let mut interp = AscetInterp::new(&model).unwrap();
        let stim = Stimulus::new();
        let trace = interp.run(21, &stim, &["count"]).unwrap();
        let s = trace.signal("count").unwrap();
        // After t=0 tick: 1; stays 1 until t=10 tick: 2; ...
        assert_eq!(s[0], Message::present(1i64));
        assert_eq!(s[9], Message::present(1i64));
        assert_eq!(s[10], Message::present(2i64));
        assert_eq!(s[20], Message::present(3i64));
    }
}
