//! The miniature ASCET-SD model: modules, processes, messages, statements.
//!
//! ASCET-SD structures software into *modules* containing *processes*
//! (scheduled periodically by the OS) that communicate via *messages*
//! (rate-monotonic shared variables with data-integrity semantics). Process
//! bodies use imperative control flow — notably the If-Then-Else operators
//! in which, per the paper's case study, "implicit modes of ASCET processes"
//! hide: "more traditional approaches would suggest to use conditional
//! operators such as If-Then-Else to either respond with a constant factor
//! or to trigger a more complex algorithmic computation" (Sec. 5).

use automode_kernel::Value;
use automode_lang::Expr;

use crate::error::AscetError;

/// ASCET elementary types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AscetType {
    /// Continuous quantity (`cont`): floating point.
    Cont,
    /// Signed discrete (`sdisc`): integer.
    SDisc,
    /// Logic (`log`): Boolean — the type of the case study's "flags".
    Log,
}

impl AscetType {
    /// The corresponding base-language type.
    pub fn lang_type(&self) -> automode_lang::Type {
        match self {
            AscetType::Cont => automode_lang::Type::Float,
            AscetType::SDisc => automode_lang::Type::Int,
            AscetType::Log => automode_lang::Type::Bool,
        }
    }

    /// A type-conforming default value.
    pub fn default_value(&self) -> Value {
        match self {
            AscetType::Cont => Value::Float(0.0),
            AscetType::SDisc => Value::Int(0),
            AscetType::Log => Value::Bool(false),
        }
    }
}

impl std::fmt::Display for AscetType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AscetType::Cont => "cont",
            AscetType::SDisc => "sdisc",
            AscetType::Log => "log",
        };
        f.write_str(s)
    }
}

/// Message visibility/role within a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// Read from other modules (or the environment).
    Receive,
    /// Written for other modules.
    Send,
    /// Module-local state.
    Local,
}

/// A message declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct MessageDecl {
    /// Message name (globally unique across the model, as in ASCET
    /// project-level message binding).
    pub name: String,
    /// Elementary type.
    pub ty: AscetType,
    /// Initial value.
    pub init: Value,
    /// Role.
    pub kind: MessageKind,
}

impl MessageDecl {
    /// Creates a message with the type's default initial value.
    pub fn new(name: impl Into<String>, ty: AscetType, kind: MessageKind) -> Self {
        MessageDecl {
            name: name.into(),
            init: ty.default_value(),
            ty,
            kind,
        }
    }

    /// Overrides the initial value (builder style).
    pub fn init(mut self, v: impl Into<Value>) -> Self {
        self.init = v.into();
        self
    }
}

/// An imperative statement of a process body.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `target := expr`.
    Assign {
        /// The assigned message.
        target: String,
        /// The value expression.
        expr: Expr,
    },
    /// `IF cond THEN ... ELSE ...` — the control-flow operator whose
    /// cascades hide implicit modes.
    If {
        /// The condition (Boolean).
        cond: Expr,
        /// The THEN branch.
        then_branch: Vec<Stmt>,
        /// The ELSE branch.
        else_branch: Vec<Stmt>,
    },
}

impl Stmt {
    /// Convenience constructor for assignments.
    pub fn assign(target: impl Into<String>, expr: Expr) -> Stmt {
        Stmt::Assign {
            target: target.into(),
            expr,
        }
    }

    /// Messages read by this statement (free identifiers).
    pub fn reads(&self, out: &mut Vec<String>) {
        match self {
            Stmt::Assign { expr, .. } => {
                for id in expr.free_idents() {
                    if !out.contains(&id) {
                        out.push(id);
                    }
                }
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                for id in cond.free_idents() {
                    if !out.contains(&id) {
                        out.push(id);
                    }
                }
                for s in then_branch.iter().chain(else_branch) {
                    s.reads(out);
                }
            }
        }
    }

    /// Messages written by this statement.
    pub fn writes(&self, out: &mut Vec<String>) {
        match self {
            Stmt::Assign { target, .. } => {
                if !out.contains(target) {
                    out.push(target.clone());
                }
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                for s in then_branch.iter().chain(else_branch) {
                    s.writes(out);
                }
            }
        }
    }

    /// Number of `If` statements, counting nesting.
    pub fn if_count(&self) -> usize {
        match self {
            Stmt::Assign { expr, .. } => expr.if_count(),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                1 + cond.if_count()
                    + then_branch.iter().map(Stmt::if_count).sum::<usize>()
                    + else_branch.iter().map(Stmt::if_count).sum::<usize>()
            }
        }
    }
}

/// A periodically scheduled process.
#[derive(Debug, Clone, PartialEq)]
pub struct Process {
    /// Process name.
    pub name: String,
    /// Period in milliseconds.
    pub period_ms: u32,
    /// The body.
    pub body: Vec<Stmt>,
}

impl Process {
    /// Creates a process.
    pub fn new(name: impl Into<String>, period_ms: u32, body: Vec<Stmt>) -> Self {
        Process {
            name: name.into(),
            period_ms,
            body,
        }
    }

    /// All messages read by the body.
    pub fn reads(&self) -> Vec<String> {
        let mut out = Vec::new();
        for s in &self.body {
            s.reads(&mut out);
        }
        out
    }

    /// All messages written by the body.
    pub fn writes(&self) -> Vec<String> {
        let mut out = Vec::new();
        for s in &self.body {
            s.writes(&mut out);
        }
        out
    }

    /// Total If-Then-Else count of the body.
    pub fn if_count(&self) -> usize {
        self.body.iter().map(Stmt::if_count).sum()
    }
}

/// An ASCET module: messages plus processes.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Message declarations.
    pub messages: Vec<MessageDecl>,
    /// Processes.
    pub processes: Vec<Process>,
}

impl Module {
    /// An empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            messages: Vec::new(),
            processes: Vec::new(),
        }
    }

    /// Adds a message (builder style).
    pub fn message(mut self, m: MessageDecl) -> Self {
        self.messages.push(m);
        self
    }

    /// Adds a process (builder style).
    pub fn process(mut self, p: Process) -> Self {
        self.processes.push(p);
        self
    }

    /// Finds a message declaration.
    pub fn find_message(&self, name: &str) -> Option<&MessageDecl> {
        self.messages.iter().find(|m| m.name == name)
    }
}

/// A complete ASCET model.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AscetModel {
    /// Model name.
    pub name: String,
    /// Modules.
    pub modules: Vec<Module>,
}

impl AscetModel {
    /// An empty model.
    pub fn new(name: impl Into<String>) -> Self {
        AscetModel {
            name: name.into(),
            modules: Vec::new(),
        }
    }

    /// Adds a module (builder style).
    pub fn module(mut self, m: Module) -> Self {
        self.modules.push(m);
        self
    }

    /// All message declarations across modules.
    pub fn all_messages(&self) -> impl Iterator<Item = (&Module, &MessageDecl)> {
        self.modules
            .iter()
            .flat_map(|m| m.messages.iter().map(move |d| (m, d)))
    }

    /// Resolves a message by name anywhere in the model. When several
    /// modules declare the name (project-level message binding: one `Send`
    /// writer, several `Receive` importers), the writer's declaration wins
    /// — it carries the authoritative type and initial value.
    pub fn find_message(&self, name: &str) -> Option<&MessageDecl> {
        let mut found = None;
        for (_, d) in self.all_messages() {
            if d.name == name {
                if d.kind != MessageKind::Receive {
                    return Some(d);
                }
                found.get_or_insert(d);
            }
        }
        found
    }

    /// Validates the model: unique module names, globally unique message
    /// names, process periods positive, every read/written message declared
    /// somewhere, every written message writable from the declaring
    /// module's perspective (not `Receive` in the writing module unless
    /// declared elsewhere as `Send`/`Local`... in this miniature: any
    /// declared message may be written by the module that declares it as
    /// `Send`/`Local`, and read by anyone).
    ///
    /// # Errors
    ///
    /// Returns the first [`AscetError`] found.
    pub fn validate(&self) -> Result<(), AscetError> {
        for (i, m) in self.modules.iter().enumerate() {
            if self.modules[..i].iter().any(|n| n.name == m.name) {
                return Err(AscetError::DuplicateName(m.name.clone()));
            }
        }
        // Project-level message binding: a name may be declared in several
        // modules, but with at most one writer (`Send`/`Local`); a module
        // never declares the same name twice.
        for module in &self.modules {
            let mut local_seen: Vec<&str> = Vec::new();
            for d in &module.messages {
                if local_seen.contains(&d.name.as_str()) {
                    return Err(AscetError::DuplicateName(d.name.clone()));
                }
                local_seen.push(&d.name);
            }
        }
        let mut writers: Vec<&str> = Vec::new();
        for (_, d) in self.all_messages() {
            if d.kind != MessageKind::Receive {
                if writers.contains(&d.name.as_str()) {
                    return Err(AscetError::DuplicateName(d.name.clone()));
                }
                writers.push(&d.name);
            }
        }
        for module in &self.modules {
            for p in &module.processes {
                if p.period_ms == 0 {
                    return Err(AscetError::Config(format!(
                        "process `{}` has zero period",
                        p.name
                    )));
                }
                for r in p.reads() {
                    if self.find_message(&r).is_none() {
                        return Err(AscetError::UndeclaredMessage {
                            process: p.name.clone(),
                            message: r,
                        });
                    }
                }
                for w in p.writes() {
                    match self.find_message(&w) {
                        None => {
                            return Err(AscetError::UndeclaredMessage {
                                process: p.name.clone(),
                                message: w,
                            })
                        }
                        Some(d)
                            if d.kind == MessageKind::Receive
                                && module.find_message(&w).is_some() =>
                        {
                            return Err(AscetError::Config(format!(
                                "process `{}` writes receive-message `{w}`",
                                p.name
                            )))
                        }
                        _ => {}
                    }
                }
            }
        }
        Ok(())
    }

    /// Total If-Then-Else count across all processes — the implicit-mode
    /// metric of the case study.
    pub fn if_count(&self) -> usize {
        self.modules
            .iter()
            .flat_map(|m| m.processes.iter())
            .map(Process::if_count)
            .sum()
    }

    /// Number of `log` (Boolean flag) messages — the case study's central
    /// component "emits a large number of flags which altogether represent
    /// the global state of the engine".
    pub fn flag_count(&self) -> usize {
        self.all_messages()
            .filter(|(_, d)| d.ty == AscetType::Log && d.kind == MessageKind::Send)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automode_lang::parse;

    fn tiny() -> AscetModel {
        AscetModel::new("engine").module(
            Module::new("throttle")
                .message(MessageDecl::new(
                    "rpm",
                    AscetType::Cont,
                    MessageKind::Receive,
                ))
                .message(MessageDecl::new("rate", AscetType::Cont, MessageKind::Send))
                .message(MessageDecl::new("cranking", AscetType::Log, MessageKind::Send).init(true))
                .process(Process::new(
                    "calc_rate",
                    10,
                    vec![Stmt::If {
                        cond: parse("cranking").unwrap(),
                        then_branch: vec![Stmt::assign("rate", parse("0.2").unwrap())],
                        else_branch: vec![Stmt::assign("rate", parse("rpm * 0.001").unwrap())],
                    }],
                )),
        )
    }

    #[test]
    fn reads_writes_and_if_count() {
        let m = tiny();
        let p = &m.modules[0].processes[0];
        assert_eq!(p.reads(), vec!["cranking", "rpm"]);
        assert_eq!(p.writes(), vec!["rate"]);
        assert_eq!(p.if_count(), 1);
        assert_eq!(m.if_count(), 1);
        assert_eq!(m.flag_count(), 1);
    }

    #[test]
    fn validation_passes_for_tiny() {
        tiny().validate().unwrap();
    }

    #[test]
    fn undeclared_message_rejected() {
        let m = AscetModel::new("bad").module(Module::new("m").process(Process::new(
            "p",
            10,
            vec![Stmt::assign("ghost", parse("1").unwrap())],
        )));
        assert!(matches!(
            m.validate(),
            Err(AscetError::UndeclaredMessage { .. })
        ));
    }

    #[test]
    fn writing_own_receive_message_rejected() {
        let m = AscetModel::new("bad").module(
            Module::new("m")
                .message(MessageDecl::new(
                    "in",
                    AscetType::Cont,
                    MessageKind::Receive,
                ))
                .process(Process::new(
                    "p",
                    10,
                    vec![Stmt::assign("in", parse("1.0").unwrap())],
                )),
        );
        assert!(matches!(m.validate(), Err(AscetError::Config(_))));
    }

    #[test]
    fn duplicate_names_rejected() {
        let m = AscetModel::new("bad")
            .module(Module::new("m"))
            .module(Module::new("m"));
        assert!(matches!(m.validate(), Err(AscetError::DuplicateName(_))));

        let m = AscetModel::new("bad")
            .module(Module::new("a").message(MessageDecl::new(
                "x",
                AscetType::Cont,
                MessageKind::Send,
            )))
            .module(Module::new("b").message(MessageDecl::new(
                "x",
                AscetType::Cont,
                MessageKind::Send,
            )));
        assert!(matches!(m.validate(), Err(AscetError::DuplicateName(_))));
    }

    #[test]
    fn zero_period_rejected() {
        let m =
            AscetModel::new("bad").module(Module::new("m").process(Process::new("p", 0, vec![])));
        assert!(matches!(m.validate(), Err(AscetError::Config(_))));
    }

    #[test]
    fn type_helpers() {
        assert_eq!(AscetType::Cont.default_value(), Value::Float(0.0));
        assert_eq!(AscetType::Log.lang_type(), automode_lang::Type::Bool);
        assert_eq!(AscetType::SDisc.to_string(), "sdisc");
    }
}
