//! OA project generation: ASCET-SD-style projects per ECU.
//!
//! "Based on the deployment decisions, the AutoMoDe tool prototype will
//! generate ASCET-SD projects for each ECU of the target architecture. ...
//! In all generated ASCET-SD projects, additional communication components
//! have to be added which can be configured according to the generated or
//! supplemented communication matrix" (paper, Sec. 3.4).
//!
//! A [`Project`] bundles, for one ECU, a project manifest, one C-like
//! source file per module, and a communication-component stub per bus
//! signal. Output is deterministic text, so golden tests are possible.

use std::fmt::Write as _;

use automode_kernel::ops::{BinOp, UnOp};
use automode_kernel::Value;
use automode_lang::Expr;

use crate::error::AscetError;
use crate::model::{AscetModel, AscetType, MessageKind, Module, Stmt};

/// A generated file: `(path, contents)`.
pub type GeneratedFile = (String, String);

/// A generated per-ECU project.
#[derive(Debug, Clone, PartialEq)]
pub struct Project {
    /// The ECU this project targets.
    pub ecu: String,
    /// Generated files in deterministic order.
    pub files: Vec<GeneratedFile>,
}

impl Project {
    /// Looks up a generated file by path.
    pub fn file(&self, path: &str) -> Option<&str> {
        self.files
            .iter()
            .find(|(p, _)| p == path)
            .map(|(_, c)| c.as_str())
    }

    /// Total generated size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.files.iter().map(|(_, c)| c.len()).sum()
    }
}

fn c_type(ty: AscetType) -> &'static str {
    match ty {
        AscetType::Cont => "float",
        AscetType::SDisc => "int32",
        AscetType::Log => "bool",
    }
}

fn c_value(v: &Value) -> String {
    match v {
        Value::Bool(b) => if *b { "true" } else { "false" }.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(x) => {
            if x.fract() == 0.0 {
                format!("{x:.1}f")
            } else {
                format!("{x}f")
            }
        }
        Value::Fixed(q) => format!("{} /* q{} */", q.raw(), q.frac_bits()),
        Value::Sym(s) => s.to_uppercase(),
    }
}

fn c_binop(op: BinOp) -> Result<&'static str, AscetError> {
    Ok(match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::And => "&&",
        BinOp::Or => "||",
        BinOp::Min | BinOp::Max => {
            return Err(AscetError::Config(
                "min/max are emitted as calls, not operators".to_string(),
            ))
        }
    })
}

/// Renders a base-language expression as C.
///
/// # Errors
///
/// Returns [`AscetError::Config`] for constructs with no C equivalent in
/// the generated runtime (`present`, `?`).
pub fn expr_to_c(expr: &Expr) -> Result<String, AscetError> {
    Ok(match expr {
        Expr::Lit(v) => c_value(v),
        Expr::Ident(n) => n.clone(),
        Expr::Unary(UnOp::Neg, e) => format!("(-{})", expr_to_c(e)?),
        Expr::Unary(UnOp::Not, e) => format!("(!{})", expr_to_c(e)?),
        Expr::Unary(UnOp::Abs, e) => format!("fabsf({})", expr_to_c(e)?),
        Expr::Binary(BinOp::Min, a, b) => {
            format!("fminf({}, {})", expr_to_c(a)?, expr_to_c(b)?)
        }
        Expr::Binary(BinOp::Max, a, b) => {
            format!("fmaxf({}, {})", expr_to_c(a)?, expr_to_c(b)?)
        }
        Expr::Binary(op, a, b) => {
            format!("({} {} {})", expr_to_c(a)?, c_binop(*op)?, expr_to_c(b)?)
        }
        Expr::If(c, t, e) => format!(
            "({} ? {} : {})",
            expr_to_c(c)?,
            expr_to_c(t)?,
            expr_to_c(e)?
        ),
        Expr::Call(name, args) => {
            let mapped = match name.as_str() {
                "min" => "fminf",
                "max" => "fmaxf",
                "abs" => "fabsf",
                "clamp" => "clampf",
                other => {
                    return Err(AscetError::Config(format!(
                        "no C mapping for function `{other}`"
                    )))
                }
            };
            let rendered: Result<Vec<String>, AscetError> = args.iter().map(expr_to_c).collect();
            format!("{mapped}({})", rendered?.join(", "))
        }
        Expr::Present(_) | Expr::OrElse(_, _) => {
            return Err(AscetError::Config(
                "presence operators have no C equivalent; refine the model first".to_string(),
            ))
        }
    })
}

fn stmt_to_c(stmt: &Stmt, indent: usize, out: &mut String) -> Result<(), AscetError> {
    let pad = "    ".repeat(indent);
    match stmt {
        Stmt::Assign { target, expr } => {
            let _ = writeln!(out, "{pad}{target} = {};", expr_to_c(expr)?);
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let _ = writeln!(out, "{pad}if ({}) {{", expr_to_c(cond)?);
            for s in then_branch {
                stmt_to_c(s, indent + 1, out)?;
            }
            if else_branch.is_empty() {
                let _ = writeln!(out, "{pad}}}");
            } else {
                let _ = writeln!(out, "{pad}}} else {{");
                for s in else_branch {
                    stmt_to_c(s, indent + 1, out)?;
                }
                let _ = writeln!(out, "{pad}}}");
            }
        }
    }
    Ok(())
}

fn module_source(module: &Module) -> Result<String, AscetError> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "/* generated by automode-ascet: module {} */",
        module.name
    );
    let _ = writeln!(out, "#include \"automode_rt.h\"");
    out.push('\n');
    for m in &module.messages {
        let qual = match m.kind {
            MessageKind::Receive => "extern ",
            MessageKind::Send => "",
            MessageKind::Local => "static ",
        };
        let _ = writeln!(
            out,
            "{qual}{} {} /* init: {} */;",
            c_type(m.ty),
            m.name,
            c_value(&m.init)
        );
    }
    out.push('\n');
    for p in &module.processes {
        let _ = writeln!(out, "/* period: {} ms */", p.period_ms);
        let _ = writeln!(out, "void {}_{}(void) {{", module.name, p.name);
        for s in &p.body {
            stmt_to_c(s, 1, &mut out)?;
        }
        let _ = writeln!(out, "}}");
        out.push('\n');
    }
    Ok(out)
}

/// Signals routed onto the bus for this ECU, as `(signal, direction)` where
/// direction is `"tx"` or `"rx"`.
pub type BusBinding = Vec<(String, &'static str)>;

/// Generates the per-ECU project: manifest, per-module sources, OS task
/// configuration, and communication components for the bus bindings.
///
/// # Errors
///
/// Propagates model validation and C-mapping errors.
pub fn generate_project(
    ecu: &str,
    model: &AscetModel,
    bus_bindings: &BusBinding,
) -> Result<Project, AscetError> {
    model.validate()?;
    let mut files = Vec::new();

    // Manifest.
    let mut manifest = String::new();
    let _ = writeln!(manifest, "project {} for ecu {ecu}", model.name);
    let _ = writeln!(manifest, "modules {}", model.modules.len());
    for module in &model.modules {
        let _ = writeln!(manifest, "  module {}", module.name);
        for p in &module.processes {
            let _ = writeln!(manifest, "    process {} period {}ms", p.name, p.period_ms);
        }
        for msg in &module.messages {
            let kind = match msg.kind {
                MessageKind::Receive => "receive",
                MessageKind::Send => "send",
                MessageKind::Local => "local",
            };
            let _ = writeln!(manifest, "    message {} {} {}", msg.name, msg.ty, kind);
        }
    }
    files.push((format!("{ecu}/project.amdesc"), manifest));

    // OS configuration: one task per distinct period, rate-monotonic
    // priorities (shorter period = higher priority = lower number).
    let mut periods: Vec<u32> = model
        .modules
        .iter()
        .flat_map(|m| m.processes.iter().map(|p| p.period_ms))
        .collect();
    periods.sort_unstable();
    periods.dedup();
    let mut oscfg = String::new();
    let _ = writeln!(oscfg, "/* OSEK OS configuration for {ecu} */");
    for (prio, period) in periods.iter().enumerate() {
        let _ = writeln!(oscfg, "TASK task_{period}ms {{");
        let _ = writeln!(oscfg, "    PRIORITY = {prio};");
        let _ = writeln!(oscfg, "    SCHEDULE = FULL;");
        let _ = writeln!(oscfg, "    /* alarms activate every {period} ms */");
        for module in &model.modules {
            for p in module.processes.iter().filter(|p| p.period_ms == *period) {
                let _ = writeln!(oscfg, "    CALL {}_{};", module.name, p.name);
            }
        }
        let _ = writeln!(oscfg, "}}");
    }
    files.push((format!("{ecu}/os.oil"), oscfg));

    // Module sources.
    for module in &model.modules {
        files.push((format!("{ecu}/{}.c", module.name), module_source(module)?));
    }

    // Communication components from bus bindings.
    if !bus_bindings.is_empty() {
        let mut com = String::new();
        let _ = writeln!(com, "/* communication components for {ecu} */");
        for (signal, dir) in bus_bindings {
            let _ = writeln!(com, "void com_{dir}_{signal}(void) {{");
            match *dir {
                "tx" => {
                    let _ = writeln!(com, "    can_send(SIG_{});", signal.to_uppercase());
                }
                _ => {
                    let _ = writeln!(com, "    can_receive(SIG_{});", signal.to_uppercase());
                }
            }
            let _ = writeln!(com, "}}");
        }
        files.push((format!("{ecu}/com.c"), com));
    }

    Ok(Project {
        ecu: ecu.to_string(),
        files,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AscetModel, MessageDecl, Process};
    use automode_lang::parse;

    fn model() -> AscetModel {
        AscetModel::new("engine").module(
            Module::new("throttle")
                .message(MessageDecl::new(
                    "rpm",
                    AscetType::Cont,
                    MessageKind::Receive,
                ))
                .message(MessageDecl::new("rate", AscetType::Cont, MessageKind::Send))
                .message(MessageDecl::new("b_crank", AscetType::Log, MessageKind::Local).init(true))
                .process(Process::new(
                    "calc",
                    10,
                    vec![Stmt::If {
                        cond: parse("b_crank").unwrap(),
                        then_branch: vec![Stmt::assign("rate", parse("0.2").unwrap())],
                        else_branch: vec![Stmt::assign(
                            "rate",
                            parse("clamp(rpm * 0.001, 0.0, 1.0)").unwrap(),
                        )],
                    }],
                ))
                .process(Process::new(
                    "slow",
                    100,
                    vec![Stmt::assign("rate", parse("min(rate, 0.9)").unwrap())],
                )),
        )
    }

    #[test]
    fn expr_rendering() {
        assert_eq!(
            expr_to_c(&parse("a + b * 2").unwrap()).unwrap(),
            "(a + (b * 2))"
        );
        assert_eq!(
            expr_to_c(&parse("if c then 1 else 2").unwrap()).unwrap(),
            "(c ? 1 : 2)"
        );
        assert_eq!(
            expr_to_c(&parse("min(a, abs(b))").unwrap()).unwrap(),
            "fminf(a, fabsf(b))"
        );
        assert_eq!(
            expr_to_c(&parse("not a and b").unwrap()).unwrap(),
            "((!a) && b)"
        );
        assert!(expr_to_c(&parse("present(x)").unwrap()).is_err());
        assert!(expr_to_c(&parse("x ? 0").unwrap()).is_err());
    }

    #[test]
    fn project_layout_is_deterministic() {
        let m = model();
        let p1 = generate_project("engine_ecu", &m, &vec![("rate".into(), "tx")]).unwrap();
        let p2 = generate_project("engine_ecu", &m, &vec![("rate".into(), "tx")]).unwrap();
        assert_eq!(p1, p2);
        let paths: Vec<&str> = p1.files.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                "engine_ecu/project.amdesc",
                "engine_ecu/os.oil",
                "engine_ecu/throttle.c",
                "engine_ecu/com.c"
            ]
        );
    }

    #[test]
    fn manifest_lists_structure() {
        let p = generate_project("e", &model(), &vec![]).unwrap();
        let manifest = p.file("e/project.amdesc").unwrap();
        assert!(manifest.contains("module throttle"));
        assert!(manifest.contains("process calc period 10ms"));
        assert!(manifest.contains("message rpm cont receive"));
    }

    #[test]
    fn os_config_groups_by_period_rate_monotonic() {
        let p = generate_project("e", &model(), &vec![]).unwrap();
        let oil = p.file("e/os.oil").unwrap();
        assert!(oil.contains("TASK task_10ms"));
        assert!(oil.contains("TASK task_100ms"));
        // 10ms task has higher priority (lower number).
        let p10 = oil.find("task_10ms").unwrap();
        let p100 = oil.find("task_100ms").unwrap();
        assert!(p10 < p100);
        assert!(oil.contains("CALL throttle_calc;"));
    }

    #[test]
    fn module_source_compiles_control_flow() {
        let p = generate_project("e", &model(), &vec![]).unwrap();
        let src = p.file("e/throttle.c").unwrap();
        assert!(src.contains("void throttle_calc(void)"));
        assert!(src.contains("if (b_crank) {"));
        assert!(src.contains("rate = 0.2f;"));
        assert!(src.contains("} else {"));
        assert!(src.contains("clampf((rpm * 0.001f), 0.0f, 1.0f)"));
        assert!(src.contains("extern float rpm"));
        assert!(src.contains("static bool b_crank"));
    }

    #[test]
    fn com_components_generated_per_binding() {
        let p = generate_project(
            "e",
            &model(),
            &vec![("rate".into(), "tx"), ("rpm".into(), "rx")],
        )
        .unwrap();
        let com = p.file("e/com.c").unwrap();
        assert!(com.contains("void com_tx_rate(void)"));
        assert!(com.contains("can_send(SIG_RATE);"));
        assert!(com.contains("void com_rx_rpm(void)"));
        assert!(com.contains("can_receive(SIG_RPM);"));
        assert!(p.size_bytes() > 0);
    }

    #[test]
    fn invalid_model_rejected() {
        let bad = AscetModel::new("bad").module(Module::new("m").process(Process::new(
            "p",
            10,
            vec![Stmt::assign("ghost", parse("1").unwrap())],
        )));
        assert!(generate_project("e", &bad, &vec![]).is_err());
    }
}
