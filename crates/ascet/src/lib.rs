//! # automode-ascet
//!
//! A miniature **ASCET-SD-like substrate**. The AutoMoDe project used the
//! commercial ASCET-SD tool (paper ref. 13) in two roles; this crate reproduces
//! both against a faithful miniature model (the real tool is proprietary):
//!
//! 1. **Reengineering source** (paper, Sec. 4/5): "white-box reengineering
//!    considers complete software implementations (e.g. ASCET-SD models)".
//!    [`model`] defines modules with processes, inter-process *messages*,
//!    and If-Then-Else control flow — the style in which the four-stroke
//!    gasoline engine controller of the case study is written, with its
//!    implicit modes hidden in conditionals and flag variables.
//!    [`analysis`] finds those implicit modes (the input to MTD
//!    extraction), and [`interp`] executes the model so reengineering can
//!    be validated by trace equivalence.
//! 2. **OA code-generation target** (Sec. 3.4): "the AutoMoDe tool
//!    prototype will generate ASCET-SD projects for each ECU of the target
//!    architecture". [`codegen`] emits per-ECU project manifests and
//!    C-like process implementations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod codegen;
pub mod error;
pub mod interp;
pub mod model;

pub use analysis::{central_flag_module, mode_candidates, ModeCandidate};
pub use codegen::{generate_project, Project};
pub use error::AscetError;
pub use interp::{AscetInterp, Stimulus};
pub use model::{AscetModel, AscetType, MessageDecl, MessageKind, Module, Process, Stmt};
