//! Errors of the ASCET substrate.

use std::error::Error;
use std::fmt;

use automode_lang::LangError;

/// Errors raised while building, executing, or generating ASCET models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AscetError {
    /// A duplicate name where names must be unique.
    DuplicateName(String),
    /// A reference to an unknown message or module.
    Unknown {
        /// Entity kind.
        kind: &'static str,
        /// The missing name.
        name: String,
    },
    /// A process assigned to a message it did not declare.
    UndeclaredMessage {
        /// The process.
        process: String,
        /// The message.
        message: String,
    },
    /// An expression failed to evaluate or type check.
    Lang(LangError),
    /// An `if` condition did not evaluate to a Boolean.
    Condition(String),
    /// Invalid configuration (periods, etc.).
    Config(String),
}

impl fmt::Display for AscetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AscetError::DuplicateName(n) => write!(f, "duplicate name `{n}`"),
            AscetError::Unknown { kind, name } => write!(f, "unknown {kind} `{name}`"),
            AscetError::UndeclaredMessage { process, message } => {
                write!(f, "process `{process}` uses undeclared message `{message}`")
            }
            AscetError::Lang(e) => write!(f, "{e}"),
            AscetError::Condition(msg) => write!(f, "condition not boolean: {msg}"),
            AscetError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for AscetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AscetError::Lang(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LangError> for AscetError {
    fn from(e: LangError) -> Self {
        AscetError::Lang(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = AscetError::UndeclaredMessage {
            process: "p".into(),
            message: "m".into(),
        };
        assert!(e.to_string().contains("undeclared"));
        let e: AscetError = LangError::Unbound("x".into()).into();
        assert!(Error::source(&e).is_some());
    }
}
