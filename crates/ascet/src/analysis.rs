//! White-box analysis: finding the implicit modes of an ASCET model.
//!
//! The case study observed that "implicit modes of ASCET processes can be
//! made explicit to the developer by using MTDs, rather than control flow
//! operators such as If-Then-Else" (paper, Sec. 5, Fig. 8). This module
//! implements the detection half of that reengineering step: it scans
//! process bodies for top-level If-Then-Else statements whose condition
//! tests Boolean *flag* messages and whose branches define alternate
//! behaviours for the same outputs — precisely the `ThrottleRateOfChange`
//! pattern. The extraction half (building the MTD) lives in
//! `automode-transform`.

use automode_lang::Expr;

use crate::model::{AscetModel, AscetType, Stmt};

/// An implicit mode found in an ASCET process.
#[derive(Debug, Clone, PartialEq)]
pub struct ModeCandidate {
    /// The module containing the process.
    pub module: String,
    /// The process.
    pub process: String,
    /// The discriminating condition of the If-Then-Else.
    pub condition: Expr,
    /// The Boolean flag messages the condition tests.
    pub flags: Vec<String>,
    /// Statements of the THEN branch (one mode's behaviour).
    pub then_branch: Vec<Stmt>,
    /// Statements of the ELSE branch (the other mode's behaviour).
    pub else_branch: Vec<Stmt>,
    /// The outputs both branches define.
    pub shared_writes: Vec<String>,
}

impl ModeCandidate {
    /// A quality score: candidates whose branches fully agree on their
    /// write sets are the safest to extract.
    pub fn is_exhaustive(&self) -> bool {
        let mut then_w = Vec::new();
        let mut else_w = Vec::new();
        for s in &self.then_branch {
            s.writes(&mut then_w);
        }
        for s in &self.else_branch {
            s.writes(&mut else_w);
        }
        then_w.sort();
        else_w.sort();
        then_w == else_w && !then_w.is_empty()
    }
}

/// Scans the model for implicit-mode candidates: top-level `If` statements
/// whose condition reads at least one `log` message and whose branches both
/// write at least one common message.
pub fn mode_candidates(model: &AscetModel) -> Vec<ModeCandidate> {
    let mut out = Vec::new();
    for module in &model.modules {
        for process in &module.processes {
            for stmt in &process.body {
                let Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                } = stmt
                else {
                    continue;
                };
                let flags: Vec<String> = cond
                    .free_idents()
                    .into_iter()
                    .filter(|id| {
                        model
                            .find_message(id)
                            .map(|d| d.ty == AscetType::Log)
                            .unwrap_or(false)
                    })
                    .collect();
                if flags.is_empty() {
                    continue;
                }
                let mut then_w = Vec::new();
                let mut else_w = Vec::new();
                for s in then_branch {
                    s.writes(&mut then_w);
                }
                for s in else_branch {
                    s.writes(&mut else_w);
                }
                let shared: Vec<String> = then_w
                    .iter()
                    .filter(|w| else_w.contains(w))
                    .cloned()
                    .collect();
                if shared.is_empty() {
                    continue;
                }
                out.push(ModeCandidate {
                    module: module.name.clone(),
                    process: process.name.clone(),
                    condition: cond.clone(),
                    flags,
                    then_branch: then_branch.clone(),
                    else_branch: else_branch.clone(),
                    shared_writes: shared,
                });
            }
        }
    }
    out
}

/// Finds the module emitting the most Boolean flags — the case study's
/// "centralized software component \[that\] emits a large number of flags
/// which altogether represent the global state of the engine". Returns the
/// module name and its flag count, if any module emits flags at all.
pub fn central_flag_module(model: &AscetModel) -> Option<(String, usize)> {
    model
        .modules
        .iter()
        .map(|m| {
            let count = m
                .messages
                .iter()
                .filter(|d| d.ty == AscetType::Log && d.kind == crate::model::MessageKind::Send)
                .count();
            (m.name.clone(), count)
        })
        .filter(|(_, c)| *c > 0)
        .max_by_key(|(_, c)| *c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{MessageDecl, MessageKind, Module, Process};
    use automode_lang::parse;

    fn throttle_like() -> AscetModel {
        AscetModel::new("engine").module(
            Module::new("throttle")
                .message(MessageDecl::new(
                    "rpm",
                    AscetType::Cont,
                    MessageKind::Receive,
                ))
                .message(MessageDecl::new("rate", AscetType::Cont, MessageKind::Send))
                .message(MessageDecl::new(
                    "b_cranking",
                    AscetType::Log,
                    MessageKind::Send,
                ))
                .process(Process::new(
                    "calc",
                    10,
                    vec![Stmt::If {
                        cond: parse("b_cranking").unwrap(),
                        then_branch: vec![Stmt::assign("rate", parse("0.2").unwrap())],
                        else_branch: vec![Stmt::assign("rate", parse("rpm * 0.001").unwrap())],
                    }],
                )),
        )
    }

    #[test]
    fn finds_flag_guarded_if() {
        let m = throttle_like();
        let cands = mode_candidates(&m);
        assert_eq!(cands.len(), 1);
        let c = &cands[0];
        assert_eq!(c.flags, vec!["b_cranking"]);
        assert_eq!(c.shared_writes, vec!["rate"]);
        assert!(c.is_exhaustive());
    }

    #[test]
    fn ignores_non_flag_conditions() {
        let m = AscetModel::new("t").module(
            Module::new("m")
                .message(MessageDecl::new("x", AscetType::Cont, MessageKind::Receive))
                .message(MessageDecl::new("y", AscetType::Cont, MessageKind::Send))
                .process(Process::new(
                    "p",
                    10,
                    vec![Stmt::If {
                        cond: parse("x > 1.0").unwrap(),
                        then_branch: vec![Stmt::assign("y", parse("1.0").unwrap())],
                        else_branch: vec![Stmt::assign("y", parse("2.0").unwrap())],
                    }],
                )),
        );
        assert!(mode_candidates(&m).is_empty());
    }

    #[test]
    fn ignores_branches_without_shared_writes() {
        let m = AscetModel::new("t").module(
            Module::new("m")
                .message(MessageDecl::new("f", AscetType::Log, MessageKind::Receive))
                .message(MessageDecl::new("a", AscetType::Cont, MessageKind::Send))
                .message(MessageDecl::new("b", AscetType::Cont, MessageKind::Send))
                .process(Process::new(
                    "p",
                    10,
                    vec![Stmt::If {
                        cond: parse("f").unwrap(),
                        then_branch: vec![Stmt::assign("a", parse("1.0").unwrap())],
                        else_branch: vec![Stmt::assign("b", parse("2.0").unwrap())],
                    }],
                )),
        );
        assert!(mode_candidates(&m).is_empty());
    }

    #[test]
    fn non_exhaustive_candidate_detected() {
        let m = AscetModel::new("t").module(
            Module::new("m")
                .message(MessageDecl::new("f", AscetType::Log, MessageKind::Receive))
                .message(MessageDecl::new("a", AscetType::Cont, MessageKind::Send))
                .message(MessageDecl::new("b", AscetType::Cont, MessageKind::Send))
                .process(Process::new(
                    "p",
                    10,
                    vec![Stmt::If {
                        cond: parse("f").unwrap(),
                        then_branch: vec![
                            Stmt::assign("a", parse("1.0").unwrap()),
                            Stmt::assign("b", parse("1.0").unwrap()),
                        ],
                        else_branch: vec![Stmt::assign("a", parse("2.0").unwrap())],
                    }],
                )),
        );
        let cands = mode_candidates(&m);
        assert_eq!(cands.len(), 1);
        assert!(!cands[0].is_exhaustive());
    }

    #[test]
    fn central_flag_module_found() {
        let mut model = throttle_like();
        model = model.module(
            Module::new("engine_state")
                .message(MessageDecl::new(
                    "b_idle",
                    AscetType::Log,
                    MessageKind::Send,
                ))
                .message(MessageDecl::new(
                    "b_overrun",
                    AscetType::Log,
                    MessageKind::Send,
                ))
                .message(MessageDecl::new(
                    "b_fullload",
                    AscetType::Log,
                    MessageKind::Send,
                )),
        );
        let (name, count) = central_flag_module(&model).unwrap();
        assert_eq!(name, "engine_state");
        assert_eq!(count, 3);
    }

    #[test]
    fn no_flags_no_central_module() {
        let m = AscetModel::new("t").module(Module::new("m"));
        assert!(central_flag_module(&m).is_none());
    }
}
