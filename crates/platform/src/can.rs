//! A CAN-style priority-arbitrated bus simulation.
//!
//! "All signals between clusters deployed to different ECUs will be mapped
//! to a communication network, e.g. CAN, possibly considering an existing
//! communication matrix" (paper, Sec. 3.4). This module simulates periodic
//! frame transmission with CAN's non-preemptive, lowest-identifier-wins
//! arbitration, producing per-frame latency statistics and bus load — the
//! figures a deployment needs to check its communication matrix.

use std::collections::BTreeMap;

use automode_kernel::Calendar;

use crate::error::PlatformError;

/// Time in microseconds.
pub type Us = u64;

/// A periodic CAN frame.
#[derive(Debug, Clone, PartialEq)]
pub struct CanFrame {
    /// Frame identifier; **lower wins arbitration**.
    pub id: u32,
    /// Frame name.
    pub name: String,
    /// Data length in bytes (0–8 for classic CAN).
    pub dlc: u8,
    /// Transmission period in microseconds.
    pub period_us: Us,
    /// Queuing offset in microseconds.
    pub offset_us: Us,
}

impl CanFrame {
    /// Creates a periodic frame.
    pub fn new(id: u32, name: impl Into<String>, dlc: u8, period_us: Us) -> Self {
        CanFrame {
            id,
            name: name.into(),
            dlc,
            period_us,
            offset_us: 0,
        }
    }

    /// Sets the queuing offset (builder style).
    pub fn offset(mut self, offset_us: Us) -> Self {
        self.offset_us = offset_us;
        self
    }

    /// Frame size on the wire in bits (classic CAN, standard identifier,
    /// worst-case stuffing approximation: 47 overhead bits + 8 per byte,
    /// stuffed by 20%).
    pub fn wire_bits(&self) -> u64 {
        let raw = 47 + 8 * self.dlc as u64;
        raw + raw / 5
    }
}

/// Bus configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CanBusConfig {
    /// Bus name.
    pub name: String,
    /// Bit rate in bits per second (e.g. 500_000).
    pub bitrate: u64,
    /// The frames on this bus.
    pub frames: Vec<CanFrame>,
}

impl CanBusConfig {
    /// Creates a bus.
    ///
    /// # Errors
    ///
    /// Rejects a zero bitrate.
    pub fn new(name: impl Into<String>, bitrate: u64) -> Result<Self, PlatformError> {
        if bitrate == 0 {
            return Err(PlatformError::Config("bitrate must be positive".into()));
        }
        Ok(CanBusConfig {
            name: name.into(),
            bitrate,
            frames: Vec::new(),
        })
    }

    /// Adds a frame (builder style).
    ///
    /// # Errors
    ///
    /// Rejects duplicate identifiers or names, DLC > 8, zero periods.
    pub fn frame(mut self, frame: CanFrame) -> Result<Self, PlatformError> {
        if frame.dlc > 8 {
            return Err(PlatformError::Config(format!(
                "frame `{}` dlc {} > 8",
                frame.name, frame.dlc
            )));
        }
        if frame.period_us == 0 {
            return Err(PlatformError::Config(format!(
                "frame `{}` has zero period",
                frame.name
            )));
        }
        if self.frames.iter().any(|f| f.id == frame.id) {
            return Err(PlatformError::DuplicateName(format!("id {}", frame.id)));
        }
        if self.frames.iter().any(|f| f.name == frame.name) {
            return Err(PlatformError::DuplicateName(frame.name));
        }
        self.frames.push(frame);
        Ok(self)
    }

    /// Transmission time of a frame on this bus, in microseconds (≥ 1).
    pub fn tx_time_us(&self, frame: &CanFrame) -> Us {
        (frame.wire_bits() * 1_000_000)
            .div_ceil(self.bitrate)
            .max(1)
    }

    /// Static bus load: sum over frames of tx_time/period.
    pub fn load(&self) -> f64 {
        self.frames
            .iter()
            .map(|f| self.tx_time_us(f) as f64 / f.period_us as f64)
            .sum()
    }
}

/// Per-frame latency statistics from a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FrameStats {
    /// Instances queued.
    pub queued: u64,
    /// Instances fully transmitted.
    pub sent: u64,
    /// Worst observed latency (queue → end of transmission).
    pub max_latency_us: Us,
    /// Sum of latencies (for averaging).
    pub total_latency_us: Us,
}

impl FrameStats {
    /// Average latency in microseconds.
    pub fn avg_latency_us(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.total_latency_us as f64 / self.sent as f64
        }
    }
}

/// The bus simulation.
#[derive(Debug, Clone)]
pub struct BusSim<'a> {
    config: &'a CanBusConfig,
}

impl<'a> BusSim<'a> {
    /// Creates a simulation over a bus configuration.
    pub fn new(config: &'a CanBusConfig) -> Self {
        BusSim { config }
    }

    /// Simulates `horizon_us` of bus time.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::Infeasible`] if the static load exceeds 1.
    pub fn run(&self, horizon_us: Us) -> Result<BTreeMap<String, FrameStats>, PlatformError> {
        let load = self.config.load();
        if load > 1.0 {
            return Err(PlatformError::Infeasible(format!("bus load {load:.2} > 1")));
        }
        let frames = &self.config.frames;
        let mut stats: BTreeMap<String, FrameStats> = frames
            .iter()
            .map(|f| (f.name.clone(), FrameStats::default()))
            .collect();
        // The queuing alarm calendar — the shared `kernel::event` calendar
        // type; pending instances are (queue_time, frame index).
        let mut queuings: Calendar<usize> = Calendar::new();
        for (i, f) in frames.iter().enumerate() {
            queuings.schedule(f.offset_us, i);
        }
        let mut pending: Vec<(Us, usize)> = Vec::new();
        let mut now: Us = 0;
        while now < horizon_us {
            while let Some((qt, i)) = queuings.pop_due(now) {
                pending.push((qt, i));
                stats.get_mut(&frames[i].name).expect("known").queued += 1;
                queuings.schedule(qt + frames[i].period_us, i);
            }
            // Arbitration: lowest id among pending whose queue time has come.
            let winner = pending
                .iter()
                .enumerate()
                .min_by_key(|(_, &(qt, fi))| (frames[fi].id, qt))
                .map(|(idx, _)| idx);
            match winner {
                None => {
                    now = queuings.next_time().expect("frames exist");
                }
                Some(idx) => {
                    let (qt, fi) = pending.remove(idx);
                    let tx = self.config.tx_time_us(&frames[fi]);
                    // Non-preemptive: transmission runs to completion.
                    now += tx;
                    let st = stats.get_mut(&frames[fi].name).expect("known");
                    st.sent += 1;
                    let latency = now.saturating_sub(qt);
                    st.max_latency_us = st.max_latency_us.max(latency);
                    st.total_latency_us += latency;
                }
            }
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> CanBusConfig {
        CanBusConfig::new("body_can", 500_000)
            .unwrap()
            .frame(CanFrame::new(0x100, "engine_status", 8, 10_000))
            .unwrap()
            .frame(CanFrame::new(0x200, "door_status", 2, 20_000))
            .unwrap()
            .frame(CanFrame::new(0x300, "diag", 8, 100_000))
            .unwrap()
    }

    #[test]
    fn wire_bits_and_tx_time() {
        let f = CanFrame::new(1, "f", 8, 10_000);
        assert_eq!(f.wire_bits(), 111 + 22);
        let b = CanBusConfig::new("b", 500_000).unwrap();
        // 133 bits at 500kbit/s = 266us.
        assert_eq!(b.tx_time_us(&f), 266);
    }

    #[test]
    fn load_is_sum_of_ratios() {
        let b = bus();
        let expected: f64 = b
            .frames
            .iter()
            .map(|f| b.tx_time_us(f) as f64 / f.period_us as f64)
            .sum();
        assert!((b.load() - expected).abs() < 1e-12);
        assert!(b.load() < 0.1);
    }

    #[test]
    fn all_frames_transmit_under_light_load() {
        let b = bus();
        let stats = BusSim::new(&b).run(1_000_000).unwrap();
        for (name, s) in &stats {
            assert!(s.sent >= s.queued - 1, "{name} starved: {s:?}");
            assert!(s.max_latency_us < 2_000, "{name} latency too high");
        }
    }

    #[test]
    fn low_id_wins_arbitration() {
        // Two frames queued at the same instant: the lower id goes first and
        // the higher id's latency includes the lower's transmission.
        let b = CanBusConfig::new("b", 125_000)
            .unwrap()
            .frame(CanFrame::new(0x10, "hi_prio", 8, 50_000))
            .unwrap()
            .frame(CanFrame::new(0x700, "lo_prio", 8, 50_000))
            .unwrap();
        let tx = b.tx_time_us(&b.frames[0]);
        let stats = BusSim::new(&b).run(500_000).unwrap();
        assert!(stats["lo_prio"].max_latency_us >= 2 * tx);
        assert!(stats["hi_prio"].max_latency_us <= tx + 1);
    }

    #[test]
    fn overload_detected() {
        let mut b = CanBusConfig::new("b", 10_000).unwrap();
        for i in 0..20 {
            b = b
                .frame(CanFrame::new(i, format!("f{i}"), 8, 10_000))
                .unwrap();
        }
        assert!(matches!(
            BusSim::new(&b).run(100_000),
            Err(PlatformError::Infeasible(_))
        ));
    }

    #[test]
    fn config_validation() {
        assert!(CanBusConfig::new("b", 0).is_err());
        let b = CanBusConfig::new("b", 500_000).unwrap();
        assert!(b.clone().frame(CanFrame::new(1, "f", 9, 1_000)).is_err());
        assert!(b.clone().frame(CanFrame::new(1, "f", 8, 0)).is_err());
        let b = b.frame(CanFrame::new(1, "f", 8, 1_000)).unwrap();
        assert!(b.clone().frame(CanFrame::new(1, "g", 8, 1_000)).is_err());
        assert!(b.clone().frame(CanFrame::new(2, "f", 8, 1_000)).is_err());
    }

    #[test]
    fn offsets_shift_queuing() {
        let b = CanBusConfig::new("b", 500_000)
            .unwrap()
            .frame(CanFrame::new(1, "f", 8, 10_000).offset(5_000))
            .unwrap();
        let stats = BusSim::new(&b).run(20_000).unwrap();
        assert_eq!(stats["f"].queued, 2); // at 5ms and 15ms
    }
}
