//! An OSEK/ERCOS-style fixed-priority preemptive scheduler simulation.
//!
//! The paper's CCD well-definedness conditions (Sec. 3.3) assume "an
//! OSEK-conformant operating system as a target platform, with inter-task
//! communication between tasks using data integrity mechanisms [ERCOS, 12]
//! and fixed-priority, preemptive scheduling". This module simulates exactly
//! that platform so the conditions can be *observed* rather than assumed:
//!
//! * **Fixed-priority preemption** — at every action boundary the ready job
//!   with the highest priority runs; individual actions (word accesses,
//!   compute segments) are atomic.
//! * **IPC regimes** — [`IpcRegime::Direct`] reads/writes shared message
//!   memory in place (a preempting reader can observe a *torn*,
//!   inconsistent multi-word message); [`IpcRegime::CopyInCopyOut`] is the
//!   ERCOS data-integrity mechanism: consumers snapshot at activation,
//!   producers publish at completion — torn reads are impossible.
//! * **Delayed publication** — a message can be published only at the
//!   writer's next period boundary, which is how a CCD `delay` operator is
//!   implemented on this platform; this makes slow→fast communication
//!   deterministic (experiment E7).

use std::collections::BTreeMap;

use automode_kernel::Calendar;

use crate::error::PlatformError;

/// Time in microseconds.
pub type Us = u64;

/// One atomic step of a runnable.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Pure computation for a duration.
    Compute {
        /// Duration in microseconds.
        dur_us: Us,
    },
    /// Write one word of a message (takes 1 µs).
    WriteWord {
        /// Message name.
        msg: String,
        /// Word index.
        word: usize,
    },
    /// Read a whole message (takes 1 µs), recording the observation.
    ReadMsg {
        /// Message name.
        msg: String,
    },
}

impl Action {
    fn duration(&self) -> Us {
        match self {
            Action::Compute { dur_us } => *dur_us,
            Action::WriteWord { .. } | Action::ReadMsg { .. } => 1,
        }
    }
}

/// A runnable as a sequence of atomic actions.
#[derive(Debug, Clone, PartialEq)]
pub struct SimRunnable {
    /// Runnable name.
    pub name: String,
    /// The actions, executed in order.
    pub actions: Vec<Action>,
}

impl SimRunnable {
    /// A pure-computation runnable.
    pub fn compute(name: impl Into<String>, dur_us: Us) -> Self {
        SimRunnable {
            name: name.into(),
            actions: vec![Action::Compute { dur_us }],
        }
    }

    /// A runnable that writes every word of `msg` (value = activation
    /// counter), with `gap_us` of computation between the word writes —
    /// the window in which a torn read can occur under direct access.
    pub fn writer(
        name: impl Into<String>,
        msg: impl Into<String>,
        words: usize,
        gap_us: Us,
    ) -> Self {
        let msg = msg.into();
        let mut actions = Vec::new();
        for w in 0..words {
            if w > 0 && gap_us > 0 {
                actions.push(Action::Compute { dur_us: gap_us });
            }
            actions.push(Action::WriteWord {
                msg: msg.clone(),
                word: w,
            });
        }
        SimRunnable {
            name: name.into(),
            actions,
        }
    }

    /// A runnable that reads `msg` once.
    pub fn reader(name: impl Into<String>, msg: impl Into<String>) -> Self {
        SimRunnable {
            name: name.into(),
            actions: vec![Action::ReadMsg { msg: msg.into() }],
        }
    }
}

/// A periodic task for the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct SimTask {
    /// Task name.
    pub name: String,
    /// Fixed priority; lower number = higher priority.
    pub priority: u32,
    /// Period in microseconds.
    pub period_us: Us,
    /// First activation offset.
    pub offset_us: Us,
    /// Runnables per activation.
    pub runnables: Vec<SimRunnable>,
}

impl SimTask {
    /// Creates a task.
    pub fn new(name: impl Into<String>, priority: u32, period_us: Us) -> Self {
        SimTask {
            name: name.into(),
            priority,
            period_us,
            offset_us: 0,
            runnables: Vec::new(),
        }
    }

    /// Adds a runnable (builder style).
    pub fn runnable(mut self, r: SimRunnable) -> Self {
        self.runnables.push(r);
        self
    }

    /// Sets the activation offset (builder style).
    pub fn offset(mut self, offset_us: Us) -> Self {
        self.offset_us = offset_us;
        self
    }

    fn wcet(&self) -> Us {
        self.runnables
            .iter()
            .flat_map(|r| r.actions.iter())
            .map(Action::duration)
            .sum()
    }
}

/// How inter-task messages are accessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IpcRegime {
    /// Read/write shared memory in place: torn reads possible.
    Direct,
    /// ERCOS-style data integrity: copy-in at activation, copy-out
    /// (publish) at task completion.
    #[default]
    CopyInCopyOut,
}

/// Message publication discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Publication {
    /// Writes become visible as soon as the regime allows.
    #[default]
    Immediate,
    /// Writes become visible only at the *writer's next period boundary* —
    /// the platform realization of a CCD `delay` operator.
    NextPeriodBoundary,
}

/// Configuration of one inter-task message.
#[derive(Debug, Clone, PartialEq)]
pub struct MessageConfig {
    /// Message name.
    pub name: String,
    /// Number of words (a multi-word message can tear under direct access).
    pub words: usize,
    /// Publication discipline.
    pub publication: Publication,
}

impl MessageConfig {
    /// An immediate message of `words` words.
    pub fn new(name: impl Into<String>, words: usize) -> Self {
        MessageConfig {
            name: name.into(),
            words,
            publication: Publication::Immediate,
        }
    }

    /// Uses delayed (period-boundary) publication (builder style).
    pub fn delayed(mut self) -> Self {
        self.publication = Publication::NextPeriodBoundary;
        self
    }
}

/// One observed read of a message.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadObs {
    /// Simulation time of the read.
    pub time_us: Us,
    /// The reading task.
    pub task: String,
    /// The message read.
    pub msg: String,
    /// The words observed.
    pub words: Vec<i64>,
    /// `true` if the words are inconsistent (a torn read).
    pub torn: bool,
}

/// Per-task scheduling statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TaskStats {
    /// Number of activations.
    pub activations: u64,
    /// Number of completed jobs.
    pub completions: u64,
    /// Worst observed response time.
    pub max_response_us: Us,
    /// Jobs missing their implicit deadline (= period).
    pub deadline_misses: u64,
    /// Preemptions suffered.
    pub preemptions: u64,
}

/// The result of a simulation run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimOutcome {
    /// Per-task statistics.
    pub stats: BTreeMap<String, TaskStats>,
    /// All message reads, in time order.
    pub reads: Vec<ReadObs>,
}

impl SimOutcome {
    /// Number of torn reads observed.
    pub fn torn_reads(&self) -> usize {
        self.reads.iter().filter(|r| r.torn).count()
    }

    /// The values (first word) observed by a given task on a message.
    pub fn observed_values(&self, task: &str, msg: &str) -> Vec<i64> {
        self.reads
            .iter()
            .filter(|r| r.task == task && r.msg == msg && !r.torn)
            .filter_map(|r| r.words.first().copied())
            .collect()
    }

    /// Total deadline misses across tasks.
    pub fn deadline_misses(&self) -> u64 {
        self.stats.values().map(|s| s.deadline_misses).sum()
    }
}

#[derive(Debug, Clone)]
struct Job {
    task: usize,
    release: Us,
    /// (runnable index, action index) program counter.
    pc: (usize, usize),
    started: bool,
    /// Remaining microseconds of a partially executed (preempted) compute
    /// action; `None` when the current action has not started.
    remaining: Option<Us>,
    /// Private copy-in snapshot (CopyInCopyOut): msg -> words.
    snapshot: BTreeMap<String, Vec<i64>>,
    /// Pending writes (CopyInCopyOut): msg -> words written.
    pending: BTreeMap<String, Vec<(usize, i64)>>,
}

/// The scheduler simulation.
///
/// ```
/// use automode_platform::osek::{IpcRegime, MessageConfig, OsekSim, SimRunnable, SimTask};
///
/// # fn main() -> Result<(), automode_platform::PlatformError> {
/// // A fast reader preempting a slow writer of a 2-word message, under
/// // ERCOS-style data integrity and delayed (period-boundary) publication.
/// let sim = OsekSim::new(IpcRegime::CopyInCopyOut)
///     .task(SimTask::new("reader", 0, 10_000).runnable(SimRunnable::reader("r", "m")))?
///     .task(SimTask::new("writer", 1, 100_000).runnable(SimRunnable::writer("w", "m", 2, 5_000)))?
///     .message(MessageConfig::new("m", 2).delayed())?;
/// let out = sim.run(500_000)?;
/// assert_eq!(out.torn_reads(), 0);
/// assert_eq!(out.deadline_misses(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OsekSim {
    tasks: Vec<SimTask>,
    messages: Vec<MessageConfig>,
    regime: IpcRegime,
}

impl OsekSim {
    /// Creates a simulation with the given IPC regime.
    pub fn new(regime: IpcRegime) -> Self {
        OsekSim {
            tasks: Vec::new(),
            messages: Vec::new(),
            regime,
        }
    }

    /// Adds a task (builder style).
    ///
    /// # Errors
    ///
    /// Rejects duplicate task names, zero periods, and duplicate priorities
    /// (OSEK priorities are unique per ECU).
    pub fn task(mut self, task: SimTask) -> Result<Self, PlatformError> {
        if task.period_us == 0 {
            return Err(PlatformError::Config(format!(
                "task `{}` has zero period",
                task.name
            )));
        }
        if self.tasks.iter().any(|t| t.name == task.name) {
            return Err(PlatformError::DuplicateName(task.name));
        }
        if self.tasks.iter().any(|t| t.priority == task.priority) {
            return Err(PlatformError::Config(format!(
                "task `{}` reuses priority {}",
                task.name, task.priority
            )));
        }
        self.tasks.push(task);
        Ok(self)
    }

    /// Declares a message (builder style).
    ///
    /// # Errors
    ///
    /// Rejects duplicate names and zero-word messages.
    pub fn message(mut self, msg: MessageConfig) -> Result<Self, PlatformError> {
        if msg.words == 0 {
            return Err(PlatformError::Config(format!(
                "message `{}` has zero words",
                msg.name
            )));
        }
        if self.messages.iter().any(|m| m.name == msg.name) {
            return Err(PlatformError::DuplicateName(msg.name));
        }
        self.messages.push(msg);
        Ok(self)
    }

    /// Total utilisation (WCET/period over all tasks).
    pub fn utilization(&self) -> f64 {
        self.tasks
            .iter()
            .map(|t| t.wcet() as f64 / t.period_us as f64)
            .sum()
    }

    /// Runs the simulation for `horizon_us` microseconds.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::Infeasible`] if utilisation exceeds 1 (the
    /// backlog would grow without bound).
    pub fn run(&self, horizon_us: Us) -> Result<SimOutcome, PlatformError> {
        if self.utilization() > 1.0 {
            return Err(PlatformError::Infeasible(format!(
                "utilization {:.2} > 1",
                self.utilization()
            )));
        }
        let mut global: BTreeMap<String, Vec<i64>> = self
            .messages
            .iter()
            .map(|m| (m.name.clone(), vec![0; m.words]))
            .collect();
        // Writer-side staging for NextPeriodBoundary publication:
        // msg -> staged words awaiting the boundary.
        let mut staged: BTreeMap<String, Vec<i64>> = BTreeMap::new();
        // Per-task activation counters (the value written).
        let mut act_counter: Vec<i64> = vec![0; self.tasks.len()];

        let mut outcome = SimOutcome::default();
        for t in &self.tasks {
            outcome.stats.insert(t.name.clone(), TaskStats::default());
        }

        let msg_cfg = |name: &str| self.messages.iter().find(|m| m.name == name);

        let mut ready: Vec<Job> = Vec::new();
        let mut now: Us = 0;
        let mut running: Option<usize> = None; // index into ready
                                               // The release alarm calendar — the same `kernel::event` calendar
                                               // type the heap engine and the platform co-simulator run on.
        let mut releases: Calendar<usize> = Calendar::new();
        for (ti, t) in self.tasks.iter().enumerate() {
            releases.schedule(t.offset_us, ti);
        }

        while now < horizon_us {
            // Publish staged messages whose writer crossed a period boundary.
            // (Boundaries coincide with releases; handled on release below.)

            // Collect releases due now; each pop re-arms the periodic alarm.
            let mut due: Vec<(usize, Us)> = Vec::new();
            while let Some((rel, ti)) = releases.pop_due(now) {
                due.push((ti, rel));
                releases.schedule(rel + self.tasks[ti].period_us, ti);
            }
            // Pass 1: a writer's period boundary publishes its staged
            // delayed messages — before any same-instant copy-in snapshot.
            for &(ti, _) in &due {
                for r in &self.tasks[ti].runnables {
                    for a in &r.actions {
                        if let Action::WriteWord { msg, .. } = a {
                            if let Some(cfg) = msg_cfg(msg) {
                                if cfg.publication == Publication::NextPeriodBoundary {
                                    if let Some(words) = staged.remove(msg) {
                                        global.insert(msg.clone(), words);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            // Pass 2: create the jobs (copy-in snapshot at activation).
            for &(ti, release) in &due {
                act_counter[ti] += 1;
                outcome
                    .stats
                    .get_mut(&self.tasks[ti].name)
                    .expect("known")
                    .activations += 1;
                let snapshot = if self.regime == IpcRegime::CopyInCopyOut {
                    global.clone()
                } else {
                    BTreeMap::new()
                };
                ready.push(Job {
                    task: ti,
                    release,
                    pc: (0, 0),
                    started: false,
                    remaining: None,
                    snapshot,
                    pending: BTreeMap::new(),
                });
            }

            // Pick the highest-priority ready job.
            let pick = ready
                .iter()
                .enumerate()
                .min_by_key(|(_, j)| (self.tasks[j.task].priority, j.release))
                .map(|(i, _)| i);
            let Some(ji) = pick else {
                // Idle until the next release.
                now = releases.next_time().expect("tasks exist");
                continue;
            };
            // Preemption accounting.
            if let Some(prev) = running {
                if prev != ji && prev < ready.len() && ready[prev].started {
                    let name = self.tasks[ready[prev].task].name.clone();
                    outcome.stats.get_mut(&name).expect("known").preemptions += 1;
                }
            }
            running = Some(ji);

            // Execute one action of the chosen job. Word accesses are
            // atomic; compute segments are preemptible at release instants
            // (fixed-priority *preemptive* scheduling).
            let (ri, ai) = ready[ji].pc;
            let task_idx = ready[ji].task;
            let task = &self.tasks[task_idx];
            let action = task.runnables[ri].actions[ai].clone();
            ready[ji].started = true;
            if let Action::Compute { .. } = &action {
                let left = ready[ji].remaining.unwrap_or_else(|| action.duration());
                let next_rel = releases.next_time().expect("tasks exist");
                if next_rel > now && now + left > next_rel {
                    // Run up to the release instant, then let the
                    // rescheduling at the top of the loop decide.
                    ready[ji].remaining = Some(left - (next_rel - now));
                    now = next_rel;
                    continue;
                }
                ready[ji].remaining = None;
                now += left;
                // Fall through to the program-counter advance below.
            } else {
                let dur = action.duration();
                match &action {
                    Action::Compute { .. } => unreachable!("handled above"),
                    Action::WriteWord { msg, word } => {
                        let value = act_counter[task_idx];
                        let cfg = msg_cfg(msg);
                        match (self.regime, cfg.map(|c| c.publication)) {
                            (IpcRegime::Direct, Some(Publication::Immediate))
                            | (IpcRegime::Direct, None) => {
                                if let Some(words) = global.get_mut(msg.as_str()) {
                                    if *word < words.len() {
                                        words[*word] = value;
                                    }
                                }
                            }
                            (IpcRegime::Direct, Some(Publication::NextPeriodBoundary)) => {
                                let words = staged.entry(msg.clone()).or_insert_with(|| {
                                    global.get(msg.as_str()).cloned().unwrap_or_default()
                                });
                                if *word < words.len() {
                                    words[*word] = value;
                                }
                            }
                            (IpcRegime::CopyInCopyOut, _) => {
                                ready[ji]
                                    .pending
                                    .entry(msg.clone())
                                    .or_default()
                                    .push((*word, value));
                            }
                        }
                    }
                    Action::ReadMsg { msg } => {
                        let words = match self.regime {
                            IpcRegime::Direct => {
                                global.get(msg.as_str()).cloned().unwrap_or_default()
                            }
                            IpcRegime::CopyInCopyOut => ready[ji]
                                .snapshot
                                .get(msg.as_str())
                                .cloned()
                                .unwrap_or_default(),
                        };
                        let torn = words.windows(2).any(|w| w[0] != w[1]);
                        outcome.reads.push(ReadObs {
                            time_us: now + dur,
                            task: task.name.clone(),
                            msg: msg.clone(),
                            words,
                            torn,
                        });
                    }
                }
                now += dur;
            }

            // Advance the program counter.
            let job = &mut ready[ji];
            let mut pc = (ri, ai + 1);
            while pc.0 < task.runnables.len() && pc.1 >= task.runnables[pc.0].actions.len() {
                pc = (pc.0 + 1, 0);
            }
            if pc.0 >= task.runnables.len() {
                // Job complete: copy-out, stats.
                let job = ready.remove(ji);
                running = None;
                for (msg, writes) in &job.pending {
                    let cfg = msg_cfg(msg);
                    let target =
                        if cfg.map(|c| c.publication) == Some(Publication::NextPeriodBoundary) {
                            staged.entry(msg.clone()).or_insert_with(|| {
                                global.get(msg.as_str()).cloned().unwrap_or_default()
                            })
                        } else {
                            global.entry(msg.clone()).or_default()
                        };
                    for &(w, v) in writes {
                        if w < target.len() {
                            target[w] = v;
                        }
                    }
                }
                let stats = outcome
                    .stats
                    .get_mut(&self.tasks[job.task].name)
                    .expect("known");
                stats.completions += 1;
                let response = now - job.release;
                stats.max_response_us = stats.max_response_us.max(response);
                if response > self.tasks[job.task].period_us {
                    stats.deadline_misses += 1;
                }
            } else {
                job.pc = pc;
            }
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Slow low-priority writer of a 2-word message, fast high-priority
    /// reader. Gap between word writes makes tearing possible.
    fn writer_reader(regime: IpcRegime, delayed: bool) -> OsekSim {
        let msg = MessageConfig::new("M", 2);
        let msg = if delayed { msg.delayed() } else { msg };
        OsekSim::new(regime)
            .task(SimTask::new("fast_reader", 0, 10_000).runnable(SimRunnable::reader("read", "M")))
            .unwrap()
            .task(
                SimTask::new("slow_writer", 1, 100_000)
                    // 15 ms between the two word writes: the fast task
                    // preempts in between.
                    .runnable(SimRunnable::writer("write", "M", 2, 15_000)),
            )
            .unwrap()
            .message(msg)
            .unwrap()
    }

    #[test]
    fn direct_access_produces_torn_reads() {
        let sim = writer_reader(IpcRegime::Direct, false);
        let out = sim.run(1_000_000).unwrap();
        assert!(
            out.torn_reads() > 0,
            "expected torn reads under direct access, got none"
        );
    }

    #[test]
    fn copy_in_copy_out_prevents_torn_reads() {
        let sim = writer_reader(IpcRegime::CopyInCopyOut, false);
        let out = sim.run(1_000_000).unwrap();
        assert_eq!(out.torn_reads(), 0);
    }

    #[test]
    fn delayed_publication_gives_previous_period_values() {
        // With period-boundary publication, every read inside slow period k
        // observes the value of period k-1 — the deterministic semantics of
        // a CCD delay operator.
        let sim = writer_reader(IpcRegime::CopyInCopyOut, true);
        let out = sim.run(500_000).unwrap();
        let values = out.observed_values("fast_reader", "M");
        // Period 1 (t in [0, 100ms)): initial value 0.
        // Period 2: value written during period 1 = 1. Etc.
        assert!(!values.is_empty());
        for (i, v) in values.iter().enumerate() {
            let t = (i as u64) * 10_000;
            let slow_period = t / 100_000;
            let expected = slow_period as i64; // value of previous period
            assert_eq!(
                *v, expected,
                "read at t={t}us observed {v}, expected {expected}"
            );
        }
    }

    #[test]
    fn immediate_publication_is_schedule_dependent() {
        // Without the delay, reads within one slow period see a value
        // change mid-period (after the writer completes) — the sampled
        // value depends on the schedule, not only on the period index.
        let sim = writer_reader(IpcRegime::CopyInCopyOut, false);
        let out = sim.run(200_000).unwrap();
        let values = out.observed_values("fast_reader", "M");
        // Inside slow period 0 the early reads see 0, late reads see 1:
        let first_period: Vec<i64> = values.iter().take(10).copied().collect();
        assert!(first_period.contains(&0));
        assert!(first_period.contains(&1));
    }

    #[test]
    fn priorities_preempt() {
        let sim = OsekSim::new(IpcRegime::CopyInCopyOut)
            .task(SimTask::new("hi", 0, 10_000).runnable(SimRunnable::compute("c", 1_000)))
            .unwrap()
            .task(SimTask::new("lo", 1, 50_000).runnable(SimRunnable::compute(
                "c", // 30 one-ms segments: plenty of preemption points.
                1_000,
            )))
            .unwrap();
        let out = sim.run(200_000).unwrap();
        assert_eq!(out.deadline_misses(), 0);
        assert!(out.stats["hi"].max_response_us <= 2_000);
    }

    #[test]
    fn response_time_reflects_interference() {
        // Low-priority task's response includes high-priority interference.
        let mut lo = SimTask::new("lo", 1, 100_000);
        for i in 0..20 {
            lo = lo.runnable(SimRunnable::compute(format!("seg{i}"), 1_000));
        }
        let sim = OsekSim::new(IpcRegime::CopyInCopyOut)
            .task(SimTask::new("hi", 0, 10_000).runnable(SimRunnable::compute("c", 4_000)))
            .unwrap()
            .task(lo)
            .unwrap();
        let out = sim.run(400_000).unwrap();
        let lo_resp = out.stats["lo"].max_response_us;
        assert!(
            lo_resp > 20_000,
            "lo response {lo_resp} should exceed its own 20ms of work"
        );
        assert!(out.stats["lo"].preemptions > 0);
    }

    #[test]
    fn overload_detected() {
        let sim = OsekSim::new(IpcRegime::Direct)
            .task(SimTask::new("t", 0, 1_000).runnable(SimRunnable::compute("c", 2_000)))
            .unwrap();
        assert!(matches!(sim.run(10_000), Err(PlatformError::Infeasible(_))));
    }

    #[test]
    fn config_validation() {
        assert!(OsekSim::new(IpcRegime::Direct)
            .task(SimTask::new("t", 0, 0))
            .is_err());
        let sim = OsekSim::new(IpcRegime::Direct)
            .task(SimTask::new("a", 0, 1_000))
            .unwrap();
        assert!(sim.clone().task(SimTask::new("a", 1, 1_000)).is_err());
        assert!(sim.clone().task(SimTask::new("b", 0, 1_000)).is_err());
        assert!(sim.clone().message(MessageConfig::new("m", 0)).is_err());
        let sim = sim.message(MessageConfig::new("m", 1)).unwrap();
        assert!(sim.message(MessageConfig::new("m", 2)).is_err());
    }

    #[test]
    fn utilization_accounting() {
        let sim = OsekSim::new(IpcRegime::Direct)
            .task(SimTask::new("t", 0, 10_000).runnable(SimRunnable::compute("c", 2_500)))
            .unwrap();
        assert!((sim.utilization() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn deadline_miss_counted_under_pressure() {
        // Utilization 0.99 (< 1) but the low-priority job cannot fit its
        // 4.5ms of work between 6ms-of-every-10ms interference within its
        // 11.5ms deadline.
        let sim = OsekSim::new(IpcRegime::CopyInCopyOut)
            .task(SimTask::new("hi", 0, 10_000).runnable(SimRunnable::compute("c", 6_000)))
            .unwrap()
            .task({
                let mut t = SimTask::new("lo", 1, 11_500);
                for i in 0..9 {
                    t = t.runnable(SimRunnable::compute(format!("s{i}"), 500));
                }
                t
            })
            .unwrap();
        let out = sim.run(1_000_000).unwrap();
        assert!(out.stats["lo"].deadline_misses > 0);
    }
}
