//! Event-driven OSEK/CAN platform co-simulation.
//!
//! The static TA artifacts of this crate — ECUs with fixed-priority tasks
//! ([`crate::ta`]), CAN frames with arbitration latency ([`crate::can`]),
//! the OSEK data-integrity regimes ([`crate::osek`]) — are *executed* here
//! against the functional model: deployed clusters run as task runnables,
//! their cross-ECU channel writes travel as CAN frames, and everything
//! rides one deterministic [`Calendar`] (the same `kernel::event` calendar
//! type under the heap scheduling engine).
//!
//! The co-simulator is deliberately generic over the functional bodies
//! (the [`ClusterStep`] trait): this crate only depends on the kernel, so
//! the bridge that elaborates real AutoMoDe clusters into bodies lives in
//! `automode-transform` (`transform::cosim`). Semantics implemented:
//!
//! * **Tasks** release periodically; at most one job per task is in flight
//!   (an activation arriving while the previous job still runs is *skipped*
//!   and counted — the observable symptom of a task overrun).
//! * **Scheduling** is fixed-priority, preemptive or cooperative
//!   ([`CosimConfig::preemption`]); compute segments are preempted at event
//!   instants with remaining-time accounting, exactly like
//!   [`crate::osek::OsekSim`].
//! * **Copy-in** happens at job start ([`IpcRegime::CopyInCopyOut`], the
//!   ERCOS data-integrity snapshot) or at runnable start
//!   ([`IpcRegime::Direct`]); same-task channels always read live (plain
//!   sequential variable access). **Copy-out** publishes at runnable
//!   completion.
//! * **Delay operators** are realized by period-boundary publication
//!   ([`Publication::NextPeriodBoundary`], cf. `osek`): a channel with `d`
//!   delays releases the value of writer activation `k` at writer boundary
//!   `k + d` — before any same-instant copy-in, matching the LA `Delay`
//!   chain of `sim::ccd_sim` bit-for-bit on one ECU.
//! * **Cross-ECU channels** queue their publications as CAN frames:
//!   non-preemptive lowest-identifier-wins arbitration, wire-time latency,
//!   and (faultable) delivery into the reader ECU's message store. Each
//!   publication's arrival is checked against a loose-synchronization
//!   envelope ([`LooseSyncOutcome`]): the value of writer activation `k`
//!   must arrive within `envelope_bound_periods` writer periods of its
//!   logical visibility tick.
//! * **Platform faults** ([`PlatformFault`]) — lost / delayed / corrupted
//!   frames, task overruns, babbling-idiot bus load — perturb exactly one
//!   mechanism each and are deterministic (instance-counter matching, seeded
//!   [`Corruptor`]s), so a reset-and-replay reproduces the faulted run
//!   bit-for-bit.
//!
//! Outputs are logical-tick-indexed [`Trace`]s (cluster outputs, and
//! per-channel `bus:` delivery streams for `ContractMonitor` checking),
//! plus per-task, per-frame, and per-channel statistics.

use std::collections::{BTreeMap, VecDeque};

use automode_kernel::fault::Corruptor;
use automode_kernel::{Calendar, KernelError, Message, Trace, Value};

use crate::error::PlatformError;
use crate::loose_sync::LooseSyncOutcome;
use crate::osek::{IpcRegime, Publication};

/// Time in microseconds.
pub type Us = u64;

/// The functional body of a deployed cluster, stepped once per activation.
///
/// Implementations wrap whatever executes the cluster (in this workspace: a
/// prepared kernel network, see `transform::cosim`). The tick passed to
/// [`ClusterStep::step`] is the *activation index* of the cluster — the
/// same local tick the LA `ClusterBlock` feeds its inner network — so a
/// body shared between LA simulation and co-simulation produces identical
/// state trajectories.
pub trait ClusterStep {
    /// Executes activation `k` with one input [`Message`] per input port;
    /// returns one message per output port.
    ///
    /// # Errors
    ///
    /// Propagates functional evaluation errors; the co-simulation aborts.
    fn step(&mut self, k: u64, inputs: &[Message]) -> Result<Vec<Message>, KernelError>;
}

/// Where one runnable input port reads from.
#[derive(Debug, Clone, PartialEq)]
pub enum InputSource {
    /// An open CCD input, fed from the stimulus trace column of this name.
    External(String),
    /// A CCD channel (index into the [`CoSim`] channel list).
    Channel(usize),
}

/// A deployed cluster as a task runnable.
#[derive(Debug, Clone, PartialEq)]
pub struct RunnableSpec {
    /// Cluster name — prefixes the trace columns (`{cluster}.{port}`).
    pub cluster: String,
    /// Worst-case execution time charged per activation.
    pub wcet_us: Us,
    /// Cluster period in base ticks.
    pub period_ticks: u64,
    /// Cluster phase in base ticks.
    pub phase_ticks: u64,
    /// One source per input port, in port order.
    pub inputs: Vec<InputSource>,
    /// Output port names, in port order.
    pub outputs: Vec<String>,
}

/// A periodic OSEK task hosting runnables.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// Task name.
    pub name: String,
    /// Fixed priority; lower number = higher priority (unique per ECU).
    pub priority: u32,
    /// Period in microseconds.
    pub period_us: Us,
    /// First-release offset in microseconds.
    pub offset_us: Us,
    /// Runnable indices (into the [`CoSim`] runnable list), execution order.
    pub runnables: Vec<usize>,
}

/// An ECU: a processor with its task set.
#[derive(Debug, Clone, PartialEq)]
pub struct EcuSpec {
    /// ECU name.
    pub name: String,
    /// The tasks scheduled on this ECU.
    pub tasks: Vec<TaskSpec>,
}

/// How a channel's publications travel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkKind {
    /// Writer and reader share an ECU: publication writes the local store.
    Local,
    /// Cross-ECU: publications ride CAN frame `frames[i]`.
    Frame(usize),
}

/// A CCD channel in the deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelSpec {
    /// Signal name, `{writer_cluster}.{port}` (trace / report key).
    pub signal: String,
    /// Writer runnable index.
    pub writer: usize,
    /// Writer output port index.
    pub writer_port: usize,
    /// Reader runnable index.
    pub reader: usize,
    /// Reader input port index.
    pub reader_port: usize,
    /// CCD delay operators on the channel.
    pub delays: u32,
    /// Transport.
    pub link: LinkKind,
    /// Hold seed: the value readers sample before the first publication
    /// (type-conforming default, mirroring the LA `Current` seed).
    pub seed: Value,
}

/// A CAN frame definition for the co-simulation bus.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameSpec {
    /// Frame name.
    pub name: String,
    /// CAN identifier; lower wins arbitration.
    pub id: u32,
    /// Wire transmission time in microseconds.
    pub tx_us: Us,
}

/// A deterministic platform fault. `every`/`phase` select instances by
/// counter: instance `n` is affected iff `n % every == phase`.
#[derive(Debug, Clone)]
pub enum PlatformFault {
    /// Matching instances of `frame` are transmitted but not delivered
    /// (corrupted on the wire past CRC): the bus time is spent, the
    /// receiver keeps its stale value.
    LostFrame {
        /// Frame name.
        frame: String,
        /// Instance modulus (≥ 1).
        every: u64,
        /// Instance remainder selected.
        phase: u64,
    },
    /// Matching instances of `frame` deliver `extra_us` late (gateway or
    /// driver latency).
    DelayedFrame {
        /// Frame name.
        frame: String,
        /// Extra delivery latency.
        extra_us: Us,
        /// Instance modulus (≥ 1).
        every: u64,
        /// Instance remainder selected.
        phase: u64,
    },
    /// Every delivered value of the channel named `signal` is rewritten by
    /// the corruptor (sensor scaling / encoding faults on the wire).
    CorruptChannel {
        /// Channel signal name (`{writer}.{port}`).
        signal: String,
        /// The value rewrite.
        corruptor: Corruptor,
    },
    /// Matching activations of a task run `extra_us` longer than their
    /// WCET (interrupt storms, cache misses): response times grow, later
    /// activations may be skipped.
    TaskOverrun {
        /// ECU name.
        ecu: String,
        /// Task name.
        task: String,
        /// Extra execution time per matching activation.
        extra_us: Us,
        /// Activation modulus (≥ 1).
        every: u64,
        /// Activation remainder selected.
        phase: u64,
    },
    /// A babbling idiot: an interfering frame of this identifier and
    /// payload size queued periodically, stealing bus time from real
    /// traffic.
    BusLoad {
        /// Interfering identifier (low = wins arbitration).
        id: u32,
        /// Payload bytes (0–8), determining wire time.
        dlc: u8,
        /// Queuing period.
        period_us: Us,
        /// First queuing offset.
        offset_us: Us,
    },
}

/// Co-simulation configuration.
#[derive(Debug, Clone)]
pub struct CosimConfig {
    /// Microseconds per logical base tick.
    pub tick_us: Us,
    /// Bus bit rate (used for babbling-idiot wire times).
    pub bitrate: u64,
    /// Fixed-priority *preemptive* scheduling; `false` = cooperative (jobs
    /// run segments to completion once started).
    pub preemption: bool,
    /// Inter-task message regime (copy-in instant).
    pub regime: IpcRegime,
    /// Publication discipline for channels without CCD delays: `Immediate`
    /// publishes at runnable completion; `NextPeriodBoundary` stages one
    /// boundary, behaving as one extra delay operator.
    pub publication: Publication,
    /// Loose-sync grace for cross-ECU arrivals, in writer periods: the
    /// publication of activation `k` must arrive within this many periods
    /// of its logical visibility tick.
    pub envelope_bound_periods: u32,
    /// Platform faults in effect.
    pub faults: Vec<PlatformFault>,
}

impl Default for CosimConfig {
    fn default() -> Self {
        CosimConfig {
            tick_us: 1_000,
            bitrate: 500_000,
            preemption: true,
            regime: IpcRegime::CopyInCopyOut,
            publication: Publication::Immediate,
            envelope_bound_periods: 1,
            faults: Vec::new(),
        }
    }
}

/// Per-task scheduling statistics from a co-simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CosimTaskStats {
    /// Activations released (including skipped ones).
    pub activations: u64,
    /// Jobs completed.
    pub completions: u64,
    /// Activations skipped because the previous job was still running.
    pub skipped: u64,
    /// Completions past the implicit deadline (= period).
    pub deadline_misses: u64,
    /// Preemptions suffered.
    pub preemptions: u64,
    /// Worst observed response time.
    pub max_response_us: Us,
}

/// One task's report row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskReport {
    /// Hosting ECU.
    pub ecu: String,
    /// Task name.
    pub task: String,
    /// The statistics.
    pub stats: CosimTaskStats,
}

/// Per-frame transmission statistics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FrameReport {
    /// Frame name (`!babble:{id}` for injected interference).
    pub frame: String,
    /// Instances queued.
    pub queued: u64,
    /// Instances fully transmitted.
    pub sent: u64,
    /// Instances delivered to the receiver.
    pub delivered: u64,
    /// Instances lost on the wire.
    pub lost: u64,
    /// Worst queue→delivery latency.
    pub max_latency_us: Us,
    /// Sum of delivery latencies.
    pub total_latency_us: Us,
}

/// One cross-ECU channel's loose-synchronization envelope result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelReport {
    /// Channel signal name.
    pub signal: String,
    /// Frame carrying it.
    pub frame: String,
    /// Envelope outcome: `ticks` = publications checked, `misses` =
    /// publications arriving after their deadline (or never), and the worst
    /// observed slack.
    pub envelope: LooseSyncOutcome,
}

/// The result of a co-simulation run.
#[derive(Debug, Clone)]
pub struct CosimOutcome {
    /// Logical base ticks simulated.
    pub ticks: u64,
    /// Physical horizon in microseconds.
    pub horizon_us: Us,
    /// Cluster outputs at their logical activation ticks
    /// (`{cluster}.{port}` columns) — directly comparable against the LA
    /// trace of `sim::ccd_sim::elaborate_ccd`.
    pub trace: Trace,
    /// Cross-ECU delivery streams (`bus:{signal}` columns): present at a
    /// publication's logical visibility tick iff it was delivered. Feed
    /// these to a `ContractMonitor` expecting the writer clock to turn
    /// lost frames into structured presence violations.
    pub deliveries: Trace,
    /// Per-task scheduling statistics.
    pub tasks: Vec<TaskReport>,
    /// Per-frame bus statistics.
    pub frames: Vec<FrameReport>,
    /// Per cross-ECU channel envelope checks.
    pub channels: Vec<ChannelReport>,
    /// Total bus-busy time.
    pub bus_busy_us: Us,
}

impl CosimOutcome {
    /// Total deadline misses across tasks.
    pub fn deadline_misses(&self) -> u64 {
        self.tasks.iter().map(|t| t.stats.deadline_misses).sum()
    }

    /// Total skipped activations across tasks.
    pub fn skipped_activations(&self) -> u64 {
        self.tasks.iter().map(|t| t.stats.skipped).sum()
    }

    /// Total envelope misses across cross-ECU channels.
    pub fn envelope_misses(&self) -> u64 {
        self.channels.iter().map(|c| c.envelope.misses).sum()
    }

    /// Observed bus load (busy time over horizon).
    pub fn bus_load(&self) -> f64 {
        if self.horizon_us == 0 {
            0.0
        } else {
            self.bus_busy_us as f64 / self.horizon_us as f64
        }
    }

    /// `true` if every cross-ECU publication met its envelope deadline.
    pub fn envelope_preserved(&self) -> bool {
        self.channels
            .iter()
            .all(|c| c.envelope.semantics_preserved())
    }
}

/// The platform co-simulator (specification half — bodies are passed to
/// [`CoSim::run`]).
#[derive(Debug, Clone)]
pub struct CoSim {
    config: CosimConfig,
    ecus: Vec<EcuSpec>,
    runnables: Vec<RunnableSpec>,
    channels: Vec<ChannelSpec>,
    frames: Vec<FrameSpec>,
    /// Effective boundary stages per channel (delays, or one for 0-delay
    /// channels under `NextPeriodBoundary` publication).
    stages: Vec<u32>,
}

// ---------------------------------------------------------------------------
// Runtime state
// ---------------------------------------------------------------------------

/// Discrete event kinds. Processing order at equal instants follows
/// [`Ev::rank`]: completions publish before boundaries release staged
/// values, boundaries publish before same-instant releases copy in, and
/// releases precede interference queuing.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// The running job's current segment completes on `ecu` (valid iff
    /// `gen` matches — preemption invalidates).
    SegDone { ecu: usize, gen: u64 },
    /// The in-flight frame instance leaves the wire.
    TxDone,
    /// A (possibly fault-delayed) frame instance reaches its receivers.
    Deliver { inst: usize },
    /// A writer period boundary for a staged channel.
    Boundary { chan: usize },
    /// A task release.
    Release { ecu: usize, task: usize },
    /// A babbling-idiot interference queuing.
    Babble { fault: usize },
}

impl Ev {
    fn rank(&self) -> u8 {
        match self {
            Ev::SegDone { .. } => 0,
            Ev::TxDone => 1,
            Ev::Deliver { .. } => 2,
            Ev::Boundary { .. } => 3,
            Ev::Release { .. } => 4,
            Ev::Babble { .. } => 5,
        }
    }
}

#[derive(Debug, Clone)]
struct Job {
    /// Global (ecu, task-local) identity.
    task: usize,
    release_us: Us,
    /// Logical base tick of the release.
    release_tick: u64,
    /// Current runnable position within the task.
    seg: usize,
    /// Remaining execution time of the current segment.
    seg_remaining: Us,
    /// Copy-in snapshot already taken (job started).
    started: bool,
    /// Whether a valid `SegDone` is scheduled for this job.
    pending_segdone: bool,
    /// Instant the scheduled `SegDone` will fire (valid iff
    /// `pending_segdone`).
    segdone_due: Us,
    /// Per-runnable pre-gathered inter-task channel inputs
    /// (`CopyInCopyOut` snapshot at job start).
    snapshot: Vec<Vec<Option<Message>>>,
    /// The gathered input row of the current segment, if taken.
    row: Option<Vec<Message>>,
}

#[derive(Debug, Default)]
struct EcuState {
    running: Option<Job>,
    ready: Vec<Job>,
    /// Generation counter validating scheduled `SegDone` events.
    gen: u64,
}

#[derive(Debug, Clone)]
struct Payload {
    chan: usize,
    /// Logical visibility tick of this publication.
    vis_tick: u64,
    value: Message,
}

#[derive(Debug, Clone)]
struct FrameInst {
    /// Real frame index, or `None` for babbling-idiot interference.
    frame: Option<usize>,
    /// Interference fault index when `frame` is `None`.
    noise: usize,
    /// Per-frame instance counter value (fault matching).
    index: u64,
    queued_us: Us,
    tx_us: Us,
    payload: Vec<Payload>,
    /// Transmission started (no longer mergeable).
    started: bool,
}

#[derive(Debug, Default)]
struct ChannelTally {
    pubs: u64,
    misses: u64,
    worst_slack_us: Option<i64>,
}

impl CoSim {
    /// Builds a co-simulator, validating the specification.
    ///
    /// # Errors
    ///
    /// Rejects empty task sets, duplicate priorities per ECU, zero
    /// periods, invalid channel/frame references, per-ECU utilization
    /// above 1, and static bus load above 1.
    pub fn new(
        config: CosimConfig,
        ecus: Vec<EcuSpec>,
        runnables: Vec<RunnableSpec>,
        channels: Vec<ChannelSpec>,
        frames: Vec<FrameSpec>,
    ) -> Result<Self, PlatformError> {
        if config.tick_us == 0 {
            return Err(PlatformError::Config("tick_us must be positive".into()));
        }
        if config.bitrate == 0 {
            return Err(PlatformError::Config("bitrate must be positive".into()));
        }
        for f in &config.faults {
            let (every, what) = match f {
                PlatformFault::LostFrame { every, frame, .. }
                | PlatformFault::DelayedFrame { every, frame, .. } => (*every, frame.as_str()),
                PlatformFault::TaskOverrun { every, task, .. } => (*every, task.as_str()),
                _ => (1, ""),
            };
            if every == 0 {
                return Err(PlatformError::Config(format!(
                    "fault on `{what}` has every == 0"
                )));
            }
        }
        let mut seen_runnable = vec![false; runnables.len()];
        for ecu in &ecus {
            if ecu.tasks.is_empty() {
                return Err(PlatformError::Config(format!(
                    "ECU `{}` has no tasks",
                    ecu.name
                )));
            }
            let mut util = 0.0;
            for (ti, task) in ecu.tasks.iter().enumerate() {
                if task.period_us == 0 {
                    return Err(PlatformError::Config(format!(
                        "task `{}` has zero period",
                        task.name
                    )));
                }
                if ecu.tasks[..ti].iter().any(|t| t.priority == task.priority) {
                    return Err(PlatformError::Config(format!(
                        "task `{}` reuses priority {}",
                        task.name, task.priority
                    )));
                }
                let mut wcet = 0;
                for &r in &task.runnables {
                    let spec = runnables.get(r).ok_or_else(|| PlatformError::Unknown {
                        kind: "runnable",
                        name: r.to_string(),
                    })?;
                    if seen_runnable[r] {
                        return Err(PlatformError::Config(format!(
                            "runnable `{}` mapped twice",
                            spec.cluster
                        )));
                    }
                    seen_runnable[r] = true;
                    if spec.period_ticks == 0 {
                        return Err(PlatformError::Config(format!(
                            "cluster `{}` has zero period",
                            spec.cluster
                        )));
                    }
                    wcet += spec.wcet_us;
                }
                util += wcet as f64 / task.period_us as f64;
            }
            if util > 1.0 {
                return Err(PlatformError::Infeasible(format!(
                    "ECU `{}` utilization {util:.2} > 1",
                    ecu.name
                )));
            }
        }
        for (fi, f) in frames.iter().enumerate() {
            if frames[..fi].iter().any(|g| g.id == f.id) {
                return Err(PlatformError::DuplicateName(format!("frame id {}", f.id)));
            }
            if frames[..fi].iter().any(|g| g.name == f.name) {
                return Err(PlatformError::DuplicateName(f.name.clone()));
            }
        }
        let mut stages = Vec::with_capacity(channels.len());
        for ch in &channels {
            if ch.writer >= runnables.len() || ch.reader >= runnables.len() {
                return Err(PlatformError::Unknown {
                    kind: "runnable",
                    name: ch.signal.clone(),
                });
            }
            if let LinkKind::Frame(fi) = ch.link {
                if fi >= frames.len() {
                    return Err(PlatformError::Unknown {
                        kind: "frame",
                        name: ch.signal.clone(),
                    });
                }
            }
            let s = if ch.delays > 0 {
                ch.delays
            } else if config.publication == Publication::NextPeriodBoundary {
                1
            } else {
                0
            };
            stages.push(s);
        }
        Ok(CoSim {
            config,
            ecus,
            runnables,
            channels,
            frames,
            stages,
        })
    }

    /// The configuration in effect.
    pub fn config(&self) -> &CosimConfig {
        &self.config
    }

    /// Runs the co-simulation for `ticks` logical base ticks.
    ///
    /// `bodies[i]` is the functional body of `runnables[i]`; `stimulus`
    /// columns feed [`InputSource::External`] ports by name, sampled at the
    /// activation's logical tick.
    ///
    /// # Errors
    ///
    /// Propagates body arity mismatches and functional step errors.
    pub fn run(
        &self,
        bodies: &mut [Box<dyn ClusterStep + '_>],
        stimulus: &Trace,
        ticks: u64,
    ) -> Result<CosimOutcome, PlatformError> {
        if bodies.len() != self.runnables.len() {
            return Err(PlatformError::Config(format!(
                "{} bodies for {} runnables",
                bodies.len(),
                self.runnables.len()
            )));
        }
        let horizon_us = ticks * self.config.tick_us;
        let tick_us = self.config.tick_us;

        // --- runtime state ---------------------------------------------
        let mut calendar: Calendar<Ev> = Calendar::new();
        let mut ecu_states: Vec<EcuState> = Vec::new();
        // Global task table: (ecu index, local index) plus counters.
        let mut task_of: Vec<(usize, usize)> = Vec::new();
        let mut task_stats: Vec<CosimTaskStats> = Vec::new();
        let mut task_release_count: Vec<u64> = Vec::new();
        let mut task_index: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        for (ei, ecu) in self.ecus.iter().enumerate() {
            ecu_states.push(EcuState::default());
            for (ti, task) in ecu.tasks.iter().enumerate() {
                let gi = task_of.len();
                task_index.insert((ei, ti), gi);
                task_of.push((ei, ti));
                task_stats.push(CosimTaskStats::default());
                task_release_count.push(0);
                if task.offset_us < horizon_us {
                    calendar.schedule(task.offset_us, Ev::Release { ecu: ei, task: ti });
                }
            }
        }
        // Channel stores seeded like the LA hold blocks.
        let mut store: Vec<Message> = self
            .channels
            .iter()
            .map(|c| Message::present(c.seed.clone()))
            .collect();
        // Staged (boundary-published) values: (activation k, value).
        let mut staged: Vec<VecDeque<(u64, Message)>> = vec![VecDeque::new(); self.channels.len()];
        for (ci, ch) in self.channels.iter().enumerate() {
            if self.stages[ci] > 0 {
                let w = &self.runnables[ch.writer];
                let first = (w.phase_ticks + w.period_ticks) * tick_us;
                if first < horizon_us {
                    calendar.schedule(first, Ev::Boundary { chan: ci });
                }
            }
        }
        for (fi, f) in self.config.faults.iter().enumerate() {
            if let PlatformFault::BusLoad { offset_us, .. } = f {
                if *offset_us < horizon_us {
                    calendar.schedule(*offset_us, Ev::Babble { fault: fi });
                }
            }
        }
        // Bus.
        let mut instances: Vec<FrameInst> = Vec::new();
        let mut in_flight: Option<usize> = None;
        let mut pending_tx: Vec<usize> = Vec::new();
        let mut open_inst: BTreeMap<usize, usize> = BTreeMap::new();
        let mut open_at: Us = Us::MAX;
        let mut frame_count: Vec<u64> = vec![0; self.frames.len()];
        let mut babble_count: BTreeMap<usize, u64> = BTreeMap::new();
        let mut frame_reports: Vec<FrameReport> = self
            .frames
            .iter()
            .map(|f| FrameReport {
                frame: f.name.clone(),
                ..FrameReport::default()
            })
            .collect();
        let mut babble_report: BTreeMap<usize, FrameReport> = BTreeMap::new();
        let mut bus_busy_us: Us = 0;
        // Traces and envelope tallies.
        let mut out_cols: BTreeMap<String, Vec<(u64, Message)>> = BTreeMap::new();
        for r in &self.runnables {
            for p in &r.outputs {
                out_cols.insert(format!("{}.{}", r.cluster, p), Vec::new());
            }
        }
        let mut bus_cols: BTreeMap<usize, Vec<(u64, Message)>> = BTreeMap::new();
        let mut tallies: BTreeMap<usize, ChannelTally> = BTreeMap::new();
        for (ci, ch) in self.channels.iter().enumerate() {
            if matches!(ch.link, LinkKind::Frame(_)) {
                bus_cols.insert(ci, Vec::new());
                tallies.insert(ci, ChannelTally::default());
            }
        }

        // Helper closures are impractical here (they would each need
        // exclusive borrows of half the state), so the loop below is one
        // plain state machine with inline handling per event kind.
        let mut batch: Vec<Ev> = Vec::new();
        while let Some(now) = calendar.next_time() {
            // Collect every event due at this instant and order by kind.
            batch.clear();
            while let Some((_, ev)) = calendar.pop_due(now) {
                batch.push(ev);
            }
            batch.sort_by_key(Ev::rank);
            if now > open_at {
                open_inst.clear();
            }
            open_at = now;

            for ev in batch.drain(..) {
                match ev {
                    Ev::SegDone { ecu, gen } => {
                        if ecu_states[ecu].gen != gen {
                            continue; // stale: the job was preempted
                        }
                        let Some(mut job) = ecu_states[ecu].running.take() else {
                            continue;
                        };
                        job.pending_segdone = false;
                        let gtask = task_index[&(ecu, job.task)];
                        let (_, lt) = task_of[gtask];
                        let task = &self.ecus[ecu].tasks[lt];
                        let ri = task.runnables[job.seg];
                        let spec = &self.runnables[ri];
                        let k =
                            job.release_tick.saturating_sub(spec.phase_ticks) / spec.period_ticks;
                        let row = job.row.take().unwrap_or_default();
                        let outputs = bodies[ri]
                            .step(k, &row)
                            .map_err(|e| PlatformError::Functional(e.to_string()))?;
                        if outputs.len() != spec.outputs.len() {
                            return Err(PlatformError::Functional(format!(
                                "cluster `{}` returned {} outputs, expected {}",
                                spec.cluster,
                                outputs.len(),
                                spec.outputs.len()
                            )));
                        }
                        // Record the trace row and publish channel writes.
                        for (pi, m) in outputs.iter().enumerate() {
                            let col = out_cols
                                .get_mut(&format!("{}.{}", spec.cluster, spec.outputs[pi]))
                                .expect("declared");
                            col.push((job.release_tick, m.clone()));
                        }
                        for (ci, ch) in self.channels.iter().enumerate() {
                            if ch.writer != ri {
                                continue;
                            }
                            let m = &outputs[ch.writer_port];
                            if !m.is_present() {
                                continue;
                            }
                            if self.stages[ci] > 0 {
                                staged[ci].push_back((k, m.clone()));
                            } else {
                                publish(
                                    ci,
                                    k,
                                    m.clone(),
                                    now,
                                    self,
                                    &mut store,
                                    &mut instances,
                                    &mut pending_tx,
                                    &mut open_inst,
                                    &mut frame_count,
                                    &mut frame_reports,
                                    &mut tallies,
                                    ticks,
                                );
                            }
                        }
                        // Advance to the next segment or complete the job.
                        job.seg += 1;
                        if job.seg < task.runnables.len() {
                            let next = &self.runnables[task.runnables[job.seg]];
                            job.seg_remaining = next.wcet_us;
                            ecu_states[ecu].running = Some(job);
                        } else {
                            let st = &mut task_stats[gtask];
                            st.completions += 1;
                            let response = now - job.release_us;
                            st.max_response_us = st.max_response_us.max(response);
                            if response > task.period_us {
                                st.deadline_misses += 1;
                            }
                        }
                    }
                    Ev::TxDone => {
                        let Some(ii) = in_flight.take() else { continue };
                        let (frame, index) = (instances[ii].frame, instances[ii].index);
                        match frame {
                            Some(fi) => {
                                frame_reports[fi].sent += 1;
                                let (lost, delay) =
                                    frame_fault(&self.config.faults, &self.frames[fi].name, index);
                                if lost {
                                    frame_reports[fi].lost += 1;
                                } else if delay > 0 {
                                    calendar.schedule(now + delay, Ev::Deliver { inst: ii });
                                } else {
                                    deliver(
                                        ii,
                                        now,
                                        self,
                                        &mut instances,
                                        &mut store,
                                        &mut frame_reports,
                                        &mut bus_cols,
                                        &mut tallies,
                                        ticks,
                                    );
                                }
                            }
                            None => {
                                let noise = instances[ii].noise;
                                let rep = babble_report.get_mut(&noise).expect("queued");
                                rep.sent += 1;
                                rep.delivered += 1;
                            }
                        }
                    }
                    Ev::Deliver { inst } => {
                        deliver(
                            inst,
                            now,
                            self,
                            &mut instances,
                            &mut store,
                            &mut frame_reports,
                            &mut bus_cols,
                            &mut tallies,
                            ticks,
                        );
                    }
                    Ev::Boundary { chan } => {
                        let ch = &self.channels[chan];
                        let w = &self.runnables[ch.writer];
                        // Boundary index m: this instant is writer boundary
                        // `phase + m*period`.
                        let m = (now / tick_us - w.phase_ticks) / w.period_ticks;
                        while let Some(&(k, _)) = staged[chan].front() {
                            if k + self.stages[chan] as u64 > m {
                                break;
                            }
                            let (k, value) = staged[chan].pop_front().expect("peeked");
                            publish(
                                chan,
                                k,
                                value,
                                now,
                                self,
                                &mut store,
                                &mut instances,
                                &mut pending_tx,
                                &mut open_inst,
                                &mut frame_count,
                                &mut frame_reports,
                                &mut tallies,
                                ticks,
                            );
                        }
                        let next = now + w.period_ticks * tick_us;
                        if next < horizon_us {
                            calendar.schedule(next, Ev::Boundary { chan });
                        }
                    }
                    Ev::Release { ecu, task } => {
                        let gtask = task_index[&(ecu, task)];
                        let spec = &self.ecus[ecu].tasks[task];
                        let n = task_release_count[gtask];
                        task_release_count[gtask] += 1;
                        task_stats[gtask].activations += 1;
                        let next = now + spec.period_us;
                        if next < horizon_us {
                            calendar.schedule(next, Ev::Release { ecu, task });
                        }
                        let busy = ecu_states[ecu]
                            .running
                            .as_ref()
                            .is_some_and(|j| j.task == task)
                            || ecu_states[ecu].ready.iter().any(|j| j.task == task);
                        if busy {
                            // The previous job is still in flight: OSEK
                            // would raise an activation error; we skip and
                            // count, leaving a hole in the output trace.
                            task_stats[gtask].skipped += 1;
                            continue;
                        }
                        let mut extra = 0;
                        for f in &self.config.faults {
                            if let PlatformFault::TaskOverrun {
                                ecu: fe,
                                task: ft,
                                extra_us,
                                every,
                                phase,
                            } = f
                            {
                                if fe == &self.ecus[ecu].name
                                    && ft == &spec.name
                                    && n % every == phase % every
                                {
                                    extra += extra_us;
                                }
                            }
                        }
                        let first = &self.runnables[spec.runnables[0]];
                        ecu_states[ecu].ready.push(Job {
                            task,
                            release_us: now,
                            release_tick: now / tick_us,
                            seg: 0,
                            seg_remaining: first.wcet_us + extra,
                            started: false,
                            pending_segdone: false,
                            segdone_due: 0,
                            snapshot: Vec::new(),
                            row: None,
                        });
                    }
                    Ev::Babble { fault } => {
                        let PlatformFault::BusLoad {
                            id,
                            dlc,
                            period_us,
                            offset_us: _,
                        } = &self.config.faults[fault]
                        else {
                            continue;
                        };
                        let raw = 47 + 8 * *dlc as u64;
                        let bits = raw + raw / 5;
                        let tx = (bits * 1_000_000).div_ceil(self.config.bitrate).max(1);
                        let n = babble_count.entry(fault).or_insert(0);
                        let index = *n;
                        *n += 1;
                        babble_report
                            .entry(fault)
                            .or_insert_with(|| FrameReport {
                                frame: format!("!babble:{id:#x}"),
                                ..FrameReport::default()
                            })
                            .queued += 1;
                        instances.push(FrameInst {
                            frame: None,
                            noise: fault,
                            index,
                            queued_us: now,
                            tx_us: tx,
                            payload: Vec::new(),
                            started: false,
                        });
                        pending_tx.push(instances.len() - 1);
                        let next = now + period_us;
                        if next < horizon_us {
                            calendar.schedule(next, Ev::Babble { fault });
                        }
                    }
                }
            }

            // Scheduling decision per ECU after the batch settles.
            for (ei, ecu_state) in ecu_states.iter_mut().enumerate() {
                self.dispatch(
                    ei,
                    now,
                    ecu_state,
                    &mut task_stats,
                    &task_index,
                    &mut calendar,
                    stimulus,
                    &store,
                )?;
            }

            // Bus arbitration: start the lowest identifier when idle.
            if in_flight.is_none() {
                let winner = pending_tx
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &ii)| {
                        let inst = &instances[ii];
                        let id = match inst.frame {
                            Some(fi) => self.frames[fi].id,
                            None => {
                                if let PlatformFault::BusLoad { id, .. } =
                                    &self.config.faults[inst.noise]
                                {
                                    *id
                                } else {
                                    u32::MAX
                                }
                            }
                        };
                        (id, inst.queued_us, ii)
                    })
                    .map(|(pos, _)| pos);
                if let Some(pos) = winner {
                    let ii = pending_tx.remove(pos);
                    let inst = &mut instances[ii];
                    inst.started = true;
                    // A started instance can no longer merge payloads.
                    if let Some(fi) = inst.frame {
                        open_inst.remove(&fi);
                    }
                    in_flight = Some(ii);
                    bus_busy_us += inst.tx_us;
                    calendar.schedule(now + inst.tx_us, Ev::TxDone);
                }
            }
        }

        // Undelivered cross-ECU publications (lost frames, or still queued
        // at the horizon) are envelope misses too: `misses` so far only
        // counted deliveries that arrived late.
        for (&ci, t) in tallies.iter_mut() {
            let delivered = bus_cols.get(&ci).map_or(0, |c| c.len() as u64);
            t.misses += t.pubs.saturating_sub(delivered);
        }

        // Materialize traces.
        let mut trace = Trace::new();
        for (name, recs) in out_cols {
            trace.insert(name, column(recs, ticks));
        }
        let mut deliveries = Trace::new();
        for (ci, recs) in bus_cols {
            deliveries.insert(
                format!("bus:{}", self.channels[ci].signal),
                column(recs, ticks),
            );
        }
        let mut tasks = Vec::new();
        for (gi, &(ei, ti)) in task_of.iter().enumerate() {
            tasks.push(TaskReport {
                ecu: self.ecus[ei].name.clone(),
                task: self.ecus[ei].tasks[ti].name.clone(),
                stats: task_stats[gi],
            });
        }
        let mut frames = frame_reports;
        frames.extend(babble_report.into_values());
        let channels = tallies
            .into_iter()
            .map(|(ci, t)| {
                let frame = match self.channels[ci].link {
                    LinkKind::Frame(fi) => self.frames[fi].name.clone(),
                    LinkKind::Local => String::new(),
                };
                ChannelReport {
                    signal: self.channels[ci].signal.clone(),
                    frame,
                    envelope: LooseSyncOutcome {
                        ticks: t.pubs,
                        misses: t.misses,
                        worst_slack_us: t.worst_slack_us.unwrap_or(0),
                    },
                }
            })
            .collect();
        Ok(CosimOutcome {
            ticks,
            horizon_us,
            trace,
            deliveries,
            tasks,
            frames,
            channels,
            bus_busy_us,
        })
    }

    /// Settles one ECU's scheduling decision at an instant: preempts if a
    /// higher-priority job became ready, starts the best ready job when
    /// idle, and (re)schedules the running job's segment completion.
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &self,
        ecu: usize,
        now: Us,
        state: &mut EcuState,
        task_stats: &mut [CosimTaskStats],
        task_index: &BTreeMap<(usize, usize), usize>,
        calendar: &mut Calendar<Ev>,
        stimulus: &Trace,
        store: &[Message],
    ) -> Result<(), PlatformError> {
        let tasks = &self.ecus[ecu].tasks;
        loop {
            let best_ready = state
                .ready
                .iter()
                .enumerate()
                .min_by_key(|(_, j)| tasks[j.task].priority)
                .map(|(i, _)| i);
            let preempt = match (&state.running, best_ready) {
                (Some(run), Some(bi)) => {
                    self.config.preemption
                        && tasks[state.ready[bi].task].priority < tasks[run.task].priority
                }
                _ => false,
            };
            if preempt {
                let mut run = state.running.take().expect("running checked");
                if run.pending_segdone {
                    // Invalidate the scheduled SegDone (generation bump)
                    // and bank the remaining segment time.
                    run.seg_remaining = run.segdone_due.saturating_sub(now);
                    run.pending_segdone = false;
                    state.gen += 1;
                    let gtask = task_index[&(ecu, run.task)];
                    task_stats[gtask].preemptions += 1;
                }
                state.ready.push(run);
                continue;
            }
            if state.running.is_none() {
                if let Some(bi) = best_ready {
                    state.running = Some(state.ready.swap_remove(bi));
                }
            }
            break;
        }
        let Some(mut job) = state.running.take() else {
            return Ok(());
        };
        if job.pending_segdone {
            state.running = Some(job);
            return Ok(());
        }
        // First CPU time for this job: take the CopyInCopyOut snapshot of
        // inter-task channel inputs.
        if !job.started {
            job.started = true;
            if self.config.regime == IpcRegime::CopyInCopyOut {
                job.snapshot = self.snapshot_rows(ecu, job.task, store);
            }
        }
        // First CPU time for this segment: gather its input row.
        if job.row.is_none() {
            job.row = Some(self.gather_row(ecu, job.task, &job, stimulus, store));
        }
        state.gen += 1;
        job.pending_segdone = true;
        job.segdone_due = now + job.seg_remaining;
        calendar.schedule(
            job.segdone_due,
            Ev::SegDone {
                ecu,
                gen: state.gen,
            },
        );
        state.running = Some(job);
        Ok(())
    }

    /// The CopyInCopyOut snapshot: inter-task channel inputs of every
    /// runnable in the task, read at job start.
    fn snapshot_rows(
        &self,
        ecu: usize,
        task: usize,
        store: &[Message],
    ) -> Vec<Vec<Option<Message>>> {
        let spec = &self.ecus[ecu].tasks[task];
        spec.runnables
            .iter()
            .map(|&ri| {
                self.runnables[ri]
                    .inputs
                    .iter()
                    .map(|src| match src {
                        InputSource::Channel(ci)
                            if !self.same_task(self.channels[*ci].writer, ecu, task) =>
                        {
                            Some(store[*ci].clone())
                        }
                        _ => None,
                    })
                    .collect()
            })
            .collect()
    }

    /// Gathers the input row of the job's current segment.
    fn gather_row(
        &self,
        ecu: usize,
        task: usize,
        job: &Job,
        stimulus: &Trace,
        store: &[Message],
    ) -> Vec<Message> {
        let spec = &self.ecus[ecu].tasks[task];
        let ri = spec.runnables[job.seg];
        self.runnables[ri]
            .inputs
            .iter()
            .enumerate()
            .map(|(pi, src)| match src {
                InputSource::External(name) => stimulus
                    .signal(name)
                    .and_then(|s| s.get(job.release_tick as usize).cloned())
                    .unwrap_or(Message::Absent),
                InputSource::Channel(ci) => {
                    let inter = !self.same_task(self.channels[*ci].writer, ecu, task);
                    if inter && self.config.regime == IpcRegime::CopyInCopyOut {
                        job.snapshot
                            .get(job.seg)
                            .and_then(|r| r.get(pi).cloned().flatten())
                            .unwrap_or(Message::Absent)
                    } else {
                        store[*ci].clone()
                    }
                }
            })
            .collect()
    }

    /// Whether `runnable` is mapped into task `(ecu, task)`.
    fn same_task(&self, runnable: usize, ecu: usize, task: usize) -> bool {
        self.ecus[ecu].tasks[task].runnables.contains(&runnable)
    }
}

/// Publishes one channel value: local store write, or frame payload
/// accumulation for cross-ECU links. `k` is the writer activation index.
#[allow(clippy::too_many_arguments)]
fn publish(
    ci: usize,
    k: u64,
    value: Message,
    now: Us,
    sim: &CoSim,
    store: &mut [Message],
    instances: &mut Vec<FrameInst>,
    pending_tx: &mut Vec<usize>,
    open_inst: &mut BTreeMap<usize, usize>,
    frame_count: &mut [u64],
    frame_reports: &mut [FrameReport],
    tallies: &mut BTreeMap<usize, ChannelTally>,
    ticks: u64,
) {
    let ch = &sim.channels[ci];
    let w = &sim.runnables[ch.writer];
    let vis_tick = w.phase_ticks + (k + sim.stages[ci] as u64) * w.period_ticks;
    match ch.link {
        LinkKind::Local => {
            store[ci] = value;
        }
        LinkKind::Frame(fi) => {
            if vis_tick < ticks {
                tallies.get_mut(&ci).expect("cross channel").pubs += 1;
            }
            let payload = Payload {
                chan: ci,
                vis_tick,
                value,
            };
            match open_inst.get(&fi) {
                Some(&ii) if !instances[ii].started => instances[ii].payload.push(payload),
                _ => {
                    let index = frame_count[fi];
                    frame_count[fi] += 1;
                    frame_reports[fi].queued += 1;
                    instances.push(FrameInst {
                        frame: Some(fi),
                        noise: 0,
                        index,
                        queued_us: now,
                        tx_us: sim.frames[fi].tx_us,
                        payload: vec![payload],
                        started: false,
                    });
                    let ii = instances.len() - 1;
                    open_inst.insert(fi, ii);
                    pending_tx.push(ii);
                }
            }
        }
    }
}

/// Delivers a transmitted frame instance into the reader stores, applying
/// channel corruption faults and recording envelope slack.
#[allow(clippy::too_many_arguments)]
fn deliver(
    ii: usize,
    now: Us,
    sim: &CoSim,
    instances: &mut [FrameInst],
    store: &mut [Message],
    frame_reports: &mut [FrameReport],
    bus_cols: &mut BTreeMap<usize, Vec<(u64, Message)>>,
    tallies: &mut BTreeMap<usize, ChannelTally>,
    ticks: u64,
) {
    let inst = &mut instances[ii];
    let Some(fi) = inst.frame else { return };
    let rep = &mut frame_reports[fi];
    rep.delivered += 1;
    let latency = now.saturating_sub(inst.queued_us);
    rep.max_latency_us = rep.max_latency_us.max(latency);
    rep.total_latency_us += latency;
    for p in std::mem::take(&mut inst.payload) {
        let ch = &sim.channels[p.chan];
        let mut value = p.value;
        for f in &sim.config.faults {
            if let PlatformFault::CorruptChannel { signal, corruptor } = f {
                if signal == &ch.signal {
                    if let Message::Present(v) = &value {
                        value = Message::present(corruptor.apply(v));
                    }
                }
            }
        }
        store[p.chan] = value.clone();
        if p.vis_tick < ticks {
            bus_cols
                .get_mut(&p.chan)
                .expect("cross channel")
                .push((p.vis_tick, value));
            let w = &sim.runnables[ch.writer];
            let deadline = (p.vis_tick + sim.config.envelope_bound_periods as u64 * w.period_ticks)
                * sim.config.tick_us;
            let slack = deadline as i64 - now as i64;
            let t = tallies.get_mut(&p.chan).expect("cross channel");
            if slack < 0 {
                t.misses += 1;
            }
            t.worst_slack_us = Some(t.worst_slack_us.map_or(slack, |w| w.min(slack)));
        }
    }
}

/// Looks up frame loss/delay faults for an instance: returns
/// `(lost, extra_delay)`.
fn frame_fault(faults: &[PlatformFault], frame: &str, index: u64) -> (bool, Us) {
    let mut lost = false;
    let mut delay = 0;
    for f in faults {
        match f {
            PlatformFault::LostFrame {
                frame: fr,
                every,
                phase,
            } if fr == frame && index % every == phase % every => lost = true,
            PlatformFault::DelayedFrame {
                frame: fr,
                extra_us,
                every,
                phase,
            } if fr == frame && index % every == phase % every => delay += extra_us,
            _ => {}
        }
    }
    (lost, delay)
}

/// Builds a logical-tick-indexed stream from sparse records.
fn column(recs: Vec<(u64, Message)>, ticks: u64) -> automode_kernel::Stream {
    let mut msgs = vec![Message::Absent; ticks as usize];
    for (t, m) in recs {
        if (t as usize) < msgs.len() {
            msgs[t as usize] = m;
        }
    }
    msgs.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Emits `Int(base + k)` each activation, ignoring inputs.
    struct Counter {
        base: i64,
    }

    impl ClusterStep for Counter {
        fn step(&mut self, k: u64, _inputs: &[Message]) -> Result<Vec<Message>, KernelError> {
            Ok(vec![Message::present(Value::Int(self.base + k as i64))])
        }
    }

    /// Echoes its single input (the value it currently sees).
    struct Echo;

    impl ClusterStep for Echo {
        fn step(&mut self, _k: u64, inputs: &[Message]) -> Result<Vec<Message>, KernelError> {
            Ok(vec![inputs[0].clone()])
        }
    }

    fn producer_spec() -> RunnableSpec {
        RunnableSpec {
            cluster: "prod".into(),
            wcet_us: 100,
            period_ticks: 1,
            phase_ticks: 0,
            inputs: vec![],
            outputs: vec!["out".into()],
        }
    }

    fn consumer_spec() -> RunnableSpec {
        RunnableSpec {
            cluster: "cons".into(),
            wcet_us: 100,
            period_ticks: 1,
            phase_ticks: 0,
            inputs: vec![InputSource::Channel(0)],
            outputs: vec!["seen".into()],
        }
    }

    fn channel(link: LinkKind, delays: u32) -> ChannelSpec {
        ChannelSpec {
            signal: "prod.out".into(),
            writer: 0,
            writer_port: 0,
            reader: 1,
            reader_port: 0,
            delays,
            link,
            seed: Value::Int(-1),
        }
    }

    fn bodies() -> Vec<Box<dyn ClusterStep + 'static>> {
        vec![Box::new(Counter { base: 0 }), Box::new(Echo)]
    }

    fn int_at(trace: &Trace, sig: &str, t: usize) -> Option<i64> {
        match trace.signal(sig).and_then(|s| s.get(t)) {
            Some(Message::Present(Value::Int(v))) => Some(*v),
            _ => None,
        }
    }

    #[test]
    fn intra_ecu_same_tick_propagation() {
        // Producer (higher priority) and consumer on one ECU, 0-delay
        // channel: the consumer sees this tick's value at every tick.
        let ecus = vec![EcuSpec {
            name: "e0".into(),
            tasks: vec![
                TaskSpec {
                    name: "tp".into(),
                    priority: 1,
                    period_us: 1_000,
                    offset_us: 0,
                    runnables: vec![0],
                },
                TaskSpec {
                    name: "tc".into(),
                    priority: 2,
                    period_us: 1_000,
                    offset_us: 0,
                    runnables: vec![1],
                },
            ],
        }];
        let sim = CoSim::new(
            CosimConfig::default(),
            ecus,
            vec![producer_spec(), consumer_spec()],
            vec![channel(LinkKind::Local, 0)],
            vec![],
        )
        .unwrap();
        let out = sim.run(&mut bodies(), &Trace::new(), 5).unwrap();
        for t in 0..5 {
            assert_eq!(int_at(&out.trace, "prod.out", t), Some(t as i64));
            assert_eq!(int_at(&out.trace, "cons.seen", t), Some(t as i64));
        }
        assert_eq!(out.deadline_misses(), 0);
        assert_eq!(out.skipped_activations(), 0);
    }

    #[test]
    fn intra_ecu_delay_operator_staging() {
        // One delay operator: the consumer sees activation k-1's value
        // (seed before the first boundary).
        let ecus = vec![EcuSpec {
            name: "e0".into(),
            tasks: vec![
                TaskSpec {
                    name: "tp".into(),
                    priority: 1,
                    period_us: 1_000,
                    offset_us: 0,
                    runnables: vec![0],
                },
                TaskSpec {
                    name: "tc".into(),
                    priority: 2,
                    period_us: 1_000,
                    offset_us: 0,
                    runnables: vec![1],
                },
            ],
        }];
        let sim = CoSim::new(
            CosimConfig::default(),
            ecus,
            vec![producer_spec(), consumer_spec()],
            vec![channel(LinkKind::Local, 1)],
            vec![],
        )
        .unwrap();
        let out = sim.run(&mut bodies(), &Trace::new(), 5).unwrap();
        assert_eq!(int_at(&out.trace, "cons.seen", 0), Some(-1)); // seed
        for t in 1..5 {
            assert_eq!(int_at(&out.trace, "cons.seen", t), Some(t as i64 - 1));
        }
    }

    fn two_ecu_sim(faults: Vec<PlatformFault>) -> CoSim {
        let ecus = vec![
            EcuSpec {
                name: "e0".into(),
                tasks: vec![TaskSpec {
                    name: "tp".into(),
                    priority: 1,
                    period_us: 1_000,
                    offset_us: 0,
                    runnables: vec![0],
                }],
            },
            EcuSpec {
                name: "e1".into(),
                tasks: vec![TaskSpec {
                    name: "tc".into(),
                    priority: 1,
                    period_us: 1_000,
                    offset_us: 0,
                    runnables: vec![1],
                }],
            },
        ];
        CoSim::new(
            CosimConfig {
                faults,
                ..CosimConfig::default()
            },
            ecus,
            vec![producer_spec(), consumer_spec()],
            vec![channel(LinkKind::Frame(0), 0)],
            vec![FrameSpec {
                name: "f0".into(),
                id: 0x100,
                tx_us: 266,
            }],
        )
        .unwrap()
    }

    #[test]
    fn cross_ecu_envelope_holds_fault_free() {
        let sim = two_ecu_sim(vec![]);
        let out = sim.run(&mut bodies(), &Trace::new(), 10).unwrap();
        assert!(out.envelope_preserved(), "{:?}", out.channels);
        assert_eq!(out.channels.len(), 1);
        // Every in-window publication was delivered and recorded.
        let col = out.deliveries.signal("bus:prod.out").unwrap();
        assert!(col.iter().all(Message::is_present));
        // Frame latency = wcet-to-queue plus wire time, well under a period.
        assert!(out.frames[0].max_latency_us <= 266);
        assert!(out.bus_load() > 0.0);
    }

    #[test]
    fn lost_frame_fault_leaves_delivery_holes() {
        let sim = two_ecu_sim(vec![PlatformFault::LostFrame {
            frame: "f0".into(),
            every: 3,
            phase: 1,
        }]);
        let out = sim.run(&mut bodies(), &Trace::new(), 9).unwrap();
        let lost: u64 = out.frames.iter().map(|f| f.lost).sum();
        assert!(lost >= 2, "{:?}", out.frames);
        assert!(!out.envelope_preserved());
        assert_eq!(out.envelope_misses(), lost);
        // The delivery stream has absences exactly where frames were lost.
        let col = out.deliveries.signal("bus:prod.out").unwrap();
        let holes = col.iter().filter(|m| m.is_absent()).count() as u64;
        assert_eq!(holes, lost);
        // The consumer keeps echoing the stale value across a hole.
        for t in 2..9 {
            let expected = if (t - 1) % 3 == 1 {
                t as i64 - 2
            } else {
                t as i64 - 1
            };
            assert_eq!(int_at(&out.trace, "cons.seen", t), Some(expected));
        }
    }

    #[test]
    fn overloaded_bus_delays_but_delivers() {
        // A babbling idiot with a lower identifier steals the bus; real
        // frames still deliver, just later.
        let quiet = two_ecu_sim(vec![])
            .run(&mut bodies(), &Trace::new(), 20)
            .unwrap();
        let noisy = two_ecu_sim(vec![PlatformFault::BusLoad {
            id: 0x10,
            dlc: 8,
            period_us: 300,
            offset_us: 0,
        }])
        .run(&mut bodies(), &Trace::new(), 20)
        .unwrap();
        assert!(noisy.bus_load() > quiet.bus_load());
        let (q, n) = (&quiet.frames[0], &noisy.frames[0]);
        assert_eq!(
            q.delivered, n.delivered,
            "interference must not lose frames"
        );
        assert!(n.max_latency_us > q.max_latency_us);
    }

    #[test]
    fn task_overrun_skips_activations() {
        let mut sim = two_ecu_sim(vec![PlatformFault::TaskOverrun {
            ecu: "e0".into(),
            task: "tp".into(),
            extra_us: 1_500,
            every: 4,
            phase: 0,
        }]);
        sim.config.preemption = true;
        let out = sim.run(&mut bodies(), &Trace::new(), 12).unwrap();
        let tp = out.tasks.iter().find(|t| t.task == "tp").unwrap();
        assert!(tp.stats.skipped > 0);
        assert!(tp.stats.deadline_misses > 0);
        assert!(tp.stats.max_response_us > 1_000);
    }

    #[test]
    fn corrupt_channel_rewrites_delivered_values() {
        let sim = two_ecu_sim(vec![PlatformFault::CorruptChannel {
            signal: "prod.out".into(),
            corruptor: Corruptor::offset(100.0),
        }]);
        let out = sim.run(&mut bodies(), &Trace::new(), 6).unwrap();
        // The consumer (one frame latency behind) sees offset values.
        let v = int_at(&out.trace, "cons.seen", 3).unwrap_or_else(|| {
            // offset() may promote Int to Float; accept either encoding.
            match out.trace.signal("cons.seen").and_then(|s| s.get(3)) {
                Some(Message::Present(Value::Float(f))) => *f as i64,
                other => panic!("unexpected {other:?}"),
            }
        });
        assert_eq!(v, 102);
    }

    #[test]
    fn run_is_deterministic() {
        let sim = two_ecu_sim(vec![PlatformFault::LostFrame {
            frame: "f0".into(),
            every: 2,
            phase: 0,
        }]);
        let a = sim.run(&mut bodies(), &Trace::new(), 16).unwrap();
        let b = sim.run(&mut bodies(), &Trace::new(), 16).unwrap();
        assert_eq!(a.trace.to_canonical_text(), b.trace.to_canonical_text());
        assert_eq!(
            a.deliveries.to_canonical_text(),
            b.deliveries.to_canonical_text()
        );
        assert_eq!(a.tasks, b.tasks);
        assert_eq!(a.frames, b.frames);
        assert_eq!(a.channels, b.channels);
    }

    #[test]
    fn spec_validation_rejects_bad_configs() {
        // Duplicate priority.
        let ecus = vec![EcuSpec {
            name: "e0".into(),
            tasks: vec![
                TaskSpec {
                    name: "a".into(),
                    priority: 1,
                    period_us: 1_000,
                    offset_us: 0,
                    runnables: vec![0],
                },
                TaskSpec {
                    name: "b".into(),
                    priority: 1,
                    period_us: 1_000,
                    offset_us: 0,
                    runnables: vec![1],
                },
            ],
        }];
        assert!(CoSim::new(
            CosimConfig::default(),
            ecus,
            vec![producer_spec(), consumer_spec()],
            vec![],
            vec![],
        )
        .is_err());
        // Utilization > 1.
        let mut heavy = producer_spec();
        heavy.wcet_us = 2_000;
        let ecus = vec![EcuSpec {
            name: "e0".into(),
            tasks: vec![TaskSpec {
                name: "a".into(),
                priority: 1,
                period_us: 1_000,
                offset_us: 0,
                runnables: vec![0],
            }],
        }];
        assert!(matches!(
            CoSim::new(CosimConfig::default(), ecus, vec![heavy], vec![], vec![]),
            Err(PlatformError::Infeasible(_))
        ));
    }
}
