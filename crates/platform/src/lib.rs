//! # automode-platform
//!
//! The **Technical Architecture substrate** of the AutoMoDe reproduction.
//!
//! The paper's LA/TA level "represents target platform components (ECUs,
//! tasks, buses, message frames) used to implement the system" (Sec. 3.3)
//! and assumes an OSEK-conformant operating system "with inter-task
//! communication between tasks using data integrity mechanisms and
//! fixed-priority, preemptive scheduling". The original project had real
//! ECUs, ERCOS/OSEK and CAN hardware; none of that is available here, so
//! this crate implements faithful miniature equivalents:
//!
//! * [`ta`] — the TA meta-model: ECUs, tasks, runnables, buses, frames.
//! * [`osek`] — a discrete-event, fixed-priority preemptive scheduler
//!   simulation with two inter-task communication regimes (direct shared
//!   access vs. OSEK-COM-style copy-in/copy-out), able to *observe* data
//!   integrity violations — this is what makes the CCD well-definedness
//!   rule of Sec. 3.3 empirically checkable (experiment E7).
//! * [`can`] — a CAN-style priority-arbitrated bus simulation (frame
//!   latency, bus load).
//! * [`comm_matrix`] — communication matrices (signals→frames→ECUs), the
//!   input artifact of "black-box" reengineering (Sec. 4), plus a synthetic
//!   body-electronics generator.
//! * [`cosim`] — the timing-accurate platform co-simulator: deployed
//!   clusters run as OSEK task runnables, cross-ECU channel writes travel
//!   as CAN frames, and platform faults (lost/delayed/corrupted frames,
//!   task overruns, babbling-idiot load) perturb the execution — all on one
//!   deterministic event calendar.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod can;
pub mod comm_matrix;
pub mod cosim;
pub mod error;
pub mod loose_sync;
pub mod osek;
pub mod ta;

pub use can::{BusSim, CanBusConfig, CanFrame};
pub use comm_matrix::{CommMatrix, FrameDef, SignalDef};
pub use cosim::{
    ChannelReport, ChannelSpec, ClusterStep, CoSim, CosimConfig, CosimOutcome, CosimTaskStats,
    EcuSpec, FrameReport, FrameSpec, InputSource, LinkKind, PlatformFault, RunnableSpec,
    TaskReport, TaskSpec,
};
pub use error::PlatformError;
pub use loose_sync::{required_depth, simulate_depths, LooseSyncConfig, LooseSyncOutcome};
pub use osek::{IpcRegime, OsekSim, Publication, SimOutcome};
pub use ta::{Ecu, Runnable, Task, TechnicalArchitecture};
