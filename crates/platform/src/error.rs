//! Errors of the technical-architecture substrate.

use std::error::Error;
use std::fmt;

/// Errors raised while building or simulating platform models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlatformError {
    /// A duplicate name where names must be unique.
    DuplicateName(String),
    /// A reference to an unknown entity (task, ECU, frame, signal...).
    Unknown {
        /// Entity kind, e.g. `task`.
        kind: &'static str,
        /// The missing name.
        name: String,
    },
    /// An invalid configuration value.
    Config(String),
    /// The simulation horizon or load is infeasible.
    Infeasible(String),
    /// A functional cluster body failed while co-simulating.
    Functional(String),
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::DuplicateName(n) => write!(f, "duplicate name `{n}`"),
            PlatformError::Unknown { kind, name } => write!(f, "unknown {kind} `{name}`"),
            PlatformError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            PlatformError::Infeasible(msg) => write!(f, "infeasible: {msg}"),
            PlatformError::Functional(msg) => write!(f, "functional step failed: {msg}"),
        }
    }
}

impl Error for PlatformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            PlatformError::Unknown {
                kind: "task",
                name: "T1".into()
            }
            .to_string(),
            "unknown task `T1`"
        );
    }
}
