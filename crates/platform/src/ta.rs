//! The Technical Architecture meta-model: ECUs, tasks, runnables, buses.
//!
//! "The TA represents target platform components (ECUs, tasks, buses,
//! message frames) used to implement the system" (paper, Sec. 3.3).
//! Deployment (in `automode-transform`) maps LA clusters onto [`Task`]s —
//! "several clusters may be mapped to a given operating system task, but a
//! given cluster will not be split across several tasks".

use crate::error::PlatformError;

/// A schedulable unit of work inside a task — typically one deployed
/// cluster's step function.
#[derive(Debug, Clone, PartialEq)]
pub struct Runnable {
    /// Runnable name (usually the cluster name).
    pub name: String,
    /// Worst-case execution time in microseconds.
    pub wcet_us: u64,
}

impl Runnable {
    /// Creates a runnable.
    pub fn new(name: impl Into<String>, wcet_us: u64) -> Self {
        Runnable {
            name: name.into(),
            wcet_us,
        }
    }
}

/// A periodic OSEK-style task with fixed priority.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Task name.
    pub name: String,
    /// Fixed priority; **lower number = higher priority** (rate-monotonic
    /// conventions assign the shortest period the lowest number).
    pub priority: u32,
    /// Activation period in microseconds.
    pub period_us: u64,
    /// Activation offset in microseconds.
    pub offset_us: u64,
    /// Runnables executed in order on each activation.
    pub runnables: Vec<Runnable>,
}

impl Task {
    /// Creates an empty task.
    pub fn new(name: impl Into<String>, priority: u32, period_us: u64) -> Self {
        Task {
            name: name.into(),
            priority,
            period_us,
            offset_us: 0,
            runnables: Vec::new(),
        }
    }

    /// Adds a runnable (builder style).
    pub fn runnable(mut self, r: Runnable) -> Self {
        self.runnables.push(r);
        self
    }

    /// Total worst-case execution time of one activation.
    pub fn wcet_us(&self) -> u64 {
        self.runnables.iter().map(|r| r.wcet_us).sum()
    }

    /// CPU utilisation contributed by this task (0.0–1.0 under feasibility).
    pub fn utilization(&self) -> f64 {
        self.wcet_us() as f64 / self.period_us as f64
    }
}

/// An electronic control unit hosting a set of tasks.
#[derive(Debug, Clone, PartialEq)]
pub struct Ecu {
    /// ECU name.
    pub name: String,
    /// Tasks deployed to this ECU.
    pub tasks: Vec<Task>,
}

impl Ecu {
    /// Creates an ECU without tasks.
    pub fn new(name: impl Into<String>) -> Self {
        Ecu {
            name: name.into(),
            tasks: Vec::new(),
        }
    }

    /// Adds a task (builder style).
    ///
    /// # Errors
    ///
    /// Rejects duplicate task names.
    pub fn with_task(mut self, task: Task) -> Result<Self, PlatformError> {
        if self.tasks.iter().any(|t| t.name == task.name) {
            return Err(PlatformError::DuplicateName(task.name));
        }
        self.tasks.push(task);
        Ok(self)
    }

    /// Total CPU utilisation of all tasks.
    pub fn utilization(&self) -> f64 {
        self.tasks.iter().map(Task::utilization).sum()
    }

    /// Finds a task by name.
    pub fn task(&self, name: &str) -> Option<&Task> {
        self.tasks.iter().find(|t| t.name == name)
    }

    /// The hyperperiod of all task periods in microseconds.
    pub fn hyperperiod_us(&self) -> u64 {
        self.tasks
            .iter()
            .map(|t| t.period_us)
            .fold(1, automode_kernel::clock::lcm)
    }
}

/// The complete technical architecture: ECUs plus buses.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TechnicalArchitecture {
    /// The ECUs.
    pub ecus: Vec<Ecu>,
    /// Named CAN buses.
    pub buses: Vec<crate::can::CanBusConfig>,
}

impl TechnicalArchitecture {
    /// An empty TA.
    pub fn new() -> Self {
        TechnicalArchitecture::default()
    }

    /// Adds an ECU (builder style).
    ///
    /// # Errors
    ///
    /// Rejects duplicate ECU names.
    pub fn with_ecu(mut self, ecu: Ecu) -> Result<Self, PlatformError> {
        if self.ecus.iter().any(|e| e.name == ecu.name) {
            return Err(PlatformError::DuplicateName(ecu.name));
        }
        self.ecus.push(ecu);
        Ok(self)
    }

    /// Adds a bus (builder style).
    ///
    /// # Errors
    ///
    /// Rejects duplicate bus names.
    pub fn with_bus(mut self, bus: crate::can::CanBusConfig) -> Result<Self, PlatformError> {
        if self.buses.iter().any(|b| b.name == bus.name) {
            return Err(PlatformError::DuplicateName(bus.name));
        }
        self.buses.push(bus);
        Ok(self)
    }

    /// Finds an ECU by name.
    pub fn ecu(&self, name: &str) -> Option<&Ecu> {
        self.ecus.iter().find(|e| e.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wcet_and_utilization() {
        let t = Task::new("T10ms", 0, 10_000)
            .runnable(Runnable::new("fuel", 1_000))
            .runnable(Runnable::new("ign", 500));
        assert_eq!(t.wcet_us(), 1_500);
        assert!((t.utilization() - 0.15).abs() < 1e-9);
    }

    #[test]
    fn ecu_rejects_duplicate_tasks() {
        let e = Ecu::new("ecu0")
            .with_task(Task::new("T", 0, 10_000))
            .unwrap();
        assert!(matches!(
            e.with_task(Task::new("T", 1, 20_000)),
            Err(PlatformError::DuplicateName(_))
        ));
    }

    #[test]
    fn hyperperiod() {
        let e = Ecu::new("ecu0")
            .with_task(Task::new("A", 0, 10_000))
            .unwrap()
            .with_task(Task::new("B", 1, 25_000))
            .unwrap();
        assert_eq!(e.hyperperiod_us(), 50_000);
    }

    #[test]
    fn ta_builders() {
        let ta = TechnicalArchitecture::new()
            .with_ecu(Ecu::new("engine"))
            .unwrap()
            .with_ecu(Ecu::new("body"))
            .unwrap();
        assert!(ta.ecu("engine").is_some());
        assert!(ta.ecu("chassis").is_none());
        assert!(matches!(
            ta.with_ecu(Ecu::new("body")),
            Err(PlatformError::DuplicateName(_))
        ));
    }

    #[test]
    fn ecu_utilization_sums_tasks() {
        let e = Ecu::new("ecu0")
            .with_task(Task::new("A", 0, 10_000).runnable(Runnable::new("a", 2_000)))
            .unwrap()
            .with_task(Task::new("B", 1, 100_000).runnable(Runnable::new("b", 10_000)))
            .unwrap();
        assert!((e.utilization() - 0.3).abs() < 1e-9);
    }
}
