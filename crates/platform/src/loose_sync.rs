//! Loose synchronization of event-triggered networks.
//!
//! The paper notes that combining "a globally clocked operational model
//! with distributed automotive E/E architectures featuring event-triggered,
//! not tightly synchronized communication media such as the CAN bus poses
//! some research questions", citing Romberg et al. (EMSOFT 2004) for "a
//! proposal ... on how to use event-triggered media for firm real-time
//! deployment of globally clocked models with comparatively small
//! implementation overhead", and flags the topic as future work (Sec. 2).
//!
//! This module implements that proposal's quantitative core as a
//! simulation: two nodes execute a globally clocked model at a nominal
//! period, but their local clocks drift and the connecting bus delivers
//! messages with bounded, jittering latency. Inserting `d` logical delay
//! operators on the cross-node channel (the "implementation overhead")
//! gives the consumer `d` periods of slack; the semantics of the clocked
//! model is preserved iff every message arrives before its consumption
//! tick. [`required_depth`] finds the minimal overhead for a given
//! drift/latency envelope — the shape claim being that it is small (1–2)
//! for realistic CAN parameters.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::PlatformError;

/// Clock and bus parameters of a two-node loosely synchronized deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LooseSyncConfig {
    /// Nominal logical period in microseconds.
    pub period_us: u64,
    /// Producer clock drift in parts per million (positive = fast clock).
    pub producer_drift_ppm: i32,
    /// Consumer clock drift in parts per million.
    pub consumer_drift_ppm: i32,
    /// Initial phase offset of the consumer, microseconds.
    pub consumer_offset_us: u64,
    /// Minimum bus latency (queuing + transmission), microseconds.
    pub latency_min_us: u64,
    /// Maximum bus latency, microseconds.
    pub latency_max_us: u64,
    /// Consumer resynchronization interval in logical ticks (`0` = never).
    /// Loose synchronization bounds the accumulated drift by periodically
    /// re-basing the consumer's time base on the observed message stream;
    /// without it, any fixed delay depth is eventually defeated by drift.
    pub resync_interval_ticks: u64,
}

impl LooseSyncConfig {
    /// A typical body-CAN setup: 10 ms period, ±100 ppm clocks, 0.2–2 ms
    /// bus latency.
    pub fn typical_can() -> Self {
        LooseSyncConfig {
            period_us: 10_000,
            producer_drift_ppm: 100,
            consumer_drift_ppm: -100,
            consumer_offset_us: 0,
            latency_min_us: 200,
            latency_max_us: 2_000,
            resync_interval_ticks: 1_000,
        }
    }

    fn validate(&self) -> Result<(), PlatformError> {
        if self.period_us == 0 {
            return Err(PlatformError::Config("period must be positive".into()));
        }
        if self.latency_min_us > self.latency_max_us {
            return Err(PlatformError::Config(
                "latency_min must not exceed latency_max".into(),
            ));
        }
        Ok(())
    }

    fn local_period(&self, drift_ppm: i32) -> f64 {
        self.period_us as f64 * (1.0 + drift_ppm as f64 * 1e-6)
    }
}

/// The outcome of a loose-synchronization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LooseSyncOutcome {
    /// Logical ticks simulated.
    pub ticks: u64,
    /// Messages arriving after their consumption instant (semantic
    /// violations of the clocked model).
    pub misses: u64,
    /// Worst observed slack (consumption minus arrival), microseconds;
    /// negative values are misses.
    pub worst_slack_us: i64,
}

impl LooseSyncOutcome {
    /// `true` if the clocked semantics was preserved throughout.
    pub fn semantics_preserved(&self) -> bool {
        self.misses == 0
    }
}

/// Simulates `horizon_ticks` logical ticks of a producer→consumer channel
/// carrying one message per tick, with `delay_depth` logical delay
/// operators inserted on the channel.
///
/// The message produced at logical tick `k` is consumed at the consumer's
/// local tick `k + delay_depth`; a miss is recorded whenever it has not
/// arrived by then.
///
/// # Errors
///
/// Returns configuration errors.
pub fn simulate(
    config: &LooseSyncConfig,
    delay_depth: u32,
    horizon_ticks: u64,
    seed: u64,
) -> Result<LooseSyncOutcome, PlatformError> {
    config.validate()?;
    let mut rng = StdRng::seed_from_u64(seed);
    let tp = config.local_period(config.producer_drift_ppm);
    let tc = config.local_period(config.consumer_drift_ppm);

    let mut misses = 0u64;
    let mut worst_slack = i64::MAX;
    for k in 0..horizon_ticks {
        // The producer finishes computing tick k at the end of its local
        // period k (it computes during the period).
        let completion = (k + 1) as f64 * tp;
        let latency = if config.latency_max_us == config.latency_min_us {
            config.latency_min_us
        } else {
            rng.gen_range(config.latency_min_us..=config.latency_max_us)
        };
        let arrival = completion + latency as f64;
        // The consumer reads the value for tick k at the *start* of its
        // local tick k + delay_depth. With resynchronization, the
        // consumer's time base is re-anchored to the producer's every
        // `resync_interval_ticks` ticks, so drift only accumulates within
        // one interval.
        let (base, local_k) = match k.checked_div(config.resync_interval_ticks) {
            Some(r) => {
                let anchor = r * config.resync_interval_ticks;
                (anchor as f64 * tp, k - anchor)
            }
            None => (0.0, k),
        };
        let consumption =
            base + config.consumer_offset_us as f64 + (local_k + delay_depth as u64) as f64 * tc;
        let slack = (consumption - arrival) as i64;
        worst_slack = worst_slack.min(slack);
        if slack < 0 {
            misses += 1;
        }
    }
    Ok(LooseSyncOutcome {
        ticks: horizon_ticks,
        misses,
        worst_slack_us: if horizon_ticks == 0 { 0 } else { worst_slack },
    })
}

/// Simulates every depth in `depths` over the same horizon and seed in a
/// single pass, returning one outcome per depth in input order.
///
/// The latency drawn for a tick is a property of the bus, not of the delay
/// depth, so all depths share the per-tick draw; each depth then only
/// shifts the consumption instant. This lane-major sweep therefore costs
/// one RNG stream and one pass over the horizon instead of
/// `depths.len()` full simulations, while producing outcomes identical to
/// calling [`simulate`] once per depth (same seed, same draws).
///
/// # Errors
///
/// Returns configuration errors.
pub fn simulate_depths(
    config: &LooseSyncConfig,
    depths: &[u32],
    horizon_ticks: u64,
    seed: u64,
) -> Result<Vec<LooseSyncOutcome>, PlatformError> {
    config.validate()?;
    let mut rng = StdRng::seed_from_u64(seed);
    let tp = config.local_period(config.producer_drift_ppm);
    let tc = config.local_period(config.consumer_drift_ppm);

    let mut misses = vec![0u64; depths.len()];
    let mut worst = vec![i64::MAX; depths.len()];
    for k in 0..horizon_ticks {
        let completion = (k + 1) as f64 * tp;
        let latency = if config.latency_max_us == config.latency_min_us {
            config.latency_min_us
        } else {
            rng.gen_range(config.latency_min_us..=config.latency_max_us)
        };
        let arrival = completion + latency as f64;
        let (base, local_k) = match k.checked_div(config.resync_interval_ticks) {
            Some(r) => {
                let anchor = r * config.resync_interval_ticks;
                (anchor as f64 * tp, k - anchor)
            }
            None => (0.0, k),
        };
        // Same association order as `simulate`, so each lane's floats are
        // bitwise-identical to a standalone run at that depth.
        let pre = base + config.consumer_offset_us as f64;
        for (lane, &d) in depths.iter().enumerate() {
            let consumption = pre + (local_k + d as u64) as f64 * tc;
            let slack = (consumption - arrival) as i64;
            worst[lane] = worst[lane].min(slack);
            if slack < 0 {
                misses[lane] += 1;
            }
        }
    }
    Ok(depths
        .iter()
        .enumerate()
        .map(|(lane, _)| LooseSyncOutcome {
            ticks: horizon_ticks,
            misses: misses[lane],
            worst_slack_us: if horizon_ticks == 0 { 0 } else { worst[lane] },
        })
        .collect())
}

/// The minimal delay depth (searched in `0..=max_depth`) preserving the
/// clocked semantics over the horizon, or `None` if even `max_depth` does
/// not suffice.
///
/// All candidate depths are evaluated in one [`simulate_depths`] pass.
///
/// # Errors
///
/// Returns configuration errors.
pub fn required_depth(
    config: &LooseSyncConfig,
    max_depth: u32,
    horizon_ticks: u64,
    seed: u64,
) -> Result<Option<u32>, PlatformError> {
    let depths: Vec<u32> = (0..=max_depth).collect();
    let outcomes = simulate_depths(config, &depths, horizon_ticks, seed)?;
    Ok(outcomes
        .iter()
        .position(LooseSyncOutcome::semantics_preserved)
        .map(|i| depths[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_depth_always_misses() {
        // Without any logical delay, the consumer would need the value of
        // tick k at the start of tick k — before the producer finished it.
        let out = simulate(&LooseSyncConfig::typical_can(), 0, 1_000, 1).unwrap();
        assert_eq!(out.misses, out.ticks);
    }

    #[test]
    fn typical_can_needs_small_overhead() {
        // The EMSOFT'04 shape claim: "comparatively small implementation
        // overhead" — depth 2 suffices for typical parameters (one period
        // for the computation itself plus one for latency + drift).
        let d = required_depth(&LooseSyncConfig::typical_can(), 8, 100_000, 2)
            .unwrap()
            .expect("bounded depth");
        assert!(d <= 2, "required depth {d}");
        assert!(d >= 1);
    }

    #[test]
    fn drift_accumulation_eventually_breaks_fixed_depth() {
        // A fast producer against a slow consumer: the phase error grows
        // linearly, so any fixed depth fails on a long enough horizon
        // without resynchronization.
        let cfg = LooseSyncConfig {
            producer_drift_ppm: 500,
            consumer_drift_ppm: -500,
            resync_interval_ticks: 0, // no resynchronization
            ..LooseSyncConfig::typical_can()
        };
        let short = simulate(&cfg, 2, 300, 3).unwrap();
        assert!(short.semantics_preserved());
        let long = simulate(&cfg, 2, 100_000, 3).unwrap();
        assert!(!long.semantics_preserved());
        // ...which is exactly what resynchronization prevents:
        let resynced = LooseSyncConfig {
            resync_interval_ticks: 200,
            ..cfg
        };
        let long = simulate(&resynced, 2, 100_000, 3).unwrap();
        assert!(long.semantics_preserved());
    }

    #[test]
    fn more_depth_never_hurts() {
        let cfg = LooseSyncConfig::typical_can();
        let mut last = u64::MAX;
        for d in 0..5 {
            let out = simulate(&cfg, d, 50_000, 4).unwrap();
            assert!(out.misses <= last);
            last = out.misses;
        }
    }

    #[test]
    fn latency_envelope_drives_required_depth() {
        let tight = LooseSyncConfig {
            latency_min_us: 100,
            latency_max_us: 500,
            ..LooseSyncConfig::typical_can()
        };
        let loose = LooseSyncConfig {
            latency_min_us: 8_000,
            latency_max_us: 18_000,
            ..LooseSyncConfig::typical_can()
        };
        let dt = required_depth(&tight, 8, 10_000, 5).unwrap().unwrap();
        let dl = required_depth(&loose, 8, 10_000, 5).unwrap().unwrap();
        assert!(dl > dt, "loose {dl} vs tight {dt}");
    }

    #[test]
    fn config_validation() {
        let bad = LooseSyncConfig {
            period_us: 0,
            ..LooseSyncConfig::typical_can()
        };
        assert!(simulate(&bad, 1, 10, 0).is_err());
        let bad = LooseSyncConfig {
            latency_min_us: 10,
            latency_max_us: 5,
            ..LooseSyncConfig::typical_can()
        };
        assert!(simulate(&bad, 1, 10, 0).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = LooseSyncConfig::typical_can();
        let a = simulate(&cfg, 1, 10_000, 7).unwrap();
        let b = simulate(&cfg, 1, 10_000, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn depth_sweep_matches_individual_simulations() {
        // One lane-major pass over shared latency draws must reproduce the
        // standalone runs exactly — including worst slack, which exercises
        // the float association order.
        let configs = [
            LooseSyncConfig::typical_can(),
            LooseSyncConfig {
                producer_drift_ppm: 500,
                consumer_drift_ppm: -500,
                resync_interval_ticks: 0,
                consumer_offset_us: 750,
                ..LooseSyncConfig::typical_can()
            },
            LooseSyncConfig {
                latency_min_us: 300,
                latency_max_us: 300, // deterministic-latency branch
                ..LooseSyncConfig::typical_can()
            },
        ];
        let depths = [0u32, 1, 2, 5, 3]; // unordered + sparse on purpose
        for (i, cfg) in configs.iter().enumerate() {
            let swept = simulate_depths(cfg, &depths, 20_000, 40 + i as u64).unwrap();
            for (lane, &d) in depths.iter().enumerate() {
                let single = simulate(cfg, d, 20_000, 40 + i as u64).unwrap();
                assert_eq!(swept[lane], single, "config {i}, depth {d}");
            }
        }
    }

    #[test]
    fn depth_sweep_edge_cases() {
        let cfg = LooseSyncConfig::typical_can();
        assert!(simulate_depths(&cfg, &[], 1_000, 9).unwrap().is_empty());
        let zero_horizon = simulate_depths(&cfg, &[0, 3], 0, 9).unwrap();
        for (lane, &d) in [0u32, 3].iter().enumerate() {
            assert_eq!(zero_horizon[lane], simulate(&cfg, d, 0, 9).unwrap());
        }
        let bad = LooseSyncConfig {
            period_us: 0,
            ..LooseSyncConfig::typical_can()
        };
        assert!(simulate_depths(&bad, &[1], 10, 0).is_err());
    }

    #[test]
    fn required_depth_matches_linear_search() {
        // `required_depth` now rides the sweep; pin it to the definitional
        // per-depth linear scan.
        let configs = [
            LooseSyncConfig::typical_can(),
            LooseSyncConfig {
                latency_min_us: 8_000,
                latency_max_us: 18_000,
                ..LooseSyncConfig::typical_can()
            },
        ];
        for cfg in &configs {
            let swept = required_depth(cfg, 8, 10_000, 11).unwrap();
            let mut linear = None;
            for d in 0..=8 {
                if simulate(cfg, d, 10_000, 11).unwrap().semantics_preserved() {
                    linear = Some(d);
                    break;
                }
            }
            assert_eq!(swept, linear);
        }
    }

    #[test]
    fn slack_is_reported() {
        let cfg = LooseSyncConfig {
            latency_min_us: 100,
            latency_max_us: 100,
            producer_drift_ppm: 0,
            consumer_drift_ppm: 0,
            ..LooseSyncConfig::typical_can()
        };
        let out = simulate(&cfg, 2, 100, 0).unwrap();
        // Deterministic: consumption k+2 periods, arrival k+1 periods +
        // 100us -> slack = period - 100.
        assert_eq!(out.worst_slack_us, 10_000 - 100);
    }
}
