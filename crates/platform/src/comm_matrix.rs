//! Communication matrices.
//!
//! A communication matrix records which signals travel in which frames
//! between which ECUs — the central E/E-architecture artifact of automotive
//! practice. The paper uses them twice: "black-box" reengineering
//! "transforms E/E architecture representations like communication-matrices,
//! which capture dependencies between functions, to partial FAA level
//! representations" (Sec. 4, validated on a body-electronics case study);
//! and OA generation configures bus communication "according to the
//! generated or supplemented communication matrix" (Sec. 3.4).
//!
//! Since production matrices are proprietary, [`synthetic_body_matrix`]
//! generates realistic body-electronics matrices (door modules, seat
//! modules, central body controller...) with a seeded RNG.

use std::collections::BTreeSet;

use crate::error::PlatformError;

/// A frame definition within a matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameDef {
    /// Frame name.
    pub name: String,
    /// CAN identifier.
    pub can_id: u32,
    /// Sender ECU.
    pub sender: String,
    /// Period in milliseconds.
    pub period_ms: u32,
}

/// A signal definition within a matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalDef {
    /// Signal name, e.g. `door_fl_lock_status`.
    pub name: String,
    /// The frame carrying the signal.
    pub frame: String,
    /// Signal length in bits.
    pub length_bits: u8,
    /// Receiving ECUs.
    pub receivers: Vec<String>,
}

/// A communication matrix: frames plus the signals they carry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CommMatrix {
    /// The frames.
    pub frames: Vec<FrameDef>,
    /// The signals.
    pub signals: Vec<SignalDef>,
}

impl CommMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        CommMatrix::default()
    }

    /// Adds a frame (builder style).
    ///
    /// # Errors
    ///
    /// Rejects duplicate frame names or CAN ids.
    pub fn frame(mut self, f: FrameDef) -> Result<Self, PlatformError> {
        if self.frames.iter().any(|g| g.name == f.name) {
            return Err(PlatformError::DuplicateName(f.name));
        }
        if self.frames.iter().any(|g| g.can_id == f.can_id) {
            return Err(PlatformError::DuplicateName(format!("can id {}", f.can_id)));
        }
        self.frames.push(f);
        Ok(self)
    }

    /// Adds a signal (builder style).
    ///
    /// # Errors
    ///
    /// Rejects duplicate signal names and signals on unknown frames.
    pub fn signal(mut self, s: SignalDef) -> Result<Self, PlatformError> {
        if self.signals.iter().any(|t| t.name == s.name) {
            return Err(PlatformError::DuplicateName(s.name));
        }
        if !self.frames.iter().any(|f| f.name == s.frame) {
            return Err(PlatformError::Unknown {
                kind: "frame",
                name: s.frame,
            });
        }
        self.signals.push(s);
        Ok(self)
    }

    /// The sender ECU of a signal (via its frame).
    pub fn sender_of(&self, signal: &str) -> Option<&str> {
        let s = self.signals.iter().find(|s| s.name == signal)?;
        self.frames
            .iter()
            .find(|f| f.name == s.frame)
            .map(|f| f.sender.as_str())
    }

    /// All ECU names mentioned (senders and receivers), sorted.
    pub fn ecus(&self) -> Vec<String> {
        let mut set: BTreeSet<String> = self.frames.iter().map(|f| f.sender.clone()).collect();
        for s in &self.signals {
            set.extend(s.receivers.iter().cloned());
        }
        set.into_iter().collect()
    }

    /// Signals sent by an ECU.
    pub fn signals_from(&self, ecu: &str) -> Vec<&SignalDef> {
        self.signals
            .iter()
            .filter(|s| self.sender_of(&s.name) == Some(ecu))
            .collect()
    }

    /// Signals received by an ECU.
    pub fn signals_to(&self, ecu: &str) -> Vec<&SignalDef> {
        self.signals
            .iter()
            .filter(|s| s.receivers.iter().any(|r| r == ecu))
            .collect()
    }

    /// The ECU-to-ECU dependency pairs implied by the matrix (sender,
    /// receiver) — the raw material of black-box reengineering.
    pub fn dependencies(&self) -> Vec<(String, String)> {
        let mut out = BTreeSet::new();
        for s in &self.signals {
            if let Some(sender) = self.sender_of(&s.name) {
                for r in &s.receivers {
                    if r != sender {
                        out.insert((sender.to_string(), r.clone()));
                    }
                }
            }
        }
        out.into_iter().collect()
    }

    /// Builds the CAN bus configuration implied by the matrix.
    ///
    /// # Errors
    ///
    /// Propagates frame-validation errors.
    pub fn to_bus(
        &self,
        name: &str,
        bitrate: u64,
    ) -> Result<crate::can::CanBusConfig, PlatformError> {
        let mut bus = crate::can::CanBusConfig::new(name, bitrate)?;
        for f in &self.frames {
            let payload_bits: u32 = self
                .signals
                .iter()
                .filter(|s| s.frame == f.name)
                .map(|s| s.length_bits as u32)
                .sum();
            let dlc = payload_bits.div_ceil(8).clamp(1, 8) as u8;
            bus = bus.frame(crate::can::CanFrame::new(
                f.can_id,
                f.name.clone(),
                dlc,
                f.period_ms as u64 * 1_000,
            ))?;
        }
        Ok(bus)
    }
}

/// Generates a synthetic body-electronics communication matrix with
/// `modules` peripheral ECUs around a central body controller, roughly
/// `signals_per_module` signals each, using a deterministic seed.
///
/// The shape mimics real body networks: peripheral modules report status
/// signals to the central controller; the controller broadcasts command
/// signals consumed by subsets of the modules.
pub fn synthetic_body_matrix(modules: usize, signals_per_module: usize, seed: u64) -> CommMatrix {
    // Small deterministic LCG so the generator needs no external crate here.
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut next = move |bound: usize| -> usize {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as usize) % bound.max(1)
    };

    let mut m = CommMatrix::new();
    let central = "body_controller".to_string();
    let module_names: Vec<String> = (0..modules).map(|i| format!("module_{i:02}")).collect();

    // One status frame per module, one or two command frames from central.
    for (i, module) in module_names.iter().enumerate() {
        m = m
            .frame(FrameDef {
                name: format!("{module}_status"),
                can_id: 0x200 + i as u32,
                sender: module.clone(),
                period_ms: [10u32, 20, 50, 100][next(4)],
            })
            .expect("unique by construction");
    }
    m = m
        .frame(FrameDef {
            name: "body_cmd_a".into(),
            can_id: 0x100,
            sender: central.clone(),
            period_ms: 20,
        })
        .expect("unique")
        .frame(FrameDef {
            name: "body_cmd_b".into(),
            can_id: 0x101,
            sender: central.clone(),
            period_ms: 100,
        })
        .expect("unique");

    for (i, module) in module_names.iter().enumerate() {
        for s in 0..signals_per_module {
            // Status signal to central (and sometimes a sibling module).
            let mut receivers = vec![central.clone()];
            if modules > 1 && next(4) == 0 {
                let sibling = module_names[(i + 1 + next(modules - 1)) % modules].clone();
                if sibling != *module {
                    receivers.push(sibling);
                }
            }
            m = m
                .signal(SignalDef {
                    name: format!("{module}_sig_{s}"),
                    frame: format!("{module}_status"),
                    length_bits: [1u8, 2, 4, 8, 16][next(5)],
                    receivers,
                })
                .expect("unique by construction");
        }
    }
    // Command signals from central to random module subsets.
    for c in 0..(modules * 2).max(2) {
        let frame = if c % 2 == 0 {
            "body_cmd_a"
        } else {
            "body_cmd_b"
        };
        let mut receivers = Vec::new();
        for name in &module_names {
            if next(3) == 0 {
                receivers.push(name.clone());
            }
        }
        if receivers.is_empty() && !module_names.is_empty() {
            receivers.push(module_names[next(modules)].clone());
        }
        m = m
            .signal(SignalDef {
                name: format!("body_cmd_sig_{c}"),
                frame: frame.into(),
                length_bits: [1u8, 2, 8][next(3)],
                receivers,
            })
            .expect("unique by construction");
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CommMatrix {
        CommMatrix::new()
            .frame(FrameDef {
                name: "door_status".into(),
                can_id: 0x200,
                sender: "door_fl".into(),
                period_ms: 20,
            })
            .unwrap()
            .frame(FrameDef {
                name: "body_cmd".into(),
                can_id: 0x100,
                sender: "body".into(),
                period_ms: 50,
            })
            .unwrap()
            .signal(SignalDef {
                name: "lock_status".into(),
                frame: "door_status".into(),
                length_bits: 2,
                receivers: vec!["body".into()],
            })
            .unwrap()
            .signal(SignalDef {
                name: "lock_cmd".into(),
                frame: "body_cmd".into(),
                length_bits: 2,
                receivers: vec!["door_fl".into(), "door_fr".into()],
            })
            .unwrap()
    }

    #[test]
    fn sender_and_receivers_resolve() {
        let m = tiny();
        assert_eq!(m.sender_of("lock_status"), Some("door_fl"));
        assert_eq!(m.signals_from("body").len(), 1);
        assert_eq!(m.signals_to("door_fl").len(), 1);
        assert_eq!(m.ecus(), vec!["body", "door_fl", "door_fr"]);
    }

    #[test]
    fn dependencies_are_ecu_pairs() {
        let m = tiny();
        let deps = m.dependencies();
        assert!(deps.contains(&("door_fl".into(), "body".into())));
        assert!(deps.contains(&("body".into(), "door_fl".into())));
        assert!(deps.contains(&("body".into(), "door_fr".into())));
        assert_eq!(deps.len(), 3);
    }

    #[test]
    fn validation_rejects_duplicates_and_unknown_frames() {
        let m = tiny();
        assert!(m
            .clone()
            .frame(FrameDef {
                name: "door_status".into(),
                can_id: 0x400,
                sender: "x".into(),
                period_ms: 10,
            })
            .is_err());
        assert!(m
            .clone()
            .signal(SignalDef {
                name: "lock_status".into(),
                frame: "door_status".into(),
                length_bits: 1,
                receivers: vec![],
            })
            .is_err());
        assert!(m
            .clone()
            .signal(SignalDef {
                name: "new_sig".into(),
                frame: "ghost_frame".into(),
                length_bits: 1,
                receivers: vec![],
            })
            .is_err());
    }

    #[test]
    fn to_bus_builds_frames_with_dlc_from_payload() {
        let m = tiny();
        let bus = m.to_bus("body_can", 500_000).unwrap();
        assert_eq!(bus.frames.len(), 2);
        let f = bus.frames.iter().find(|f| f.name == "door_status").unwrap();
        assert_eq!(f.dlc, 1); // 2 bits -> 1 byte
        assert_eq!(f.period_us, 20_000);
    }

    #[test]
    fn synthetic_matrix_is_deterministic_and_well_formed() {
        let a = synthetic_body_matrix(6, 4, 42);
        let b = synthetic_body_matrix(6, 4, 42);
        assert_eq!(a, b);
        let c = synthetic_body_matrix(6, 4, 43);
        assert_ne!(a, c);
        assert_eq!(a.frames.len(), 6 + 2);
        assert_eq!(a.signals.len(), 6 * 4 + 12);
        // Every signal's frame resolves; every dependency names real ECUs.
        for s in &a.signals {
            assert!(a.sender_of(&s.name).is_some());
        }
        let ecus = a.ecus();
        for (from, to) in a.dependencies() {
            assert!(ecus.contains(&from) && ecus.contains(&to));
        }
    }

    #[test]
    fn synthetic_matrix_scales() {
        let m = synthetic_body_matrix(50, 10, 7);
        assert_eq!(m.signals.len(), 50 * 10 + 100);
        assert!(m.ecus().len() == 51);
    }
}
