//! Property-based tests of the OSEK scheduler and CAN bus invariants.

use automode_platform::can::{BusSim, CanBusConfig, CanFrame};
use automode_platform::osek::{IpcRegime, MessageConfig, OsekSim, SimRunnable, SimTask};
use proptest::prelude::*;

/// Random feasible task set: up to 4 tasks with harmonic-ish periods and
/// bounded utilisation.
fn arb_taskset() -> impl Strategy<Value = Vec<(u64, u64)>> {
    // (period_us, wcet_us) pairs.
    prop::collection::vec((1u64..5, 1u64..30), 1..4).prop_map(|raw| {
        raw.into_iter()
            .map(|(p, c)| {
                let period = p * 10_000;
                let wcet = (c * period / 100).max(100); // <= 30% each
                (period, wcet)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under rate-monotonic priorities and modest utilisation, the
    /// simulator schedules without deadline misses, and activation counts
    /// match the horizon arithmetic.
    #[test]
    fn feasible_tasksets_meet_deadlines(tasks in arb_taskset()) {
        let mut sorted = tasks.clone();
        sorted.sort();
        let mut sim = OsekSim::new(IpcRegime::CopyInCopyOut);
        let mut total_util = 0.0;
        for (i, (period, wcet)) in sorted.iter().enumerate() {
            total_util += *wcet as f64 / *period as f64;
            sim = sim
                .task(
                    SimTask::new(format!("t{i}"), i as u32, *period)
                        .runnable(SimRunnable::compute("c", *wcet)),
                )
                .unwrap();
        }
        prop_assume!(total_util <= 0.69); // RM bound for any task count
        let horizon = 500_000u64;
        let out = sim.run(horizon).unwrap();
        prop_assert_eq!(out.deadline_misses(), 0, "util {}", total_util);
        for (i, (period, _)) in sorted.iter().enumerate() {
            let stats = &out.stats[&format!("t{i}")];
            prop_assert_eq!(stats.activations, horizon.div_ceil(*period));
        }
    }

    /// Copy-in/copy-out data integrity never tears, for any writer gap and
    /// priority layout.
    #[test]
    fn copy_semantics_never_tear(
        gap_us in 0u64..20_000,
        words in 2usize..5,
        fast_period in 2u64..10
    ) {
        let sim = OsekSim::new(IpcRegime::CopyInCopyOut)
            .task(
                SimTask::new("reader", 0, fast_period * 1_000)
                    .runnable(SimRunnable::reader("r", "m")),
            )
            .unwrap()
            .task(
                SimTask::new("writer", 1, 100_000)
                    .runnable(SimRunnable::writer("w", "m", words, gap_us)),
            )
            .unwrap()
            .message(MessageConfig::new("m", words))
            .unwrap();
        let out = sim.run(400_000).unwrap();
        prop_assert_eq!(out.torn_reads(), 0);
    }

    /// Observed message values never decrease (the writer's activation
    /// counter is monotone), in either regime.
    #[test]
    fn observed_values_monotone(direct in any::<bool>(), gap_us in 0u64..5_000) {
        let regime = if direct { IpcRegime::Direct } else { IpcRegime::CopyInCopyOut };
        let sim = OsekSim::new(regime)
            .task(SimTask::new("reader", 0, 10_000).runnable(SimRunnable::reader("r", "m")))
            .unwrap()
            .task(
                SimTask::new("writer", 1, 50_000)
                    .runnable(SimRunnable::writer("w", "m", 2, gap_us)),
            )
            .unwrap()
            .message(MessageConfig::new("m", 2))
            .unwrap();
        let out = sim.run(500_000).unwrap();
        let vals = out.observed_values("reader", "m");
        for w in vals.windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
    }

    /// CAN: all queued frames of the highest-priority id transmit with
    /// latency bounded by one blocking frame plus own transmission.
    #[test]
    fn can_highest_priority_bounded(
        n_frames in 1usize..8,
        dlcs in prop::collection::vec(0u8..9, 8)
    ) {
        let mut bus = CanBusConfig::new("b", 500_000).unwrap();
        for (i, &dlc) in dlcs.iter().enumerate().take(n_frames) {
            bus = bus
                .frame(CanFrame::new(0x100 + i as u32, format!("f{i}"), dlc, 20_000))
                .unwrap();
        }
        prop_assume!(bus.load() <= 0.9);
        let max_tx = bus
            .frames
            .iter()
            .map(|f| bus.tx_time_us(f))
            .max()
            .unwrap();
        let own_tx = bus.tx_time_us(&bus.frames[0]);
        let stats = BusSim::new(&bus).run(400_000).unwrap();
        let hi = &stats["f0"];
        prop_assert!(
            hi.max_latency_us <= max_tx + own_tx,
            "latency {} > bound {}",
            hi.max_latency_us,
            max_tx + own_tx
        );
    }

    /// Bus conservation: every frame's sent count differs from its queued
    /// count by at most the backlog of one instance (under feasible load).
    #[test]
    fn can_conservation(bitrate_sel in 0usize..3) {
        let bitrate = [125_000u64, 250_000, 500_000][bitrate_sel];
        let mut bus = CanBusConfig::new("b", bitrate).unwrap();
        for i in 0..5u32 {
            bus = bus
                .frame(CanFrame::new(i, format!("f{i}"), 8, 50_000))
                .unwrap();
        }
        prop_assume!(bus.load() <= 0.9);
        let stats = BusSim::new(&bus).run(1_000_000).unwrap();
        for (name, s) in &stats {
            prop_assert!(
                s.queued - s.sent <= 1,
                "{name}: queued {} sent {}",
                s.queued,
                s.sent
            );
        }
    }
}
