//! Vendored minimal stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the subset of the `criterion 0.5` API its benches use: [`Criterion`] with
//! `bench_function` / `benchmark_group`, [`BenchmarkId`], [`Throughput`],
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Timing is a plain wall-clock sampler: per sample it runs a batch
//! of iterations sized to the measurement budget and reports min/mean/max
//! nanoseconds per iteration (the same `[low  best-guess  high]` shape
//! criterion prints). There is no statistical analysis, HTML report, or
//! baseline comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (configuration + entry points).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(800),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up budget before sampling starts.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total measurement budget across samples.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks a single function.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, id, |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Records the per-iteration workload size for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks a function against one input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        let throughput = self.throughput;
        run_one_with(self.criterion, &full, throughput, |b| f(b, input));
        self
    }

    /// Sets the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Joins a function name and a parameter into an identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// An identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Workload size of one iteration, for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The per-benchmark timing harness handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration batch.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(c: &mut Criterion, id: &str, f: impl FnMut(&mut Bencher)) {
    run_one_with(c, id, None, f);
}

fn run_one_with(
    c: &mut Criterion,
    id: &str,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // Warm-up and batch calibration: grow the batch until it fills a slice
    // of the warm-up budget, so short routines are timed in bulk.
    let mut iters: u64 = 1;
    let warm_deadline = Instant::now() + c.warm_up_time;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= c.warm_up_time.div_f64(8.0).max(Duration::from_micros(100)) {
            break;
        }
        if Instant::now() >= warm_deadline {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    // Sampling: split the measurement budget evenly across samples.
    let per_sample = c.measurement_time.div_f64(c.sample_size as f64);
    let mut nanos_per_iter: Vec<f64> = Vec::with_capacity(c.sample_size);
    for _ in 0..c.sample_size {
        let mut total = Duration::ZERO;
        let mut total_iters: u64 = 0;
        while total < per_sample {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            total += b.elapsed;
            total_iters += iters;
        }
        nanos_per_iter.push(total.as_nanos() as f64 / total_iters as f64);
    }
    let min = nanos_per_iter.iter().copied().fold(f64::INFINITY, f64::min);
    let max = nanos_per_iter.iter().copied().fold(0.0f64, f64::max);
    let mean = nanos_per_iter.iter().sum::<f64>() / nanos_per_iter.len() as f64;

    print!(
        "{id:<50} time: [{} {} {}]",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max)
    );
    if let Some(t) = throughput {
        let (amount, unit) = match t {
            Throughput::Elements(n) => (n as f64, "elem/s"),
            Throughput::Bytes(n) => (n as f64, "B/s"),
        };
        let rate = amount / (mean * 1e-9);
        print!("  thrpt: {} {unit}", fmt_rate(rate));
    }
    println!();
}

fn fmt_time(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.2} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos / 1_000_000_000.0)
    }
}

fn fmt_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K", per_sec / 1e3)
    } else {
        format!("{per_sec:.2}")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15));
        let mut hits = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                hits += 1;
                hits
            })
        });
        assert!(hits > 0);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(2))
            .measurement_time(Duration::from_millis(6));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("f", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
