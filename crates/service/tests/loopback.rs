//! Loopback integration tests: a real server on an ephemeral port, real
//! sockets, real catalog models.
//!
//! The core guarantee under test: scenario lines streamed over HTTP are
//! **byte-identical** to encoding a direct [`CompiledSim`] run with the
//! same functions — the service adds caching, sharding, and transport,
//! never different results.

use std::sync::Arc;

use automode_core::json::JsonWriter;
use automode_core::model::Model;
use automode_core::text::{from_text, to_text};
use automode_kernel::{Stream, Value};
use automode_service::json::parse;
use automode_service::sweep::scenario_line;
use automode_service::{get, post_explore, post_sweep, serve, ServerConfig};
use automode_sim::{stimulus, CompiledSim};

const TICKS: usize = 30;
const COUNT: usize = 10;

/// A catalog model: its `.amdl` text, the spec's `inputs` JSON fragment,
/// and a builder producing the *identical* streams for scenario `i` that
/// the service derives from that fragment.
struct Fixture {
    name: &'static str,
    text: String,
    inputs_json: &'static str,
    streams: fn(usize) -> Vec<(&'static str, Stream)>,
}

fn fixtures() -> Vec<Fixture> {
    let momentum = {
        let mut m = Model::new("momentum");
        let id = automode_engine::momentum::build_momentum_controller(
            &mut m,
            automode_engine::momentum::MomentumGains::default(),
        )
        .unwrap();
        m.set_root(id);
        m
    };
    let engine_modes = {
        let mut m = Model::new("engine_modes");
        let id = automode_engine::build_engine_modes(&mut m).unwrap();
        m.set_root(id);
        m
    };
    let engine = automode_engine::reengineer_engine().unwrap().model;
    vec![
        Fixture {
            name: "momentum",
            text: to_text(&momentum),
            inputs_json: r#"[
                {"port": "v_des", "kind": "constant", "value": 20.0, "value_step": 0.5},
                {"port": "v_act", "kind": "ramp", "from": 0.0, "to": 20.0, "to_step": 0.25}]"#,
            streams: |i| {
                vec![
                    (
                        "v_des",
                        stimulus::constant(Value::Float(20.0 + 0.5 * i as f64), TICKS),
                    ),
                    ("v_act", stimulus::ramp(0.0, 20.0 + 0.25 * i as f64, TICKS)),
                ]
            },
        },
        Fixture {
            name: "engine_modes",
            text: to_text(&engine_modes),
            inputs_json: r#"[
                {"port": "key_on", "kind": "constant", "value": true},
                {"port": "rpm", "kind": "ramp", "from": 0.0, "to": 4000.0, "to_step": 100.0},
                {"port": "throttle", "kind": "ramp", "from": 0.0, "to": 1.0}]"#,
            streams: |i| {
                vec![
                    ("key_on", stimulus::constant(Value::Bool(true), TICKS)),
                    ("rpm", stimulus::ramp(0.0, 4000.0 + 100.0 * i as f64, TICKS)),
                    ("throttle", stimulus::ramp(0.0, 1.0, TICKS)),
                ]
            },
        },
        Fixture {
            name: "engine",
            text: to_text(&engine),
            inputs_json: r#"[
                {"port": "key_on", "kind": "constant", "value": true},
                {"port": "rpm", "kind": "ramp", "from": 0.0, "to": 4000.0, "to_step": 50.0},
                {"port": "throttle", "kind": "ramp", "from": 0.0, "to": 1.0},
                {"port": "o2", "kind": "constant", "value": 0.5, "value_step": 0.01}]"#,
            streams: |i| {
                vec![
                    ("key_on", stimulus::constant(Value::Bool(true), TICKS)),
                    ("rpm", stimulus::ramp(0.0, 4000.0 + 50.0 * i as f64, TICKS)),
                    ("throttle", stimulus::ramp(0.0, 1.0, TICKS)),
                    (
                        "o2",
                        stimulus::constant(Value::Float(0.5 + 0.01 * i as f64), TICKS),
                    ),
                ]
            },
        },
    ]
}

/// Builds a sweep request body: the model text (JSON-escaped by the
/// writer) spliced with a raw fragment of extra fields.
fn sweep_body(model_text: &str, extra: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field("model").string(model_text);
    w.end_object();
    let base = w.finish();
    format!("{},{}}}", &base[..base.len() - 1], extra)
}

fn small_config() -> ServerConfig {
    ServerConfig {
        workers: 4,
        conn_threads: 2,
        oracle_every: 2,
        queue_cap: 4,
        ..ServerConfig::default()
    }
}

#[test]
fn streamed_results_are_byte_equal_to_direct_runs() {
    let server = serve(small_config()).unwrap();
    let addr = server.addr();
    for fx in fixtures() {
        let body = sweep_body(
            &fx.text,
            &format!(
                r#""count": {COUNT}, "ticks": {TICKS}, "lanes": 4, "inputs": {}"#,
                fx.inputs_json
            ),
        );
        let resp = post_sweep(addr, &body).unwrap();
        assert_eq!(resp.status, 200, "{}: {:?}", fx.name, resp.lines.first());
        assert!(resp.complete, "{}: truncated stream", fx.name);
        assert_eq!(resp.lines.len(), COUNT + 2, "{}", fx.name);

        let header = parse(&resp.lines[0]).unwrap();
        let sweep = header.get("sweep").expect("header line");
        assert_eq!(sweep.get("cache").unwrap().as_str(), Some("miss"));
        assert_eq!(sweep.get("scenarios").unwrap().as_u64(), Some(COUNT as u64));
        assert_eq!(sweep.get("shards").unwrap().as_u64(), Some(3));

        // Byte-for-byte: each streamed line equals the direct compiled
        // run encoded with the same function.
        let model = from_text(&fx.text).unwrap();
        let mut direct = CompiledSim::new_root(&model).unwrap();
        for i in 0..COUNT {
            let run = direct.run(&(fx.streams)(i), TICKS).unwrap();
            assert_eq!(
                resp.lines[1 + i],
                scenario_line(i, &run, false, None, None),
                "{} scenario {i}",
                fx.name
            );
        }

        let done = parse(resp.lines.last().unwrap()).unwrap();
        let done = done.get("done").expect("done line");
        assert_eq!(done.get("status").unwrap().as_str(), Some("ok"));
        // oracle_every = 2 over 3 shards → shards 0 and 2 were re-run
        // scalar; zero divergence between the lane path and the oracle.
        assert_eq!(done.get("oracle_shards").unwrap().as_u64(), Some(2));
        assert_eq!(done.get("oracle_divergences").unwrap().as_u64(), Some(0));

        // The repeat submission must hit the compiled-model cache.
        let again = post_sweep(addr, &body).unwrap();
        let header = parse(&again.lines[0]).unwrap();
        assert_eq!(
            header.get("sweep").unwrap().get("cache").unwrap().as_str(),
            Some("hit"),
            "{}",
            fx.name
        );
        // (The done line differs in `elapsed_us`; scenario lines must not.)
        assert_eq!(again.lines[1..=COUNT], resp.lines[1..=COUNT]);
    }

    let (code, stats) = get(addr, "/stats").unwrap();
    assert_eq!(code, 200);
    let stats = parse(&stats).unwrap();
    let cache = stats.get("cache").unwrap();
    assert_eq!(cache.get("misses").unwrap().as_u64(), Some(3));
    assert_eq!(cache.get("hits").unwrap().as_u64(), Some(3));
    assert_eq!(cache.get("entries").unwrap().as_u64(), Some(3));
    let sweeps = stats.get("sweeps").unwrap();
    assert_eq!(sweeps.get("total").unwrap().as_u64(), Some(6));
    assert_eq!(sweeps.get("failed").unwrap().as_u64(), Some(0));
    assert_eq!(
        sweeps.get("scenarios").unwrap().as_u64(),
        Some(6 * COUNT as u64)
    );
    let lat = stats.get("latency_us").unwrap();
    assert_eq!(lat.get("count").unwrap().as_u64(), Some(6));
    assert!(lat.get("p99").unwrap().as_u64().unwrap() >= lat.get("p50").unwrap().as_u64().unwrap());
    server.shutdown();
}

#[test]
fn cache_eviction_is_observable() {
    let server = serve(ServerConfig {
        cache_shards: 1,
        cache_capacity: 2,
        oracle_every: 0,
        ..small_config()
    })
    .unwrap();
    let addr = server.addr();
    for gain in [2.0, 3.0, 4.0] {
        let text = format!(
            "model t\n\ncomponent Gain {{\n  in u: float\n  out y: float\n  expr y = (u * {gain:?})\n}}\n\nroot Gain\n"
        );
        let body = sweep_body(
            &text,
            r#""count": 2, "ticks": 4, "lanes": 2, "inputs": [{"port": "u", "kind": "constant", "value": 1.0}]"#,
        );
        assert_eq!(post_sweep(addr, &body).unwrap().status, 200);
    }
    let (_, stats) = get(addr, "/stats").unwrap();
    let stats = parse(&stats).unwrap();
    let cache = stats.get("cache").unwrap();
    assert_eq!(cache.get("misses").unwrap().as_u64(), Some(3));
    assert_eq!(cache.get("evictions").unwrap().as_u64(), Some(1));
    assert_eq!(cache.get("entries").unwrap().as_u64(), Some(2));
    server.shutdown();
}

#[test]
fn malformed_and_oversized_requests_are_rejected() {
    let server = serve(ServerConfig {
        max_body: 4096,
        ..small_config()
    })
    .unwrap();
    let addr = server.addr();

    // Not JSON at all.
    let resp = post_sweep(addr, "this is not json").unwrap();
    assert_eq!(resp.status, 400);
    // JSON but no model field.
    let resp = post_sweep(addr, r#"{"count": 4}"#).unwrap();
    assert_eq!(resp.status, 400);
    // A model that does not parse.
    let resp = post_sweep(addr, r#"{"model": "component without a header"}"#).unwrap();
    assert_eq!(resp.status, 400);
    // Bad limits.
    let resp = post_sweep(addr, r#"{"model": "model t\nroot X\n", "count": 0}"#).unwrap();
    assert_eq!(resp.status, 400);
    // Unknown component selector.
    let body = sweep_body(
        "model t\n\ncomponent G {\n  in u: float\n  out y: float\n  expr y = (u * 1.0)\n}\n\nroot G\n",
        r#""component": "Ghost""#,
    );
    assert_eq!(post_sweep(addr, &body).unwrap().status, 400);
    // An oversized model body → 413 before any parsing.
    let big = sweep_body(&"x".repeat(8192), r#""count": 1"#);
    let resp = post_sweep(addr, &big).unwrap();
    assert_eq!(resp.status, 413);
    // Unknown route and liveness.
    assert_eq!(get(addr, "/nope").unwrap().0, 404);
    let (code, body) = get(addr, "/healthz").unwrap();
    assert_eq!((code, body.as_str()), (200, "ok\n"));
    server.shutdown();
}

#[test]
fn explore_streams_generations_repros_and_done() {
    let server = serve(small_config()).unwrap();
    let addr = server.addr();
    let engine_text = to_text(&automode_engine::reengineer_engine().unwrap().model);
    let body = sweep_body(
        &engine_text,
        r#""generations": 4, "population": 6, "ticks": 8, "seed": 0, "lanes": 2,
           "max_repros": 4,
           "ranges": [{"port": "rpm", "lo": 0, "hi": 7000},
                      {"port": "throttle", "lo": 0, "hi": 1},
                      {"port": "o2", "lo": 0, "hi": 2}]"#,
    );
    let resp = post_explore(addr, &body).unwrap();
    assert_eq!(resp.status, 200, "{:?}", resp.lines.first());
    assert!(resp.complete, "truncated explore stream");

    // Header line: totals for the engine's coverage space, cache miss.
    let header = parse(&resp.lines[0]).unwrap();
    let ex = header.get("explore").expect("header line");
    assert_eq!(ex.get("cache").unwrap().as_str(), Some("miss"));
    assert_eq!(ex.get("generations").unwrap().as_u64(), Some(4));
    let total_t = ex.get("total_transitions").unwrap().as_u64().unwrap();
    assert!(total_t > 0, "engine model declares transitions");

    // One line per generation, cumulative coverage monotone.
    let gens: Vec<_> = resp
        .lines
        .iter()
        .filter_map(|l| parse(l).ok())
        .filter(|j| j.get("generation").is_some())
        .collect();
    assert_eq!(gens.len(), 4);
    let mut prev = (0, 0);
    for (i, g) in gens.iter().enumerate() {
        let g = g.get("generation").unwrap();
        assert_eq!(g.get("index").unwrap().as_u64(), Some(i as u64));
        let s = g.get("states_covered").unwrap().as_u64().unwrap();
        let t = g.get("transitions_covered").unwrap().as_u64().unwrap();
        assert!(s >= prev.0 && t >= prev.1, "coverage regressed");
        prev = (s, t);
    }
    assert!(prev.1 > 0, "exploration covered no transitions");

    // Every repro line carries a replayable scenario document.
    for line in &resp.lines {
        let Ok(j) = parse(line) else { continue };
        let Some(r) = j.get("repro") else { continue };
        assert!(r.get("shrunk").unwrap().as_bool().unwrap());
        assert!(r.get("deterministic").unwrap().as_bool().unwrap());
        let scenario_json = r.get("scenario").unwrap().as_str().unwrap();
        let sc = automode_explore::Scenario::from_json(scenario_json).expect("replayable repro");
        assert_eq!(sc.ticks as u64, r.get("ticks").unwrap().as_u64().unwrap());
    }

    // Done line accounts for the full budget.
    let done = parse(resp.lines.last().unwrap()).unwrap();
    let done = done.get("done").expect("done line");
    assert_eq!(done.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(done.get("scenarios").unwrap().as_u64(), Some(24));

    // Same model resubmitted → compiled-model cache hit, and the explore
    // stream is deterministic line-for-line (elapsed_us differs).
    let again = post_explore(addr, &body).unwrap();
    let header = parse(&again.lines[0]).unwrap();
    assert_eq!(
        header
            .get("explore")
            .unwrap()
            .get("cache")
            .unwrap()
            .as_str(),
        Some("hit")
    );
    let n = resp.lines.len();
    assert_eq!(again.lines[1..n - 1], resp.lines[1..n - 1]);

    // Bad budgets are rejected before streaming starts.
    let bad = sweep_body(&engine_text, r#""generations": 0"#);
    assert_eq!(post_explore(addr, &bad).unwrap().status, 400);
    let huge = sweep_body(&engine_text, r#""population": 999999"#);
    assert_eq!(post_explore(addr, &huge).unwrap().status, 413);

    let (_, stats) = get(addr, "/stats").unwrap();
    let stats = parse(&stats).unwrap();
    let explores = stats.get("explores").unwrap();
    assert_eq!(explores.get("total").unwrap().as_u64(), Some(2));
    assert_eq!(explores.get("failed").unwrap().as_u64(), Some(0));
    server.shutdown();
}

/// A client that vanishes mid-stream must not poison the service: the
/// reorder buffer drains, no pool shard leaks, and the next sweep on the
/// same server completes in full.
#[test]
fn client_disconnect_mid_stream_recovers() {
    use std::io::{Read, Write};

    let server = serve(ServerConfig {
        workers: 2,
        conn_threads: 2,
        oracle_every: 0,
        queue_cap: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let fx = &fixtures()[0];
    let count = 400usize;
    let lanes = 4usize;
    // trace + long runs → a response far larger than any socket buffer,
    // so the server's writes are guaranteed to hit the dead connection.
    let body = sweep_body(
        &fx.text,
        &format!(
            r#""count": {count}, "ticks": 200, "trace": true, "lanes": {lanes}, "inputs": {}"#,
            fx.inputs_json
        ),
    );

    // Hand-rolled client: read just the start of the stream, then drop
    // the socket while shards are still being produced.
    {
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        let req = format!(
            "POST /sweep HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        s.write_all(req.as_bytes()).unwrap();
        let mut first = [0u8; 128];
        let n = s.read(&mut first).unwrap();
        assert!(n > 0, "no response at all");
        assert!(std::str::from_utf8(&first[..n])
            .unwrap()
            .starts_with("HTTP/1.1 200"));
        // Dropping here closes with unread data in flight → RST; the
        // server's next write fails and its abort path runs.
    }

    // Immediately afterwards a well-behaved sweep of the same spec must
    // stream to completion — the pool and per-connection reorder buffer
    // recovered.
    let resp = post_sweep(addr, &body).unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.complete, "stream truncated after a peer disconnect");
    assert_eq!(resp.lines.len(), count + 2);
    let done = parse(resp.lines.last().unwrap()).unwrap();
    assert_eq!(
        done.get("done").unwrap().get("status").unwrap().as_str(),
        Some("ok")
    );

    // The aborted connection's handler keeps draining its shards in the
    // background; poll until both sweeps are accounted for.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        let (_, stats) = get(addr, "/stats").unwrap();
        let stats = parse(&stats).unwrap();
        let sweeps = stats.get("sweeps").unwrap();
        if sweeps.get("total").unwrap().as_u64() == Some(2) {
            // Exactly the aborted sweep is failed. The abort path stops
            // *submitting* new shards but drains the in-flight window, so
            // the pool executed the complete sweep's shards plus a few
            // from the aborted one — and nothing is left queued.
            assert_eq!(sweeps.get("failed").unwrap().as_u64(), Some(1));
            let executed = stats
                .get("pool")
                .unwrap()
                .get("executed")
                .unwrap()
                .as_u64()
                .unwrap();
            assert!(
                executed > (count as u64).div_ceil(lanes as u64),
                "pool executed only {executed} shards"
            );
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "aborted sweep never drained"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    server.shutdown();
}

#[test]
fn graceful_shutdown_never_truncates_streams() {
    let server = serve(ServerConfig {
        workers: 2,
        conn_threads: 2,
        oracle_every: 4,
        queue_cap: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let fx = &fixtures()[0];
    // Big enough that the sweeps are still streaming when shutdown lands.
    let count = 600usize;
    let body = Arc::new(sweep_body(
        &fx.text,
        &format!(
            r#""count": {count}, "ticks": 120, "trace": true, "lanes": 8, "inputs": {}"#,
            fx.inputs_json
        ),
    ));
    let clients: Vec<_> = (0..2)
        .map(|_| {
            let body = body.clone();
            std::thread::spawn(move || post_sweep(addr, &body).unwrap())
        })
        .collect();
    // Let both requests get accepted, then shut down mid-stream.
    std::thread::sleep(std::time::Duration::from_millis(30));
    server.shutdown();
    for c in clients {
        let resp = c.join().unwrap();
        // The drained stream is complete: terminating chunk present,
        // every scenario line delivered, done line last.
        assert_eq!(resp.status, 200);
        assert!(resp.complete, "shutdown truncated a stream");
        assert_eq!(resp.lines.len(), count + 2);
        let done = parse(resp.lines.last().unwrap()).unwrap();
        assert_eq!(
            done.get("done").unwrap().get("status").unwrap().as_str(),
            Some("ok")
        );
    }
    // The listener is gone: new connections are refused.
    assert!(post_sweep(addr, &body).is_err());
}
