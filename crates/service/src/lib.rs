//! # automode-service
//!
//! The scenario-sweep **service**: a std-only HTTP/1.1 + JSON API that
//! turns the workspace's compile-once/run-many machinery into end-to-end
//! throughput for concurrent callers (ROADMAP item 4 — "millions of users
//! submit models + scenario sweeps").
//!
//! The hot path is two-level:
//!
//! 1. A **sharded, LRU-evicting compiled-model cache** ([`cache`]) keyed
//!    by an FNV-1a content hash of the submitted `.amdl` model text.
//!    Repeat submissions skip elaborate/causality/prepare entirely, and
//!    concurrent sweeps of the same model share one
//!    [`CompiledSim`](automode_sim::CompiledSim) (its `run_batch` takes
//!    `&self`, and the kernel guarantees `Send + Sync`).
//! 2. A **work-stealing worker pool** ([`pool`]) — per-worker deques plus
//!    a global injector over std threads/`Mutex`/`Condvar` — that shards
//!    each sweep's scenarios into K-lane typed batches (K ≥ 8, per the
//!    PR 6 lane-cost finding) and runs them through `run_batch`,
//!    streaming per-scenario results back over chunked HTTP responses
//!    with bounded per-connection queues for backpressure ([`sweep`],
//!    [`http`]).
//!
//! A sampled **live differential oracle** re-runs ~1/16 of shards with
//! batch vectorization disabled and fails the sweep on any divergence —
//! the typed-lane fast path is continuously cross-checked in production,
//! not just in proptests.
//!
//! The workspace is offline: no tokio, no hyper, no serde. HTTP/1.1 is
//! hand-rolled over [`std::net::TcpListener`] with a connection thread
//! pool, JSON parsing is the small recursive-descent reader in [`json`],
//! and encoding reuses [`automode_core::json`] / [`automode_sim::report`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod explore;
pub mod http;
pub mod json;
pub mod pool;
pub mod sweep;

pub use cache::{CacheStats, ModelCache};
pub use client::{get, post_explore, post_sweep, SweepStream};
pub use explore::{execute_explore, ExploreSpec, PoolRunner};
pub use http::{serve, Server, ServerConfig};
pub use json::Json;
pub use pool::{PoolStats, WorkerPool};
pub use sweep::{execute, ExecOpts, SweepOutcome, SweepSpec};

/// Errors surfaced by the service layers.
#[derive(Debug)]
pub enum ServiceError {
    /// The request body is not valid JSON, or is missing required fields.
    BadRequest(String),
    /// The submitted model failed to parse, elaborate, or compile.
    Model(String),
    /// The request exceeds a configured limit (body size, scenario count).
    TooLarge(String),
    /// A socket-level failure.
    Io(std::io::Error),
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServiceError::Model(m) => write!(f, "model error: {m}"),
            ServiceError::TooLarge(m) => write!(f, "too large: {m}"),
            ServiceError::Io(e) => write!(f, "io error: {e}"),
            ServiceError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e)
    }
}
