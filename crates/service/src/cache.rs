//! The sharded, LRU-evicting compiled-model cache.
//!
//! Keyed by the FNV-1a content hash of the submitted model text plus the
//! component selector. A hit hands back an `Arc<CompiledSim>` — the
//! elaborate/causality/prepare pipeline ran exactly once for that text,
//! and every concurrent sweep of the same model shares the one compiled
//! artifact (`run_batch` takes `&self`). Shards keep lock hold times
//! short under concurrent callers: a compile of one model only blocks
//! keys that land on the same shard.
//!
//! Hash collisions are handled, not assumed away: each entry stores the
//! exact source text and a hit verifies it byte-for-byte (a mismatch is
//! treated as a miss that replaces the entry). Eviction is LRU by a
//! per-shard use stamp, scanned linearly — capacities are small (tens of
//! compiled models per shard), so a scan beats maintaining an intrusive
//! list.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

use automode_core::json::fnv1a_64;
use automode_core::text::from_text;
use automode_sim::{CompiledSim, SimError};

/// One cached compiled model.
struct Entry {
    /// The exact source text this entry was compiled from (collision
    /// guard).
    text: String,
    /// The component selector the entry was compiled for.
    component: Option<String>,
    sim: Arc<CompiledSim>,
    /// Shard-local LRU stamp: larger = more recently used.
    used: u64,
}

struct Shard {
    entries: HashMap<u64, Entry>,
    clock: u64,
}

/// Counters snapshot returned by [`ModelCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found a live compiled model.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Entries displaced by LRU eviction.
    pub evictions: u64,
    /// Live entries across all shards.
    pub entries: usize,
    /// Maximum entries across all shards.
    pub capacity: usize,
}

/// A sharded, LRU-evicting cache of compiled models.
pub struct ModelCache {
    shards: Vec<Mutex<Shard>>,
    /// Max entries per shard.
    per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for ModelCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        write!(
            f,
            "ModelCache {{ shards: {}, entries: {}/{}, hits: {}, misses: {} }}",
            self.shards.len(),
            s.entries,
            s.capacity,
            s.hits,
            s.misses
        )
    }
}

impl ModelCache {
    /// A cache of `shards` shards holding at most `capacity` compiled
    /// models in total (rounded up to a multiple of the shard count; both
    /// are clamped to at least 1).
    pub fn new(shards: usize, capacity: usize) -> ModelCache {
        let shards = shards.max(1);
        let per_shard = capacity.max(1).div_ceil(shards);
        ModelCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                        clock: 0,
                    })
                })
                .collect(),
            per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The cache key of a `(model text, component)` submission.
    pub fn key(text: &str, component: Option<&str>) -> u64 {
        let mut h = fnv1a_64(text.as_bytes());
        if let Some(c) = component {
            // Extend the hash over the selector with a separator that
            // cannot occur in either part's byte stream semantics.
            h ^= fnv1a_64(c.as_bytes()).rotate_left(1);
        }
        h
    }

    /// Looks up (or compiles and inserts) the model given by `text`,
    /// returning the shared handle, its cache key, and whether this was a
    /// hit.
    ///
    /// Compilation happens under the owning shard's lock, which is what
    /// guarantees one compile per text under a thundering herd of
    /// identical submissions — the losers of the race block briefly and
    /// then hit.
    ///
    /// # Errors
    ///
    /// Model parse errors and elaboration/causality/prepare failures.
    pub fn get_or_compile(
        &self,
        text: &str,
        component: Option<&str>,
    ) -> Result<(Arc<CompiledSim>, u64, bool), SimError> {
        let key = Self::key(text, component);
        let shard_idx = (key % self.shards.len() as u64) as usize;
        let mut shard = self.shards[shard_idx].lock().expect("cache shard poisoned");
        shard.clock += 1;
        let clock = shard.clock;
        if let Some(e) = shard.entries.get_mut(&key) {
            if e.text == text && e.component.as_deref() == component {
                e.used = clock;
                let sim = e.sim.clone();
                self.hits.fetch_add(1, Relaxed);
                return Ok((sim, key, true));
            }
            // FNV collision (or a stale entry from one): recompile below
            // and replace.
        }
        self.misses.fetch_add(1, Relaxed);
        let sim = Arc::new(compile(text, component)?);
        if shard.entries.len() >= self.per_shard && !shard.entries.contains_key(&key) {
            // Evict the least-recently-used entry of this shard.
            if let Some(&lru) = shard
                .entries
                .iter()
                .min_by_key(|(_, e)| e.used)
                .map(|(k, _)| k)
            {
                shard.entries.remove(&lru);
                self.evictions.fetch_add(1, Relaxed);
            }
        }
        shard.entries.insert(
            key,
            Entry {
                text: text.to_string(),
                component: component.map(str::to_string),
                sim: sim.clone(),
                used: clock,
            },
        );
        Ok((sim, key, false))
    }

    /// Drops every cached entry (counters are preserved).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().expect("cache shard poisoned").entries.clear();
        }
    }

    /// A consistent-enough snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Relaxed),
            misses: self.misses.load(Relaxed),
            evictions: self.evictions.load(Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().expect("cache shard poisoned").entries.len())
                .sum(),
            capacity: self.per_shard * self.shards.len(),
        }
    }
}

/// Parses `.amdl` text and compiles the selected (or root) component.
fn compile(text: &str, component: Option<&str>) -> Result<CompiledSim, SimError> {
    let model = from_text(text).map_err(SimError::Core)?;
    match component {
        Some(name) => {
            let id = model
                .find(name)
                .ok_or_else(|| SimError::Unsupported(format!("unknown component `{name}`")))?;
            CompiledSim::new(&model, id)
        }
        None => CompiledSim::new_root(&model),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gain_text(gain: f64) -> String {
        format!(
            "model t\n\ncomponent Gain {{\n  in u: float\n  out y: float\n  expr y = (u * {gain:?})\n}}\n\nroot Gain\n"
        )
    }

    #[test]
    fn second_lookup_hits_and_shares_the_handle() {
        let cache = ModelCache::new(4, 8);
        let text = gain_text(3.0);
        let (a, key_a, hit_a) = cache.get_or_compile(&text, None).unwrap();
        let (b, key_b, hit_b) = cache.get_or_compile(&text, None).unwrap();
        assert!(!hit_a && hit_b);
        assert_eq!(key_a, key_b);
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn component_selector_is_part_of_the_key() {
        let cache = ModelCache::new(2, 8);
        let text = gain_text(2.0);
        let (_, k_root, _) = cache.get_or_compile(&text, None).unwrap();
        let (_, k_named, _) = cache.get_or_compile(&text, Some("Gain")).unwrap();
        assert_ne!(k_root, k_named);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn capacity_overflow_evicts_lru() {
        let cache = ModelCache::new(1, 2);
        let texts: Vec<String> = (0..3).map(|i| gain_text(1.0 + i as f64)).collect();
        cache.get_or_compile(&texts[0], None).unwrap();
        cache.get_or_compile(&texts[1], None).unwrap();
        // Touch 0 so 1 is the LRU victim.
        cache.get_or_compile(&texts[0], None).unwrap();
        cache.get_or_compile(&texts[2], None).unwrap();
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        // 0 survived, 1 was evicted.
        assert!(cache.get_or_compile(&texts[0], None).unwrap().2);
        assert!(!cache.get_or_compile(&texts[1], None).unwrap().2);
    }

    #[test]
    fn bad_models_do_not_poison_the_cache() {
        let cache = ModelCache::new(2, 4);
        assert!(cache.get_or_compile("not a model", None).is_err());
        assert!(cache
            .get_or_compile(&gain_text(1.0), Some("Ghost"))
            .is_err());
        assert_eq!(cache.stats().entries, 0);
        // A good model still compiles afterwards.
        cache.get_or_compile(&gain_text(1.0), None).unwrap();
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn concurrent_identical_submissions_compile_once() {
        let cache = Arc::new(ModelCache::new(4, 16));
        let text = Arc::new(gain_text(5.0));
        let mut joins = Vec::new();
        for _ in 0..8 {
            let cache = cache.clone();
            let text = text.clone();
            joins.push(std::thread::spawn(move || {
                cache.get_or_compile(&text, None).unwrap().0
            }));
        }
        let handles: Vec<_> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        for h in &handles[1..] {
            assert!(Arc::ptr_eq(&handles[0], h));
        }
        assert_eq!(cache.stats().misses, 1);
    }
}
