//! The hand-rolled HTTP/1.1 server.
//!
//! std-only: a [`TcpListener`] accept loop feeding a bounded queue of
//! connections drained by a fixed pool of handler threads. Each request
//! gets one response and the connection closes (`Connection: close`) —
//! keep-alive buys little when a single sweep response carries thousands
//! of scenario lines.
//!
//! `POST /sweep` is the hot path: parse spec → sharded compiled-model
//! cache ([`ModelCache`]) → work-stealing pool ([`WorkerPool`]) → ordered
//! chunked ndjson stream (header line, one line per scenario, done
//! line). `GET /stats` reports cache/pool/latency counters and
//! `GET /healthz` is a liveness probe.
//!
//! Graceful shutdown drains: the accept loop stops (woken by a loopback
//! self-connect), already-accepted connections are served to completion
//! — including their full result streams — and only then does the worker
//! pool wind down. The no-truncated-streams test rides on this order.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use automode_core::json::JsonWriter;
use automode_core::metrics::LatencyHistogram;
use automode_sim::report::sim_stats_to_json;

use crate::cache::ModelCache;
use crate::explore::{execute_explore, ExploreSpec};
use crate::pool::WorkerPool;
use crate::sweep::{execute, ExecOpts, SweepSpec};
use crate::ServiceError;

/// Maximum accepted request-header block size.
const MAX_HEADER: usize = 16 * 1024;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Simulation worker threads in the work-stealing pool.
    pub workers: usize,
    /// Connection-handler threads (each drives one response at a time).
    pub conn_threads: usize,
    /// Pending accepted connections before the accept loop blocks.
    pub conn_backlog: usize,
    /// Compiled-model cache shards.
    pub cache_shards: usize,
    /// Compiled-model cache capacity (entries, across all shards).
    pub cache_capacity: usize,
    /// Largest accepted request body in bytes (`413` beyond this).
    pub max_body: usize,
    /// Differential-oracle sampling period in shards (`0` disables).
    pub oracle_every: usize,
    /// Per-connection reorder-buffer capacity in shards.
    pub queue_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let cpus = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4);
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: cpus,
            conn_threads: 4,
            conn_backlog: 64,
            cache_shards: 16,
            cache_capacity: 64,
            max_body: 1024 * 1024,
            oracle_every: 16,
            queue_cap: 8,
        }
    }
}

/// Cross-thread server state.
struct Shared {
    cfg: ServerConfig,
    cache: ModelCache,
    pool: WorkerPool,
    /// Per-sweep service latency in microseconds.
    latency: LatencyHistogram,
    sweeps: AtomicU64,
    failed_sweeps: AtomicU64,
    explores: AtomicU64,
    failed_explores: AtomicU64,
    scenarios: AtomicU64,
    oracle_shards: AtomicU64,
    oracle_divergences: AtomicU64,
    shutdown: AtomicBool,
    conns: Mutex<VecDeque<TcpStream>>,
    conn_ready: Condvar,
    conn_space: Condvar,
}

/// A running sweep server; dropping or [`Server::shutdown`] stops it
/// gracefully.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    handlers: Vec<JoinHandle<()>>,
}

/// Binds and starts a server per `config`.
///
/// # Errors
///
/// Socket bind failures.
pub fn serve(config: ServerConfig) -> std::io::Result<Server> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        cache: ModelCache::new(config.cache_shards, config.cache_capacity),
        pool: WorkerPool::new(config.workers),
        latency: LatencyHistogram::new(),
        sweeps: AtomicU64::new(0),
        failed_sweeps: AtomicU64::new(0),
        explores: AtomicU64::new(0),
        failed_explores: AtomicU64::new(0),
        scenarios: AtomicU64::new(0),
        oracle_shards: AtomicU64::new(0),
        oracle_divergences: AtomicU64::new(0),
        shutdown: AtomicBool::new(false),
        conns: Mutex::new(VecDeque::new()),
        conn_ready: Condvar::new(),
        conn_space: Condvar::new(),
        cfg: config,
    });
    let handlers = (0..shared.cfg.conn_threads.max(1))
        .map(|i| {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name(format!("sweep-conn-{i}"))
                .spawn(move || handler_loop(&shared))
                .expect("spawn connection handler")
        })
        .collect();
    let accept = {
        let shared = shared.clone();
        std::thread::Builder::new()
            .name("sweep-accept".to_string())
            .spawn(move || accept_loop(&listener, &shared))
            .expect("spawn accept loop")
    };
    Ok(Server {
        shared,
        addr,
        accept: Some(accept),
        handlers,
    })
}

impl Server {
    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, serves every already-accepted connection to
    /// completion (in-flight sweeps stream all their lines), then winds
    /// down the worker pool.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shared.shutdown.swap(true, Relaxed) {
            return;
        }
        // Unblock the accept loop with a throwaway loopback connection;
        // it sees the flag and exits without queueing the socket.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        // Wake handlers; they drain the queue, then exit on empty+flag.
        {
            let _g = self.shared.conns.lock().expect("conn queue poisoned");
            self.shared.conn_ready.notify_all();
        }
        for h in self.handlers.drain(..) {
            let _ = h.join();
        }
        // All responses are fully written by now; the pool (owned by the
        // last Arc) drains and joins in its Drop.
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Relaxed) {
            return;
        }
        let Ok(conn) = conn else { continue };
        let mut q = shared.conns.lock().expect("conn queue poisoned");
        while q.len() >= shared.cfg.conn_backlog {
            q = shared.conn_space.wait(q).expect("conn queue poisoned");
        }
        q.push_back(conn);
        shared.conn_ready.notify_one();
    }
}

fn handler_loop(shared: &Arc<Shared>) {
    loop {
        let conn = {
            let mut q = shared.conns.lock().expect("conn queue poisoned");
            loop {
                if let Some(c) = q.pop_front() {
                    shared.conn_space.notify_one();
                    break c;
                }
                if shared.shutdown.load(Relaxed) {
                    return;
                }
                q = shared.conn_ready.wait(q).expect("conn queue poisoned");
            }
        };
        handle_conn(shared, conn);
    }
}

// ---------------------------------------------------------------------------
// Request parsing
// ---------------------------------------------------------------------------

struct Request {
    method: String,
    path: String,
    body: String,
}

fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, ServiceError> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(p) = find_crlf2(&buf) {
            break p;
        }
        if buf.len() > MAX_HEADER {
            return Err(ServiceError::TooLarge("request headers too large".into()));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ServiceError::BadRequest("truncated request".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| ServiceError::BadRequest("non-utf8 request head".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ServiceError::BadRequest("empty request line".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| ServiceError::BadRequest("missing request path".into()))?
        .to_string();
    let mut content_len = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_len = value
                    .trim()
                    .parse()
                    .map_err(|_| ServiceError::BadRequest("bad content-length".into()))?;
            }
        }
    }
    if content_len > max_body {
        // Drain what the client is still sending (bounded) before
        // responding; closing with unread data in flight would RST the
        // connection and destroy the 413 response.
        let mut remaining = content_len
            .saturating_sub(buf.len() - header_end - 4)
            .min(64 * 1024 * 1024);
        while remaining > 0 {
            let n = stream.read(&mut chunk).unwrap_or(0);
            if n == 0 {
                break;
            }
            remaining = remaining.saturating_sub(n);
        }
        return Err(ServiceError::TooLarge(format!(
            "body of {content_len} bytes exceeds limit {max_body}"
        )));
    }
    let mut body = buf[header_end + 4..].to_vec();
    if body.len() > content_len {
        return Err(ServiceError::BadRequest("body longer than declared".into()));
    }
    while body.len() < content_len {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ServiceError::BadRequest("truncated body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
        if body.len() > content_len {
            return Err(ServiceError::BadRequest("body longer than declared".into()));
        }
    }
    let body = String::from_utf8(body)
        .map_err(|_| ServiceError::BadRequest("non-utf8 request body".into()))?;
    Ok(Request { method, path, body })
}

fn find_crlf2(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

// ---------------------------------------------------------------------------
// Response writing
// ---------------------------------------------------------------------------

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Error",
    }
}

fn write_simple(stream: &mut TcpStream, code: u16, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        code,
        status_text(code),
        content_type,
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

fn error_body(code: u16, msg: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field("error").string(msg);
    w.field("status").uint(u64::from(code));
    w.end_object();
    w.finish()
}

fn service_error_response(stream: &mut TcpStream, e: &ServiceError) {
    let code = match e {
        ServiceError::BadRequest(_) | ServiceError::Model(_) => 400,
        ServiceError::TooLarge(_) => 413,
        ServiceError::ShuttingDown => 503,
        ServiceError::Io(_) => return, // socket is gone; nothing to say
    };
    write_simple(
        stream,
        code,
        "application/json",
        &error_body(code, &e.to_string()),
    );
}

/// Writes one ndjson line as one HTTP chunk.
fn write_chunk(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    // line + newline, framed as a single chunk.
    write!(stream, "{:x}\r\n", line.len() + 1)?;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n\r\n")?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Routes
// ---------------------------------------------------------------------------

fn handle_conn(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let req = match read_request(&mut stream, shared.cfg.max_body) {
        Ok(r) => r,
        Err(e) => {
            service_error_response(&mut stream, &e);
            return;
        }
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/sweep") => handle_sweep(shared, &mut stream, &req.body),
        ("POST", "/explore") => handle_explore(shared, &mut stream, &req.body),
        ("GET", "/stats") => {
            write_simple(&mut stream, 200, "application/json", &stats_body(shared))
        }
        ("GET", "/healthz") => write_simple(&mut stream, 200, "text/plain", "ok\n"),
        ("POST", _) | ("GET", _) => write_simple(
            &mut stream,
            404,
            "application/json",
            &error_body(404, &format!("no route {} {}", req.method, req.path)),
        ),
        _ => write_simple(
            &mut stream,
            405,
            "application/json",
            &error_body(405, &format!("method {} not allowed", req.method)),
        ),
    }
}

fn handle_sweep(shared: &Arc<Shared>, stream: &mut TcpStream, body: &str) {
    let started = Instant::now();
    let spec = match crate::json::parse(body)
        .map_err(ServiceError::BadRequest)
        .and_then(|doc| SweepSpec::from_json(&doc))
    {
        Ok(s) => Arc::new(s),
        Err(e) => {
            service_error_response(stream, &e);
            return;
        }
    };
    let (sim, key, hit) = match shared
        .cache
        .get_or_compile(&spec.model, spec.component.as_deref())
    {
        Ok(r) => r,
        Err(e) => {
            service_error_response(stream, &ServiceError::Model(e.to_string()));
            return;
        }
    };

    let head =
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        return;
    }
    let mut w = JsonWriter::with_capacity(256);
    w.begin_object();
    w.field("sweep");
    w.begin_object();
    w.field("model_hash").string(&format!("{key:016x}"));
    w.field("cache").string(if hit { "hit" } else { "miss" });
    w.field("scenarios").uint(spec.count as u64);
    w.field("lanes").uint(spec.lanes as u64);
    w.field("shards").uint(spec.shards() as u64);
    w.field("stats");
    sim_stats_to_json(&mut w, &sim.stats());
    w.end_object();
    w.end_object();
    if write_chunk(stream, &w.finish()).is_err() {
        return;
    }

    let opts = ExecOpts {
        oracle_every: shared.cfg.oracle_every,
        queue_cap: shared.cfg.queue_cap,
    };
    let result = execute(&spec, &sim, &shared.pool, opts, &mut |line| {
        write_chunk(stream, line)
    });
    shared.sweeps.fetch_add(1, Relaxed);
    match result {
        Ok(outcome) => {
            shared
                .scenarios
                .fetch_add(outcome.scenarios as u64, Relaxed);
            shared
                .oracle_shards
                .fetch_add(outcome.oracle_shards as u64, Relaxed);
            shared
                .oracle_divergences
                .fetch_add(outcome.oracle_divergences as u64, Relaxed);
            if outcome.failed {
                shared.failed_sweeps.fetch_add(1, Relaxed);
            }
            let elapsed_us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            shared.latency.record(elapsed_us);
            let mut w = JsonWriter::with_capacity(128);
            w.begin_object();
            w.field("done");
            w.begin_object();
            w.field("status")
                .string(if outcome.failed { "failed" } else { "ok" });
            w.field("scenarios").uint(outcome.scenarios as u64);
            w.field("shards").uint(outcome.shards as u64);
            w.field("oracle_shards").uint(outcome.oracle_shards as u64);
            w.field("oracle_divergences")
                .uint(outcome.oracle_divergences as u64);
            w.field("elapsed_us").uint(elapsed_us);
            w.end_object();
            w.end_object();
            if write_chunk(stream, &w.finish()).is_ok() {
                let _ = stream.write_all(b"0\r\n\r\n");
                let _ = stream.flush();
            }
        }
        Err(_) => {
            // Client went away mid-stream; shards were still drained.
            shared.failed_sweeps.fetch_add(1, Relaxed);
        }
    }
}

fn handle_explore(shared: &Arc<Shared>, stream: &mut TcpStream, body: &str) {
    let started = Instant::now();
    let spec = match crate::json::parse(body)
        .map_err(ServiceError::BadRequest)
        .and_then(|doc| ExploreSpec::from_json(&doc))
    {
        Ok(s) => s,
        Err(e) => {
            service_error_response(stream, &e);
            return;
        }
    };
    let (sim, key, hit) = match shared
        .cache
        .get_or_compile(&spec.model, spec.component.as_deref())
    {
        Ok(r) => r,
        Err(e) => {
            service_error_response(stream, &ServiceError::Model(e.to_string()));
            return;
        }
    };
    // Space/monitor construction needs the parsed model; surface those
    // errors as a plain 400 before committing to the chunked stream.
    if let Err(e) = spec.parse_model() {
        service_error_response(stream, &e);
        return;
    }

    let head =
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        return;
    }
    let result = execute_explore(&spec, &sim, key, hit, &shared.pool, started, &mut |line| {
        write_chunk(stream, line)
    });
    shared.explores.fetch_add(1, Relaxed);
    match result {
        Ok(report) => {
            shared
                .scenarios
                .fetch_add(report.scenarios_run() as u64, Relaxed);
            let elapsed_us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            shared.latency.record(elapsed_us);
            let _ = stream.write_all(b"0\r\n\r\n");
            let _ = stream.flush();
        }
        Err(ServiceError::Io(_)) => {
            // Client went away mid-stream; the exploration still ran to
            // completion so no pool shard was abandoned.
            shared.failed_explores.fetch_add(1, Relaxed);
        }
        Err(_) => {
            shared.failed_explores.fetch_add(1, Relaxed);
        }
    }
}

fn stats_body(shared: &Shared) -> String {
    let cache = shared.cache.stats();
    let pool = shared.pool.stats();
    let mut w = JsonWriter::with_capacity(512);
    w.begin_object();
    w.field("cache");
    w.begin_object();
    w.field("hits").uint(cache.hits);
    w.field("misses").uint(cache.misses);
    w.field("evictions").uint(cache.evictions);
    w.field("entries").uint(cache.entries as u64);
    w.field("capacity").uint(cache.capacity as u64);
    w.end_object();
    w.field("pool");
    w.begin_object();
    w.field("workers").uint(pool.workers as u64);
    w.field("executed").uint(pool.executed);
    w.field("steals").uint(pool.steals);
    w.end_object();
    w.field("sweeps");
    w.begin_object();
    w.field("total").uint(shared.sweeps.load(Relaxed));
    w.field("failed").uint(shared.failed_sweeps.load(Relaxed));
    w.field("scenarios").uint(shared.scenarios.load(Relaxed));
    w.field("oracle_shards")
        .uint(shared.oracle_shards.load(Relaxed));
    w.field("oracle_divergences")
        .uint(shared.oracle_divergences.load(Relaxed));
    w.end_object();
    w.field("explores");
    w.begin_object();
    w.field("total").uint(shared.explores.load(Relaxed));
    w.field("failed").uint(shared.failed_explores.load(Relaxed));
    w.end_object();
    w.field("latency_us");
    w.begin_object();
    w.field("count").uint(shared.latency.count());
    w.field("mean").number(shared.latency.mean());
    w.field("p50").uint(shared.latency.quantile(0.5));
    w.field("p99").uint(shared.latency.quantile(0.99));
    w.field("max").uint(shared.latency.max());
    w.end_object();
    w.end_object();
    w.finish()
}
