//! A minimal loopback HTTP client for tests, benches, and the CLI.
//!
//! One request per connection, mirroring the server's
//! `Connection: close` policy: write the request, read to EOF, decode.
//! Chunked responses are decoded into ndjson lines and the presence of
//! the terminating zero-length chunk is reported ([`SweepStream::complete`])
//! — that flag is how the graceful-shutdown test proves no stream was
//! truncated.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use crate::ServiceError;

/// A decoded `POST /sweep` response.
#[derive(Debug, Clone)]
pub struct SweepStream {
    /// HTTP status code.
    pub status: u16,
    /// Decoded ndjson lines (header line, scenario lines, done line) for
    /// streamed responses; for non-200 responses, the error body as one
    /// line.
    pub lines: Vec<String>,
    /// Whether a chunked response carried its terminating zero chunk.
    pub complete: bool,
}

/// Submits a sweep request body to `addr` and decodes the streamed
/// response.
///
/// # Errors
///
/// Connection and protocol-level failures (an HTTP error *status* is not
/// an `Err` — it comes back in [`SweepStream::status`]).
pub fn post_sweep(addr: SocketAddr, body: &str) -> Result<SweepStream, ServiceError> {
    post_ndjson(addr, "/sweep", body)
}

/// Submits an explore request body to `addr` and decodes the streamed
/// response (header line, generation lines, repro lines, done line).
///
/// # Errors
///
/// Connection and protocol-level failures (an HTTP error *status* is not
/// an `Err` — it comes back in [`SweepStream::status`]).
pub fn post_explore(addr: SocketAddr, body: &str) -> Result<SweepStream, ServiceError> {
    post_ndjson(addr, "/explore", body)
}

fn post_ndjson(addr: SocketAddr, path: &str, body: &str) -> Result<SweepStream, ServiceError> {
    let raw = roundtrip(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )?;
    let (status, headers, payload) = split_response(&raw)?;
    if headers
        .to_ascii_lowercase()
        .contains("transfer-encoding: chunked")
    {
        let (data, complete) = decode_chunked(payload);
        let text = String::from_utf8(data)
            .map_err(|_| ServiceError::BadRequest("non-utf8 response body".into()))?;
        Ok(SweepStream {
            status,
            lines: text
                .split('\n')
                .filter(|l| !l.is_empty())
                .map(str::to_string)
                .collect(),
            complete,
        })
    } else {
        let text = String::from_utf8(payload.to_vec())
            .map_err(|_| ServiceError::BadRequest("non-utf8 response body".into()))?;
        Ok(SweepStream {
            status,
            lines: if text.is_empty() {
                Vec::new()
            } else {
                vec![text]
            },
            complete: true,
        })
    }
}

/// Performs a plain `GET` and returns `(status, body)`.
///
/// # Errors
///
/// Connection and protocol-level failures.
pub fn get(addr: SocketAddr, path: &str) -> Result<(u16, String), ServiceError> {
    let raw = roundtrip(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"),
    )?;
    let (status, _, payload) = split_response(&raw)?;
    let body = String::from_utf8(payload.to_vec())
        .map_err(|_| ServiceError::BadRequest("non-utf8 response body".into()))?;
    Ok((status, body))
}

fn roundtrip(addr: SocketAddr, request: &str) -> Result<Vec<u8>, ServiceError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.write_all(request.as_bytes())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    Ok(raw)
}

/// Splits a raw response into `(status, header text, body bytes)`.
fn split_response(raw: &[u8]) -> Result<(u16, &str, &[u8]), ServiceError> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| ServiceError::BadRequest("no response header terminator".into()))?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| ServiceError::BadRequest("non-utf8 response head".into()))?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ServiceError::BadRequest("bad status line".into()))?;
    Ok((status, head, &raw[head_end + 4..]))
}

/// Decodes a chunked body; returns the payload and whether the
/// terminating zero-length chunk was present.
fn decode_chunked(mut body: &[u8]) -> (Vec<u8>, bool) {
    let mut out = Vec::new();
    loop {
        let Some(line_end) = body.windows(2).position(|w| w == b"\r\n") else {
            return (out, false);
        };
        let Ok(size_text) = std::str::from_utf8(&body[..line_end]) else {
            return (out, false);
        };
        let Ok(size) = usize::from_str_radix(size_text.trim(), 16) else {
            return (out, false);
        };
        if size == 0 {
            return (out, true);
        }
        let data_start = line_end + 2;
        if body.len() < data_start + size + 2 {
            return (out, false);
        }
        out.extend_from_slice(&body[data_start..data_start + size]);
        body = &body[data_start + size + 2..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_decoding_handles_truncation() {
        let (data, complete) = decode_chunked(b"5\r\nhello\r\n0\r\n\r\n");
        assert_eq!(data, b"hello");
        assert!(complete);
        let (data, complete) = decode_chunked(b"5\r\nhello\r\n6\r\nwor");
        assert_eq!(data, b"hello");
        assert!(!complete);
    }

    #[test]
    fn response_splitting() {
        let raw = b"HTTP/1.1 413 Payload Too Large\r\nContent-Length: 2\r\n\r\nhi";
        let (status, head, body) = split_response(raw).unwrap();
        assert_eq!(status, 413);
        assert!(head.contains("Content-Length"));
        assert_eq!(body, b"hi");
    }
}
