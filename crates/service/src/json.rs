//! JSON reading for request bodies.
//!
//! The reader lives in [`automode_core::json`] (shared with the explorer's
//! scenario files); this module re-exports it so service callers keep
//! their `service::json::parse` spelling.

pub use automode_core::json::{parse, Json};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_reader_parses_request_bodies() {
        let v = parse(r#"{"model": "model t\n", "ticks": 32}"#).unwrap();
        assert_eq!(v.get("model").unwrap().as_str(), Some("model t\n"));
        assert_eq!(v.get("ticks").unwrap().as_u64(), Some(32));
    }
}
