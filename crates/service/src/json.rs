//! A minimal JSON reader for request bodies.
//!
//! Recursive-descent over a byte slice into a small [`Json`] DOM. The
//! workspace is offline (no serde); request bodies are small relative to
//! the simulation work they trigger, so a DOM parse is the right
//! simplicity/throughput trade. Depth is capped so adversarial nesting
//! cannot overflow the stack.

use std::collections::BTreeMap;

/// Maximum nesting depth accepted before a parse error.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is not semantically meaningful; a sorted map
    /// keeps lookups simple and re-serialization deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object (`None` on non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.0e15 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses `src` as one JSON document (trailing whitespace allowed).
///
/// # Errors
///
/// Returns a message with a byte offset on the first syntax problem.
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json at byte {}: {}", self.pos, msg)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| self.err(&format!("bad number `{text}`: {e}")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are rejected rather than
                            // combined — model text is plain ASCII and the
                            // service never needs them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("invalid \\u code point"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let s = &self.bytes[self.pos..];
                    let step = match s[0] {
                        c if c < 0x80 => 1,
                        c if c >= 0xf0 => 4,
                        c if c >= 0xe0 => 3,
                        _ => 2,
                    };
                    out.push_str(
                        std::str::from_utf8(&s[..step]).map_err(|_| self.err("bad utf8"))?,
                    );
                    self.pos += step;
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            v.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value(depth + 1)?;
            m.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true, "e": null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Json::Null));
    }

    #[test]
    fn roundtrips_with_the_core_writer() {
        // What the core writer emits, this reader parses.
        let mut w = automode_core::json::JsonWriter::new();
        w.begin_object();
        w.field("model").string("model t\ncomponent \"X\" {}\n");
        w.field("count").uint(32);
        w.end_object();
        let v = parse(&w.finish()).unwrap();
        assert_eq!(
            v.get("model").unwrap().as_str(),
            Some("model t\ncomponent \"X\" {}\n")
        );
        assert_eq!(v.get("count").unwrap().as_u64(), Some(32));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "{} trailing",
            "{\"a\": 01x}",
            "\"\u{1}\"",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn unicode_strings_survive() {
        let v = parse("\"caf\u{e9} \u{2603} \\u0041\"").unwrap();
        assert_eq!(v.as_str(), Some("caf\u{e9} \u{2603} A"));
    }
}
