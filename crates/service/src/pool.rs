//! The work-stealing worker pool.
//!
//! Per-worker deques plus a global injector, all over std primitives —
//! no crossbeam in the offline workspace. Submitters either drop jobs
//! into the injector ([`WorkerPool::submit`]) or round-robin them across
//! the worker-local deques ([`WorkerPool::submit_shards`], the sweep
//! sharding path — it pre-spreads a burst of similar-cost shards so
//! workers start without contending on one queue). An idle worker pops
//! its own deque first (LIFO, cache-warm), then the injector, then
//! steals from siblings (FIFO, oldest first).
//!
//! The sleep protocol is the standard race-free Condvar shape: a worker
//! that finds every queue empty takes the sleep lock, **re-checks** the
//! queues while holding it, and only then waits; every producer pushes
//! its job first and then takes the same lock to notify. A push can
//! therefore never slip between a worker's last check and its wait.
//!
//! Shutdown is draining by construction: the flag only stops workers
//! from *sleeping*; a worker exits when the flag is set **and** every
//! queue is empty, so all submitted jobs run before `join` returns.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of pool work.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Counters snapshot returned by [`WorkerPool::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Jobs executed to completion.
    pub executed: u64,
    /// Jobs a worker took from a sibling's deque.
    pub steals: u64,
}

struct PoolShared {
    injector: Mutex<VecDeque<Job>>,
    locals: Vec<Mutex<VecDeque<Job>>>,
    sleep: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    executed: AtomicU64,
    steals: AtomicU64,
    /// Round-robin cursor for `submit_shards`.
    next_local: AtomicUsize,
}

impl PoolShared {
    fn any_work(&self) -> bool {
        if !self.injector.lock().expect("injector poisoned").is_empty() {
            return true;
        }
        self.locals
            .iter()
            .any(|l| !l.lock().expect("local deque poisoned").is_empty())
    }

    /// Pop one job for worker `me`: own deque (LIFO) → injector → steal.
    fn pop(&self, me: usize) -> Option<Job> {
        if let Some(j) = self.locals[me]
            .lock()
            .expect("local deque poisoned")
            .pop_back()
        {
            return Some(j);
        }
        if let Some(j) = self.injector.lock().expect("injector poisoned").pop_front() {
            return Some(j);
        }
        for off in 1..self.locals.len() {
            let victim = (me + off) % self.locals.len();
            if let Some(j) = self.locals[victim]
                .lock()
                .expect("local deque poisoned")
                .pop_front()
            {
                self.steals.fetch_add(1, Relaxed);
                return Some(j);
            }
        }
        None
    }

    fn notify(&self) {
        // Taking the sleep lock orders this notify after any sleeper's
        // re-check; without it the wakeup could land in the gap between a
        // worker's empty-check and its wait.
        let _g = self.sleep.lock().expect("sleep lock poisoned");
        self.wake.notify_all();
    }
}

/// A fixed-size work-stealing thread pool.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        write!(
            f,
            "WorkerPool {{ workers: {}, executed: {}, steals: {} }}",
            s.workers, s.executed, s.steals
        )
    }
}

impl WorkerPool {
    /// Spawns a pool of `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            executed: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            next_local: AtomicUsize::new(0),
        });
        let threads = (0..workers)
            .map(|me| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("sweep-worker-{me}"))
                    .spawn(move || worker_loop(&shared, me))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, threads }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.locals.len()
    }

    /// Queues one job on the global injector.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.shared
            .injector
            .lock()
            .expect("injector poisoned")
            .push_back(Box::new(job));
        self.shared.notify();
    }

    /// Queues a burst of jobs round-robin across the worker-local deques.
    ///
    /// This is the sweep-shard path: spreading the burst up front lets
    /// every worker start on a distinct shard without first contending on
    /// the injector; the stealing protocol rebalances any skew.
    pub fn submit_shards<I>(&self, jobs: I)
    where
        I: IntoIterator<Item = Job>,
    {
        for job in jobs {
            let idx = self.shared.next_local.fetch_add(1, Relaxed) % self.shared.locals.len();
            self.shared.locals[idx]
                .lock()
                .expect("local deque poisoned")
                .push_back(job);
        }
        self.shared.notify();
    }

    /// Counters snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.shared.locals.len(),
            executed: self.shared.executed.load(Relaxed),
            steals: self.shared.steals.load(Relaxed),
        }
    }

    /// Signals shutdown and joins every worker after all queued jobs have
    /// drained. Jobs submitted after this call may be silently dropped.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Relaxed);
        self.shared.notify();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // A dropped (not explicitly shut down) pool still drains and joins
        // so tests can't leak runaway threads.
        self.shared.shutdown.store(true, Relaxed);
        self.shared.notify();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, me: usize) {
    loop {
        if let Some(job) = shared.pop(me) {
            job();
            shared.executed.fetch_add(1, Relaxed);
            continue;
        }
        // Queues looked empty. Take the sleep lock, re-check, and either
        // exit (shutdown + drained), retry (work raced in), or wait.
        let guard = shared.sleep.lock().expect("sleep lock poisoned");
        if shared.any_work() {
            continue;
        }
        if shared.shutdown.load(Relaxed) {
            return;
        }
        let _unused = shared.wake.wait(guard).expect("sleep lock poisoned");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn runs_every_submitted_job() {
        let pool = WorkerPool::new(4);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..200 {
            let done = done.clone();
            pool.submit(move || {
                done.fetch_add(1, Relaxed);
            });
        }
        pool.shutdown();
        assert_eq!(done.load(Relaxed), 200);
    }

    #[test]
    fn shard_burst_drains_and_rebalances() {
        let pool = WorkerPool::new(4);
        let done = Arc::new(AtomicUsize::new(0));
        // Skewed costs: worker 0's deque gets the slow jobs round-robin,
        // so finishing quickly requires stealing.
        let jobs: Vec<Job> = (0..64)
            .map(|i| {
                let done = done.clone();
                Box::new(move || {
                    if i % 4 == 0 {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    done.fetch_add(1, Relaxed);
                }) as Job
            })
            .collect();
        pool.submit_shards(jobs);
        pool.shutdown();
        assert_eq!(done.load(Relaxed), 64);
    }

    #[test]
    fn shutdown_drains_queued_work() {
        let pool = WorkerPool::new(2);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let done = done.clone();
            pool.submit(move || {
                std::thread::sleep(Duration::from_micros(200));
                done.fetch_add(1, Relaxed);
            });
        }
        // Immediate shutdown must still run all 50 (draining semantics).
        pool.shutdown();
        assert_eq!(done.load(Relaxed), 50);
    }

    #[test]
    fn idle_pool_shuts_down_promptly() {
        let pool = WorkerPool::new(8);
        std::thread::sleep(Duration::from_millis(5));
        pool.shutdown();
    }

    #[test]
    fn jobs_submitted_from_jobs_complete() {
        let pool = Arc::new(WorkerPool::new(3));
        let done = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        for _ in 0..10 {
            let done = done.clone();
            let tx = tx.clone();
            let inner_pool = pool.clone();
            pool.submit(move || {
                let done2 = done.clone();
                let tx2 = tx.clone();
                inner_pool.submit(move || {
                    done2.fetch_add(1, Relaxed);
                    let _ = tx2.send(());
                });
            });
        }
        drop(tx);
        for _ in 0..10 {
            rx.recv_timeout(Duration::from_secs(10)).expect("inner job");
        }
        assert_eq!(done.load(Relaxed), 10);
    }
}
