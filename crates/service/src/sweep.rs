//! Sweep specs, shard execution, and ordered result streaming.
//!
//! A sweep is `count` scenarios over one compiled model. Scenarios are
//! generated from per-input stimulus templates whose numeric fields can
//! scale per scenario (`*_step` knobs), sharded into K-lane batches
//! (K = `lanes`), and executed by the work-stealing pool through
//! [`CompiledSim::run_batch`] — the typed-SoA fast path from the batch
//! lanes work.
//!
//! Results stream back **in scenario order** through a bounded reorder
//! buffer ([`StreamBuf`]): shards complete out of order, the buffer
//! re-sequences them, and its capacity bounds how far execution can run
//! ahead of a slow client (backpressure). The shard that the writer
//! needs *next* is always admitted even when the buffer is full —
//! that exemption is what makes the protocol deadlock-free.
//!
//! A sampled **live differential oracle** re-runs every `oracle_every`-th
//! shard on a clone of the compiled model with batch vectorization
//! disabled and compares the runs exactly; any divergence fails the
//! sweep and names the offending scenarios.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use automode_core::json::JsonWriter;
use automode_kernel::{vcd, FaultKind, Stream, Value};
use automode_sim::report::sim_run_to_json;
use automode_sim::{stimulus, BatchScenario, CompiledSim, SimRun};

use crate::json::Json;
use crate::pool::{Job, WorkerPool};
use crate::ServiceError;

/// Hard ceiling on scenarios per sweep (memory bound).
const MAX_SCENARIOS: usize = 65_536;
/// Hard ceiling on ticks per scenario (memory bound).
const MAX_TICKS: usize = 1_000_000;
/// Largest accepted lane width.
const MAX_LANES: usize = 1024;

// ---------------------------------------------------------------------------
// Spec parsing
// ---------------------------------------------------------------------------

/// One input port's stimulus template. Numeric `*_step` fields add
/// `scenario_index * step` to the base, which is how a sweep spreads a
/// parameter across scenarios.
#[derive(Debug, Clone)]
enum Stim {
    Constant {
        value: Value,
        step: f64,
    },
    Ramp {
        from: f64,
        to: f64,
        from_step: f64,
        to_step: f64,
    },
    Step {
        before: Value,
        after: Value,
        at: u64,
        at_step: f64,
    },
    Random {
        lo: f64,
        hi: f64,
        seed: u64,
    },
}

#[derive(Debug, Clone)]
struct InputSpec {
    port: String,
    stim: Stim,
}

impl InputSpec {
    /// Materializes this input's stream for scenario `i`.
    fn stream(&self, i: usize, ticks: usize) -> Stream {
        let s = i as f64;
        match &self.stim {
            Stim::Constant { value, step } => {
                let v = match value {
                    Value::Float(f) => Value::Float(f + step * s),
                    other => other.clone(),
                };
                stimulus::constant(v, ticks)
            }
            Stim::Ramp {
                from,
                to,
                from_step,
                to_step,
            } => stimulus::ramp(from + from_step * s, to + to_step * s, ticks),
            Stim::Step {
                before,
                after,
                at,
                at_step,
            } => {
                let at = (*at as f64 + at_step * s).max(0.0) as usize;
                stimulus::step(before.clone(), after.clone(), at.min(ticks), ticks)
            }
            Stim::Random { lo, hi, seed } => {
                stimulus::seeded_random(*lo, *hi, ticks, seed.wrapping_add(i as u64))
            }
        }
    }
}

/// One fault template, optionally applied only to scenarios with
/// `i % lane_mod == 0`.
#[derive(Debug, Clone)]
struct FaultSpec {
    target: String,
    lane_mod: Option<u64>,
    kind: FaultKind,
}

/// A parsed and validated sweep request.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// The `.amdl` model text.
    pub model: String,
    /// Component to simulate (`None` = the model root).
    pub component: Option<String>,
    /// Number of scenarios.
    pub count: usize,
    /// Ticks per scenario.
    pub ticks: usize,
    /// Lane width K of each batch shard.
    pub lanes: usize,
    /// Include the canonical trace text per scenario.
    pub trace: bool,
    /// Include a VCD dump per scenario.
    pub vcd: bool,
    /// Check channel contracts and include a robustness report.
    pub robustness: bool,
    inputs: Vec<InputSpec>,
    faults: Vec<FaultSpec>,
}

fn num(v: &Json, what: &str) -> Result<f64, ServiceError> {
    v.as_f64()
        .ok_or_else(|| ServiceError::BadRequest(format!("{what} must be a number")))
}

fn opt_num(obj: &Json, key: &str, default: f64) -> Result<f64, ServiceError> {
    match obj.get(key) {
        Some(v) => num(v, key),
        None => Ok(default),
    }
}

fn value_of(v: &Json, what: &str) -> Result<Value, ServiceError> {
    match v {
        Json::Num(n) => Ok(Value::Float(*n)),
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::Str(s) => Ok(Value::sym(s.clone())),
        _ => Err(ServiceError::BadRequest(format!(
            "{what} must be a number, bool, or symbol string"
        ))),
    }
}

impl SweepSpec {
    /// Parses a request document.
    ///
    /// # Errors
    ///
    /// Missing/ill-typed fields and limit violations all map to
    /// [`ServiceError::BadRequest`] / [`ServiceError::TooLarge`].
    pub fn from_json(doc: &Json) -> Result<SweepSpec, ServiceError> {
        let model = doc
            .get("model")
            .and_then(Json::as_str)
            .ok_or_else(|| ServiceError::BadRequest("missing string field `model`".into()))?
            .to_string();
        let component = match doc.get("component") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| ServiceError::BadRequest("`component` must be a string".into()))?
                    .to_string(),
            ),
        };
        let count = doc.get("count").and_then(Json::as_u64).unwrap_or(32) as usize;
        let ticks = doc.get("ticks").and_then(Json::as_u64).unwrap_or(100) as usize;
        let lanes = doc.get("lanes").and_then(Json::as_u64).unwrap_or(32) as usize;
        if count == 0 || ticks == 0 || lanes == 0 {
            return Err(ServiceError::BadRequest(
                "`count`, `ticks`, and `lanes` must be positive".into(),
            ));
        }
        if count > MAX_SCENARIOS {
            return Err(ServiceError::TooLarge(format!(
                "count {count} exceeds limit {MAX_SCENARIOS}"
            )));
        }
        if ticks > MAX_TICKS {
            return Err(ServiceError::TooLarge(format!(
                "ticks {ticks} exceeds limit {MAX_TICKS}"
            )));
        }
        if lanes > MAX_LANES {
            return Err(ServiceError::TooLarge(format!(
                "lanes {lanes} exceeds limit {MAX_LANES}"
            )));
        }
        let mut inputs = Vec::new();
        if let Some(arr) = doc.get("inputs").and_then(Json::as_array) {
            for (idx, item) in arr.iter().enumerate() {
                inputs.push(parse_input(item, idx)?);
            }
        }
        let mut faults = Vec::new();
        if let Some(arr) = doc.get("faults").and_then(Json::as_array) {
            for (idx, item) in arr.iter().enumerate() {
                faults.push(parse_fault(item, idx)?);
            }
        }
        let flag = |key: &str| doc.get(key).and_then(Json::as_bool).unwrap_or(false);
        Ok(SweepSpec {
            model,
            component,
            count,
            ticks,
            lanes,
            trace: flag("trace"),
            vcd: flag("vcd"),
            robustness: flag("robustness"),
            inputs,
            faults,
        })
    }

    /// Number of K-lane shards this sweep splits into.
    pub fn shards(&self) -> usize {
        self.count.div_ceil(self.lanes)
    }
}

fn parse_input(item: &Json, idx: usize) -> Result<InputSpec, ServiceError> {
    let port = item
        .get("port")
        .and_then(Json::as_str)
        .ok_or_else(|| ServiceError::BadRequest(format!("inputs[{idx}]: missing `port`")))?
        .to_string();
    let kind = item
        .get("kind")
        .and_then(Json::as_str)
        .unwrap_or("constant");
    let stim = match kind {
        "constant" => Stim::Constant {
            value: value_of(
                item.get("value").unwrap_or(&Json::Num(0.0)),
                &format!("inputs[{idx}].value"),
            )?,
            step: opt_num(item, "value_step", 0.0)?,
        },
        "ramp" => Stim::Ramp {
            from: opt_num(item, "from", 0.0)?,
            to: opt_num(item, "to", 1.0)?,
            from_step: opt_num(item, "from_step", 0.0)?,
            to_step: opt_num(item, "to_step", 0.0)?,
        },
        "step" => Stim::Step {
            before: value_of(
                item.get("before").unwrap_or(&Json::Num(0.0)),
                &format!("inputs[{idx}].before"),
            )?,
            after: value_of(
                item.get("after").unwrap_or(&Json::Num(1.0)),
                &format!("inputs[{idx}].after"),
            )?,
            at: opt_num(item, "at", 0.0)? as u64,
            at_step: opt_num(item, "at_step", 0.0)?,
        },
        "random" => Stim::Random {
            lo: opt_num(item, "lo", 0.0)?,
            hi: opt_num(item, "hi", 1.0)?,
            seed: item.get("seed").and_then(Json::as_u64).unwrap_or(1),
        },
        other => {
            return Err(ServiceError::BadRequest(format!(
                "inputs[{idx}]: unknown stimulus kind `{other}`"
            )))
        }
    };
    Ok(InputSpec { port, stim })
}

fn parse_fault(item: &Json, idx: usize) -> Result<FaultSpec, ServiceError> {
    let target = item
        .get("target")
        .and_then(Json::as_str)
        .ok_or_else(|| ServiceError::BadRequest(format!("faults[{idx}]: missing `target`")))?
        .to_string();
    let lane_mod = item.get("lane_mod").and_then(Json::as_u64);
    if lane_mod == Some(0) {
        return Err(ServiceError::BadRequest(format!(
            "faults[{idx}]: `lane_mod` must be positive"
        )));
    }
    let kind = item
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| ServiceError::BadRequest(format!("faults[{idx}]: missing `kind`")))?;
    let kind = match kind {
        "drop" => FaultKind::drop_every(
            item.get("every").and_then(Json::as_u64).unwrap_or(1).max(1),
            item.get("phase").and_then(Json::as_u64).unwrap_or(0),
        ),
        "stuck" => FaultKind::StuckAt(value_of(
            item.get("value").unwrap_or(&Json::Num(0.0)),
            &format!("faults[{idx}].value"),
        )?),
        "delay" => FaultKind::Delay(item.get("ticks").and_then(Json::as_u64).unwrap_or(1) as usize),
        "jitter" => {
            let hold = opt_num(item, "hold", 0.5)?;
            if !(0.0..1.0).contains(&hold) {
                return Err(ServiceError::BadRequest(format!(
                    "faults[{idx}]: `hold` must be in [0, 1)"
                )));
            }
            FaultKind::Jitter {
                seed: item.get("seed").and_then(Json::as_u64).unwrap_or(1),
                hold,
            }
        }
        "corrupt_scale" => FaultKind::Corrupt(automode_kernel::Corruptor::scale(opt_num(
            item, "factor", 1.0,
        )?)),
        other => {
            return Err(ServiceError::BadRequest(format!(
                "faults[{idx}]: unknown fault kind `{other}`"
            )))
        }
    };
    Ok(FaultSpec {
        target,
        lane_mod,
        kind,
    })
}

// ---------------------------------------------------------------------------
// Ordered streaming with backpressure
// ---------------------------------------------------------------------------

/// What one shard hands to the writer.
struct ShardOut {
    /// One encoded ndjson line per scenario, in scenario order.
    lines: Vec<String>,
    /// Shard-level simulation failure, if any.
    error: Option<String>,
    /// Scenario indices where the differential oracle diverged.
    diverged: Vec<usize>,
    /// Whether the oracle sampled this shard.
    oracle_checked: bool,
}

struct StreamState {
    next_emit: usize,
    done: HashMap<usize, ShardOut>,
}

/// The reorder buffer between pool workers and the response writer.
///
/// `push` never blocks — a pool worker must never park on a
/// per-connection buffer, or a slow client could wedge every worker and
/// deadlock the shard the writer needs next. Boundedness comes from the
/// *submitter* instead: [`execute`] keeps at most `window` shards in
/// flight, so `done` holds at most `window` entries.
struct StreamBuf {
    state: Mutex<StreamState>,
    /// Signalled when a shard lands (writer side waits on this).
    ready: Condvar,
}

impl StreamBuf {
    fn new() -> StreamBuf {
        StreamBuf {
            state: Mutex::new(StreamState {
                next_emit: 0,
                done: HashMap::new(),
            }),
            ready: Condvar::new(),
        }
    }

    /// Deposits shard `idx`'s output (non-blocking).
    fn push(&self, idx: usize, out: ShardOut) {
        let mut st = self.state.lock().expect("stream buffer poisoned");
        st.done.insert(idx, out);
        self.ready.notify_all();
    }

    /// Blocks until shard `next_emit` is available and takes it.
    fn pop_next(&self) -> ShardOut {
        let mut st = self.state.lock().expect("stream buffer poisoned");
        loop {
            let next = st.next_emit;
            if let Some(out) = st.done.remove(&next) {
                st.next_emit += 1;
                return out;
            }
            st = self.ready.wait(st).expect("stream buffer poisoned");
        }
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Knobs the server passes into [`execute`].
#[derive(Debug, Clone, Copy)]
pub struct ExecOpts {
    /// Differential-oracle sampling period in shards (re-run every N-th
    /// shard with vectorization disabled); `0` disables the oracle.
    pub oracle_every: usize,
    /// Reorder-buffer capacity in shards (per-connection backpressure).
    pub queue_cap: usize,
}

impl Default for ExecOpts {
    fn default() -> Self {
        ExecOpts {
            oracle_every: 16,
            queue_cap: 8,
        }
    }
}

/// Outcome counters of one executed sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepOutcome {
    /// Scenarios executed.
    pub scenarios: usize,
    /// K-lane shards executed.
    pub shards: usize,
    /// Shards re-run by the differential oracle.
    pub oracle_shards: usize,
    /// Scenarios where the oracle diverged from the vectorized run.
    pub oracle_divergences: usize,
    /// Whether any shard failed or diverged.
    pub failed: bool,
}

/// Runs `spec` against `sim` on `pool`, feeding encoded ndjson lines to
/// `emit` **in scenario order**. Every scenario produces exactly one
/// line (a result object or an error object), so a stream is complete
/// iff it carries `spec.count` scenario lines — the invariant the
/// graceful-shutdown test leans on.
///
/// # Errors
///
/// Only sink (`emit`) failures abort the stream; simulation failures are
/// reported in-band and via [`SweepOutcome::failed`].
pub fn execute(
    spec: &Arc<SweepSpec>,
    sim: &Arc<CompiledSim>,
    pool: &WorkerPool,
    opts: ExecOpts,
    emit: &mut dyn FnMut(&str) -> std::io::Result<()>,
) -> std::io::Result<SweepOutcome> {
    let shards = spec.shards();
    // The oracle clone drops the typed-lane fast path: same compiled
    // artifact, scalar reference semantics.
    let oracle: Option<Arc<CompiledSim>> = if opts.oracle_every > 0 {
        let mut o = (**sim).clone();
        o.set_batch_vectorization(false);
        Some(Arc::new(o))
    } else {
        None
    };
    let buf = Arc::new(StreamBuf::new());
    let make_job = |shard_idx: usize| -> Job {
        let spec = spec.clone();
        let sim = sim.clone();
        let buf = buf.clone();
        let oracle = oracle
            .as_ref()
            .filter(|_| shard_idx.is_multiple_of(opts.oracle_every.max(1)))
            .cloned();
        Box::new(move || {
            let out = run_shard(&spec, &sim, oracle.as_deref(), shard_idx);
            buf.push(shard_idx, out);
        })
    };

    // Backpressure by sliding-window submission: at most `window` shards
    // are ever in flight, so the reorder buffer — and how far execution
    // can run ahead of a slow client — is bounded, and no pool worker
    // ever parks on a per-connection queue. The window never throttles
    // the pool below full width.
    let window = opts.queue_cap.max(pool.workers()).max(1);
    let mut submitted = window.min(shards);
    pool.submit_shards((0..submitted).map(&make_job));

    // This thread (the connection handler) is the writer: it re-sequences
    // shard outputs and pushes them down the socket.
    let mut outcome = SweepOutcome {
        scenarios: spec.count,
        shards,
        ..SweepOutcome::default()
    };
    let mut sink_err: Option<std::io::Error> = None;
    let mut popped = 0;
    while popped < submitted {
        let out = buf.pop_next();
        popped += 1;
        if out.oracle_checked {
            outcome.oracle_shards += 1;
        }
        outcome.oracle_divergences += out.diverged.len();
        if out.error.is_some() || !out.diverged.is_empty() {
            outcome.failed = true;
        }
        if sink_err.is_none() {
            for line in &out.lines {
                if let Err(e) = emit(line) {
                    sink_err = Some(e);
                    break;
                }
            }
        }
        // Refill the window — unless the client is gone, in which case we
        // only drain what is already in flight.
        if sink_err.is_none() && submitted < shards {
            pool.submit_shards(std::iter::once(make_job(submitted)));
            submitted += 1;
        }
    }
    match sink_err {
        Some(e) => Err(e),
        None => Ok(outcome),
    }
}

/// Executes one K-lane shard: builds the scenario streams, runs the
/// batch, optionally cross-checks against the scalar oracle, and encodes
/// one line per scenario.
fn run_shard(
    spec: &SweepSpec,
    sim: &CompiledSim,
    oracle: Option<&CompiledSim>,
    shard_idx: usize,
) -> ShardOut {
    let start = shard_idx * spec.lanes;
    let end = (start + spec.lanes).min(spec.count);
    let lane_inputs: Vec<Vec<(&str, Stream)>> = (start..end)
        .map(|i| {
            spec.inputs
                .iter()
                .map(|inp| (inp.port.as_str(), inp.stream(i, spec.ticks)))
                .collect()
        })
        .collect();
    let scenarios: Vec<BatchScenario> = lane_inputs
        .iter()
        .enumerate()
        .map(|(lane, inputs)| {
            let mut sc = BatchScenario::new(inputs, spec.ticks);
            for f in &spec.faults {
                let applies = match f.lane_mod {
                    Some(m) => ((start + lane) as u64).is_multiple_of(m),
                    None => true,
                };
                if applies {
                    sc = sc.with_fault(f.target.clone(), f.kind.clone());
                }
            }
            sc
        })
        .collect();

    let runs = match sim.run_batch(&scenarios) {
        Ok(r) => r,
        Err(e) => {
            return ShardOut {
                lines: (start..end)
                    .map(|i| error_line(i, &format!("simulation failed: {e}")))
                    .collect(),
                error: Some(e.to_string()),
                diverged: Vec::new(),
                oracle_checked: oracle.is_some(),
            }
        }
    };

    // Live differential oracle: the sampled shard re-runs with batch
    // vectorization off; the runs must match *exactly*.
    let mut diverged = Vec::new();
    if let Some(o) = oracle {
        match o.run_batch(&scenarios) {
            Ok(scalar_runs) => {
                for (lane, (fast, slow)) in runs.iter().zip(scalar_runs.iter()).enumerate() {
                    if fast != slow {
                        diverged.push(start + lane);
                    }
                }
            }
            Err(e) => {
                return ShardOut {
                    lines: (start..end)
                        .map(|i| error_line(i, &format!("oracle re-run failed: {e}")))
                        .collect(),
                    error: Some(e.to_string()),
                    diverged: Vec::new(),
                    oracle_checked: true,
                }
            }
        }
    }
    for &i in &diverged {
        // Server-side log of the offending scenario (satellite a).
        eprintln!(
            "service: differential oracle divergence at scenario {i} (shard {shard_idx}): \
             vectorized batch run differs from scalar reference"
        );
    }

    let monitor = spec.robustness.then(|| sim.monitor());
    let lines = runs
        .iter()
        .enumerate()
        .map(|(lane, run)| {
            let i = start + lane;
            if diverged.contains(&i) {
                return error_line(i, "differential oracle divergence");
            }
            let report = monitor.as_ref().map(|m| m.check(&run.trace));
            let vcd_text = spec.vcd.then(|| {
                let mut out = Vec::new();
                let _ = vcd::write_vcd(&run.trace, "sweep", &mut out);
                String::from_utf8_lossy(&out).into_owned()
            });
            scenario_line(i, run, spec.trace, report.as_ref(), vcd_text.as_deref())
        })
        .collect();
    ShardOut {
        lines,
        error: None,
        diverged,
        oracle_checked: oracle.is_some(),
    }
}

/// Encodes one successful scenario as `{"scenario": i, "result": {...}}`.
pub fn scenario_line(
    i: usize,
    run: &SimRun,
    trace: bool,
    robustness: Option<&automode_kernel::RobustnessReport>,
    vcd: Option<&str>,
) -> String {
    let mut w = JsonWriter::with_capacity(256);
    w.begin_object();
    w.field("scenario").uint(i as u64);
    w.field("result");
    sim_run_to_json(&mut w, run, trace, robustness, vcd);
    w.end_object();
    w.finish()
}

/// Encodes one failed scenario as `{"scenario": i, "error": "..."}`.
fn error_line(i: usize, msg: &str) -> String {
    let mut w = JsonWriter::with_capacity(64);
    w.begin_object();
    w.field("scenario").uint(i as u64);
    w.field("error").string(msg);
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn spec_doc(extra: &str) -> String {
        let model = gain_model();
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field("model").string(&model);
        w.end_object();
        let base = w.finish();
        if extra.is_empty() {
            base
        } else {
            format!(
                "{}, {}}}",
                &base[..base.len() - 1],
                &extra[1..extra.len() - 1]
            )
        }
    }

    fn gain_model() -> String {
        "model t\n\ncomponent Gain {\n  in u: float\n  out y: float\n  expr y = (u * 2.0)\n}\n\nroot Gain\n".to_string()
    }

    fn compiled() -> Arc<CompiledSim> {
        let model = automode_core::text::from_text(&gain_model()).unwrap();
        Arc::new(CompiledSim::new_root(&model).unwrap())
    }

    #[test]
    fn spec_defaults_and_limits() {
        let doc = parse(&spec_doc("")).unwrap();
        let spec = SweepSpec::from_json(&doc).unwrap();
        assert_eq!((spec.count, spec.ticks, spec.lanes), (32, 100, 32));
        assert_eq!(spec.shards(), 1);

        let doc = parse(&spec_doc(r#"{"count": 0}"#)).unwrap();
        assert!(matches!(
            SweepSpec::from_json(&doc),
            Err(ServiceError::BadRequest(_))
        ));
        let doc = parse(&spec_doc(r#"{"count": 100000000}"#)).unwrap();
        assert!(matches!(
            SweepSpec::from_json(&doc),
            Err(ServiceError::TooLarge(_))
        ));
    }

    #[test]
    fn execute_streams_count_lines_in_order() {
        let doc = parse(&spec_doc(
            r#"{"count": 37, "ticks": 16, "lanes": 8,
                "inputs": [{"port": "u", "kind": "ramp", "from": 0, "to": 1, "to_step": 0.25}]}"#,
        ))
        .unwrap();
        let spec = Arc::new(SweepSpec::from_json(&doc).unwrap());
        let sim = compiled();
        let pool = WorkerPool::new(4);
        let mut lines = Vec::new();
        let outcome = execute(
            &spec,
            &sim,
            &pool,
            ExecOpts {
                oracle_every: 2,
                queue_cap: 2,
            },
            &mut |l| {
                lines.push(l.to_string());
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(lines.len(), 37);
        assert_eq!(outcome.scenarios, 37);
        assert_eq!(outcome.shards, 5);
        assert_eq!(outcome.oracle_shards, 3);
        assert_eq!(outcome.oracle_divergences, 0);
        assert!(!outcome.failed);
        for (i, line) in lines.iter().enumerate() {
            let v = parse(line).unwrap();
            assert_eq!(v.get("scenario").unwrap().as_u64(), Some(i as u64));
            assert!(v.get("result").is_some(), "line {i} missing result");
        }
        pool.shutdown();
    }

    #[test]
    fn scenario_results_match_direct_runs() {
        let doc = parse(&spec_doc(
            r#"{"count": 9, "ticks": 12, "lanes": 4,
                "inputs": [{"port": "u", "kind": "constant", "value": 1.0, "value_step": 0.5}]}"#,
        ))
        .unwrap();
        let spec = Arc::new(SweepSpec::from_json(&doc).unwrap());
        let sim = compiled();
        let pool = WorkerPool::new(2);
        let mut lines = Vec::new();
        execute(&spec, &sim, &pool, ExecOpts::default(), &mut |l| {
            lines.push(l.to_string());
            Ok(())
        })
        .unwrap();
        // Scenario i drives u = 1.0 + 0.5 i; the direct run must encode to
        // the identical line.
        let mut direct = (*sim).clone();
        for (i, line) in lines.iter().enumerate() {
            let inputs = vec![(
                "u",
                stimulus::constant(Value::Float(1.0 + 0.5 * i as f64), 12),
            )];
            let run = direct.run(&inputs, 12).unwrap();
            assert_eq!(line, &scenario_line(i, &run, false, None, None));
        }
        pool.shutdown();
    }

    #[test]
    fn lane_mod_faults_change_only_selected_scenarios() {
        let doc = parse(&spec_doc(
            r#"{"count": 8, "ticks": 10, "lanes": 4,
                "inputs": [{"port": "u", "kind": "constant", "value": 3.0}],
                "faults": [{"target": "y", "kind": "drop", "every": 1, "lane_mod": 4}]}"#,
        ))
        .unwrap();
        let spec = Arc::new(SweepSpec::from_json(&doc).unwrap());
        let sim = compiled();
        let pool = WorkerPool::new(2);
        let mut lines = Vec::new();
        execute(&spec, &sim, &pool, ExecOpts::default(), &mut |l| {
            lines.push(l.to_string());
            Ok(())
        })
        .unwrap();
        // Scenarios 0 and 4 have y fully dropped; others are identical to
        // each other.
        assert_ne!(
            lines[0].replace("\"scenario\":0", ""),
            lines[1].replace("\"scenario\":1", "")
        );
        assert_eq!(
            lines[1].replace("\"scenario\":1", ""),
            lines[2].replace("\"scenario\":2", "")
        );
        assert_eq!(
            lines[0].replace("\"scenario\":0", ""),
            lines[4].replace("\"scenario\":4", "")
        );
        pool.shutdown();
    }

    #[test]
    fn robustness_and_trace_flags_extend_lines() {
        let doc = parse(&spec_doc(
            r#"{"count": 2, "ticks": 6, "lanes": 2, "trace": true, "robustness": true,
                "inputs": [{"port": "u", "kind": "random", "lo": 0, "hi": 1, "seed": 7}]}"#,
        ))
        .unwrap();
        let spec = Arc::new(SweepSpec::from_json(&doc).unwrap());
        let sim = compiled();
        let pool = WorkerPool::new(1);
        let mut lines = Vec::new();
        execute(&spec, &sim, &pool, ExecOpts::default(), &mut |l| {
            lines.push(l.to_string());
            Ok(())
        })
        .unwrap();
        for line in &lines {
            let v = parse(line).unwrap();
            let result = v.get("result").unwrap();
            assert!(result.get("trace").is_some());
            assert!(result.get("robustness").is_some());
        }
        pool.shutdown();
    }

    #[test]
    fn sink_failure_drains_without_deadlock() {
        let doc = parse(&spec_doc(r#"{"count": 64, "ticks": 8, "lanes": 4}"#)).unwrap();
        let spec = Arc::new(SweepSpec::from_json(&doc).unwrap());
        let sim = compiled();
        let pool = WorkerPool::new(4);
        let mut emitted = 0usize;
        let err = execute(
            &spec,
            &sim,
            &pool,
            ExecOpts {
                oracle_every: 0,
                queue_cap: 2,
            },
            &mut |_| {
                emitted += 1;
                if emitted > 5 {
                    Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "gone"))
                } else {
                    Ok(())
                }
            },
        )
        .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
        // All jobs still drained; the pool shuts down cleanly.
        pool.shutdown();
    }
}
