//! `POST /explore` — coverage-guided exploration as a service.
//!
//! The request carries an `.amdl` model plus an exploration budget; the
//! handler reuses the sweep infrastructure end to end: the compiled-model
//! cache hands back the shared [`CompiledSim`], and every generation's
//! population is sharded into `lanes`-wide chunks executed on the
//! work-stealing pool behind the explorer's
//! [`PopulationRunner`](automode_explore::PopulationRunner) trait. Results
//! stream back as ndjson: a header line, one line per generation with the
//! cumulative coverage and its delta, one line per shrunk violation
//! repro (scenario JSON + golden trace inline), and a done line.

use std::sync::{Arc, Condvar, Mutex};

use automode_core::json::JsonWriter;
use automode_core::model::{ComponentId, Model};
use automode_core::text::from_text;
use automode_explore::{
    exact_output_monitor, explore, DirectRunner, ExploreConfig, ExploreReport, GenerationStats,
    LaneOutcome, PopulationRunner, Scenario, ScenarioSpace, Shrinker,
};
use automode_kernel::CoverageLayout;
use automode_sim::CompiledSim;

use crate::json::Json;
use crate::pool::{Job, WorkerPool};
use crate::ServiceError;

/// Hard ceiling on generations per request.
const MAX_GENERATIONS: usize = 256;
/// Hard ceiling on scenarios per generation.
const MAX_POPULATION: usize = 1024;
/// Hard ceiling on ticks per scenario.
const MAX_TICKS: usize = 10_000;
/// Hard ceiling on kept repros.
const MAX_REPROS: usize = 64;

/// A parsed and validated explore request.
#[derive(Debug, Clone)]
pub struct ExploreSpec {
    /// The `.amdl` model text.
    pub model: String,
    /// Component to explore (`None` = the model root).
    pub component: Option<String>,
    /// Number of generations.
    pub generations: usize,
    /// Scenarios per generation.
    pub population: usize,
    /// Ticks per scenario.
    pub ticks: usize,
    /// Master seed.
    pub seed: u64,
    /// Shard width for pool execution.
    pub lanes: usize,
    /// Coverage-guided (`true`, default) or pure-random baseline.
    pub guided: bool,
    /// Maximum distinct violation repros to keep and shrink.
    pub max_repros: usize,
    /// Score against the strict every-output-every-tick monitor (default)
    /// instead of the model's declared clock contracts.
    pub strict_monitor: bool,
    /// Maximum simultaneous fault genes per scenario.
    pub max_faults: Option<usize>,
    /// Per-port `[lo, hi]` generation-range overrides.
    ranges: Vec<(String, f64, f64)>,
}

impl ExploreSpec {
    /// Parses a request document.
    ///
    /// # Errors
    ///
    /// Missing/ill-typed fields map to [`ServiceError::BadRequest`],
    /// limit violations to [`ServiceError::TooLarge`].
    pub fn from_json(doc: &Json) -> Result<ExploreSpec, ServiceError> {
        let model = doc
            .get("model")
            .and_then(Json::as_str)
            .ok_or_else(|| ServiceError::BadRequest("missing string field `model`".into()))?
            .to_string();
        let component = match doc.get("component") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| ServiceError::BadRequest("`component` must be a string".into()))?
                    .to_string(),
            ),
        };
        let generations = doc.get("generations").and_then(Json::as_u64).unwrap_or(8) as usize;
        let population = doc.get("population").and_then(Json::as_u64).unwrap_or(16) as usize;
        let ticks = doc.get("ticks").and_then(Json::as_u64).unwrap_or(16) as usize;
        if generations == 0 || population == 0 || ticks == 0 {
            return Err(ServiceError::BadRequest(
                "`generations`, `population`, and `ticks` must be positive".into(),
            ));
        }
        if generations > MAX_GENERATIONS {
            return Err(ServiceError::TooLarge(format!(
                "generations {generations} exceeds limit {MAX_GENERATIONS}"
            )));
        }
        if population > MAX_POPULATION {
            return Err(ServiceError::TooLarge(format!(
                "population {population} exceeds limit {MAX_POPULATION}"
            )));
        }
        if ticks > MAX_TICKS {
            return Err(ServiceError::TooLarge(format!(
                "ticks {ticks} exceeds limit {MAX_TICKS}"
            )));
        }
        let max_repros = doc
            .get("max_repros")
            .and_then(Json::as_u64)
            .unwrap_or(8)
            .min(MAX_REPROS as u64) as usize;
        let mut ranges = Vec::new();
        if let Some(arr) = doc.get("ranges").and_then(Json::as_array) {
            for (idx, item) in arr.iter().enumerate() {
                let port = item
                    .get("port")
                    .and_then(Json::as_str)
                    .ok_or_else(|| {
                        ServiceError::BadRequest(format!("ranges[{idx}]: missing `port`"))
                    })?
                    .to_string();
                let lo = item.get("lo").and_then(Json::as_f64).unwrap_or(0.0);
                let hi = item.get("hi").and_then(Json::as_f64).unwrap_or(1.0);
                if !lo.is_finite() || !hi.is_finite() || lo > hi {
                    return Err(ServiceError::BadRequest(format!(
                        "ranges[{idx}]: need finite lo <= hi"
                    )));
                }
                ranges.push((port, lo, hi));
            }
        }
        Ok(ExploreSpec {
            model,
            component,
            generations,
            population,
            ticks,
            seed: doc.get("seed").and_then(Json::as_u64).unwrap_or(0),
            lanes: doc.get("lanes").and_then(Json::as_u64).unwrap_or(8).max(1) as usize,
            guided: doc.get("guided").and_then(Json::as_bool).unwrap_or(true),
            max_repros,
            strict_monitor: doc
                .get("strict_monitor")
                .and_then(Json::as_bool)
                .unwrap_or(true),
            max_faults: doc
                .get("max_faults")
                .and_then(Json::as_u64)
                .map(|n| n as usize),
            ranges,
        })
    }

    /// Resolves the explored component in a freshly parsed copy of the
    /// model text (the compiled artifact comes from the cache; the parsed
    /// model only feeds space + monitor construction).
    ///
    /// # Errors
    ///
    /// Parse failures and unknown component names.
    pub fn parse_model(&self) -> Result<(Model, ComponentId), ServiceError> {
        let model = from_text(&self.model).map_err(|e| ServiceError::Model(e.to_string()))?;
        let id = match &self.component {
            Some(name) => model
                .find(name)
                .ok_or_else(|| ServiceError::Model(format!("unknown component `{name}`")))?,
            None => model
                .root()
                .ok_or_else(|| ServiceError::Model("model has no root component".into()))?,
        };
        Ok((model, id))
    }

    /// Builds the scenario space: declared ports plus the request's range
    /// and fault-budget overrides.
    pub fn space(&self, model: &Model, id: ComponentId) -> ScenarioSpace {
        let mut space = ScenarioSpace::from_component(model, id, self.ticks);
        for (port, lo, hi) in &self.ranges {
            space = space.with_range(port, *lo, *hi);
        }
        if let Some(n) = self.max_faults {
            space = space.with_max_faults(n);
        }
        space
    }
}

/// [`PopulationRunner`] over the service's work-stealing pool: each
/// generation is split into `lanes`-wide shards, one pool job each, and
/// reassembled in population order.
pub struct PoolRunner<'a> {
    inner: Arc<DirectRunner>,
    pool: &'a WorkerPool,
    lanes: usize,
}

impl<'a> PoolRunner<'a> {
    /// Wraps an in-process runner for pool execution.
    pub fn new(inner: DirectRunner, pool: &'a WorkerPool, lanes: usize) -> PoolRunner<'a> {
        PoolRunner {
            inner: Arc::new(inner),
            pool,
            lanes: lanes.max(1),
        }
    }
}

impl PopulationRunner for PoolRunner<'_> {
    fn layout(&self) -> Arc<CoverageLayout> {
        self.inner.layout()
    }

    fn run(&self, scenarios: &[Scenario]) -> Vec<LaneOutcome> {
        let shards: Vec<Vec<Scenario>> = scenarios.chunks(self.lanes).map(<[_]>::to_vec).collect();
        let n = shards.len();
        type Slots = (Mutex<(usize, Vec<Option<Vec<LaneOutcome>>>)>, Condvar);
        let slots: Arc<Slots> = Arc::new((
            Mutex::new((0, (0..n).map(|_| None).collect())),
            Condvar::new(),
        ));
        let jobs = shards.into_iter().enumerate().map(|(i, chunk)| {
            let inner = self.inner.clone();
            let slots = slots.clone();
            Box::new(move || {
                let out = inner.run(&chunk);
                let (lock, ready) = &*slots;
                let mut st = lock.lock().expect("explore shard slots poisoned");
                st.1[i] = Some(out);
                st.0 += 1;
                ready.notify_all();
            }) as Job
        });
        self.pool.submit_shards(jobs);
        // Block the connection-handler thread (never a pool worker) until
        // every shard lands; shard order restores population order.
        let (lock, ready) = &*slots;
        let mut st = lock.lock().expect("explore shard slots poisoned");
        while st.0 < n {
            st = ready.wait(st).expect("explore shard slots poisoned");
        }
        st.1.iter_mut()
            .flat_map(|slot| slot.take().expect("all shards completed"))
            .collect()
    }
}

/// Encodes the stream-header line.
pub fn header_line(spec: &ExploreSpec, key: u64, hit: bool, layout: &CoverageLayout) -> String {
    let mut w = JsonWriter::with_capacity(256);
    w.begin_object();
    w.field("explore");
    w.begin_object();
    w.field("model_hash").string(&format!("{key:016x}"));
    w.field("cache").string(if hit { "hit" } else { "miss" });
    w.field("generations").uint(spec.generations as u64);
    w.field("population").uint(spec.population as u64);
    w.field("ticks").uint(spec.ticks as u64);
    w.field("seed").uint(spec.seed);
    w.field("guided").boolean(spec.guided);
    w.field("total_states").uint(layout.total_states() as u64);
    w.field("total_transitions")
        .uint(layout.total_transitions() as u64);
    w.end_object();
    w.end_object();
    w.finish()
}

/// Encodes one per-generation coverage-delta line.
pub fn generation_line(g: &GenerationStats) -> String {
    let mut w = JsonWriter::with_capacity(192);
    w.begin_object();
    w.field("generation");
    w.begin_object();
    w.field("index").uint(g.generation as u64);
    w.field("scenarios_run").uint(g.scenarios_run as u64);
    w.field("states_covered").uint(g.states_covered as u64);
    w.field("transitions_covered")
        .uint(g.transitions_covered as u64);
    w.field("new_states").uint(g.new_states as u64);
    w.field("new_transitions").uint(g.new_transitions as u64);
    w.field("violations").uint(g.violations as u64);
    w.end_object();
    w.end_object();
    w.finish()
}

/// Encodes the repro lines + done line for a finished exploration.
pub fn tail_lines(report: &ExploreReport, elapsed_us: u64) -> Vec<String> {
    let mut lines = Vec::with_capacity(report.repros.len() + 1);
    for r in &report.repros {
        let mut w = JsonWriter::with_capacity(512);
        w.begin_object();
        w.field("repro");
        w.begin_object();
        w.field("signature").string(&r.signature);
        w.field("shrunk").boolean(r.shrunk);
        w.field("minimal").boolean(r.minimal);
        w.field("deterministic").boolean(r.deterministic);
        w.field("ticks").uint(r.scenario.ticks as u64);
        w.field("faults").uint(r.scenario.faults.len() as u64);
        // The scenario rides along as its own replayable JSON text — the
        // exact bytes `Scenario::from_json` accepts and the CLI writes.
        w.field("scenario").string(&r.scenario.to_json());
        w.field("trace").string(&r.trace_text);
        w.end_object();
        w.end_object();
        lines.push(w.finish());
    }
    let (s, t) = report.final_coverage();
    let mut w = JsonWriter::with_capacity(192);
    w.begin_object();
    w.field("done");
    w.begin_object();
    w.field("status").string("ok");
    w.field("scenarios").uint(report.scenarios_run() as u64);
    w.field("states_covered").uint(s as u64);
    w.field("transitions_covered").uint(t as u64);
    w.field("violations").uint(report.repros.len() as u64);
    w.field("elapsed_us").uint(elapsed_us);
    w.end_object();
    w.end_object();
    lines.push(w.finish());
    lines
}

/// Runs an exploration per `spec` against a cached compiled handle,
/// streaming lines through `emit` (header and generation lines during the
/// run, repro + done lines at the end).
///
/// # Errors
///
/// Returns the first `emit` error (client gone); the exploration itself
/// still runs to completion so pool workers are never abandoned
/// mid-generation.
pub fn execute_explore(
    spec: &ExploreSpec,
    sim: &Arc<CompiledSim>,
    key: u64,
    hit: bool,
    pool: &WorkerPool,
    started: std::time::Instant,
    emit: &mut dyn FnMut(&str) -> std::io::Result<()>,
) -> Result<ExploreReport, ServiceError> {
    let (model, id) = spec.parse_model()?;
    let monitor = if spec.strict_monitor {
        exact_output_monitor(&model, id)
    } else {
        sim.monitor()
    };
    let runner = PoolRunner::new(
        DirectRunner::new(sim.clone()).with_monitor(monitor.clone()),
        pool,
        spec.lanes,
    );
    let shrinker = Shrinker::new(sim).with_monitor(monitor);
    let space = spec.space(&model, id);
    let cfg = ExploreConfig {
        seed: spec.seed,
        generations: spec.generations,
        population: spec.population,
        guided: spec.guided,
        max_repros: spec.max_repros,
    };

    let mut io_err: Option<std::io::Error> = None;
    let mut sink = |line: &str| {
        if io_err.is_none() {
            if let Err(e) = emit(line) {
                io_err = Some(e);
            }
        }
    };
    sink(&header_line(spec, key, hit, &runner.layout()));
    let report = explore(&runner, Some(&shrinker), &space, &cfg, |g| {
        sink(&generation_line(g));
    });
    let elapsed_us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    for line in tail_lines(&report, elapsed_us) {
        sink(&line);
    }
    match io_err {
        Some(e) => Err(ServiceError::Io(e)),
        None => Ok(report),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn spec_defaults_and_limits() {
        let doc = parse(r#"{"model":"model m\n"}"#).unwrap();
        let spec = ExploreSpec::from_json(&doc).unwrap();
        assert_eq!(spec.generations, 8);
        assert_eq!(spec.population, 16);
        assert!(spec.guided);
        assert!(spec.strict_monitor);
        assert!(
            ExploreSpec::from_json(&parse(r#"{"model":"m","generations":0}"#).unwrap()).is_err()
        );
        assert!(
            ExploreSpec::from_json(&parse(r#"{"model":"m","population":100000}"#).unwrap())
                .is_err()
        );
        assert!(ExploreSpec::from_json(
            &parse(r#"{"model":"m","ranges":[{"port":"x","lo":2,"hi":1}]}"#).unwrap()
        )
        .is_err());
        assert!(ExploreSpec::from_json(&parse(r#"{"count":4}"#).unwrap()).is_err());
    }

    #[test]
    fn bad_model_text_is_a_model_error() {
        let doc = parse(r#"{"model":"not amdl"}"#).unwrap();
        let spec = ExploreSpec::from_json(&doc).unwrap();
        assert!(matches!(spec.parse_model(), Err(ServiceError::Model(_))));
    }
}
