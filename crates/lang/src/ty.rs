//! Static types and the type checker of the base language.
//!
//! DFD ports are *dynamically typed* in AutoMoDe, but the FDA requires
//! well-defined behaviour, so the tool prototype checks expressions against
//! the (abstract) types of the ports they read. `Any` is the dynamic escape
//! hatch used on DFD-internal channels whose type is inferred.

use std::collections::BTreeMap;
use std::fmt;

use automode_kernel::ops::{BinOp, UnOp};
use automode_kernel::Value;

use crate::ast::Expr;
use crate::error::LangError;

/// An abstract value type of the base language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Type {
    /// Boolean.
    Bool,
    /// Abstract integer.
    Int,
    /// Abstract real number (floating point in simulation).
    Float,
    /// Fixed-point (appears after LA-level type refinement).
    Fixed,
    /// Enumeration symbol.
    Sym,
    /// Dynamically typed (checked at evaluation time).
    #[default]
    Any,
}

impl Type {
    /// Whether the type is numeric.
    pub fn is_numeric(&self) -> bool {
        matches!(self, Type::Int | Type::Float | Type::Fixed | Type::Any)
    }

    /// The dynamic type of a value.
    pub fn of_value(v: &Value) -> Type {
        match v {
            Value::Bool(_) => Type::Bool,
            Value::Int(_) => Type::Int,
            Value::Float(_) => Type::Float,
            Value::Fixed(_) => Type::Fixed,
            Value::Sym(_) => Type::Sym,
        }
    }

    /// Least upper bound for numeric promotion, if the types are compatible.
    pub fn join(self, other: Type) -> Option<Type> {
        use Type::*;
        match (self, other) {
            (a, b) if a == b => Some(a),
            (Any, t) | (t, Any) => Some(t),
            (Int, Float) | (Float, Int) => Some(Float),
            (Int, Fixed) | (Fixed, Int) => Some(Fixed),
            (Float, Fixed) | (Fixed, Float) => Some(Float),
            _ => None,
        }
    }

    /// Whether a value of `self` is acceptable where `other` is expected.
    pub fn is_assignable_to(&self, other: Type) -> bool {
        *self == other
            || *self == Type::Any
            || other == Type::Any
            || (self.is_numeric() && other.is_numeric() && self.join(other).is_some())
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Type::Bool => "bool",
            Type::Int => "int",
            Type::Float => "float",
            Type::Fixed => "fixed",
            Type::Sym => "sym",
            Type::Any => "any",
        };
        f.write_str(s)
    }
}

/// A typing environment: identifier → type.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TypeEnv {
    bindings: BTreeMap<String, Type>,
}

impl TypeEnv {
    /// An empty environment.
    pub fn new() -> Self {
        TypeEnv::default()
    }

    /// Binds an identifier to a type (replacing any previous binding).
    pub fn bind(&mut self, name: impl Into<String>, ty: Type) -> &mut Self {
        self.bindings.insert(name.into(), ty);
        self
    }

    /// Looks up an identifier.
    pub fn lookup(&self, name: &str) -> Option<Type> {
        self.bindings.get(name).copied()
    }
}

impl FromIterator<(String, Type)> for TypeEnv {
    fn from_iter<I: IntoIterator<Item = (String, Type)>>(iter: I) -> Self {
        TypeEnv {
            bindings: iter.into_iter().collect(),
        }
    }
}

/// Infers the type of `expr` under `env`.
///
/// # Errors
///
/// Returns [`LangError::Unbound`] for free identifiers missing from `env`
/// and [`LangError::Type`] on operator/operand mismatches.
pub fn check(expr: &Expr, env: &TypeEnv) -> Result<Type, LangError> {
    match expr {
        Expr::Lit(v) => Ok(Type::of_value(v)),
        Expr::Ident(n) => env.lookup(n).ok_or_else(|| LangError::Unbound(n.clone())),
        Expr::Present(e) => {
            check(e, env)?;
            Ok(Type::Bool)
        }
        Expr::Unary(op, e) => {
            let t = check(e, env)?;
            match op {
                UnOp::Not => {
                    if t == Type::Bool || t == Type::Any {
                        Ok(Type::Bool)
                    } else {
                        Err(LangError::Type(format!("`not` applied to {t}")))
                    }
                }
                UnOp::Neg | UnOp::Abs => {
                    if t.is_numeric() {
                        Ok(t)
                    } else {
                        Err(LangError::Type(format!("`{op}` applied to {t}")))
                    }
                }
            }
        }
        Expr::Binary(op, a, b) => {
            let ta = check(a, env)?;
            let tb = check(b, env)?;
            match op {
                BinOp::And | BinOp::Or => {
                    for t in [ta, tb] {
                        if t != Type::Bool && t != Type::Any {
                            return Err(LangError::Type(format!("`{op}` applied to {t}")));
                        }
                    }
                    Ok(Type::Bool)
                }
                BinOp::Eq | BinOp::Ne => {
                    ta.join(tb)
                        .ok_or_else(|| LangError::Type(format!("cannot compare {ta} with {tb}")))?;
                    Ok(Type::Bool)
                }
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    if ta.is_numeric() && tb.is_numeric() {
                        Ok(Type::Bool)
                    } else {
                        Err(LangError::Type(format!("`{op}` applied to {ta}, {tb}")))
                    }
                }
                _ => {
                    if !ta.is_numeric() || !tb.is_numeric() {
                        return Err(LangError::Type(format!("`{op}` applied to {ta}, {tb}")));
                    }
                    ta.join(tb)
                        .ok_or_else(|| LangError::Type(format!("incompatible: {ta}, {tb}")))
                }
            }
        }
        Expr::If(c, t, e) => {
            let tc = check(c, env)?;
            if tc != Type::Bool && tc != Type::Any {
                return Err(LangError::Type(format!("`if` condition has type {tc}")));
            }
            let tt = check(t, env)?;
            let te = check(e, env)?;
            tt.join(te)
                .ok_or_else(|| LangError::Type(format!("`if` branches disagree: {tt} vs {te}")))
        }
        Expr::OrElse(a, b) => {
            let ta = check(a, env)?;
            let tb = check(b, env)?;
            ta.join(tb)
                .ok_or_else(|| LangError::Type(format!("`?` operands disagree: {ta} vs {tb}")))
        }
        Expr::Call(name, args) => {
            let tys: Vec<Type> = args
                .iter()
                .map(|a| check(a, env))
                .collect::<Result<_, _>>()?;
            builtin_signature(name, &tys)
        }
    }
}

fn builtin_signature(name: &str, args: &[Type]) -> Result<Type, LangError> {
    let need = |n: usize| -> Result<(), LangError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(LangError::Arity {
                function: name.to_string(),
                expected: n,
                found: args.len(),
            })
        }
    };
    let numeric = |t: Type| -> Result<(), LangError> {
        if t.is_numeric() {
            Ok(())
        } else {
            Err(LangError::Type(format!("`{name}` applied to {t}")))
        }
    };
    match name {
        "min" | "max" => {
            need(2)?;
            numeric(args[0])?;
            numeric(args[1])?;
            args[0]
                .join(args[1])
                .ok_or_else(|| LangError::Type(format!("incompatible: {} {}", args[0], args[1])))
        }
        "abs" => {
            need(1)?;
            numeric(args[0])?;
            Ok(args[0])
        }
        "clamp" => {
            need(3)?;
            for &t in args {
                numeric(t)?;
            }
            let j = args[0]
                .join(args[1])
                .and_then(|t| t.join(args[2]))
                .ok_or_else(|| LangError::Type("incompatible clamp operands".to_string()))?;
            Ok(j)
        }
        _ => Err(LangError::UnknownFunction(name.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn env(pairs: &[(&str, Type)]) -> TypeEnv {
        pairs.iter().map(|(n, t)| (n.to_string(), *t)).collect()
    }

    #[test]
    fn arithmetic_promotion() {
        let env = env(&[("a", Type::Int), ("b", Type::Float)]);
        assert_eq!(check(&parse("a + b").unwrap(), &env).unwrap(), Type::Float);
        assert_eq!(check(&parse("a * a").unwrap(), &env).unwrap(), Type::Int);
    }

    #[test]
    fn comparisons_are_bool() {
        let env = env(&[("a", Type::Int)]);
        assert_eq!(check(&parse("a < 3").unwrap(), &env).unwrap(), Type::Bool);
        assert_eq!(
            check(&parse("a == 3 and true").unwrap(), &env).unwrap(),
            Type::Bool
        );
    }

    #[test]
    fn sym_equality_allowed_ordering_not() {
        let env = env(&[("m", Type::Sym)]);
        assert_eq!(
            check(&parse("m == #Idle").unwrap(), &env).unwrap(),
            Type::Bool
        );
        assert!(check(&parse("m < #Idle").unwrap(), &env).is_err());
    }

    #[test]
    fn unbound_reported() {
        assert!(matches!(
            check(&parse("zz + 1").unwrap(), &TypeEnv::new()),
            Err(LangError::Unbound(n)) if n == "zz"
        ));
    }

    #[test]
    fn if_branches_must_join() {
        let env = env(&[("c", Type::Bool)]);
        assert_eq!(
            check(&parse("if c then 1 else 2.5").unwrap(), &env).unwrap(),
            Type::Float
        );
        assert!(check(&parse("if c then 1 else #A").unwrap(), &env).is_err());
        assert!(check(&parse("if 1 then 2 else 3").unwrap(), &env).is_err());
    }

    #[test]
    fn builtins_checked() {
        let env = env(&[("a", Type::Float)]);
        assert_eq!(
            check(&parse("clamp(a, 0.0, 1.0)").unwrap(), &env).unwrap(),
            Type::Float
        );
        assert!(matches!(
            check(&parse("min(a)").unwrap(), &env),
            Err(LangError::Arity { .. })
        ));
        assert!(matches!(
            check(&parse("frobnicate(a)").unwrap(), &env),
            Err(LangError::UnknownFunction(_))
        ));
    }

    #[test]
    fn present_is_bool_of_anything() {
        let env = env(&[("x", Type::Sym)]);
        assert_eq!(
            check(&parse("present(x)").unwrap(), &env).unwrap(),
            Type::Bool
        );
    }

    #[test]
    fn orelse_joins() {
        let env = env(&[("x", Type::Int)]);
        assert_eq!(check(&parse("x ? 0").unwrap(), &env).unwrap(), Type::Int);
        assert!(check(&parse("x ? #A").unwrap(), &env).is_err());
    }

    #[test]
    fn any_is_permissive() {
        let env = env(&[("x", Type::Any)]);
        assert_eq!(check(&parse("x + 1").unwrap(), &env).unwrap(), Type::Int);
        assert_eq!(check(&parse("not x").unwrap(), &env).unwrap(), Type::Bool);
    }

    #[test]
    fn join_table() {
        assert_eq!(Type::Int.join(Type::Float), Some(Type::Float));
        assert_eq!(Type::Int.join(Type::Fixed), Some(Type::Fixed));
        assert_eq!(Type::Float.join(Type::Fixed), Some(Type::Float));
        assert_eq!(Type::Bool.join(Type::Int), None);
        assert_eq!(Type::Any.join(Type::Sym), Some(Type::Sym));
    }
}
