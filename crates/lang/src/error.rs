//! Errors of the base language.

use std::error::Error;
use std::fmt;

use automode_kernel::KernelError;

/// Errors raised while lexing, parsing, type checking, or evaluating a
/// base-language expression.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LangError {
    /// An unexpected character in the source.
    Lex {
        /// Byte offset of the offending character.
        at: usize,
        /// The character.
        ch: char,
    },
    /// A malformed numeric literal.
    BadNumber {
        /// Byte offset where the literal starts.
        at: usize,
        /// The literal text.
        text: String,
    },
    /// The parser met a token it did not expect.
    Parse {
        /// Byte offset of the offending token.
        at: usize,
        /// What was found.
        found: String,
        /// What would have been valid.
        expected: String,
    },
    /// An identifier is not bound in the environment.
    Unbound(String),
    /// A call to an unknown builtin.
    UnknownFunction(String),
    /// A builtin was called with the wrong number of arguments.
    Arity {
        /// The function name.
        function: String,
        /// Expected argument count.
        expected: usize,
        /// Found argument count.
        found: usize,
    },
    /// Static or dynamic type error.
    Type(String),
    /// An error propagated from kernel value arithmetic.
    Kernel(KernelError),
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { at, ch } => write!(f, "unexpected character `{ch}` at offset {at}"),
            LangError::BadNumber { at, text } => {
                write!(f, "malformed number `{text}` at offset {at}")
            }
            LangError::Parse {
                at,
                found,
                expected,
            } => write!(f, "expected {expected}, found `{found}` at offset {at}"),
            LangError::Unbound(name) => write!(f, "unbound identifier `{name}`"),
            LangError::UnknownFunction(name) => write!(f, "unknown function `{name}`"),
            LangError::Arity {
                function,
                expected,
                found,
            } => write!(
                f,
                "function `{function}` expects {expected} arguments, found {found}"
            ),
            LangError::Type(msg) => write!(f, "type error: {msg}"),
            LangError::Kernel(e) => write!(f, "{e}"),
        }
    }
}

impl Error for LangError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LangError::Kernel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<KernelError> for LangError {
    fn from(e: KernelError) -> Self {
        LangError::Kernel(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = LangError::Unbound("x".into());
        assert_eq!(e.to_string(), "unbound identifier `x`");
        let e = LangError::Arity {
            function: "min".into(),
            expected: 2,
            found: 1,
        };
        assert!(e.to_string().contains("expects 2"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LangError>();
    }
}
