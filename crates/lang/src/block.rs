//! Expression-defined kernel blocks.
//!
//! [`ExprBlock`] wraps a base-language expression as an executable
//! [`Block`]: this is the mechanism by which atomic DFD blocks are "defined
//! directly through an expression (function) in AutoMoDe's base language"
//! (paper, Sec. 3.2), and the way "adequate block libraries for
//! discrete-time computations" are populated.

use std::sync::Arc;

use automode_kernel::ops::{Block, ClockBehavior};
use automode_kernel::{KernelError, LaneKernel, Message, Tick};

use crate::ast::Expr;
use crate::bytecode::{LaneEval, Program, Scratch};
use crate::error::LangError;
use crate::parser::parse;

/// A stateless block whose single output is computed by a base-language
/// expression over named inputs.
///
/// ```
/// use automode_lang::ExprBlock;
/// use automode_kernel::ops::Block;
/// use automode_kernel::Message;
///
/// # fn main() -> Result<(), automode_lang::LangError> {
/// // The paper's ADD block: ch1+ch2+ch3, ports inferred from the expression.
/// let mut add = ExprBlock::parse("ADD", "ch1 + ch2 + ch3")?;
/// assert_eq!(add.input_arity(), 3);
/// let out = add
///     .step(0, &[Message::present(1i64), Message::present(2i64), Message::present(3i64)])
///     .unwrap();
/// assert_eq!(out[0], Message::present(6i64));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ExprBlock {
    // Shared, immutable fields: cloning an `ExprBlock` (per-lane replication
    // in batched execution, `ReadyNetwork::clone`) is a few refcount bumps —
    // no string, expression or bytecode copies. `scratch` is the only
    // per-instance state: reusable VM registers, empty until first use.
    name: Arc<str>,
    inputs: Arc<[String]>,
    expr: Arc<Expr>,
    program: Arc<Program>,
    scratch: Scratch,
}

impl ExprBlock {
    fn build(name: Arc<str>, inputs: Arc<[String]>, expr: Arc<Expr>) -> Self {
        let program = Arc::new(Program::compile(&expr, &inputs));
        ExprBlock {
            name,
            inputs,
            expr,
            program,
            scratch: Scratch::new(),
        }
    }

    /// Wraps an already-built expression; input ports are the expression's
    /// free identifiers in first-occurrence order.
    pub fn new(name: impl Into<String>, expr: Expr) -> Self {
        let inputs = expr.free_idents();
        ExprBlock::build(name.into().into(), inputs.into(), Arc::new(expr))
    }

    /// Wraps an expression with an explicit input-port order (ports not
    /// occurring in the expression are permitted and ignored).
    pub fn with_inputs(
        name: impl Into<String>,
        inputs: impl IntoIterator<Item = impl Into<String>>,
        expr: Expr,
    ) -> Self {
        ExprBlock::build(
            name.into().into(),
            inputs.into_iter().map(Into::into).collect(),
            Arc::new(expr),
        )
    }

    /// Parses the expression source and wraps it.
    ///
    /// # Errors
    ///
    /// Returns the parse error, if any.
    pub fn parse(name: impl Into<String>, src: &str) -> Result<Self, LangError> {
        Ok(ExprBlock::new(name, parse(src)?))
    }

    /// The wrapped expression.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// The input port names, in order.
    pub fn inputs(&self) -> &[String] {
        &self.inputs
    }

    /// The compiled bytecode program executing the expression.
    pub fn program(&self) -> &Program {
        &self.program
    }
}

impl Block for ExprBlock {
    fn name(&self) -> &str {
        &self.name
    }

    fn input_arity(&self) -> usize {
        self.inputs.len()
    }

    fn output_arity(&self) -> usize {
        1
    }

    fn step(&mut self, t: Tick, inputs: &[Message]) -> Result<Vec<Message>, KernelError> {
        let mut out = vec![Message::Absent; 1];
        self.step_into(t, inputs, &mut out)?;
        Ok(out)
    }

    fn step_into(
        &mut self,
        _t: Tick,
        inputs: &[Message],
        out: &mut [Message],
    ) -> Result<(), KernelError> {
        // Run the compiled bytecode over the input slice — ports are
        // pre-resolved to slot indices, registers are reused, and strict
        // expressions take value-mode or all-absent fast paths.
        out[0] = self
            .program
            .eval(inputs, &mut self.scratch)
            .map_err(|e| KernelError::Block {
                block: self.name.to_string(),
                message: e.to_string(),
            })?;
        Ok(())
    }

    fn needs_commit(&self) -> bool {
        false
    }

    fn clock_behavior(&self) -> ClockBehavior {
        // A strict program's output is provably absent (with no possible
        // error) whenever all its strict ports are absent — exactly the
        // `StrictAll` contract the clock-gated scheduler needs. Non-strict
        // programs (observing absence via `present`/`?`/`if`) stay opaque.
        match self.program.strict_ports() {
            Some(ports) if !ports.is_empty() => {
                ClockBehavior::StrictAll(ports.iter().map(|&p| p as usize).collect())
            }
            _ => ClockBehavior::Opaque,
        }
    }

    fn clone_block(&self) -> Box<dyn Block + Send + Sync> {
        Box::new(self.clone())
    }

    fn lane_kernel(&self, k: usize) -> Option<Box<dyn LaneKernel>> {
        // Straight-line programs (operators, `present`, literals) get the
        // column interpreter stepping all K lanes per instruction;
        // programs with control flow (`if`, `?`, builtin calls) fall back
        // to per-lane replicas.
        let eval = LaneEval::new(Arc::clone(&self.program), Arc::clone(&self.name), k)?;
        Some(Box::new(eval))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automode_kernel::network::{stimulus_from_streams, Network};
    use automode_kernel::{Stream, Value};

    #[test]
    fn expr_block_in_a_network() {
        let mut net = Network::new("ctrl");
        let v = net.add_input("v");
        let blk = net.add_block(ExprBlock::parse("sat", "clamp(v, 0.0, 1.0)").unwrap());
        net.connect_input(v, blk.input(0)).unwrap();
        net.expose_output("out", blk.output(0)).unwrap();
        let stim = stimulus_from_streams(&[Stream::from_values([
            Value::Float(-0.5),
            Value::Float(0.25),
            Value::Float(2.0),
        ])]);
        let trace = net.run(&stim).unwrap();
        assert_eq!(
            trace.signal("out").unwrap().present_values(),
            vec![Value::Float(0.0), Value::Float(0.25), Value::Float(1.0)]
        );
    }

    #[test]
    fn explicit_input_order() {
        let expr = parse("b - a").unwrap();
        let mut blk = ExprBlock::with_inputs("sub", ["a", "b"], expr);
        let out = blk
            .step(0, &[Message::present(1i64), Message::present(10i64)])
            .unwrap();
        assert_eq!(out[0], Message::present(9i64));
    }

    #[test]
    fn runtime_error_is_wrapped_with_block_name() {
        let mut blk = ExprBlock::parse("div", "a / b").unwrap();
        let err = blk
            .step(0, &[Message::present(1i64), Message::present(0i64)])
            .unwrap_err();
        match err {
            KernelError::Block { block, .. } => assert_eq!(block, "div"),
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn absence_propagates_through_expr_blocks() {
        let mut blk = ExprBlock::parse("add", "a + b").unwrap();
        let out = blk
            .step(0, &[Message::present(1i64), Message::Absent])
            .unwrap();
        assert!(out[0].is_absent());
    }

    #[test]
    fn event_triggered_block_reacts_to_absence() {
        // The paper: event-triggered behaviour is modelled by reacting to
        // presence/absence explicitly.
        let mut blk = ExprBlock::parse("evt", "if present(req) then req else 0").unwrap();
        let out = blk.step(0, &[Message::Absent]).unwrap();
        assert_eq!(out[0], Message::present(0i64));
        let out = blk.step(1, &[Message::present(5i64)]).unwrap();
        assert_eq!(out[0], Message::present(5i64));
    }
}
