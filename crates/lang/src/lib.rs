//! # automode-lang
//!
//! The AutoMoDe **base language**: the small functional expression language
//! in which atomic DFD blocks are defined "directly through an expression
//! (function)" (paper, Sec. 3.2) — e.g. the block `ADD` defined by
//! `ch1 + ch2 + ch3`.
//!
//! The language is deliberately small:
//!
//! * literals: `1`, `2.5`, `true`, symbols `#Locked`;
//! * identifiers referring to input ports or local variables;
//! * arithmetic `+ - * / %`, comparisons, `and`/`or`/`not`;
//! * `if c then a else b`;
//! * built-in calls `min`, `max`, `abs`, `clamp`;
//! * presence handling: `present(x)` tests whether a message is present on
//!   `x` this tick (the paper's "reacting explicitly depending on the
//!   presence (or absence) of a message"), `x ? d` ("else") yields `d` when
//!   `x` is absent.
//!
//! Expressions evaluate over an environment of [`automode_kernel::Message`]s
//! — strict in their numeric operands (an absent operand makes the result
//! absent), but `present` and `?` allow explicit event-triggered behaviour.
//!
//! ```
//! use automode_lang::{parse, Env};
//! use automode_kernel::Message;
//!
//! # fn main() -> Result<(), automode_lang::LangError> {
//! let e = parse("ch1 + ch2 + ch3")?;
//! let mut env = Env::new();
//! env.bind("ch1", Message::present(1i64));
//! env.bind("ch2", Message::present(2i64));
//! env.bind("ch3", Message::present(3i64));
//! assert_eq!(e.eval(&env)?, Message::present(6i64));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod block;
pub mod bytecode;
pub mod error;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod ty;

pub use ast::Expr;
pub use block::ExprBlock;
pub use bytecode::{LaneEval, Program, Scratch};
pub use error::LangError;
pub use eval::{Env, Scope, SliceScope};
pub use parser::parse;
pub use ty::{check, Type, TypeEnv};
