//! Evaluation of base-language expressions over message environments.
//!
//! Evaluation follows the clocked semantics of the operational model:
//! numeric/logic operators are **strict** in presence (an absent operand
//! makes the whole result absent), while `present(x)` and `x ? d` observe
//! absence explicitly — this is how AutoMoDe models event-triggered
//! behaviour over the time-synchronous base (paper, Sec. 2).

use automode_kernel::ops::{apply_binop, apply_unop, BinOp};
use automode_kernel::{Message, Value};

use crate::ast::Expr;
use crate::error::LangError;

/// An evaluation environment: identifier → message.
///
/// Stored as a vector of `(name, message)` pairs sorted by name: lookups
/// are a binary search, bulk construction ([`Env::from_pairs`]) is one sort,
/// and iteration is cache-friendly — cheaper than a tree map for the
/// handful of bindings expressions typically close over.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Env {
    /// Sorted by name; names are unique.
    bindings: Vec<(String, Message)>,
}

impl Env {
    /// An empty environment.
    pub fn new() -> Self {
        Env::default()
    }

    /// Builds an environment from `(name, message)` pairs in one pass: a
    /// single sort plus a dedup that keeps the **last** binding per name —
    /// the same result as repeated [`Env::bind`] calls in iteration order.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (String, Message)>) -> Self {
        let mut bindings: Vec<(String, Message)> = pairs.into_iter().collect();
        // Stable sort: duplicates stay in insertion order, so the last
        // element of each equal-name run is the latest binding.
        bindings.sort_by(|a, b| a.0.cmp(&b.0));
        bindings.dedup_by(|later, kept| {
            if later.0 == kept.0 {
                std::mem::swap(kept, later);
                true
            } else {
                false
            }
        });
        Env { bindings }
    }

    /// Binds an identifier to a message (replacing any previous binding).
    pub fn bind(&mut self, name: impl Into<String>, msg: Message) -> &mut Self {
        let name = name.into();
        match self
            .bindings
            .binary_search_by(|(n, _)| n.as_str().cmp(&name))
        {
            Ok(i) => self.bindings[i].1 = msg,
            Err(i) => self.bindings.insert(i, (name, msg)),
        }
        self
    }

    /// Binds an identifier to a present value.
    pub fn bind_value(&mut self, name: impl Into<String>, v: impl Into<Value>) -> &mut Self {
        self.bind(name, Message::present(v))
    }

    /// Looks up an identifier.
    pub fn lookup(&self, name: &str) -> Option<&Message> {
        self.bindings
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.bindings[i].1)
    }
}

/// Identifier resolution during evaluation.
///
/// [`Env`] is the general map-backed scope; [`SliceScope`] resolves over
/// two parallel slices without building a map — the zero-allocation path
/// blocks use on every tick.
pub trait Scope {
    /// Resolves an identifier to its message, if bound.
    fn get(&self, name: &str) -> Option<&Message>;
}

impl Scope for Env {
    fn get(&self, name: &str) -> Option<&Message> {
        self.lookup(name)
    }
}

/// A scope over parallel name/message slices. Lookup is a linear scan —
/// faster than any map for the handful of ports a block has, and free to
/// construct.
#[derive(Debug, Clone, Copy)]
pub struct SliceScope<'a> {
    names: &'a [String],
    msgs: &'a [Message],
}

impl<'a> SliceScope<'a> {
    /// Pairs `names[i]` with `msgs[i]`; surplus elements on either side are
    /// simply unbound.
    pub fn new(names: &'a [String], msgs: &'a [Message]) -> Self {
        SliceScope { names, msgs }
    }
}

impl Scope for SliceScope<'_> {
    fn get(&self, name: &str) -> Option<&Message> {
        self.names
            .iter()
            .position(|n| n == name)
            .and_then(|i| self.msgs.get(i))
    }
}

impl FromIterator<(String, Message)> for Env {
    fn from_iter<I: IntoIterator<Item = (String, Message)>>(iter: I) -> Self {
        Env::from_pairs(iter)
    }
}

impl Expr {
    /// Evaluates the expression under `env`.
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Unbound`] for identifiers missing from `env`,
    /// and dynamic type/arithmetic errors from the kernel.
    pub fn eval(&self, env: &Env) -> Result<Message, LangError> {
        self.eval_in(env)
    }

    /// Evaluates the expression under any [`Scope`] — monomorphized per
    /// scope type, so slice-backed scopes pay no dispatch or allocation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Expr::eval`].
    pub fn eval_in<S: Scope>(&self, scope: &S) -> Result<Message, LangError> {
        match self {
            Expr::Lit(v) => Ok(Message::Present(v.clone())),
            Expr::Ident(n) => scope
                .get(n)
                .cloned()
                .ok_or_else(|| LangError::Unbound(n.clone())),
            Expr::Present(e) => {
                let m = e.eval_in(scope)?;
                Ok(Message::present(m.is_present()))
            }
            Expr::OrElse(a, b) => {
                let ma = a.eval_in(scope)?;
                if ma.is_present() {
                    Ok(ma)
                } else {
                    b.eval_in(scope)
                }
            }
            Expr::Unary(op, e) => {
                let m = e.eval_in(scope)?;
                match m.value() {
                    Some(v) => Ok(Message::Present(apply_unop("expr", *op, v)?)),
                    None => Ok(Message::Absent),
                }
            }
            Expr::Binary(op, a, b) => {
                let ma = a.eval_in(scope)?;
                let mb = b.eval_in(scope)?;
                match (ma.value(), mb.value()) {
                    (Some(x), Some(y)) => Ok(Message::Present(apply_binop("expr", *op, x, y)?)),
                    _ => Ok(Message::Absent),
                }
            }
            Expr::If(c, t, e) => {
                let mc = c.eval_in(scope)?;
                match mc.value() {
                    Some(Value::Bool(true)) => t.eval_in(scope),
                    Some(Value::Bool(false)) => e.eval_in(scope),
                    Some(v) => Err(LangError::Type(format!(
                        "`if` condition evaluated to {} `{v}`",
                        v.type_name()
                    ))),
                    None => Ok(Message::Absent),
                }
            }
            Expr::Call(name, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    match a.eval_in(scope)?.into_value() {
                        Some(v) => vals.push(v),
                        None => return Ok(Message::Absent),
                    }
                }
                eval_builtin(name, &vals).map(Message::Present)
            }
        }
    }
}

pub(crate) fn eval_builtin(name: &str, args: &[Value]) -> Result<Value, LangError> {
    let need = |n: usize| -> Result<(), LangError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(LangError::Arity {
                function: name.to_string(),
                expected: n,
                found: args.len(),
            })
        }
    };
    match name {
        "min" => {
            need(2)?;
            Ok(apply_binop(name, BinOp::Min, &args[0], &args[1])?)
        }
        "max" => {
            need(2)?;
            Ok(apply_binop(name, BinOp::Max, &args[0], &args[1])?)
        }
        "abs" => {
            need(1)?;
            Ok(apply_unop(name, automode_kernel::ops::UnOp::Abs, &args[0])?)
        }
        "clamp" => {
            need(3)?;
            let lo = apply_binop(name, BinOp::Max, &args[0], &args[1])?;
            Ok(apply_binop(name, BinOp::Min, &lo, &args[2])?)
        }
        _ => Err(LangError::UnknownFunction(name.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn eval(src: &str, env: &Env) -> Message {
        parse(src).unwrap().eval(env).unwrap()
    }

    fn env(pairs: &[(&str, Message)]) -> Env {
        pairs
            .iter()
            .map(|(n, m)| (n.to_string(), m.clone()))
            .collect()
    }

    #[test]
    fn from_pairs_sorts_and_keeps_last_binding() {
        let e = Env::from_pairs([
            ("b".to_string(), Message::present(1i64)),
            ("a".to_string(), Message::present(2i64)),
            ("b".to_string(), Message::present(3i64)),
        ]);
        let mut incremental = Env::new();
        incremental
            .bind_value("b", 1i64)
            .bind_value("a", 2i64)
            .bind_value("b", 3i64);
        assert_eq!(e, incremental);
        assert_eq!(e.lookup("b"), Some(&Message::present(3i64)));
        assert_eq!(e.lookup("a"), Some(&Message::present(2i64)));
        assert_eq!(e.lookup("c"), None);
    }

    #[test]
    fn paper_add_expression() {
        let mut e = Env::new();
        e.bind_value("ch1", 1i64)
            .bind_value("ch2", 2i64)
            .bind_value("ch3", 3i64);
        assert_eq!(eval("ch1 + ch2 + ch3", &e), Message::present(6i64));
    }

    #[test]
    fn strictness_propagates_absence() {
        let e = env(&[("a", Message::present(1i64)), ("b", Message::Absent)]);
        assert!(eval("a + b", &e).is_absent());
        assert!(eval("-b", &e).is_absent());
        assert!(eval("min(a, b)", &e).is_absent());
    }

    #[test]
    fn present_observes_absence() {
        let e = env(&[("x", Message::Absent), ("y", Message::present(2i64))]);
        assert_eq!(eval("present(x)", &e), Message::present(false));
        assert_eq!(eval("present(y)", &e), Message::present(true));
    }

    #[test]
    fn orelse_defaults_on_absence() {
        let e = env(&[("x", Message::Absent)]);
        assert_eq!(eval("x ? 42", &e), Message::present(42i64));
        let e = env(&[("x", Message::present(7i64))]);
        assert_eq!(eval("x ? 42", &e), Message::present(7i64));
    }

    #[test]
    fn if_with_absent_condition_is_absent() {
        let e = env(&[("c", Message::Absent)]);
        assert!(eval("if c then 1 else 2", &e).is_absent());
    }

    #[test]
    fn if_branches_are_lazy() {
        // The untaken branch may reference an unbound identifier safely?
        // No: identifiers must be bound. But a division by zero in the
        // untaken branch must not fire.
        let e = env(&[("c", Message::present(true)), ("x", Message::present(1i64))]);
        assert_eq!(eval("if c then x else x / 0", &e), Message::present(1i64));
    }

    #[test]
    fn if_non_bool_condition_is_type_error() {
        let e = env(&[("c", Message::present(1i64))]);
        assert!(matches!(
            parse("if c then 1 else 2").unwrap().eval(&e),
            Err(LangError::Type(_))
        ));
    }

    #[test]
    fn builtin_clamp() {
        let e = env(&[("x", Message::present(Value::Float(5.0)))]);
        assert_eq!(
            eval("clamp(x, 0.0, 1.0)", &e),
            Message::present(Value::Float(1.0))
        );
        assert_eq!(
            eval("clamp(x, 0.0, 10.0)", &e),
            Message::present(Value::Float(5.0))
        );
    }

    #[test]
    fn unbound_identifier_errors() {
        assert!(matches!(
            parse("nope").unwrap().eval(&Env::new()),
            Err(LangError::Unbound(_))
        ));
    }

    #[test]
    fn sym_equality() {
        let e = env(&[("m", Message::present(Value::sym("Idle")))]);
        assert_eq!(eval("m == #Idle", &e), Message::present(true));
        assert_eq!(eval("m == #Cranking", &e), Message::present(false));
    }

    #[test]
    fn division_by_zero_is_reported() {
        let e = env(&[("x", Message::present(1i64))]);
        assert!(parse("x / 0").unwrap().eval(&e).is_err());
    }
}
