//! Lexer for the base language.

use automode_kernel::Value;

use crate::error::LangError;

/// A lexical token with its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Byte offset in the source.
    pub at: usize,
}

/// Token kinds of the base language.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A literal (int, float, bool, or symbol).
    Lit(Value),
    /// An identifier.
    Ident(String),
    /// `if` keyword.
    If,
    /// `then` keyword.
    Then,
    /// `else` keyword.
    Else,
    /// `and` keyword.
    And,
    /// `or` keyword.
    Or,
    /// `not` keyword.
    Not,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `,`.
    Comma,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `%`.
    Percent,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `==`.
    EqEq,
    /// `!=`.
    Ne,
    /// `?` (default / or-else operator).
    Question,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Human-readable rendering for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Lit(v) => format!("literal `{v}`"),
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("{other:?}").to_lowercase(),
        }
    }
}

/// Tokenizes a source string.
///
/// # Errors
///
/// Returns [`LangError::Lex`] on unexpected characters and
/// [`LangError::BadNumber`] on malformed numeric literals.
pub fn tokenize(src: &str) -> Result<Vec<Token>, LangError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let at = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '(' => {
                out.push(Token {
                    kind: TokenKind::LParen,
                    at,
                });
                i += 1;
            }
            ')' => {
                out.push(Token {
                    kind: TokenKind::RParen,
                    at,
                });
                i += 1;
            }
            ',' => {
                out.push(Token {
                    kind: TokenKind::Comma,
                    at,
                });
                i += 1;
            }
            '+' => {
                out.push(Token {
                    kind: TokenKind::Plus,
                    at,
                });
                i += 1;
            }
            '-' => {
                out.push(Token {
                    kind: TokenKind::Minus,
                    at,
                });
                i += 1;
            }
            '*' => {
                out.push(Token {
                    kind: TokenKind::Star,
                    at,
                });
                i += 1;
            }
            '/' => {
                out.push(Token {
                    kind: TokenKind::Slash,
                    at,
                });
                i += 1;
            }
            '%' => {
                out.push(Token {
                    kind: TokenKind::Percent,
                    at,
                });
                i += 1;
            }
            '?' => {
                out.push(Token {
                    kind: TokenKind::Question,
                    at,
                });
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        kind: TokenKind::Le,
                        at,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        kind: TokenKind::Lt,
                        at,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        kind: TokenKind::Ge,
                        at,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        kind: TokenKind::Gt,
                        at,
                    });
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        kind: TokenKind::EqEq,
                        at,
                    });
                    i += 2;
                } else {
                    return Err(LangError::Lex { at, ch: '=' });
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        kind: TokenKind::Ne,
                        at,
                    });
                    i += 2;
                } else {
                    return Err(LangError::Lex { at, ch: '!' });
                }
            }
            '#' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && is_ident_char(bytes[j] as char) {
                    j += 1;
                }
                if j == start {
                    return Err(LangError::Lex { at, ch: '#' });
                }
                out.push(Token {
                    kind: TokenKind::Lit(Value::sym(&src[start..j])),
                    at,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                let mut saw_dot = false;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    if d.is_ascii_digit() {
                        j += 1;
                    } else if d == '.'
                        && !saw_dot
                        && bytes.get(j + 1).map(|b| (*b as char).is_ascii_digit()) == Some(true)
                    {
                        saw_dot = true;
                        j += 1;
                    } else {
                        break;
                    }
                }
                let text = &src[start..j];
                let kind = if saw_dot {
                    let x: f64 = text.parse().map_err(|_| LangError::BadNumber {
                        at: start,
                        text: text.to_string(),
                    })?;
                    TokenKind::Lit(Value::Float(x))
                } else {
                    let x: i64 = text.parse().map_err(|_| LangError::BadNumber {
                        at: start,
                        text: text.to_string(),
                    })?;
                    TokenKind::Lit(Value::Int(x))
                };
                out.push(Token { kind, at: start });
                i = j;
            }
            c if is_ident_start(c) => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && is_ident_char(bytes[j] as char) {
                    j += 1;
                }
                let word = &src[start..j];
                let kind = match word {
                    "if" => TokenKind::If,
                    "then" => TokenKind::Then,
                    "else" => TokenKind::Else,
                    "and" => TokenKind::And,
                    "or" => TokenKind::Or,
                    "not" => TokenKind::Not,
                    "true" => TokenKind::Lit(Value::Bool(true)),
                    "false" => TokenKind::Lit(Value::Bool(false)),
                    _ => TokenKind::Ident(word.to_string()),
                };
                out.push(Token { kind, at: start });
                i = j;
            }
            other => return Err(LangError::Lex { at, ch: other }),
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        at: src.len(),
    });
    Ok(out)
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        let k = kinds("ch1 + ch2");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("ch1".into()),
                TokenKind::Plus,
                TokenKind::Ident("ch2".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers_and_floats() {
        assert_eq!(
            kinds("42 2.5"),
            vec![
                TokenKind::Lit(Value::Int(42)),
                TokenKind::Lit(Value::Float(2.5)),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn dot_without_digits_is_not_a_float() {
        // "1." stops before the dot; the dot then fails to lex.
        assert!(tokenize("1.").is_err());
    }

    #[test]
    fn keywords_and_bools() {
        assert_eq!(
            kinds("if true then x else not y"),
            vec![
                TokenKind::If,
                TokenKind::Lit(Value::Bool(true)),
                TokenKind::Then,
                TokenKind::Ident("x".into()),
                TokenKind::Else,
                TokenKind::Not,
                TokenKind::Ident("y".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("a <= b >= c == d != e < f > g"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Le,
                TokenKind::Ident("b".into()),
                TokenKind::Ge,
                TokenKind::Ident("c".into()),
                TokenKind::EqEq,
                TokenKind::Ident("d".into()),
                TokenKind::Ne,
                TokenKind::Ident("e".into()),
                TokenKind::Lt,
                TokenKind::Ident("f".into()),
                TokenKind::Gt,
                TokenKind::Ident("g".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn symbols() {
        assert_eq!(
            kinds("#CrankingOverrun"),
            vec![
                TokenKind::Lit(Value::sym("CrankingOverrun")),
                TokenKind::Eof
            ]
        );
        assert!(tokenize("#").is_err());
    }

    #[test]
    fn bad_chars_report_offset() {
        match tokenize("a $ b") {
            Err(LangError::Lex { at, ch }) => {
                assert_eq!(at, 2);
                assert_eq!(ch, '$');
            }
            other => panic!("expected lex error, got {other:?}"),
        }
        assert!(tokenize("a = b").is_err());
        assert!(tokenize("a ! b").is_err());
    }
}
