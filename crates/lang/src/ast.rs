//! Abstract syntax of the base language.

use std::fmt;

use automode_kernel::ops::{BinOp, UnOp};
use automode_kernel::Value;

/// A base-language expression.
///
/// Constructed by [`parse`](crate::parse) or programmatically via the
/// builder helpers ([`Expr::ident`], [`Expr::lit`], ...).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Lit(Value),
    /// Reference to an input port or local variable.
    Ident(String),
    /// Unary operator application.
    Unary(UnOp, Box<Expr>),
    /// Binary operator application.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `if c then a else b`.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Builtin call, e.g. `min(a, b)`.
    Call(String, Vec<Expr>),
    /// `present(x)`: is a message present on `x` this tick?
    Present(Box<Expr>),
    /// `a ? d`: `a` if present, `d` otherwise (default operator).
    OrElse(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// A literal expression.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// A symbol literal, e.g. `#Locked`.
    pub fn sym(s: impl Into<String>) -> Expr {
        Expr::Lit(Value::sym(s))
    }

    /// An identifier expression.
    pub fn ident(name: impl Into<String>) -> Expr {
        Expr::Ident(name.into())
    }

    /// Binary application.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Unary application.
    pub fn un(op: UnOp, e: Expr) -> Expr {
        Expr::Unary(op, Box::new(e))
    }

    /// Conditional expression.
    pub fn ite(c: Expr, t: Expr, e: Expr) -> Expr {
        Expr::If(Box::new(c), Box::new(t), Box::new(e))
    }

    /// The free identifiers of the expression, in first-occurrence order.
    pub fn free_idents(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_idents(&mut out);
        out
    }

    fn collect_idents(&self, out: &mut Vec<String>) {
        match self {
            Expr::Lit(_) => {}
            Expr::Ident(n) => {
                if !out.contains(n) {
                    out.push(n.clone());
                }
            }
            Expr::Unary(_, e) | Expr::Present(e) => e.collect_idents(out),
            Expr::Binary(_, a, b) | Expr::OrElse(a, b) => {
                a.collect_idents(out);
                b.collect_idents(out);
            }
            Expr::If(c, t, e) => {
                c.collect_idents(out);
                t.collect_idents(out);
                e.collect_idents(out);
            }
            Expr::Call(_, args) => args.iter().for_each(|a| a.collect_idents(out)),
        }
    }

    /// Whether the expression is *absence-strict*: built only from
    /// constructs that yield absent whenever any of their operands is
    /// absent (literals, identifiers, unary/binary operators, builtin
    /// calls). `present(x)`, `x ? d` and `if` observe absence explicitly
    /// and break strictness. Strictness is what lets the bytecode VM and
    /// the clock-gated scheduler treat an all-absent input row as an
    /// immediate absent result.
    pub fn is_absence_strict(&self) -> bool {
        match self {
            Expr::Lit(_) | Expr::Ident(_) => true,
            Expr::Unary(_, e) => e.is_absence_strict(),
            Expr::Binary(_, a, b) => a.is_absence_strict() && b.is_absence_strict(),
            Expr::Call(_, args) => args.iter().all(Expr::is_absence_strict),
            Expr::If(..) | Expr::Present(_) | Expr::OrElse(..) => false,
        }
    }

    /// Structural size (number of AST nodes) — used as a complexity metric
    /// by the reengineering case study.
    pub fn size(&self) -> usize {
        1 + match self {
            Expr::Lit(_) | Expr::Ident(_) => 0,
            Expr::Unary(_, e) | Expr::Present(e) => e.size(),
            Expr::Binary(_, a, b) | Expr::OrElse(a, b) => a.size() + b.size(),
            Expr::If(c, t, e) => c.size() + t.size() + e.size(),
            Expr::Call(_, args) => args.iter().map(Expr::size).sum(),
        }
    }

    /// Counts `if`-nodes — the paper's Sec. 5 contrasts MTD modes against
    /// If-Then-Else control-flow nesting; this is the metric we report.
    pub fn if_count(&self) -> usize {
        match self {
            Expr::Lit(_) | Expr::Ident(_) => 0,
            Expr::Unary(_, e) | Expr::Present(e) => e.if_count(),
            Expr::Binary(_, a, b) | Expr::OrElse(a, b) => a.if_count() + b.if_count(),
            Expr::If(c, t, e) => 1 + c.if_count() + t.if_count() + e.if_count(),
            Expr::Call(_, args) => args.iter().map(Expr::if_count).sum(),
        }
    }

    /// Maximum `if`-nesting depth.
    pub fn if_depth(&self) -> usize {
        match self {
            Expr::Lit(_) | Expr::Ident(_) => 0,
            Expr::Unary(_, e) | Expr::Present(e) => e.if_depth(),
            Expr::Binary(_, a, b) | Expr::OrElse(a, b) => a.if_depth().max(b.if_depth()),
            Expr::If(c, t, e) => 1 + c.if_depth().max(t.if_depth()).max(e.if_depth()),
            Expr::Call(_, args) => args.iter().map(Expr::if_depth).max().unwrap_or(0),
        }
    }

    /// Substitutes identifiers by expressions (capture is not a concern:
    /// the language has no binders).
    pub fn substitute(&self, subst: &dyn Fn(&str) -> Option<Expr>) -> Expr {
        match self {
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Ident(n) => subst(n).unwrap_or_else(|| Expr::Ident(n.clone())),
            Expr::Unary(op, e) => Expr::un(*op, e.substitute(subst)),
            Expr::Present(e) => Expr::Present(Box::new(e.substitute(subst))),
            Expr::Binary(op, a, b) => Expr::bin(*op, a.substitute(subst), b.substitute(subst)),
            Expr::OrElse(a, b) => {
                Expr::OrElse(Box::new(a.substitute(subst)), Box::new(b.substitute(subst)))
            }
            Expr::If(c, t, e) => Expr::ite(
                c.substitute(subst),
                t.substitute(subst),
                e.substitute(subst),
            ),
            Expr::Call(f, args) => Expr::Call(
                f.clone(),
                args.iter().map(|a| a.substitute(subst)).collect(),
            ),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Lit(Value::Sym(s)) => write!(f, "#{s}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Ident(n) => write!(f, "{n}"),
            Expr::Unary(UnOp::Neg, e) => write!(f, "(-{e})"),
            Expr::Unary(UnOp::Not, e) => write!(f, "(not {e})"),
            Expr::Unary(UnOp::Abs, e) => write!(f, "abs({e})"),
            Expr::Binary(op, a, b) => match op {
                BinOp::Min | BinOp::Max => write!(f, "{op}({a}, {b})"),
                _ => write!(f, "({a} {op} {b})"),
            },
            Expr::If(c, t, e) => write!(f, "(if {c} then {t} else {e})"),
            Expr::Call(name, args) => {
                let rendered: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                write!(f, "{name}({})", rendered.join(", "))
            }
            Expr::Present(e) => write!(f, "present({e})"),
            Expr::OrElse(a, b) => write!(f, "({a} ? {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_idents_in_order_without_duplicates() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Add, Expr::ident("ch1"), Expr::ident("ch2")),
            Expr::ident("ch1"),
        );
        assert_eq!(e.free_idents(), vec!["ch1", "ch2"]);
    }

    #[test]
    fn size_and_if_metrics() {
        let e = Expr::ite(
            Expr::ident("c"),
            Expr::ite(Expr::ident("d"), Expr::lit(1i64), Expr::lit(2i64)),
            Expr::lit(3i64),
        );
        assert_eq!(e.if_count(), 2);
        assert_eq!(e.if_depth(), 2);
        assert_eq!(e.size(), 7);
    }

    #[test]
    fn absence_strictness_classifies_operators() {
        let strict = Expr::bin(
            BinOp::Add,
            Expr::un(UnOp::Neg, Expr::ident("a")),
            Expr::Call("min".into(), vec![Expr::ident("b"), Expr::lit(1i64)]),
        );
        assert!(strict.is_absence_strict());
        assert!(!Expr::Present(Box::new(Expr::ident("a"))).is_absence_strict());
        assert!(
            !Expr::OrElse(Box::new(Expr::ident("a")), Box::new(Expr::lit(0i64)))
                .is_absence_strict()
        );
        assert!(!Expr::ite(Expr::ident("c"), Expr::lit(1i64), Expr::lit(2i64)).is_absence_strict());
    }

    #[test]
    fn substitution_replaces_idents() {
        let e = Expr::bin(BinOp::Add, Expr::ident("x"), Expr::ident("y"));
        let s = e.substitute(&|n| (n == "x").then(|| Expr::lit(5i64)));
        assert_eq!(s.to_string(), "(5 + y)");
    }

    #[test]
    fn display_roundtrips_symbols() {
        let e = Expr::bin(BinOp::Eq, Expr::ident("mode"), Expr::sym("Cranking"));
        assert_eq!(e.to_string(), "(mode == #Cranking)");
    }
}
