//! A register-based bytecode VM for base-language expressions.
//!
//! [`Program::compile`] lowers an [`Expr`] into straight-line bytecode with
//! input ports pre-resolved to slot indices, replacing the per-tick AST
//! walk (and its `SliceScope` string scans) that [`Expr::eval_in`] performs.
//! The compiler also runs a constant-folding pre-pass and records whether
//! the folded expression is *absence-strict*
//! ([`Expr::is_absence_strict`]) and provably error-free on skipped
//! operands; when it is, evaluation takes one of two fast paths:
//!
//! * **all strict ports present** — a value-mode loop over plain [`Value`]
//!   registers with no per-instruction presence checks;
//! * **all strict ports absent** — an immediate absent result with no
//!   instruction dispatched at all (the contract behind
//!   [`ClockBehavior::StrictAll`](automode_kernel::ClockBehavior)).
//!
//! The mixed case (and every non-strict program) runs a general loop over
//! [`Message`] registers that replicates `eval_in`'s semantics **exactly**,
//! including evaluation order, laziness of `if`/`?` branches, the early
//! exit of builtin calls on an absent argument, and error payloads — the
//! differential property suite asserts full `Result` equality against the
//! AST interpreter.

use std::sync::Arc;

use automode_kernel::lanes::{
    binop_lanes, copy_lanes, encode_value, unop_lanes, LaneKernel, LaneSlice, LaneSliceMut,
    LaneStore, TAG_ABSENT, TAG_BOOL, TAG_OTHER,
};
use automode_kernel::ops::{apply_binop, apply_unop, BinOp, UnOp};
use automode_kernel::{KernelError, Message, Tick, Value};

use crate::ast::Expr;
use crate::error::LangError;
use crate::eval::eval_builtin;

/// One bytecode instruction; registers and jump targets are `u32`.
///
/// `ctx` strings on operator instructions reproduce the context labels
/// `eval_in` passes to the kernel's `apply_binop`/`apply_unop` (`"expr"`
/// for operator nodes, the function name for builtin combines), so error
/// payloads match the AST interpreter byte for byte.
#[derive(Debug, Clone)]
enum Instr {
    /// `regs[dst] = inputs[port]`.
    Input { dst: u32, port: u32 },
    /// `regs[dst] = consts[idx]` (always present).
    Const { dst: u32, idx: u32 },
    /// Strict unary operator application.
    Unary {
        dst: u32,
        op: UnOp,
        src: u32,
        ctx: &'static str,
    },
    /// Strict binary operator application.
    Binary {
        dst: u32,
        op: BinOp,
        lhs: u32,
        rhs: u32,
        ctx: &'static str,
    },
    /// `regs[dst] = present(regs[src])`.
    Present { dst: u32, src: u32 },
    /// `regs[dst] = absent`.
    SetAbsent { dst: u32 },
    /// Unconditional jump.
    Jump { to: u32 },
    /// Jump when `regs[src]` is absent.
    JumpIfAbsent { src: u32, to: u32 },
    /// Jump when `regs[src]` is present.
    JumpIfPresent { src: u32, to: u32 },
    /// Three-way `if` dispatch on `regs[src]`: fall through on `true`,
    /// jump on `false`/absent, error on a present non-Boolean.
    Branch {
        src: u32,
        on_false: u32,
        on_absent: u32,
    },
    /// Raise `errs[err]` — compile-time-known failures (unbound
    /// identifiers, bad builtin arity, unknown functions) positioned where
    /// the AST walk would raise them.
    Fail { err: u32 },
}

/// Reusable register buffers for [`Program::eval`]; keep one per evaluator
/// (e.g. per block instance) and steady-state evaluation allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    msgs: Vec<Message>,
    vals: Vec<Value>,
}

impl Scratch {
    /// Fresh, empty buffers.
    pub fn new() -> Self {
        Scratch::default()
    }
}

/// A compiled expression: bytecode, constant/error pools, and the strict
/// fast-path summary.
#[derive(Debug, Clone)]
pub struct Program {
    code: Vec<Instr>,
    consts: Vec<Value>,
    errs: Vec<LangError>,
    /// Port names in slot order — only consulted on error paths.
    port_names: Vec<String>,
    num_regs: usize,
    /// `Some(ports)` iff the folded expression is absence-strict, every
    /// identifier resolved, and no constant subtree failed to fold: the
    /// program's result is then absent whenever all listed ports are
    /// absent, and cannot error on such a row.
    strict_ports: Option<Vec<u32>>,
}

impl Program {
    /// Compiles `expr` against the input-port order `inputs` (the same
    /// order the message row passed to [`Program::eval`] follows).
    ///
    /// Compilation is infallible: unbound identifiers, bad builtin arities
    /// and unknown functions become [`Instr::Fail`] instructions positioned
    /// exactly where the AST walk would raise them, so laziness (an error
    /// in an untaken `if` branch never fires) is preserved.
    pub fn compile(expr: &Expr, inputs: &[String]) -> Program {
        let (folded, fold_errored) = fold(expr);
        let mut c = Compiler {
            inputs,
            code: Vec::new(),
            consts: Vec::new(),
            errs: Vec::new(),
            num_regs: 0,
            has_fail: false,
        };
        c.emit(&folded, 0);
        c.track_reg(0);
        // The all-absent shortcut must not mask errors the AST walk would
        // raise on a row where only the *other* operands are live: a `Fail`
        // anywhere (even a lazily guarded one) or a constant subtree that
        // errors at fold time disqualifies the strict summary outright.
        let strict = folded.is_absence_strict() && !fold_errored && !c.has_fail;
        let strict_ports = strict.then(|| {
            folded
                .free_idents()
                .iter()
                .map(|n| {
                    inputs
                        .iter()
                        .position(|i| i == n)
                        .expect("strict program resolved every identifier")
                        as u32
                })
                .collect::<Vec<u32>>()
        });
        Program {
            code: c.code,
            consts: c.consts,
            errs: c.errs,
            port_names: inputs.to_vec(),
            num_regs: c.num_regs,
            strict_ports,
        }
    }

    /// The strict fast-path ports, when the program qualifies (see
    /// [`Program`] field docs): the result is absent — with no possible
    /// error — whenever all listed input slots are absent.
    pub fn strict_ports(&self) -> Option<&[u32]> {
        self.strict_ports.as_deref()
    }

    /// Number of bytecode instructions.
    pub fn instruction_count(&self) -> usize {
        self.code.len()
    }

    /// Number of registers an evaluation uses.
    pub fn register_count(&self) -> usize {
        self.num_regs
    }

    /// Evaluates the program over one input row (messages in the port
    /// order given to [`Program::compile`]), reusing `scratch` buffers.
    ///
    /// # Errors
    ///
    /// Exactly the errors [`Expr::eval_in`] would produce on the same row.
    pub fn eval(&self, inputs: &[Message], scratch: &mut Scratch) -> Result<Message, LangError> {
        if let Some(ports) = &self.strict_ports {
            let mut all_present = true;
            let mut any_present = false;
            let mut resolvable = true;
            for &p in ports {
                match inputs.get(p as usize) {
                    None => {
                        // Shorter row than the compiled port order: fall
                        // through to the general loop, which reports the
                        // unbound identifier like the AST walk does.
                        resolvable = false;
                        break;
                    }
                    Some(m) if m.is_present() => any_present = true,
                    Some(_) => all_present = false,
                }
            }
            if resolvable {
                if all_present {
                    return self.eval_values(inputs, scratch);
                }
                if !any_present {
                    return Ok(Message::Absent);
                }
            }
        }
        self.eval_messages(inputs, scratch)
    }

    /// General loop: [`Message`] registers, exact `eval_in` semantics.
    fn eval_messages(
        &self,
        inputs: &[Message],
        scratch: &mut Scratch,
    ) -> Result<Message, LangError> {
        let regs = &mut scratch.msgs;
        regs.clear();
        regs.resize(self.num_regs, Message::Absent);
        let mut pc = 0usize;
        while pc < self.code.len() {
            match &self.code[pc] {
                Instr::Input { dst, port } => {
                    regs[*dst as usize] = match inputs.get(*port as usize) {
                        Some(m) => m.clone(),
                        None => {
                            return Err(LangError::Unbound(self.port_names[*port as usize].clone()))
                        }
                    };
                }
                Instr::Const { dst, idx } => {
                    regs[*dst as usize] = Message::Present(self.consts[*idx as usize].clone());
                }
                Instr::Unary { dst, op, src, ctx } => {
                    regs[*dst as usize] = match regs[*src as usize].value() {
                        Some(v) => Message::Present(apply_unop(ctx, *op, v)?),
                        None => Message::Absent,
                    };
                }
                Instr::Binary {
                    dst,
                    op,
                    lhs,
                    rhs,
                    ctx,
                } => {
                    regs[*dst as usize] =
                        match (regs[*lhs as usize].value(), regs[*rhs as usize].value()) {
                            (Some(x), Some(y)) => Message::Present(apply_binop(ctx, *op, x, y)?),
                            _ => Message::Absent,
                        };
                }
                Instr::Present { dst, src } => {
                    regs[*dst as usize] = Message::present(regs[*src as usize].is_present());
                }
                Instr::SetAbsent { dst } => regs[*dst as usize] = Message::Absent,
                Instr::Jump { to } => {
                    pc = *to as usize;
                    continue;
                }
                Instr::JumpIfAbsent { src, to } => {
                    if regs[*src as usize].is_absent() {
                        pc = *to as usize;
                        continue;
                    }
                }
                Instr::JumpIfPresent { src, to } => {
                    if regs[*src as usize].is_present() {
                        pc = *to as usize;
                        continue;
                    }
                }
                Instr::Branch {
                    src,
                    on_false,
                    on_absent,
                } => match regs[*src as usize].value() {
                    Some(Value::Bool(true)) => {}
                    Some(Value::Bool(false)) => {
                        pc = *on_false as usize;
                        continue;
                    }
                    Some(v) => {
                        return Err(LangError::Type(format!(
                            "`if` condition evaluated to {} `{v}`",
                            v.type_name()
                        )))
                    }
                    None => {
                        pc = *on_absent as usize;
                        continue;
                    }
                },
                Instr::Fail { err } => return Err(self.errs[*err as usize].clone()),
            }
            pc += 1;
        }
        Ok(std::mem::replace(&mut regs[0], Message::Absent))
    }

    /// Value-mode loop for strict programs with every strict port present:
    /// plain [`Value`] registers, no presence checks. Absence-observing
    /// instructions cannot occur in a strict program's live path but are
    /// implemented defensively.
    fn eval_values(&self, inputs: &[Message], scratch: &mut Scratch) -> Result<Message, LangError> {
        let regs = &mut scratch.vals;
        regs.clear();
        regs.resize(self.num_regs, Value::Bool(false));
        let mut pc = 0usize;
        while pc < self.code.len() {
            match &self.code[pc] {
                Instr::Input { dst, port } => {
                    regs[*dst as usize] = match inputs.get(*port as usize).and_then(|m| m.value()) {
                        Some(v) => v.clone(),
                        // Unreachable: dispatch verified every strict port
                        // present, and strict programs read no others.
                        None => {
                            return Err(LangError::Unbound(self.port_names[*port as usize].clone()))
                        }
                    };
                }
                Instr::Const { dst, idx } => {
                    regs[*dst as usize] = self.consts[*idx as usize].clone();
                }
                Instr::Unary { dst, op, src, ctx } => {
                    regs[*dst as usize] = apply_unop(ctx, *op, &regs[*src as usize])?;
                }
                Instr::Binary {
                    dst,
                    op,
                    lhs,
                    rhs,
                    ctx,
                } => {
                    let v = apply_binop(ctx, *op, &regs[*lhs as usize], &regs[*rhs as usize])?;
                    regs[*dst as usize] = v;
                }
                Instr::Present { dst, .. } => regs[*dst as usize] = Value::Bool(true),
                Instr::SetAbsent { .. } => {
                    // Unreachable: strict programs only target their
                    // absence pads through never-taken JumpIfAbsent.
                    return Err(LangError::Type(
                        "internal: absence pad reached in strict fast path".into(),
                    ));
                }
                Instr::Jump { to } => {
                    pc = *to as usize;
                    continue;
                }
                Instr::JumpIfAbsent { .. } => {} // value registers are never absent
                Instr::JumpIfPresent { to, .. } => {
                    pc = *to as usize; // ... and always present
                    continue;
                }
                Instr::Branch {
                    src,
                    on_false,
                    on_absent: _,
                } => match &regs[*src as usize] {
                    Value::Bool(true) => {}
                    Value::Bool(false) => {
                        pc = *on_false as usize;
                        continue;
                    }
                    v => {
                        return Err(LangError::Type(format!(
                            "`if` condition evaluated to {} `{v}`",
                            v.type_name()
                        )))
                    }
                },
                Instr::Fail { err } => return Err(self.errs[*err as usize].clone()),
            }
            pc += 1;
        }
        Ok(Message::Present(std::mem::replace(
            &mut regs[0],
            Value::Bool(false),
        )))
    }

    /// `true` when the program is pure straight-line register code —
    /// operators, `present`, literals and port reads, with no jumps and no
    /// compile-time-known failures. Exactly these programs qualify for the
    /// lane-batched column interpreter ([`LaneEval`]): with no control
    /// flow, every lane executes every instruction, so instruction-major
    /// column execution is observationally identical to per-lane
    /// evaluation.
    fn is_straight_line(&self) -> bool {
        self.code.iter().all(|i| {
            matches!(
                i,
                Instr::Input { .. }
                    | Instr::Const { .. }
                    | Instr::Unary { .. }
                    | Instr::Binary { .. }
                    | Instr::Present { .. }
            )
        })
    }
}

/// Lane-batched interpreter for straight-line programs: each instruction
/// runs across all K lanes of typed columns before the next dispatches,
/// so per-tick cost is `instructions × dispatch + K × work` instead of
/// `K × (instructions × dispatch + work)` — and uniform-`f64` operator
/// columns collapse into the kernel's tight bit-column loops
/// ([`binop_lanes`]/[`unop_lanes`]).
///
/// Registers are K-lane columns; an operator computes into a spare column
/// which is then swapped with the destination register (the compiler's
/// stack discipline makes `dst == lhs` the norm, and the swap sidesteps
/// that aliasing in O(1)). The interpreter holds no cross-tick state —
/// columns are fully recomputed from instruction 0 each call — so it
/// satisfies the [`LaneKernel`] statelessness contract for fallible
/// kernels.
#[derive(Debug)]
pub struct LaneEval {
    program: Arc<Program>,
    name: Arc<str>,
    regs: Vec<LaneStore>,
    tmp: LaneStore,
}

impl LaneEval {
    /// Builds a lane interpreter for `program`, or `None` when the program
    /// has control flow (`if`, `?`, builtin calls compile to jumps) or
    /// embedded compile-time failures and must run per lane.
    pub fn new(program: Arc<Program>, name: Arc<str>, k: usize) -> Option<LaneEval> {
        if !program.is_straight_line() {
            return None;
        }
        let regs = (0..program.num_regs.max(1))
            .map(|_| LaneStore::new(1, k))
            .collect();
        Some(LaneEval {
            program,
            name,
            regs,
            tmp: LaneStore::new(1, k),
        })
    }

    fn wrap(&self, e: KernelError) -> KernelError {
        // Matches the per-lane wrapping in `ExprBlock::step_into`:
        // `LangError::Kernel` displays as the inner kernel error.
        KernelError::Block {
            block: self.name.to_string(),
            message: LangError::from(e).to_string(),
        }
    }
}

impl LaneKernel for LaneEval {
    fn step_lanes(
        &mut self,
        _t: Tick,
        inputs: &[LaneSlice<'_>],
        out: &mut LaneSliceMut<'_>,
        active: &[bool],
    ) -> Result<(), KernelError> {
        for instr in &self.program.code {
            match instr {
                Instr::Input { dst, port } => {
                    let Some(src) = inputs.get(*port as usize) else {
                        return Err(KernelError::Block {
                            block: self.name.to_string(),
                            message: LangError::Unbound(
                                self.program.port_names[*port as usize].clone(),
                            )
                            .to_string(),
                        });
                    };
                    let mut d = self.regs[*dst as usize].slice_mut(0);
                    copy_lanes(&mut d, src, active);
                }
                Instr::Const { dst, idx } => {
                    // Encode the constant once, then broadcast the columns.
                    let mut tag = 0u8;
                    let mut bits = 0u64;
                    let mut other = Message::Absent;
                    encode_value(
                        &self.program.consts[*idx as usize],
                        &mut tag,
                        &mut bits,
                        &mut other,
                    );
                    let d = self.regs[*dst as usize].slice_mut(0);
                    d.tags.fill(tag);
                    d.bits.fill(bits);
                    if tag == TAG_OTHER {
                        for o in d.other.iter_mut() {
                            *o = other.clone();
                        }
                    }
                }
                Instr::Unary { dst, op, src, ctx } => {
                    let a = self.regs[*src as usize].slice(0);
                    let mut d = self.tmp.slice_mut(0);
                    if let Err(e) = unop_lanes(ctx, *op, &a, &mut d, active) {
                        return Err(self.wrap(e));
                    }
                    std::mem::swap(&mut self.tmp, &mut self.regs[*dst as usize]);
                }
                Instr::Binary {
                    dst,
                    op,
                    lhs,
                    rhs,
                    ctx,
                } => {
                    let a = self.regs[*lhs as usize].slice(0);
                    let b = self.regs[*rhs as usize].slice(0);
                    let mut d = self.tmp.slice_mut(0);
                    if let Err(e) = binop_lanes(ctx, *op, &a, &b, &mut d, active) {
                        return Err(self.wrap(e));
                    }
                    std::mem::swap(&mut self.tmp, &mut self.regs[*dst as usize]);
                }
                Instr::Present { dst, src } => {
                    let s = self.regs[*src as usize].slice(0);
                    let d = self.tmp.slice_mut(0);
                    for ((dt, db), &st) in d.tags.iter_mut().zip(d.bits.iter_mut()).zip(s.tags) {
                        *dt = TAG_BOOL;
                        *db = u64::from(st != TAG_ABSENT);
                    }
                    std::mem::swap(&mut self.tmp, &mut self.regs[*dst as usize]);
                }
                // Unreachable: `LaneEval::new` rejects programs containing
                // control flow or embedded failures.
                Instr::SetAbsent { .. }
                | Instr::Jump { .. }
                | Instr::JumpIfAbsent { .. }
                | Instr::JumpIfPresent { .. }
                | Instr::Branch { .. }
                | Instr::Fail { .. } => {
                    return Err(KernelError::Block {
                        block: self.name.to_string(),
                        message: "internal: control flow in lane-batched program".into(),
                    });
                }
            }
        }
        copy_lanes(out, &self.regs[0].slice(0), active);
        Ok(())
    }
}

struct Compiler<'a> {
    inputs: &'a [String],
    code: Vec<Instr>,
    consts: Vec<Value>,
    errs: Vec<LangError>,
    num_regs: usize,
    has_fail: bool,
}

impl Compiler<'_> {
    fn track_reg(&mut self, r: u32) {
        self.num_regs = self.num_regs.max(r as usize + 1);
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn push(&mut self, i: Instr) -> usize {
        self.code.push(i);
        self.code.len() - 1
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.code[at] {
            Instr::Jump { to }
            | Instr::JumpIfAbsent { to, .. }
            | Instr::JumpIfPresent { to, .. } => *to = target,
            other => unreachable!("patched non-jump instruction {other:?}"),
        }
    }

    fn fail(&mut self, e: LangError) {
        self.has_fail = true;
        let err = self.errs.len() as u32;
        self.errs.push(e);
        self.code.push(Instr::Fail { err });
    }

    /// Emits code leaving the result in `dst`; registers above `dst` are
    /// free temporaries (stack discipline).
    fn emit(&mut self, e: &Expr, dst: u32) {
        self.track_reg(dst);
        match e {
            Expr::Lit(v) => {
                let idx = self.consts.len() as u32;
                self.consts.push(v.clone());
                self.push(Instr::Const { dst, idx });
            }
            Expr::Ident(n) => match self.inputs.iter().position(|i| i == n) {
                Some(p) => {
                    self.push(Instr::Input {
                        dst,
                        port: p as u32,
                    });
                }
                None => self.fail(LangError::Unbound(n.clone())),
            },
            Expr::Unary(op, a) => {
                self.emit(a, dst);
                self.push(Instr::Unary {
                    dst,
                    op: *op,
                    src: dst,
                    ctx: "expr",
                });
            }
            Expr::Binary(op, a, b) => {
                self.emit(a, dst);
                self.emit(b, dst + 1);
                self.push(Instr::Binary {
                    dst,
                    op: *op,
                    lhs: dst,
                    rhs: dst + 1,
                    ctx: "expr",
                });
            }
            Expr::Present(a) => {
                self.emit(a, dst);
                self.push(Instr::Present { dst, src: dst });
            }
            Expr::OrElse(a, b) => {
                self.emit(a, dst);
                let j = self.push(Instr::JumpIfPresent {
                    src: dst,
                    to: u32::MAX,
                });
                self.emit(b, dst);
                let end = self.here();
                self.patch(j, end);
            }
            Expr::If(c, t, el) => {
                self.emit(c, dst);
                let br = self.push(Instr::Branch {
                    src: dst,
                    on_false: u32::MAX,
                    on_absent: u32::MAX,
                });
                self.emit(t, dst);
                let j_then = self.push(Instr::Jump { to: u32::MAX });
                let l_false = self.here();
                self.emit(el, dst);
                let j_else = self.push(Instr::Jump { to: u32::MAX });
                let l_absent = self.here();
                self.push(Instr::SetAbsent { dst });
                let end = self.here();
                if let Instr::Branch {
                    on_false,
                    on_absent,
                    ..
                } = &mut self.code[br]
                {
                    *on_false = l_false;
                    *on_absent = l_absent;
                }
                self.patch(j_then, end);
                self.patch(j_else, end);
            }
            Expr::Call(name, args) => {
                // Arguments evaluate in order with an early exit on the
                // first absent one — later arguments are *not* evaluated,
                // unlike binary operators (mirrors `eval_in`).
                let mut absent_jumps = Vec::with_capacity(args.len());
                for (j, a) in args.iter().enumerate() {
                    let r = dst + j as u32;
                    self.emit(a, r);
                    absent_jumps.push(self.push(Instr::JumpIfAbsent {
                        src: r,
                        to: u32::MAX,
                    }));
                }
                // The combine sits after all argument code, where the AST
                // walk calls `eval_builtin` — arity and unknown-function
                // errors fire only once every argument came back present.
                let found = args.len();
                match (name.as_str(), found) {
                    ("min", 2) => {
                        self.push(Instr::Binary {
                            dst,
                            op: BinOp::Min,
                            lhs: dst,
                            rhs: dst + 1,
                            ctx: "min",
                        });
                    }
                    ("max", 2) => {
                        self.push(Instr::Binary {
                            dst,
                            op: BinOp::Max,
                            lhs: dst,
                            rhs: dst + 1,
                            ctx: "max",
                        });
                    }
                    ("abs", 1) => {
                        self.push(Instr::Unary {
                            dst,
                            op: UnOp::Abs,
                            src: dst,
                            ctx: "abs",
                        });
                    }
                    ("clamp", 3) => {
                        self.push(Instr::Binary {
                            dst,
                            op: BinOp::Max,
                            lhs: dst,
                            rhs: dst + 1,
                            ctx: "clamp",
                        });
                        self.push(Instr::Binary {
                            dst,
                            op: BinOp::Min,
                            lhs: dst,
                            rhs: dst + 2,
                            ctx: "clamp",
                        });
                    }
                    ("min" | "max", _) => self.fail(LangError::Arity {
                        function: name.clone(),
                        expected: 2,
                        found,
                    }),
                    ("abs", _) => self.fail(LangError::Arity {
                        function: name.clone(),
                        expected: 1,
                        found,
                    }),
                    ("clamp", _) => self.fail(LangError::Arity {
                        function: name.clone(),
                        expected: 3,
                        found,
                    }),
                    _ => self.fail(LangError::UnknownFunction(name.clone())),
                }
                let j_end = self.push(Instr::Jump { to: u32::MAX });
                let l_absent = self.here();
                self.push(Instr::SetAbsent { dst });
                let end = self.here();
                for aj in absent_jumps {
                    self.patch(aj, l_absent);
                }
                self.patch(j_end, end);
            }
        }
    }
}

/// Constant folding: collapses operator/builtin applications whose operands
/// are all literals, `if` on a literal Boolean condition, `?` and
/// `present` on literals. Returns the folded tree plus a flag set when an
/// all-literal subtree *errors* at fold time (e.g. `1 / 0`,
/// `nosuchfn(1)`) — such subtrees are left unfolded so the runtime
/// reproduces the exact error, and the flag disqualifies the strict
/// fast-path summary (the error must also fire on rows where unrelated
/// ports are absent).
fn fold(e: &Expr) -> (Expr, bool) {
    match e {
        Expr::Lit(_) | Expr::Ident(_) => (e.clone(), false),
        Expr::Unary(op, a) => {
            let (fa, ea) = fold(a);
            if let Expr::Lit(v) = &fa {
                if let Ok(r) = apply_unop("expr", *op, v) {
                    return (Expr::Lit(r), ea);
                }
                return (Expr::Unary(*op, Box::new(fa)), true);
            }
            (Expr::Unary(*op, Box::new(fa)), ea)
        }
        Expr::Binary(op, a, b) => {
            let (fa, ea) = fold(a);
            let (fb, eb) = fold(b);
            let errored = ea || eb;
            if let (Expr::Lit(x), Expr::Lit(y)) = (&fa, &fb) {
                if let Ok(r) = apply_binop("expr", *op, x, y) {
                    return (Expr::Lit(r), errored);
                }
                return (Expr::bin(*op, fa, fb), true);
            }
            (Expr::bin(*op, fa, fb), errored)
        }
        Expr::If(c, t, el) => {
            let (fc, ec) = fold(c);
            match &fc {
                // A literal Boolean condition selects its branch at compile
                // time; the discarded branch is never evaluated by the AST
                // walk either, so dropping it (errors included) is exact.
                Expr::Lit(Value::Bool(true)) => {
                    let (ft, et) = fold(t);
                    (ft, ec || et)
                }
                Expr::Lit(Value::Bool(false)) => {
                    let (fe, ee) = fold(el);
                    (fe, ec || ee)
                }
                // A literal non-Boolean condition is a guaranteed type
                // error — leave the `if` in place to raise it.
                _ => {
                    let (ft, et) = fold(t);
                    let (fe, ee) = fold(el);
                    (Expr::ite(fc, ft, fe), ec || et || ee)
                }
            }
        }
        Expr::OrElse(a, b) => {
            let (fa, ea) = fold(a);
            if matches!(fa, Expr::Lit(_)) {
                // A present literal never defers to the default.
                return (fa, ea);
            }
            let (fb, eb) = fold(b);
            (Expr::OrElse(Box::new(fa), Box::new(fb)), ea || eb)
        }
        Expr::Present(a) => {
            let (fa, ea) = fold(a);
            if matches!(fa, Expr::Lit(_)) {
                return (Expr::Lit(Value::Bool(true)), ea);
            }
            (Expr::Present(Box::new(fa)), ea)
        }
        Expr::Call(name, args) => {
            let mut errored = false;
            let fargs: Vec<Expr> = args
                .iter()
                .map(|a| {
                    let (fa, ea) = fold(a);
                    errored |= ea;
                    fa
                })
                .collect();
            let vals: Vec<&Value> = fargs
                .iter()
                .filter_map(|a| match a {
                    Expr::Lit(v) => Some(v),
                    _ => None,
                })
                .collect();
            if vals.len() == fargs.len() {
                let owned: Vec<Value> = vals.into_iter().cloned().collect();
                if let Ok(r) = eval_builtin(name, &owned) {
                    return (Expr::Lit(r), errored);
                }
                return (Expr::Call(name.clone(), fargs), true);
            }
            (Expr::Call(name.clone(), fargs), errored)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automode_kernel::lanes::encode;

    use crate::eval::Env;
    use crate::parser::parse;

    fn run(src: &str, pairs: &[(&str, Message)]) -> (Result<Message, LangError>, Program) {
        let expr = parse(src).unwrap();
        let names: Vec<String> = expr.free_idents();
        let program = Program::compile(&expr, &names);
        let row: Vec<Message> = names
            .iter()
            .map(|n| {
                pairs
                    .iter()
                    .find(|(p, _)| p == n)
                    .map(|(_, m)| m.clone())
                    .unwrap_or(Message::Absent)
            })
            .collect();
        let mut scratch = Scratch::new();
        (program.eval(&row, &mut scratch), program)
    }

    fn ast(src: &str, pairs: &[(&str, Message)]) -> Result<Message, LangError> {
        let env = Env::from_pairs(
            pairs
                .iter()
                .map(|(n, m)| (n.to_string(), m.clone()))
                .collect::<Vec<_>>(),
        );
        parse(src).unwrap().eval(&env)
    }

    #[test]
    fn matches_ast_on_arithmetic() {
        let pairs = [("a", Message::present(3i64)), ("b", Message::present(4i64))];
        let (vm, program) = run("a * a + b * b", &pairs);
        assert_eq!(vm, ast("a * a + b * b", &pairs));
        assert_eq!(vm.unwrap(), Message::present(25i64));
        assert!(program.strict_ports().is_some());
    }

    #[test]
    fn strict_all_absent_short_circuits() {
        let pairs = [("a", Message::Absent), ("b", Message::Absent)];
        let (vm, program) = run("min(a, b) + 1", &pairs);
        assert_eq!(vm, Ok(Message::Absent));
        assert_eq!(program.strict_ports().map(<[u32]>::len), Some(2));
    }

    #[test]
    fn mixed_absence_matches_ast_including_errors() {
        // `b / 0` must error even though `a` is absent — the general loop
        // replicates the AST walk's both-operands evaluation order.
        let pairs = [("a", Message::Absent), ("b", Message::present(1i64))];
        let (vm, _) = run("a + b / 0", &pairs);
        assert_eq!(vm, ast("a + b / 0", &pairs));
        assert!(vm.is_err());
    }

    #[test]
    fn division_by_literal_zero_disables_fast_path_only_when_constant() {
        // `x / 0` cannot error while `x` is absent, so it stays strict...
        let expr = parse("x / 0").unwrap();
        let p = Program::compile(&expr, &["x".to_string()]);
        assert!(p.strict_ports().is_some());
        // ...but `x + 1 / 0` errors regardless of `x`, so it must not.
        let expr = parse("x + 1 / 0").unwrap();
        let p = Program::compile(&expr, &["x".to_string()]);
        assert!(p.strict_ports().is_none());
        let mut s = Scratch::new();
        assert!(p.eval(&[Message::Absent], &mut s).is_err());
    }

    #[test]
    fn call_args_early_exit_on_absence() {
        // Call arguments evaluate in order with an early exit on the first
        // absent one: the division by zero in the second argument must not
        // fire. (`min`/`max` parse to binary operators, which *do* evaluate
        // both operands — `clamp` is the surviving call form.)
        let pairs = [("a", Message::Absent), ("b", Message::present(1i64))];
        let (vm, _) = run("clamp(a, b / 0, 9)", &pairs);
        assert_eq!(vm, ast("clamp(a, b / 0, 9)", &pairs));
        assert_eq!(vm, Ok(Message::Absent));

        // Binary `min` by contrast evaluates both operands — both the VM
        // and the AST walk raise the division error.
        let (vm, _) = run("min(a, b / 0)", &pairs);
        assert_eq!(vm, ast("min(a, b / 0)", &pairs));
        assert!(vm.is_err());
    }

    #[test]
    fn laziness_of_if_branches_is_preserved() {
        let pairs = [("c", Message::present(true)), ("x", Message::present(7i64))];
        let (vm, _) = run("if c then x else x / 0", &pairs);
        assert_eq!(vm, Ok(Message::present(7i64)));
        let pairs = [("c", Message::Absent), ("x", Message::present(7i64))];
        let (vm, _) = run("if c then x else x / 0", &pairs);
        assert_eq!(vm, Ok(Message::Absent));
    }

    #[test]
    fn if_type_error_message_matches_ast() {
        let pairs = [("c", Message::present(2i64))];
        let (vm, _) = run("if c then 1 else 2", &pairs);
        assert_eq!(vm, ast("if c then 1 else 2", &pairs));
    }

    #[test]
    fn constant_folding_collapses_literal_trees() {
        let expr = parse("1 + 2 * 3 + min(4, 5)").unwrap();
        let p = Program::compile(&expr, &[]);
        assert_eq!(p.instruction_count(), 1);
        let mut s = Scratch::new();
        assert_eq!(p.eval(&[], &mut s), Ok(Message::present(11i64)));
    }

    #[test]
    fn folding_keeps_literal_condition_branches_exact() {
        let pairs = [("x", Message::present(5i64))];
        for src in ["if true then x else x / 0", "if false then x / 0 else x"] {
            let (vm, p) = run(src, &pairs);
            assert_eq!(vm, ast(src, &pairs), "{src}");
            assert_eq!(vm, Ok(Message::present(5i64)), "{src}");
            // The discarded branch is gone, so the program is strict again.
            assert!(p.strict_ports().is_some(), "{src}");
        }
    }

    #[test]
    fn unbound_and_unknown_function_errors_match() {
        let (vm, p) = run("nope + 1", &[]);
        // `nope` is a free ident, so run() binds it as a port; compile
        // against an empty port list instead to exercise the error.
        drop((vm, p));
        let expr = parse("nope + 1").unwrap();
        let p = Program::compile(&expr, &[]);
        let mut s = Scratch::new();
        assert_eq!(
            p.eval(&[], &mut s),
            Err(LangError::Unbound("nope".to_string()))
        );
        assert!(p.strict_ports().is_none());

        let expr = parse("mystery(1)").unwrap();
        let p = Program::compile(&expr, &[]);
        assert_eq!(
            p.eval(&[], &mut s),
            Err(LangError::UnknownFunction("mystery".to_string()))
        );
    }

    /// Runs `src` through the lane interpreter over `rows` (one row per
    /// lane) and asserts each lane's column result equals the per-lane
    /// `Program::eval` on the same row, bit for bit.
    fn assert_lanes_match(src: &str, rows: &[Vec<Message>]) {
        let expr = parse(src).unwrap();
        let names: Vec<String> = expr.free_idents();
        let program = Arc::new(Program::compile(&expr, &names));
        let k = rows.len();
        let mut lanes =
            LaneEval::new(Arc::clone(&program), Arc::from(src), k).expect("straight-line");

        // Stage the rows as input columns.
        let n_ports = names.len();
        let mut cols = LaneStore::new(n_ports.max(1), k);
        for (l, row) in rows.iter().enumerate() {
            for (p, m) in row.iter().enumerate().take(n_ports) {
                cols.set(p, l, m);
            }
        }
        let port_slices: Vec<LaneSlice<'_>> = (0..n_ports).map(|p| cols.slice(p)).collect();
        let mut out = LaneStore::new(1, k);
        let active = vec![true; k];
        let lane_result = {
            let mut o = out.slice_mut(0);
            lanes.step_lanes(0, &port_slices, &mut o, &active)
        };

        let mut scratch = Scratch::new();
        let per_lane: Vec<Result<Message, LangError>> = rows
            .iter()
            .map(|row| program.eval(row, &mut scratch))
            .collect();
        let expect_err = per_lane.iter().any(Result::is_err);
        assert_eq!(
            lane_result.is_err(),
            expect_err,
            "{src}: error presence diverged"
        );
        if expect_err {
            // An error aborts the whole column call with garbage outputs —
            // the batch executor replays per lane to attribute it, so
            // there is nothing further to compare here.
            return;
        }
        for (l, res) in per_lane.iter().enumerate() {
            let m = res.as_ref().unwrap();
            let got = out.decode(0, l);
            // Compare through encoded bits so NaN payloads count as equal
            // when bit-identical.
            let (mut tg, mut te) = ((0u8, 0u64), (0u8, 0u64));
            let mut o = Message::Absent;
            encode(&got, &mut tg.0, &mut tg.1, &mut o);
            encode(m, &mut te.0, &mut te.1, &mut o);
            assert_eq!(tg, te, "{src}: lane {l} diverged: {got:?} vs {m:?}");
        }
    }

    #[test]
    fn lane_interpreter_matches_per_lane_eval() {
        let rows: Vec<Vec<Message>> = vec![
            vec![Message::present(1.5f64), Message::present(2.5f64)],
            vec![Message::Absent, Message::present(4.0f64)],
            vec![Message::present(-3.0f64), Message::Absent],
            vec![Message::Absent, Message::Absent],
            vec![Message::present(7i64), Message::present(2i64)],
        ];
        for src in [
            "a + b",
            "a * b - a",
            "-a + abs(b)",
            "a < b",
            "a == b",
            "present(a) and present(b)",
            "a + 1.0",
            "min(a, b)",
        ] {
            assert_lanes_match(src, &rows);
        }
    }

    #[test]
    fn lane_interpreter_matches_on_boolean_columns() {
        let rows: Vec<Vec<Message>> = vec![
            vec![Message::present(true), Message::present(false)],
            vec![Message::present(false), Message::present(false)],
            vec![Message::Absent, Message::present(true)],
            vec![Message::Absent, Message::Absent],
        ];
        for src in ["a and b", "a or b", "not a", "present(a) and present(b)"] {
            assert_lanes_match(src, &rows);
        }
    }

    #[test]
    fn lane_interpreter_preserves_nan_payload_bits() {
        let nan = f64::from_bits(0x7ff8_dead_beef_0001);
        let rows = vec![
            vec![Message::present(nan), Message::present(1.0f64)],
            vec![Message::present(-0.0f64), Message::present(nan)],
        ];
        assert_lanes_match("a + 0.0", &rows);
        assert_lanes_match("min(a, b)", &rows);
    }

    #[test]
    fn lane_interpreter_surfaces_division_errors() {
        let rows = vec![
            vec![Message::present(4i64), Message::present(2i64)],
            vec![Message::present(1i64), Message::present(0i64)],
        ];
        assert_lanes_match("a / b", &rows);
    }

    #[test]
    fn control_flow_programs_are_rejected() {
        for src in ["if c then 1 else 2", "x ? 0", "clamp(x, 0, 9)"] {
            let expr = parse(src).unwrap();
            let names = expr.free_idents();
            let p = Arc::new(Program::compile(&expr, &names));
            assert!(LaneEval::new(p, Arc::from(src), 4).is_none(), "{src}");
        }
    }

    #[test]
    fn orelse_and_present_match_ast() {
        let pairs = [("x", Message::Absent), ("y", Message::present(9i64))];
        for src in ["x ? 42", "y ? 42", "present(x)", "present(y)", "x ? y"] {
            let (vm, _) = run(src, &pairs);
            assert_eq!(vm, ast(src, &pairs), "{src}");
        }
    }
}
