//! Recursive-descent parser for the base language.
//!
//! Grammar (precedence from loosest to tightest):
//!
//! ```text
//! expr     := ite
//! ite      := "if" expr "then" expr "else" expr | orelse
//! orelse   := or ("?" or)*
//! or       := and ("or" and)*
//! and      := cmp ("and" cmp)*
//! cmp      := add (("<"|"<="|">"|">="|"=="|"!=") add)?
//! add      := mul (("+"|"-") mul)*
//! mul      := unary (("*"|"/"|"%") unary)*
//! unary    := ("-"|"not") unary | atom
//! atom     := literal | ident | ident "(" args ")" | "(" expr ")"
//! ```

use automode_kernel::ops::{BinOp, UnOp};

use crate::ast::Expr;
use crate::error::LangError;
use crate::lexer::{tokenize, Token, TokenKind};

/// Parses a base-language expression.
///
/// # Errors
///
/// Returns a [`LangError`] describing the first lexical or syntactic
/// problem.
///
/// ```
/// use automode_lang::parse;
/// let e = parse("if v < 10.0 then 0.2 else rate")?;
/// assert_eq!(e.free_idents(), vec!["v", "rate"]);
/// # Ok::<(), automode_lang::LangError>(())
/// ```
pub fn parse(src: &str) -> Result<Expr, LangError> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn at(&self) -> usize {
        self.tokens[self.pos].at
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<(), LangError> {
        if self.eat(&kind) {
            Ok(())
        } else {
            Err(LangError::Parse {
                at: self.at(),
                found: self.peek().describe(),
                expected: what.to_string(),
            })
        }
    }

    fn expect_eof(&mut self) -> Result<(), LangError> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(LangError::Parse {
                at: self.at(),
                found: self.peek().describe(),
                expected: "end of input".to_string(),
            })
        }
    }

    fn expr(&mut self) -> Result<Expr, LangError> {
        if self.eat(&TokenKind::If) {
            let c = self.expr()?;
            self.expect(TokenKind::Then, "`then`")?;
            let t = self.expr()?;
            self.expect(TokenKind::Else, "`else`")?;
            let e = self.expr()?;
            Ok(Expr::ite(c, t, e))
        } else {
            self.orelse()
        }
    }

    fn orelse(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.or()?;
        while self.eat(&TokenKind::Question) {
            let rhs = self.or()?;
            lhs = Expr::OrElse(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn or(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.and()?;
        while self.eat(&TokenKind::Or) {
            let rhs = self.and()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.cmp()?;
        while self.eat(&TokenKind::And) {
            let rhs = self.cmp()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp(&mut self) -> Result<Expr, LangError> {
        let lhs = self.add()?;
        let op = match self.peek() {
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            TokenKind::EqEq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add()?;
        Ok(Expr::bin(op, lhs, rhs))
    }

    fn add(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.mul()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, LangError> {
        if self.eat(&TokenKind::Minus) {
            Ok(Expr::un(UnOp::Neg, self.unary()?))
        } else if self.eat(&TokenKind::Not) {
            Ok(Expr::un(UnOp::Not, self.unary()?))
        } else {
            self.atom()
        }
    }

    fn atom(&mut self) -> Result<Expr, LangError> {
        match self.bump() {
            TokenKind::Lit(v) => Ok(Expr::Lit(v)),
            TokenKind::Ident(name) => {
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat(&TokenKind::RParen) {
                                break;
                            }
                            self.expect(TokenKind::Comma, "`,` or `)`")?;
                        }
                    }
                    // Normalize operator-backed builtins so that printing
                    // and parsing round-trip structurally.
                    match (name.as_str(), args.len()) {
                        ("present", 1) => Ok(Expr::Present(Box::new(args.remove(0)))),
                        ("present", n) => Err(LangError::Arity {
                            function: name,
                            expected: 1,
                            found: n,
                        }),
                        ("abs", 1) => Ok(Expr::un(UnOp::Abs, args.remove(0))),
                        ("min", 2) => {
                            let b = args.remove(1);
                            Ok(Expr::bin(BinOp::Min, args.remove(0), b))
                        }
                        ("max", 2) => {
                            let b = args.remove(1);
                            Ok(Expr::bin(BinOp::Max, args.remove(0), b))
                        }
                        _ => Ok(Expr::Call(name, args)),
                    }
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            other => Err(LangError::Parse {
                at: self.tokens[self.pos.saturating_sub(1)].at,
                found: other.describe(),
                expected: "an expression".to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> String {
        parse(src).unwrap().to_string()
    }

    #[test]
    fn paper_add_block() {
        // Fig. 5: block ADD defined by ch1+ch2+ch3.
        assert_eq!(roundtrip("ch1+ch2+ch3"), "((ch1 + ch2) + ch3)");
    }

    #[test]
    fn precedence_mul_over_add() {
        assert_eq!(roundtrip("a + b * c"), "(a + (b * c))");
        assert_eq!(roundtrip("(a + b) * c"), "((a + b) * c)");
    }

    #[test]
    fn precedence_cmp_and_logic() {
        assert_eq!(
            roundtrip("a < b and c or not d"),
            "(((a < b) and c) or (not d))"
        );
    }

    #[test]
    fn if_then_else_nested() {
        assert_eq!(
            roundtrip("if a then if b then 1 else 2 else 3"),
            "(if a then (if b then 1 else 2) else 3)"
        );
    }

    #[test]
    fn calls_and_present() {
        assert_eq!(roundtrip("min(a, max(b, 1))"), "min(a, max(b, 1))");
        assert_eq!(roundtrip("present(x)"), "present(x)");
        assert!(matches!(
            parse("present(x, y)"),
            Err(LangError::Arity { .. })
        ));
        assert_eq!(roundtrip("f()"), "f()");
    }

    #[test]
    fn orelse_operator() {
        assert_eq!(roundtrip("x ? 0"), "(x ? 0)");
        assert_eq!(roundtrip("x ? y ? 0"), "((x ? y) ? 0)");
    }

    #[test]
    fn unary_chains() {
        assert_eq!(roundtrip("--a"), "(-(-a))");
        assert_eq!(roundtrip("not not b"), "(not (not b))");
    }

    #[test]
    fn symbol_comparison() {
        assert_eq!(roundtrip("mode == #Idle"), "(mode == #Idle)");
    }

    #[test]
    fn error_on_trailing_tokens() {
        assert!(matches!(parse("a b"), Err(LangError::Parse { .. })));
    }

    #[test]
    fn error_on_missing_paren() {
        assert!(matches!(parse("(a + b"), Err(LangError::Parse { .. })));
        assert!(matches!(parse("min(a,"), Err(LangError::Parse { .. })));
    }

    #[test]
    fn error_on_empty_input() {
        assert!(parse("").is_err());
    }
}
