//! Property-based tests of the base language: print/parse round trips,
//! evaluation determinism, and type-soundness of the checker.

use automode_kernel::ops::{BinOp, UnOp};
use automode_kernel::{Message, Value};
use automode_lang::{check, parse, Env, Expr, LangError, Type, TypeEnv};
use proptest::prelude::*;

/// Random well-typed-ish expressions over three float inputs and one bool.
fn arb_expr() -> impl Strategy<Value = Expr> {
    // Literals are non-negative: `-1` prints back as the unary-minus
    // expression `(-1)`, so negative literals would not round-trip
    // structurally (they are semantically identical).
    let leaf = prop_oneof![
        (0i64..50).prop_map(Expr::lit),
        (0.0f64..5.0).prop_map(|x| Expr::lit(Value::Float((x * 4.0).round() / 4.0))),
        Just(Expr::ident("x")),
        Just(Expr::ident("y")),
        Just(Expr::ident("z")),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Add, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Sub, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Mul, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Min, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Max, a, b)),
            inner.clone().prop_map(|a| Expr::un(UnOp::Neg, a)),
            inner.clone().prop_map(|a| Expr::un(UnOp::Abs, a)),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| {
                Expr::ite(Expr::bin(BinOp::Lt, c, Expr::lit(0i64)), t, e)
            }),
            inner.clone().prop_map(|a| Expr::Present(Box::new(a))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::OrElse(Box::new(a), Box::new(b))),
        ]
    })
}

fn env(x: f64, y: f64, z: Option<f64>) -> Env {
    let mut e = Env::new();
    e.bind_value("x", Value::Float(x));
    e.bind_value("y", Value::Float(y));
    e.bind(
        "z",
        z.map(|v| Message::present(Value::Float(v)))
            .unwrap_or(Message::Absent),
    );
    e
}

fn tenv() -> TypeEnv {
    let mut t = TypeEnv::new();
    t.bind("x", Type::Float)
        .bind("y", Type::Float)
        .bind("z", Type::Float);
    t
}

proptest! {
    /// Display then parse reproduces the AST exactly (the printer is fully
    /// parenthesized).
    #[test]
    fn print_parse_roundtrip(e in arb_expr()) {
        let printed = e.to_string();
        let reparsed = parse(&printed).unwrap_or_else(|err| panic!("reparse `{printed}`: {err}"));
        prop_assert_eq!(reparsed, e);
    }

    /// Evaluation is deterministic.
    #[test]
    fn eval_deterministic(e in arb_expr(), x in -5.0f64..5.0, y in -5.0f64..5.0) {
        let env = env(x, y, Some(1.0));
        let a = e.eval(&env);
        let b = e.eval(&env);
        prop_assert_eq!(a, b);
    }

    /// Type soundness: if the checker accepts an expression over an
    /// all-present, type-conforming environment, evaluation never raises a
    /// *type* error (arithmetic overflow / division are value errors and
    /// cannot occur in this operator subset).
    #[test]
    fn checked_expressions_do_not_go_wrong(e in arb_expr(), x in -5.0f64..5.0) {
        if check(&e, &tenv()).is_ok() {
            match e.eval(&env(x, -x, Some(x))) {
                Ok(_) => {}
                Err(LangError::Type(msg)) => prop_assert!(false, "type error at runtime: {msg}"),
                Err(LangError::Kernel(automode_kernel::KernelError::TypeMismatch { .. })) => {
                    prop_assert!(false, "kernel type mismatch at runtime")
                }
                Err(_) => {}
            }
        }
    }

    /// Absence is contained: for a *well-typed* expression, an absent
    /// input can change the result (or make it absent) but never produces
    /// a type error — absence routes through `present`/`?`/strictness, all
    /// of which stay inside the checked types.
    #[test]
    fn absence_never_invents_errors(e in arb_expr(), x in -5.0f64..5.0) {
        if check(&e, &tenv()).is_ok() {
            match e.eval(&env(x, x, None)) {
                Ok(_) => {}
                Err(LangError::Type(msg)) => {
                    prop_assert!(false, "type error under absence: {msg}")
                }
                Err(LangError::Kernel(automode_kernel::KernelError::TypeMismatch { .. })) => {
                    prop_assert!(false, "kernel type mismatch under absence")
                }
                Err(_) => {}
            }
        }
    }

    /// `free_idents` is exactly the set of identifiers whose absence from
    /// the environment makes evaluation fail with `Unbound`.
    #[test]
    fn free_idents_matches_unbound(e in arb_expr()) {
        let free = e.free_idents();
        // Build an env binding everything but one free ident; expect
        // Unbound (unless the expression short-circuits around it, which
        // `if`/`?` can do — so only check the full-env direction).
        let mut full = Env::new();
        for id in &free {
            full.bind_value(id.clone(), Value::Float(1.0));
        }
        if let Err(LangError::Unbound(name)) = e.eval(&full) {
            prop_assert!(false, "unbound `{name}` despite full env");
        }
    }

    /// Structural metrics are consistent: size bounds if-count.
    #[test]
    fn metrics_consistency(e in arb_expr()) {
        prop_assert!(e.if_count() <= e.size());
        prop_assert!(e.if_depth() <= e.if_count());
        prop_assert!(e.size() >= 1);
    }

    /// Substituting identity leaves the expression unchanged.
    #[test]
    fn identity_substitution(e in arb_expr()) {
        let s = e.substitute(&|_| None);
        prop_assert_eq!(s, e);
    }
}
