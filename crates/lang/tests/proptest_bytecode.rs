//! Differential property tests: the expression bytecode VM
//! ([`Program`]) against the AST interpreter ([`Expr::eval_in`]).
//!
//! The VM's contract is **full `Result` equality** with the AST walk on
//! every input row — values, presence, laziness of `if`/`?` branches, the
//! early exit of builtin calls on absent arguments, and exact error
//! payloads (division by zero, type errors, unbound identifiers, bad
//! arities, unknown functions). The generators deliberately produce all of
//! those: mixed int/bool operands, an identifier that is never bound, bad
//! `clamp` arities and an unknown function.

use automode_kernel::ops::{BinOp, UnOp};
use automode_kernel::{Message, Value};
use automode_lang::{Expr, Program, Scratch, SliceScope};
use proptest::prelude::*;

/// The fixed input-port order programs are compiled against. `q` is
/// deliberately missing: referencing it exercises `Unbound` errors and
/// their laziness (an unbound ident in an untaken branch must not fire).
fn port_names() -> Vec<String> {
    ["a", "b", "c", "p"].map(String::from).to_vec()
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        4 => (0i64..20).prop_map(Expr::lit),
        1 => Just(Expr::lit(Value::Bool(true))),
        1 => Just(Expr::lit(Value::Bool(false))),
        4 => Just(Expr::ident("a")),
        4 => Just(Expr::ident("b")),
        3 => Just(Expr::ident("c")),
        2 => Just(Expr::ident("p")),
        1 => Just(Expr::ident("q")),
    ];
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::bin(BinOp::Add, x, y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::bin(BinOp::Sub, x, y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::bin(BinOp::Mul, x, y)),
            // Division and modulo: zero denominators produce runtime errors
            // whose payloads must match exactly.
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::bin(BinOp::Div, x, y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::bin(BinOp::Min, x, y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::bin(BinOp::Max, x, y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::bin(BinOp::Lt, x, y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::bin(BinOp::Eq, x, y)),
            inner.clone().prop_map(|x| Expr::un(UnOp::Neg, x)),
            inner.clone().prop_map(|x| Expr::un(UnOp::Abs, x)),
            inner.clone().prop_map(|x| Expr::un(UnOp::Not, x)),
            // `if` with an arbitrary condition: exercises type errors on
            // non-Boolean conditions and lazy branch evaluation.
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| Expr::ite(c, t, e)),
            inner.clone().prop_map(|x| Expr::Present(Box::new(x))),
            (inner.clone(), inner.clone())
                .prop_map(|(x, y)| Expr::OrElse(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(x, y, z)| Expr::Call("clamp".to_string(), vec![x, y, z])),
            // Wrong arity and unknown function: error paths that must fire
            // only after every argument evaluated present.
            (inner.clone(), inner.clone())
                .prop_map(|(x, y)| Expr::Call("clamp".to_string(), vec![x, y])),
            inner.prop_map(|x| Expr::Call("mystery".to_string(), vec![x])),
        ]
    })
}

/// A present int message, or absent (1-in-4).
fn arb_int_msg() -> BoxedStrategy<Message> {
    prop_oneof![
        3 => (-10i64..10).prop_map(Message::present),
        1 => Just(Message::Absent),
    ]
}

/// One input row over ports `a, b, c` (ints) and `p` (bool), each
/// independently absent.
fn arb_row() -> impl Strategy<Value = Vec<Message>> {
    let p = prop_oneof![
        3 => any::<bool>().prop_map(Message::present),
        1 => Just(Message::Absent),
    ];
    (arb_int_msg(), arb_int_msg(), arb_int_msg(), p).prop_map(|(a, b, c, p)| vec![a, b, c, p])
}

proptest! {
    /// The VM reproduces the AST interpreter's full `Result` on arbitrary
    /// expressions and rows; when the strict fast-path summary applies and
    /// every strict port is absent, the result is absent.
    #[test]
    fn vm_matches_ast_interpreter(e in arb_expr(), row in arb_row()) {
        let names = port_names();
        let program = Program::compile(&e, &names);
        let mut scratch = Scratch::new();
        let vm = program.eval(&row, &mut scratch);
        let ast = e.eval_in(&SliceScope::new(&names, &row));
        prop_assert_eq!(&vm, &ast);
        if let Some(ports) = program.strict_ports() {
            // Empty `ports` means a constant program — always present, the
            // all-absent contract is only claimed for non-empty port sets
            // (`ExprBlock::clock_behavior` maps empty to `Opaque`).
            if !ports.is_empty() && ports.iter().all(|&p| row[p as usize].is_absent()) {
                prop_assert_eq!(&vm, &Ok(Message::Absent));
            }
        }
    }

    /// Register reuse across evaluations never leaks state: interleaving
    /// rows through one `Scratch` gives the same results as fresh buffers.
    #[test]
    fn scratch_reuse_is_deterministic(
        e in arb_expr(),
        r1 in arb_row(),
        r2 in arb_row(),
    ) {
        let names = port_names();
        let program = Program::compile(&e, &names);
        let mut shared = Scratch::new();
        let first = program.eval(&r1, &mut shared);
        let second = program.eval(&r2, &mut shared);
        let again = program.eval(&r1, &mut shared);
        prop_assert_eq!(&first, &again);
        prop_assert_eq!(&first, &program.eval(&r1, &mut Scratch::new()));
        prop_assert_eq!(&second, &program.eval(&r2, &mut Scratch::new()));
    }
}
