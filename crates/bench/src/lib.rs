//! # automode-bench
//!
//! Shared workload generators for the benchmark harness. Every figure of
//! the paper has a bench target under `benches/` (see `EXPERIMENTS.md` for
//! the experiment index); this library provides the parameterized model
//! generators they sweep over.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use automode_core::model::{
    Behavior, Component, ComponentId, Composite, CompositeKind, Endpoint, Model, Primitive,
};
use automode_core::types::DataType;
use automode_core::Mtd;
use automode_kernel::Value;
use automode_lang::{parse, Expr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Adds to `model` a composite DFD component named `name` with boundary
/// ports `in`/`out`: `n` instances of the averaging component `block`
/// wired with forward edges only (guaranteed causal).
fn add_random_dfd(
    model: &mut Model,
    name: impl Into<String>,
    block: ComponentId,
    n: usize,
    rng: &mut StdRng,
) -> ComponentId {
    assert!(n > 0);
    let mut net = Composite::new(CompositeKind::Dfd);
    for i in 0..n {
        net.instantiate(format!("n{i}"), block);
    }
    // Forward wiring: inputs come from earlier blocks (or the boundary).
    for i in 0..n {
        for port in ["a", "b"] {
            if i == 0 || rng.gen_bool(0.15) {
                net.connect(
                    Endpoint::boundary("in"),
                    Endpoint::child(format!("n{i}"), port),
                );
            } else {
                let j = rng.gen_range(0..i);
                net.connect(
                    Endpoint::child(format!("n{j}"), "y"),
                    Endpoint::child(format!("n{i}"), port),
                );
            }
        }
    }
    net.connect(
        Endpoint::child(format!("n{}", n - 1), "y"),
        Endpoint::boundary("out"),
    );
    model
        .add_component(
            Component::new(name)
                .input("in", DataType::Float)
                .output("out", DataType::Float)
                .with_behavior(Behavior::Composite(net)),
        )
        .unwrap()
}

/// The shared averaging leaf block the random DFD generators instantiate.
fn averaging_block(model: &mut Model) -> ComponentId {
    model
        .add_component(
            Component::new("B")
                .input("a", DataType::Float)
                .input("b", DataType::Float)
                .output("y", DataType::Float)
                .with_behavior(Behavior::expr("y", parse("a * 0.5 + b * 0.5").unwrap())),
        )
        .unwrap()
}

/// Builds a random DFD of `n` expression blocks with forward edges only
/// (guaranteed causal), rooted in a single boundary input/output.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_causal_dfd(n: usize, seed: u64) -> (Model, ComponentId) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = Model::new("random_dfd");
    let block = averaging_block(&mut model);
    let top = add_random_dfd(&mut model, "Top", block, n, &mut rng);
    model.set_root(top);
    (model, top)
}

/// Builds a mode-rich controller: an MTD with `modes` operating modes, each
/// mode's behaviour a random causal DFD of `blocks_per_mode` expression
/// blocks. Mode `i` hands over to `i + 1` (ring) once the input exceeds a
/// mode-specific threshold, so a swept input genuinely migrates through the
/// mode ring.
///
/// Compiling this model elaborates *every* mode's network while a run steps
/// only the active one — the calibration-sweep shape where compiled-plan
/// reuse pays off.
///
/// # Panics
///
/// Panics if `modes < 2` or `blocks_per_mode == 0`.
pub fn moded_controller(modes: usize, blocks_per_mode: usize, seed: u64) -> (Model, ComponentId) {
    assert!(modes >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = Model::new("moded_controller");
    let block = averaging_block(&mut model);
    let mut mtd = Mtd::new();
    for i in 0..modes {
        let behavior = add_random_dfd(
            &mut model,
            format!("Mode{i}"),
            block,
            blocks_per_mode,
            &mut rng,
        );
        mtd.add_mode(format!("M{i}"), behavior);
    }
    for i in 0..modes {
        // Thresholds climb steeply with the mode index, so a drive cycle
        // walks the ring only as far as its peak value reaches — every mode
        // is compiled, but each scenario executes just its own operating
        // region.
        let threshold = 2.0 + i as f64 * 2.0;
        mtd.add_transition(
            i,
            (i + 1) % modes,
            Expr::bin(
                automode_kernel::ops::BinOp::Gt,
                Expr::ident("in"),
                Expr::lit(Value::Float(threshold)),
            ),
            0,
        );
    }
    let owner = model
        .add_component(
            Component::new("Controller")
                .input("in", DataType::Float)
                .output("out", DataType::Float)
                .with_behavior(Behavior::Mtd(mtd)),
        )
        .unwrap();
    model.set_root(owner);
    (model, owner)
}

/// Builds a kernel-level network of `n` stateless float operator blocks —
/// `Lift2` arithmetic/min/max and three-input `AddN` fan-ins wired forward
/// from a single boundary input. Every node exposes a lane kernel, and on
/// all-float stimuli the columns stay uniformly `f64`, so this is the
/// shape where batched execution collapses into the kernel's tight
/// bit-column loops.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn stateless_ops_network(n: usize, seed: u64) -> automode_kernel::Network {
    use automode_kernel::network::PortRef;
    use automode_kernel::ops::{AddN, BinOp, Lift2};
    use automode_kernel::Network;

    assert!(n > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Network::new("stateless_ops");
    let input = net.add_input("in");
    let mut outs: Vec<PortRef> = Vec::with_capacity(n);
    for i in 0..n {
        let pick = rng.gen_range(0..6u32);
        let (handle, arity) = match pick {
            0 => (net.add_block(Lift2::new(BinOp::Add)), 2),
            1 => (net.add_block(Lift2::new(BinOp::Sub)), 2),
            2 => (net.add_block(Lift2::new(BinOp::Mul)), 2),
            3 => (net.add_block(Lift2::new(BinOp::Min)), 2),
            4 => (net.add_block(Lift2::new(BinOp::Max)), 2),
            _ => (net.add_block(AddN::new(3)), 3),
        };
        // Forward wiring: operands come from earlier blocks or the input.
        for p in 0..arity {
            if i == 0 || rng.gen_bool(0.2) {
                net.connect_input(input, handle.input(p)).unwrap();
            } else {
                let j = rng.gen_range(0..i);
                net.connect(outs[j], handle.input(p)).unwrap();
            }
        }
        outs.push(handle.output(0));
    }
    net.expose_output("out", outs[n - 1]).unwrap();
    net
}

/// Like [`random_causal_dfd`] but closes one instantaneous back edge,
/// producing a causality violation.
pub fn random_looped_dfd(n: usize, seed: u64) -> (Model, ComponentId) {
    let n = n.max(2);
    let (mut model, top) = random_causal_dfd(n, seed);
    if let Behavior::Composite(net) = &mut model.component_mut(top).behavior {
        let last = format!("n{}", n - 1);
        // Guarantee a forward path n0 -> n_{n-1} ...
        if let Some(ch) = net
            .channels
            .iter_mut()
            .find(|c| c.to.instance.as_deref() == Some(last.as_str()) && c.to.port == "b")
        {
            ch.from = Endpoint::child("n0", "y");
        }
        // ... then close the instantaneous back edge n_{n-1} -> n0.
        if let Some(ch) = net
            .channels
            .iter_mut()
            .find(|c| c.to.instance.as_deref() == Some("n0") && c.to.port == "a")
        {
            ch.from = Endpoint::child(last, "y");
        }
    }
    (model, top)
}

/// Builds an SSD chain of `n` pass-through components (each hop adds one
/// message delay).
pub fn ssd_chain(n: usize) -> (Model, ComponentId) {
    let mut model = Model::new("ssd_chain");
    let stage = model
        .add_component(
            Component::new("Stage")
                .input("x", DataType::Float)
                .output("y", DataType::Float)
                .with_behavior(Behavior::expr("y", parse("x + 1.0").unwrap())),
        )
        .unwrap();
    let mut net = Composite::new(CompositeKind::Ssd);
    for i in 0..n {
        net.instantiate(format!("s{i}"), stage);
    }
    net.connect(Endpoint::boundary("in"), Endpoint::child("s0", "x"));
    for i in 1..n {
        net.connect(
            Endpoint::child(format!("s{}", i - 1), "y"),
            Endpoint::child(format!("s{i}"), "x"),
        );
    }
    net.connect(
        Endpoint::child(format!("s{}", n - 1), "y"),
        Endpoint::boundary("out"),
    );
    let top = model
        .add_component(
            Component::new("Chain")
                .input("in", DataType::Float)
                .output("out", DataType::Float)
                .with_behavior(Behavior::Composite(net)),
        )
        .unwrap();
    model.set_root(top);
    (model, top)
}

/// Builds an MTD with `modes` ring-connected modes (mode `i` hands over to
/// `i+1` when the input crosses a mode-specific threshold). All mode
/// behaviours are stateless expressions, so the MTD qualifies for the
/// dataflow transformation.
pub fn ring_mtd(modes: usize, seed: u64) -> (Model, ComponentId) {
    assert!(modes >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = Model::new("ring_mtd");
    let mut mtd = Mtd::new();
    for i in 0..modes {
        let gain = rng.gen_range(0.5..2.0);
        let behavior = model
            .add_component(
                Component::new(format!("Mode{i}Behavior"))
                    .input("x", DataType::Float)
                    .output("y", DataType::Float)
                    .with_behavior(Behavior::expr(
                        "y",
                        Expr::bin(
                            automode_kernel::ops::BinOp::Add,
                            Expr::bin(
                                automode_kernel::ops::BinOp::Mul,
                                Expr::ident("x"),
                                Expr::lit(Value::Float(gain)),
                            ),
                            Expr::lit(Value::Float(i as f64)),
                        ),
                    )),
            )
            .unwrap();
        mtd.add_mode(format!("M{i}"), behavior);
    }
    for i in 0..modes {
        let threshold = (i % 10) as f64 / 10.0;
        mtd.add_transition(
            i,
            (i + 1) % modes,
            Expr::bin(
                automode_kernel::ops::BinOp::Gt,
                Expr::ident("x"),
                Expr::lit(Value::Float(threshold)),
            ),
            0,
        );
    }
    let owner = model
        .add_component(
            Component::new("Ring")
                .input("x", DataType::Float)
                .output("y", DataType::Float)
                .with_behavior(Behavior::Mtd(mtd)),
        )
        .unwrap();
    model.set_root(owner);
    (model, owner)
}

/// A DFD accumulator used as a stateful reference workload.
pub fn accumulator() -> (Model, ComponentId) {
    let mut model = Model::new("acc");
    let add = model
        .add_component(
            Component::new("Add")
                .input("a", DataType::Float)
                .input("b", DataType::Float)
                .output("s", DataType::Float)
                .with_behavior(Behavior::expr("s", parse("a + b").unwrap())),
        )
        .unwrap();
    let dly = model
        .add_component(
            Component::new("Dly")
                .input("x", DataType::Float)
                .output("y", DataType::Float)
                .with_behavior(Behavior::Primitive(Primitive::Delay {
                    init: Some(Value::Float(0.0)),
                })),
        )
        .unwrap();
    let mut net = Composite::new(CompositeKind::Dfd);
    net.instantiate("add", add);
    net.instantiate("dly", dly);
    net.connect(Endpoint::boundary("u"), Endpoint::child("add", "a"));
    net.connect(Endpoint::child("dly", "y"), Endpoint::child("add", "b"));
    net.connect(Endpoint::child("add", "s"), Endpoint::child("dly", "x"));
    net.connect(Endpoint::child("add", "s"), Endpoint::boundary("acc"));
    let top = model
        .add_component(
            Component::new("Accumulator")
                .input("u", DataType::Float)
                .output("acc", DataType::Float)
                .with_behavior(Behavior::Composite(net)),
        )
        .unwrap();
    model.set_root(top);
    (model, top)
}

#[cfg(test)]
mod tests {
    use super::*;
    use automode_core::causality_struct::check_component;

    #[test]
    fn random_causal_dfd_passes_causality() {
        for n in [1, 5, 50] {
            let (m, top) = random_causal_dfd(n, 1);
            m.validate_structure().unwrap();
            check_component(&m, top).unwrap();
        }
    }

    #[test]
    fn random_looped_dfd_fails_causality() {
        let (m, top) = random_looped_dfd(10, 2);
        assert!(check_component(&m, top).is_err());
    }

    #[test]
    fn ssd_chain_has_n_delays() {
        use automode_kernel::Value;
        let n = 5;
        let (m, top) = ssd_chain(n);
        let input = automode_sim::stimulus::constant(Value::Float(0.0), n + 2);
        let run = automode_sim::simulate_component(&m, top, &[("in", input)], n + 2).unwrap();
        let out = run.trace.signal("out").unwrap();
        // n+1 channels (in + n-1 internal + out): first value at tick n+1.
        for t in 0..=n {
            assert!(out[t].is_absent(), "tick {t} should still be absent");
        }
        assert!(out[n + 1].is_present());
    }

    #[test]
    fn ring_mtd_is_transformable() {
        let (mut m, owner) = ring_mtd(4, 3);
        automode_core::levels::validate_fda(&m).unwrap();
        automode_transform::mode_dataflow::mtd_to_dataflow(&mut m, owner).unwrap();
    }

    #[test]
    fn accumulator_accumulates() {
        use automode_kernel::Value;
        let (m, top) = accumulator();
        let input = automode_sim::stimulus::constant(Value::Float(2.0), 5);
        let run = automode_sim::simulate_component(&m, top, &[("u", input)], 5).unwrap();
        let vals: Vec<f64> = run
            .trace
            .signal("acc")
            .unwrap()
            .present_values()
            .iter()
            .map(|v| v.as_float().unwrap())
            .collect();
        assert_eq!(vals, vec![2.0, 4.0, 6.0, 8.0, 10.0]);
    }
}
