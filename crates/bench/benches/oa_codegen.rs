//! Experiment E12 (Sec. 3.4): OA generation — ASCET projects per ECU plus
//! bus mapping.
//!
//! Shape claims: one project is generated per ECU that received clusters;
//! inter-ECU signals land in the communication matrix and the derived CAN
//! bus stays feasible; generation cost scales with the cluster count.

use automode_core::ccd::{Ccd, CcdChannel, Cluster, FixedPriorityDataIntegrityPolicy};
use automode_core::model::{Behavior, Component, Model};
use automode_core::types::DataType;
use automode_engine::ccd::{build_engine_ccd, engine_cluster_wcets};
use automode_lang::parse;
use automode_platform::can::BusSim;
use automode_transform::deploy::{deploy, DeploymentSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn shape_report() {
    let mut model = Model::new("fig7");
    let (ccd, _) = build_engine_ccd(&mut model, 10, 100).unwrap();
    let mut spec = DeploymentSpec::new(["engine_ecu", "diag_ecu"])
        .pin("fuel_control", "engine_ecu")
        .pin("ignition_control", "engine_ecu")
        .pin("diagnosis_monitoring", "diag_ecu");
    for (cl, w) in engine_cluster_wcets() {
        spec = spec.wcet(cl, w);
    }
    let d = deploy(
        &model,
        &ccd,
        &FixedPriorityDataIntegrityPolicy::new(),
        &spec,
    )
    .unwrap();
    eprintln!("\n[E12 report] OA generation for the split engine deployment:");
    eprintln!(
        "  projects: {}, matrix signals: {}, frames: {}",
        d.projects.len(),
        d.comm_matrix.signals.len(),
        d.comm_matrix.frames.len()
    );
    for p in &d.projects {
        eprintln!(
            "  {}: {} files, {} bytes",
            p.ecu,
            p.files.len(),
            p.size_bytes()
        );
    }
    let bus = &d.ta.buses[0];
    let stats = BusSim::new(bus).run(1_000_000).unwrap();
    let max_latency = stats.values().map(|s| s.max_latency_us).max().unwrap_or(0);
    eprintln!(
        "  bus load: {:.4}, worst frame latency: {} us",
        bus.load(),
        max_latency
    );
    assert!(bus.load() < 1.0);
}

/// A CCD of `n` chained expression clusters (all same rate) spread over two
/// ECUs alternately — every channel crosses the bus.
fn chained_ccd(model: &mut Model, n: usize) -> (Ccd, DeploymentSpec) {
    let mut ccd = Ccd::new();
    let mut spec = DeploymentSpec::new(["e0", "e1"]);
    for i in 0..n {
        let comp = model
            .add_component(
                Component::new(format!("Chain{i}"))
                    .input("x", DataType::Float)
                    .output("y", DataType::Float)
                    .with_behavior(Behavior::expr("y", parse("x + 1.0").unwrap())),
            )
            .unwrap();
        ccd = ccd.cluster(Cluster::new(format!("c{i}"), comp, 10));
        spec = spec.pin(format!("c{i}"), if i % 2 == 0 { "e0" } else { "e1" });
    }
    for i in 0..n - 1 {
        ccd = ccd.channel(CcdChannel::direct(
            format!("c{i}"),
            "y",
            format!("c{}", i + 1),
            "x",
        ));
    }
    (ccd, spec)
}

fn bench(c: &mut Criterion) {
    shape_report();
    let mut group = c.benchmark_group("oa_codegen");
    for &n in &[4usize, 16, 64] {
        let mut model = Model::new("chain");
        let (ccd, spec) = chained_ccd(&mut model, n);
        group.bench_with_input(BenchmarkId::new("deploy_clusters", n), &n, |b, _| {
            b.iter(|| {
                deploy(
                    &model,
                    &ccd,
                    &FixedPriorityDataIntegrityPolicy::new(),
                    &spec,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench
}
criterion_main!(benches);
