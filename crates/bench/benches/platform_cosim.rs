//! Platform co-simulation bench (experiment E20).
//!
//! Subject: the Fig. 7 engine deployment on two ECUs, co-simulated with
//! OSEK fixed-priority scheduling and CAN arbitration, differential-checked
//! against the LA reference semantics on every run.
//!
//! Three measurements:
//!
//! * `throughput` — end-to-end differential co-simulation rate (co-sim +
//!   LA reference + trace diff + contract monitor), base ticks/second.
//! * `e20` — the envelope-violation vs. bus-load curve: a babbling-idiot
//!   interference frame (8 bytes, CAN id 0x08 — wins every arbitration)
//!   sweeps its period from sparse to beyond saturation (an 8-byte frame
//!   occupies ~266 µs at 500 kbit/s, so periods below that push offered
//!   load past 1.0 and starve the real traffic). Per point: observed bus
//!   load, cross-ECU publications, envelope misses, worst slack.
//! * `lost_frame` — the named dropout scenario; robustness detection
//!   latency must be finite.
//!
//! Writes `BENCH_platform.json` at the repository root.
//! `AUTOMODE_BENCH_QUICK=1` shrinks the workload for CI smoke runs;
//! `AUTOMODE_BENCH_ENFORCE=1` exits nonzero when a gate fails. The gates
//! are semantic, not just throughput floors: fault-free must be clean,
//! saturation must violate, and the dropout must be detected.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use automode_core::ccd::FixedPriorityDataIntegrityPolicy;
use automode_engine::{engine_ccd_stimulus, engine_cosim_parts, engine_platform_scenarios};
use automode_platform::cosim::{CosimConfig, PlatformFault};
use automode_transform::cosim::{CosimHarness, CosimReport};
use automode_transform::deploy;

fn run_with(faults: Vec<PlatformFault>, ticks: u64) -> CosimReport {
    let (m, ccd, spec) = engine_cosim_parts().unwrap();
    let d = deploy(&m, &ccd, &FixedPriorityDataIntegrityPolicy::new(), &spec).unwrap();
    let config = CosimConfig {
        faults,
        ..CosimConfig::default()
    };
    let harness = CosimHarness::new(&m, &ccd, &d, &spec, config).unwrap();
    harness.run(&engine_ccd_stimulus(ticks), ticks).unwrap()
}

struct E20Point {
    babble_period_us: u64,
    bus_load: f64,
    pubs: u64,
    misses: u64,
    worst_slack_us: i64,
}

fn e20_point(babble_period_us: u64, ticks: u64) -> E20Point {
    let faults = if babble_period_us == 0 {
        Vec::new()
    } else {
        vec![PlatformFault::BusLoad {
            id: 0x08,
            dlc: 8,
            period_us: babble_period_us,
            offset_us: 50,
        }]
    };
    let report = run_with(faults, ticks);
    let o = &report.outcome;
    E20Point {
        babble_period_us,
        bus_load: o.bus_load(),
        pubs: o.channels.iter().map(|c| c.envelope.ticks).sum(),
        misses: o.envelope_misses(),
        worst_slack_us: o
            .channels
            .iter()
            .map(|c| c.envelope.worst_slack_us)
            .min()
            .unwrap_or(0),
    }
}

struct Gate {
    name: &'static str,
    ok: bool,
    detail: String,
}

fn main() {
    let quick = std::env::var("AUTOMODE_BENCH_QUICK").is_ok_and(|v| v == "1");
    let sweep_ticks: u64 = if quick { 240 } else { 1_000 };
    let tp_ticks: u64 = if quick { 2_000 } else { 10_000 };

    // Throughput of the full differential pipeline on one prepared harness.
    let (m, ccd, spec) = engine_cosim_parts().unwrap();
    let d = deploy(&m, &ccd, &FixedPriorityDataIntegrityPolicy::new(), &spec).unwrap();
    let harness = CosimHarness::new(&m, &ccd, &d, &spec, CosimConfig::default()).unwrap();
    let stim = engine_ccd_stimulus(tp_ticks);
    black_box(harness.run(&stim, tp_ticks).unwrap());
    let mut ticks_per_s = 0.0f64;
    for _ in 0..3 {
        let t0 = Instant::now();
        black_box(harness.run(&stim, tp_ticks).unwrap());
        ticks_per_s = ticks_per_s.max(tp_ticks as f64 / t0.elapsed().as_secs_f64());
    }
    println!("throughput: {ticks_per_s:>10.0} differential ticks/s ({tp_ticks} ticks/run)");

    // E20: babble period 0 = no interference; below ~266 µs the offered
    // load exceeds 1.0 and the id-0x08 babbler starves the real frames.
    let periods: &[u64] = &[0, 2_000, 1_000, 600, 400, 300, 260, 220, 200];
    let mut curve = Vec::new();
    println!("e20 (babble period -> bus load -> envelope misses):");
    for &p in periods {
        let pt = e20_point(p, sweep_ticks);
        println!(
            "  period {:>5} us   load {:>5.1}%   pubs {:>4}   misses {:>4}   worst slack {:>8} us",
            pt.babble_period_us,
            pt.bus_load * 100.0,
            pt.pubs,
            pt.misses,
            pt.worst_slack_us
        );
        curve.push(pt);
    }

    // Lost-frame scenario: structured detection.
    let lost = engine_platform_scenarios()
        .into_iter()
        .find(|s| s.name == "lost-frame")
        .unwrap();
    let lost_report = run_with(lost.faults, sweep_ticks);
    let detection = lost_report.metrics.detection_latency();
    println!(
        "lost_frame: {} violations, detection latency {detection:?} ticks",
        lost_report.robustness.violations.len()
    );

    let mut curve_json = String::new();
    for (i, pt) in curve.iter().enumerate() {
        let _ = write!(
            curve_json,
            "{}      {{ \"babble_period_us\": {}, \"bus_load\": {:.3}, \"pubs\": {}, \"misses\": {}, \"worst_slack_us\": {} }}",
            if i == 0 { "" } else { ",\n" },
            pt.babble_period_us,
            pt.bus_load,
            pt.pubs,
            pt.misses,
            pt.worst_slack_us
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"platform_cosim\",\n  \"scenarios\": {{\n    \"throughput\": {{ \"ticks\": {tp_ticks}, \"differential_ticks_per_s\": {ticks_per_s:.0} }},\n    \"e20\": {{ \"ticks\": {sweep_ticks}, \"curve\": [\n{curve_json}\n    ] }},\n    \"lost_frame\": {{ \"ticks\": {sweep_ticks}, \"violations\": {}, \"detection_latency_ticks\": {} }}\n  }}\n}}\n",
        lost_report.robustness.violations.len(),
        detection.map_or("null".to_string(), |l| l.to_string()),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_platform.json");
    std::fs::write(path, &json).expect("write BENCH_platform.json");
    println!("wrote {path}");

    if std::env::var("AUTOMODE_BENCH_ENFORCE").is_ok_and(|v| v == "1") {
        let nominal = &curve[0];
        let saturated = curve.last().unwrap();
        let tp_floor = if quick { 5_000.0 } else { 10_000.0 };
        let gates = [
            Gate {
                name: "nominal_clean",
                ok: nominal.misses == 0 && nominal.worst_slack_us > 0,
                detail: format!(
                    "misses {} worst slack {} us",
                    nominal.misses, nominal.worst_slack_us
                ),
            },
            Gate {
                name: "saturation_violates",
                ok: saturated.misses > 0,
                detail: format!(
                    "misses {} at {:.1}% load",
                    saturated.misses,
                    saturated.bus_load * 100.0
                ),
            },
            Gate {
                name: "curve_monotone_ends",
                ok: saturated.misses >= nominal.misses
                    && saturated.worst_slack_us < nominal.worst_slack_us,
                detail: format!(
                    "misses {} -> {}, worst slack {} -> {} us",
                    nominal.misses,
                    saturated.misses,
                    nominal.worst_slack_us,
                    saturated.worst_slack_us
                ),
            },
            Gate {
                name: "lost_frame_detected",
                ok: detection.is_some(),
                detail: format!("detection latency {detection:?}"),
            },
            Gate {
                name: "throughput_floor",
                ok: ticks_per_s >= tp_floor,
                detail: format!("{ticks_per_s:.0} ticks/s (floor {tp_floor:.0})"),
            },
        ];
        let mut failed = false;
        for g in &gates {
            if g.ok {
                println!("gate: {} OK ({})", g.name, g.detail);
            } else {
                eprintln!("FAIL: {} ({})", g.name, g.detail);
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
