//! Steady-state tick throughput of the compiled executor vs the
//! interpretive reference, over three network shapes:
//!
//! * `deep` — a long instantaneous adder pipeline (levels of width 1),
//! * `wide` — many independent adders in one level,
//! * `multirate` — when/delay/current chains on mixed clocks.
//!
//! Besides the criterion-style console report, the run writes
//! `BENCH_executor.json` at the repository root with before/after
//! ticks-per-second and the speedup per shape (acceptance gate: >= 2x on
//! `deep`).

use std::time::Instant;

use automode_kernel::network::Network;
use automode_kernel::ops::{BinOp, Const, Current, Delay, EveryClockGen, Lift2, When};
use automode_kernel::{Message, Value};
use criterion::black_box;

/// A deep instantaneous pipeline: `x -> (+1) -> (+1) -> ...`, `depth`
/// stages, one probe at the end. Every level has width 1, so this measures
/// raw per-node executor overhead.
fn build_deep(depth: usize) -> Network {
    let mut net = Network::new("deep");
    let input = net.add_input("x");
    let one = net.add_block(Const::new(1i64));
    let mut prev = None;
    for _ in 0..depth {
        let add = net.add_block(Lift2::new(BinOp::Add));
        match prev {
            None => net.connect_input(input, add.input(0)).unwrap(),
            Some(p) => net.connect(p, add.input(0)).unwrap(),
        }
        net.connect(one.output(0), add.input(1)).unwrap();
        prev = Some(add.output(0));
    }
    net.expose_output("y", prev.unwrap()).unwrap();
    net
}

/// A wide single level: `width` independent `x + c_i` adders, four probes.
fn build_wide(width: usize) -> Network {
    let mut net = Network::new("wide");
    let input = net.add_input("x");
    for i in 0..width {
        let c = net.add_block(Const::new(i as i64));
        let add = net.add_block(Lift2::new(BinOp::Add));
        net.connect_input(input, add.input(0)).unwrap();
        net.connect(c.output(0), add.input(1)).unwrap();
        if i % (width / 4).max(1) == 0 {
            net.expose_output(format!("y{i}"), add.output(0)).unwrap();
        }
    }
    net
}

/// Mixed-rate chains: `segments` copies of
/// `x -> when(every k) -> current -> (+1) -> delay`, probing each delay.
fn build_multirate(segments: usize) -> Network {
    let mut net = Network::new("multirate");
    let input = net.add_input("x");
    for i in 0..segments {
        let clk = net.add_block(EveryClockGen::new(2 + (i % 5) as u32, (i % 3) as u32));
        let when = net.add_block(When::new());
        let cur = net.add_block(Current::new(0i64));
        let one = net.add_block(Const::new(1i64));
        let add = net.add_block(Lift2::new(BinOp::Add));
        let del = net.add_block(Delay::new(0i64));
        net.connect_input(input, when.input(0)).unwrap();
        net.connect(clk.output(0), when.input(1)).unwrap();
        net.connect(when.output(0), cur.input(0)).unwrap();
        net.connect(cur.output(0), add.input(0)).unwrap();
        net.connect(one.output(0), add.input(1)).unwrap();
        net.connect(add.output(0), del.input(0)).unwrap();
        net.expose_output(format!("d{i}"), del.output(0)).unwrap();
    }
    net
}

/// Steady-state ticks/second of the compiled executor (prepared once,
/// stepped `ticks` times on the reused fast path).
fn measure_compiled(net: Network, ticks: usize) -> f64 {
    let mut ready = net.prepare().unwrap();
    let row = [Message::present(Value::Int(1))];
    // Warm up allocations and caches.
    for _ in 0..ticks / 10 {
        black_box(ready.step_tick_observed(&row).unwrap());
    }
    let start = Instant::now();
    for _ in 0..ticks {
        black_box(ready.step_tick_observed(&row).unwrap());
    }
    ticks as f64 / start.elapsed().as_secs_f64()
}

/// Steady-state ticks/second of the interpretive reference executor.
fn measure_reference(net: Network, ticks: usize) -> f64 {
    let mut ready = net.prepare_reference().unwrap();
    let row = [Message::present(Value::Int(1))];
    for _ in 0..ticks / 10 {
        black_box(ready.step_tick(&row).unwrap());
    }
    let start = Instant::now();
    for _ in 0..ticks {
        black_box(ready.step_tick(&row).unwrap());
    }
    ticks as f64 / start.elapsed().as_secs_f64()
}

struct ShapeResult {
    name: &'static str,
    ticks: usize,
    reference: f64,
    compiled: f64,
}

impl ShapeResult {
    fn speedup(&self) -> f64 {
        self.compiled / self.reference
    }
}

fn run_shape(name: &'static str, builder: fn() -> Network, ticks: usize) -> ShapeResult {
    // Interleave and take the best of three rounds per executor so one
    // scheduler hiccup cannot skew either side.
    let mut reference = 0.0f64;
    let mut compiled = 0.0f64;
    for _ in 0..3 {
        reference = reference.max(measure_reference(builder(), ticks));
        compiled = compiled.max(measure_compiled(builder(), ticks));
    }
    let r = ShapeResult {
        name,
        ticks,
        reference,
        compiled,
    };
    println!(
        "executor_throughput/{:<10} ref: {:>12.0} ticks/s   compiled: {:>12.0} ticks/s   speedup: {:.2}x",
        r.name,
        r.reference,
        r.compiled,
        r.speedup()
    );
    r
}

fn main() {
    // `AUTOMODE_BENCH_QUICK=1` shrinks the workload for CI smoke runs.
    let quick = std::env::var("AUTOMODE_BENCH_QUICK").is_ok_and(|v| v == "1");
    let ticks = if quick { 4_000 } else { 20_000 };
    let results = [
        run_shape("deep", || build_deep(256), ticks),
        run_shape("wide", || build_wide(256), ticks),
        run_shape("multirate", || build_multirate(48), ticks),
    ];

    let mut json = String::from("{\n  \"bench\": \"executor_throughput\",\n  \"unit\": \"ticks_per_second\",\n  \"shapes\": {\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{ \"ticks\": {}, \"reference\": {:.0}, \"compiled\": {:.0}, \"speedup\": {:.2} }}{}\n",
            r.name,
            r.ticks,
            r.reference,
            r.compiled,
            r.speedup(),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_executor.json");
    std::fs::write(path, &json).expect("write BENCH_executor.json");
    println!("wrote {path}");
}
