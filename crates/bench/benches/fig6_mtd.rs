//! Experiment E6 (Fig. 6): the engine-operation MTD.
//!
//! Verifies the mode coverage of the standard drive cycle (shape claim:
//! every mode of Fig. 6 is exercised) and measures the interpretation
//! overhead of explicit modes against a behaviourally equivalent flat
//! conditional expression.

use automode_core::model::{Behavior, Component, Model};
use automode_core::types::DataType;
use automode_engine::build_engine_modes;
use automode_kernel::{Message, Stream, Value};
use automode_lang::parse;
use automode_sim::stimulus::standard_engine_cycle;
use automode_sim::{simulate_component, BatchScenario, CompiledSim};
use criterion::{criterion_group, criterion_main, Criterion};

fn cycle_inputs() -> (Stream, Stream, Stream, usize) {
    let (rpm, throttle) = standard_engine_cycle();
    let ticks = rpm.len();
    let key: Stream = (0..ticks)
        .map(|t| Message::present(Value::Bool(t < ticks - 5)))
        .collect();
    (key, rpm, throttle, ticks)
}

fn shape_report() {
    let mut m = Model::new("fig6");
    let id = build_engine_modes(&mut m).unwrap();
    let (key, rpm, throttle, ticks) = cycle_inputs();
    let run = simulate_component(
        &m,
        id,
        &[("key_on", key), ("rpm", rpm), ("throttle", throttle)],
        ticks,
    )
    .unwrap();
    let tis: Vec<f64> = run
        .trace
        .signal("ti")
        .unwrap()
        .present_values()
        .iter()
        .map(|v| v.as_float().unwrap())
        .collect();
    let has = |f: &dyn Fn(f64) -> bool| tis.iter().any(|&x| f(x));
    eprintln!("\n[E6 report] drive-cycle coverage of the Fig. 6 MTD:");
    eprintln!("  cranking (ti = 4.0):    {}", has(&|x| x == 4.0));
    eprintln!("  idle (ti = 1.0):        {}", has(&|x| x == 1.0));
    eprintln!("  part load (1 < ti < 8): {}", has(&|x| x > 1.0 && x < 8.0));
    eprintln!("  full load (ti > 8):     {}", has(&|x| x > 8.0));
    eprintln!("  fuel cut (ti = 0):      {}", has(&|x| x == 0.0));
}

fn bench(c: &mut Criterion) {
    shape_report();
    let (key, rpm, throttle, ticks) = cycle_inputs();

    let mut m = Model::new("fig6");
    let mtd = build_engine_modes(&mut m).unwrap();
    c.bench_function("fig6_mtd_drive_cycle", |b| {
        b.iter(|| {
            simulate_component(
                &m,
                mtd,
                &[
                    ("key_on", key.clone()),
                    ("rpm", rpm.clone()),
                    ("throttle", throttle.clone()),
                ],
                ticks,
            )
            .unwrap()
        })
    });

    // Batched drive-cycle sweep: 16 throttle-scaled variants of the cycle
    // through the same MTD — the repeated single-run loop vs one reusable
    // `CompiledSim` stepping lanes sequentially vs one lane-major batch.
    let scaled_throttle = |factor: f64| -> Stream {
        throttle
            .iter()
            .map(|m| match m.value().and_then(Value::as_float) {
                Some(x) => Message::present(Value::Float((x * factor).min(1.0))),
                None => Message::Absent,
            })
            .collect()
    };
    let sweep: Vec<Vec<(&str, Stream)>> = (0..16)
        .map(|l| {
            vec![
                ("key_on", key.clone()),
                ("rpm", rpm.clone()),
                ("throttle", scaled_throttle(0.55 + 0.03 * l as f64)),
            ]
        })
        .collect();
    c.bench_function("fig6_cycle_sweep16_fresh", |b| {
        b.iter(|| {
            sweep
                .iter()
                .map(|inp| simulate_component(&m, mtd, inp, ticks).unwrap())
                .collect::<Vec<_>>()
        })
    });
    c.bench_function("fig6_cycle_sweep16_compiled_sequential", |b| {
        let mut sim = CompiledSim::new(&m, mtd).unwrap();
        b.iter(|| {
            sweep
                .iter()
                .map(|inp| sim.run(inp, ticks).unwrap())
                .collect::<Vec<_>>()
        })
    });
    c.bench_function("fig6_cycle_sweep16_batch", |b| {
        let sim = CompiledSim::new(&m, mtd).unwrap();
        let specs: Vec<BatchScenario<'_>> = sweep
            .iter()
            .map(|inp| BatchScenario::new(inp, ticks))
            .collect();
        b.iter(|| sim.run_batch(&specs).unwrap())
    });

    // Baseline: the same behaviour as one flat conditional expression (the
    // "traditional" If-Then-Else structure the paper argues against).
    let flat = m
        .add_component(
            Component::new("FlatConditional")
                .input("key_on", DataType::Bool)
                .input("rpm", DataType::physical("EngineSpeed", "rpm"))
                .input("throttle", DataType::Float)
                .output("ti", DataType::Float)
                .with_behavior(Behavior::expr(
                    "ti",
                    parse(
                        "if not key_on then 0.0 else \
                         if rpm < 600.0 then 4.0 else \
                         if throttle < 0.01 and rpm > 1500.0 then 0.0 else \
                         if throttle < 0.1 then 1.0 else \
                         if throttle >= 0.9 then (1.0 + throttle * 8.0) * 1.2 else \
                         1.0 + throttle * 8.0",
                    )
                    .unwrap(),
                )),
        )
        .unwrap();
    c.bench_function("fig6_flat_ite_baseline", |b| {
        b.iter(|| {
            simulate_component(
                &m,
                flat,
                &[
                    ("key_on", key.clone()),
                    ("rpm", rpm.clone()),
                    ("throttle", throttle.clone()),
                ],
                ticks,
            )
            .unwrap()
        })
    });
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench
}
criterion_main!(benches);
