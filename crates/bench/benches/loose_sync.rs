//! Extension experiment (paper Sec. 2 outlook, ref. [8]): loose
//! synchronization of event-triggered networks.
//!
//! Shape claims (EMSOFT'04): a globally clocked model deploys onto a
//! drifting, event-triggered network with a *small* logical-delay overhead
//! (1–2 periods for typical CAN parameters), provided the consumer
//! resynchronizes; the required depth grows with the latency envelope.

use automode_platform::loose_sync::{required_depth, simulate, simulate_depths, LooseSyncConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn shape_report() {
    eprintln!("\n[E13 report] loose synchronization: required delay depth");
    eprintln!("  (10 ms period, +/-100 ppm drift, resync every 1000 ticks)");
    for (lo, hi) in [
        (200u64, 1_000u64),
        (200, 2_000),
        (2_000, 8_000),
        (8_000, 18_000),
    ] {
        let cfg = LooseSyncConfig {
            latency_min_us: lo,
            latency_max_us: hi,
            ..LooseSyncConfig::typical_can()
        };
        let d = required_depth(&cfg, 8, 100_000, 1).unwrap();
        eprintln!("  latency {lo:>5}..{hi:>5} us -> depth {d:?}");
    }
    let no_resync = LooseSyncConfig {
        resync_interval_ticks: 0,
        ..LooseSyncConfig::typical_can()
    };
    let broken = simulate(&no_resync, 2, 10_000_000, 1).unwrap();
    eprintln!(
        "  without resynchronization, depth 2 over 10^7 ticks: {} misses (drift wins)",
        broken.misses
    );
}

fn bench(c: &mut Criterion) {
    shape_report();
    let mut group = c.benchmark_group("loose_sync");
    for &ticks in &[10_000u64, 100_000, 1_000_000] {
        group.bench_with_input(
            BenchmarkId::new("simulate_ticks", ticks),
            &ticks,
            |b, &t| b.iter(|| simulate(&LooseSyncConfig::typical_can(), 2, t, 1).unwrap()),
        );
    }
    // Ablation: the envelope sweep (depths 0..=8) as one lane-major pass
    // over shared latency draws vs. nine sequential simulations.
    let depths: Vec<u32> = (0..=8).collect();
    for &ticks in &[10_000u64, 100_000] {
        group.bench_with_input(
            BenchmarkId::new("depth_sweep_lanes", ticks),
            &ticks,
            |b, &t| {
                b.iter(|| simulate_depths(&LooseSyncConfig::typical_can(), &depths, t, 1).unwrap())
            },
        );
        group.bench_with_input(
            BenchmarkId::new("depth_sweep_sequential", ticks),
            &ticks,
            |b, &t| {
                b.iter(|| {
                    depths
                        .iter()
                        .map(|&d| simulate(&LooseSyncConfig::typical_can(), d, t, 1).unwrap())
                        .collect::<Vec<_>>()
                })
            },
        );
    }
    group.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench
}
criterion_main!(benches);
