//! Coverage-guided exploration throughput and efficiency on the
//! reengineered engine model.
//!
//! Two questions, one harness:
//!
//! * **Throughput** — scenarios/second through the full explorer loop
//!   (seeded generation, batched execution, coverage scoring, archive
//!   maintenance, violation shrinking), i.e. what a `POST /explore`
//!   request costs per scenario of budget.
//! * **Efficiency** — transition coverage per scenario budget, guided
//!   vs the pure-random baseline at identical budgets, averaged over a
//!   pinned seed set. This is the number the roadmap gate is about: the
//!   MAP-Elites archive + boundary-snap mutations must buy coverage,
//!   not just burn cycles.
//!
//! Writes `BENCH_explore.json` at the repository root.
//!
//! Env knobs: `AUTOMODE_BENCH_QUICK=1` shrinks the workload for CI;
//! `AUTOMODE_BENCH_ENFORCE=1` exits nonzero unless guided mean
//! transition coverage is >= the random baseline's.

use std::sync::Arc;
use std::time::Instant;

use automode_explore::{
    exact_output_monitor, explore, DirectRunner, ExploreConfig, ScenarioSpace, Shrinker,
};
use automode_sim::CompiledSim;

struct Side {
    scenarios: u64,
    secs: f64,
    mean_states: f64,
    mean_transitions: f64,
    repros: u64,
}

impl Side {
    fn scenarios_per_second(&self) -> f64 {
        self.scenarios as f64 / self.secs
    }
}

fn run_side(
    runner: &DirectRunner,
    shrinker: &Shrinker,
    space: &ScenarioSpace,
    seeds: &[u64],
    generations: usize,
    population: usize,
    guided: bool,
) -> Side {
    let mut scenarios = 0u64;
    let mut states = 0usize;
    let mut transitions = 0usize;
    let mut repros = 0u64;
    let start = Instant::now();
    for &seed in seeds {
        let cfg = ExploreConfig {
            seed,
            generations,
            population,
            guided,
            max_repros: 4,
        };
        let report = explore(runner, Some(shrinker), space, &cfg, |_| {});
        scenarios += report.scenarios_run() as u64;
        let (s, t) = report.final_coverage();
        states += s;
        transitions += t;
        repros += report.repros.len() as u64;
    }
    Side {
        scenarios,
        secs: start.elapsed().as_secs_f64(),
        mean_states: states as f64 / seeds.len() as f64,
        mean_transitions: transitions as f64 / seeds.len() as f64,
        repros,
    }
}

fn report(side: &str, m: &Side) {
    println!(
        "explore_throughput/{side:<7} {:>8.1} scen/s   ({} scenarios, {:.3}s)   mean coverage: {:.2} states, {:.2} transitions   repros: {}",
        m.scenarios_per_second(),
        m.scenarios,
        m.secs,
        m.mean_states,
        m.mean_transitions,
        m.repros
    );
}

fn main() {
    let quick = std::env::var("AUTOMODE_BENCH_QUICK").is_ok_and(|v| v == "1");
    let enforce = std::env::var("AUTOMODE_BENCH_ENFORCE").is_ok_and(|v| v == "1");
    // The gate budget (generations 6 x population 4 at 8 ticks) is the
    // CLI default; the full bench widens the seed set for a stabler mean.
    let (seeds, generations, population, ticks) = if quick {
        ((0..5u64).collect::<Vec<_>>(), 6, 4, 8)
    } else {
        ((0..20u64).collect::<Vec<_>>(), 6, 4, 8)
    };

    let eng = automode_engine::reengineer_engine().expect("reengineer engine");
    let sim = Arc::new(CompiledSim::new(&eng.model, eng.root).expect("compile"));
    let monitor = exact_output_monitor(&eng.model, eng.root);
    let runner = DirectRunner::new(sim.clone()).with_monitor(monitor.clone());
    let shrinker = Shrinker::new(&sim).with_monitor(monitor);
    let space = ScenarioSpace::from_component(&eng.model, eng.root, ticks)
        .with_range("rpm", 0.0, 7000.0)
        .with_range("throttle", 0.0, 1.0)
        .with_range("o2", 0.0, 2.0);

    let guided = run_side(
        &runner,
        &shrinker,
        &space,
        &seeds,
        generations,
        population,
        true,
    );
    report("guided", &guided);
    let random = run_side(
        &runner,
        &shrinker,
        &space,
        &seeds,
        generations,
        population,
        false,
    );
    report("random", &random);

    let advantage = guided.mean_transitions - random.mean_transitions;
    println!(
        "explore_throughput/advantage  guided - random mean transitions at equal budget: {advantage:+.2}"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"explore_throughput\",\n",
            "  \"unit\": \"scenarios_per_second\",\n",
            "  \"model\": \"engine\",\n",
            "  \"generations\": {generations},\n",
            "  \"population\": {population},\n",
            "  \"ticks\": {ticks},\n",
            "  \"seeds\": {nseeds},\n",
            "  \"quick\": {quick},\n",
            "  \"guided\": {{ \"scenarios_per_second\": {g_tp:.1}, \"mean_states\": {g_s:.2}, \"mean_transitions\": {g_t:.2}, \"repros\": {g_r} }},\n",
            "  \"random\": {{ \"scenarios_per_second\": {r_tp:.1}, \"mean_states\": {r_s:.2}, \"mean_transitions\": {r_t:.2}, \"repros\": {r_r} }},\n",
            "  \"guided_transition_advantage\": {advantage:.2}\n",
            "}}\n"
        ),
        generations = generations,
        population = population,
        ticks = ticks,
        nseeds = seeds.len(),
        quick = quick,
        g_tp = guided.scenarios_per_second(),
        g_s = guided.mean_states,
        g_t = guided.mean_transitions,
        g_r = guided.repros,
        r_tp = random.scenarios_per_second(),
        r_s = random.mean_states,
        r_t = random.mean_transitions,
        r_r = random.repros,
        advantage = advantage,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_explore.json");
    std::fs::write(path, &json).expect("write BENCH_explore.json");
    println!("wrote {path}");

    if enforce && advantage < 0.0 {
        eprintln!(
            "ENFORCE: guided mean transition coverage {:.2} fell below random baseline {:.2}",
            guided.mean_transitions, random.mean_transitions
        );
        std::process::exit(1);
    }
}
