//! Experiment E8 (Fig. 8 / Sec. 5): white-box reengineering of the engine
//! controller.
//!
//! Shape claims: all implicit flag-guarded modes are made explicit (3 MTDs
//! with 6 modes from the synthetic engine model), the implicit-control-flow
//! metric drops, behaviour is preserved, and the reengineering cost scales
//! with model size.

use automode_ascet::model::{
    AscetModel, AscetType, MessageDecl, MessageKind, Module, Process, Stmt,
};
use automode_core::model::Model;
use automode_engine::reengineer_engine;
use automode_lang::parse;
use automode_transform::reengineer::reengineer_module;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn shape_report() {
    let r = reengineer_engine().unwrap();
    eprintln!("\n[E8 report] engine-controller reengineering (Sec. 5):");
    eprintln!(
        "  original:  {} If-Then-Else, {} flags",
        r.ifs_before, r.flags_before
    );
    eprintln!(
        "  result:    {} MTDs, {} explicit modes, {} residual ifs",
        r.report.mtds_extracted, r.report.modes_made_explicit, r.metrics_after.if_count
    );
    eprintln!(
        "  components: {} (FDA), trace equivalence: checked in tests/case_study.rs",
        r.metrics_after.components
    );
    assert_eq!(r.report.mtds_extracted, 3);
    assert!(r.metrics_after.if_count < r.ifs_before);
}

/// A synthetic ASCET module with `n` flag-guarded processes, to scale the
/// reengineering workload.
fn scaled_module(n: usize) -> AscetModel {
    let mut module = Module::new("scaled")
        .message(MessageDecl::new("u", AscetType::Cont, MessageKind::Receive))
        .message(MessageDecl::new(
            "flag",
            AscetType::Log,
            MessageKind::Receive,
        ));
    for i in 0..n {
        module = module
            .message(MessageDecl::new(
                format!("y{i}"),
                AscetType::Cont,
                MessageKind::Send,
            ))
            .process(Process::new(
                format!("p{i}"),
                10,
                vec![Stmt::If {
                    cond: parse("flag").unwrap(),
                    then_branch: vec![Stmt::assign(format!("y{i}"), parse("0.5").unwrap())],
                    else_branch: vec![Stmt::assign(
                        format!("y{i}"),
                        parse("clamp(u * 2.0, 0.0, 10.0)").unwrap(),
                    )],
                }],
            ));
    }
    AscetModel::new("scaled_model").module(module)
}

fn bench(c: &mut Criterion) {
    shape_report();
    c.bench_function("fig8_engine_reengineering", |b| {
        b.iter(|| reengineer_engine().unwrap())
    });

    let mut group = c.benchmark_group("fig8_scaling");
    for &n in &[10usize, 50, 200] {
        let ascet = scaled_module(n);
        group.bench_with_input(BenchmarkId::new("processes", n), &n, |b, _| {
            b.iter(|| {
                let mut model = Model::new("out");
                reengineer_module(&ascet, "scaled", &mut model).unwrap()
            })
        });
    }
    group.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench
}
criterion_main!(benches);
