//! Experiment E4 (Fig. 4): SSD composition and its channel-delay semantics.
//!
//! Shape claim (Sec. 3.1): "each SSD-level channel introduces a message
//! delay" — an n-stage SSD chain with n+1 channels delivers its first
//! output after exactly n+1 ticks. The bench sweeps the chain length,
//! verifying the latency and measuring elaboration + execution cost.

use automode_bench::ssd_chain;
use automode_kernel::Value;
use automode_sim::{elaborate, simulate_component, stimulus};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn shape_report() {
    eprintln!("\n[E4 report] first-output latency of n-stage SSD chains:");
    for n in [1usize, 2, 4, 8, 16] {
        let (model, top) = ssd_chain(n);
        let ticks = n + 3;
        let run = simulate_component(
            &model,
            top,
            &[("in", stimulus::constant(Value::Float(0.0), ticks))],
            ticks,
        )
        .unwrap();
        let out = run.trace.signal("out").unwrap();
        let first = (0..ticks).find(|&t| out[t].is_present());
        eprintln!(
            "  n = {n:>2}: first output at tick {:?} (expected {})",
            first,
            n + 1
        );
        assert_eq!(first, Some(n + 1));
    }
}

fn bench(c: &mut Criterion) {
    shape_report();
    let mut group = c.benchmark_group("fig4_ssd_delay");
    for &n in &[8usize, 32, 128] {
        let (model, top) = ssd_chain(n);
        group.bench_with_input(BenchmarkId::new("elaborate", n), &n, |b, _| {
            b.iter(|| elaborate(&model, top).unwrap())
        });
        let stim = stimulus::constant(Value::Float(1.0), 256);
        group.bench_with_input(BenchmarkId::new("run_256_ticks", n), &n, |b, _| {
            b.iter(|| simulate_component(&model, top, &[("in", stim.clone())], 256).unwrap())
        });
    }
    group.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench
}
criterion_main!(benches);
