//! Experiment E7 (Fig. 7 / Sec. 3.3): CCD well-definedness conditions on
//! the OSEK target.
//!
//! Shape claims: injected rule violations (missing delays on slow→fast
//! channels) are detected in 100% of cases, conforming CCDs are never
//! flagged, and the rule corresponds to observable platform behaviour
//! (deterministic vs. schedule-dependent sampling on the OSEK simulator).

use automode_core::ccd::{Ccd, CcdChannel, Cluster, FixedPriorityDataIntegrityPolicy};
use automode_core::model::{Behavior, Component, Model};
use automode_core::types::DataType;
use automode_engine::ccd::build_engine_ccd;
use automode_lang::parse;
use automode_platform::osek::{IpcRegime, MessageConfig, OsekSim, SimRunnable, SimTask};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random n-cluster CCD over harmonic rates; every slow→fast
/// channel gets a delay unless it is in `sabotage` (by channel index).
fn random_ccd(model: &mut Model, n: usize, seed: u64, sabotage: &[usize]) -> Ccd {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ccd = Ccd::new();
    let rates = [1u32, 10, 100];
    let mut comps = Vec::new();
    for i in 0..n {
        let name = format!("C{seed}_{i}");
        let id = model
            .add_component(
                Component::new(name.clone())
                    .input("x", DataType::Float)
                    .output("y", DataType::Float)
                    .with_behavior(Behavior::expr("y", parse("x * 1.0").unwrap())),
            )
            .unwrap();
        let period = rates[rng.gen_range(0..rates.len())];
        ccd = ccd.cluster(Cluster::new(format!("cl{i}"), id, period));
        comps.push((format!("cl{i}"), period));
    }
    // A chain of channels cl0 -> cl1 -> ... (one writer per input).
    for i in 0..n - 1 {
        let (from, fp) = comps[i].clone();
        let (to, tp) = comps[i + 1].clone();
        let mut ch = CcdChannel::direct(from, "y", to, "x");
        if fp > tp && !sabotage.contains(&i) {
            ch = ch.with_delays(1);
        }
        ccd = ccd.channel(ch);
    }
    ccd
}

fn shape_report() {
    let policy = FixedPriorityDataIntegrityPolicy::new();
    let mut detected = 0usize;
    let mut injected = 0usize;
    let mut false_positives = 0usize;
    for seed in 0..40u64 {
        let mut model = Model::new("rnd");
        // Conforming CCD: zero findings expected.
        let good = random_ccd(&mut model, 6, seed, &[]);
        false_positives += good.violations(&model, &policy).len();
        // Sabotaged CCD: drop the delay on one slow->fast channel if any.
        let mut model2 = Model::new("rnd2");
        let probe = random_ccd(&mut model2, 6, seed, &[]);
        let slow_fast: Vec<usize> = probe
            .channels
            .iter()
            .enumerate()
            .filter(|(_, c)| c.delays > 0)
            .map(|(i, _)| i)
            .collect();
        if let Some(&victim) = slow_fast.first() {
            let mut model3 = Model::new("rnd3");
            let bad = random_ccd(&mut model3, 6, seed, &[victim]);
            injected += 1;
            detected += usize::from(!bad.violations(&model3, &policy).is_empty());
        }
    }
    eprintln!("\n[E7 report] rule detection over random CCDs:");
    eprintln!("  injected missing-delay faults: {injected}, detected: {detected}");
    eprintln!("  false positives on conforming CCDs: {false_positives}");
    assert_eq!(detected, injected);
    assert_eq!(false_positives, 0);

    // Dynamic half: determinism with delay, schedule dependence without.
    let sim = |delayed: bool| {
        let msg = MessageConfig::new("m", 2);
        let msg = if delayed { msg.delayed() } else { msg };
        OsekSim::new(IpcRegime::CopyInCopyOut)
            .task(SimTask::new("fast", 0, 10_000).runnable(SimRunnable::reader("r", "m")))
            .unwrap()
            .task(
                SimTask::new("slow", 1, 100_000)
                    .runnable(SimRunnable::compute("c", 30_000))
                    .runnable(SimRunnable::writer("w", "m", 2, 1_000)),
            )
            .unwrap()
            .message(msg)
            .unwrap()
            .run(1_000_000)
            .unwrap()
    };
    let det = sim(true);
    let vals = det.observed_values("fast", "m");
    let deterministic = vals
        .iter()
        .enumerate()
        .all(|(i, &v)| v == ((i as u64 * 10_000) / 100_000) as i64);
    let nondeterministic = {
        let out = sim(false);
        let vals = out.observed_values("fast", "m");
        (0..9).any(|k| {
            let w = &vals[k * 10..(k + 1) * 10];
            w.windows(2).any(|p| p[0] != p[1])
        })
    };
    eprintln!("  delayed publication deterministic per period: {deterministic}");
    eprintln!("  immediate publication schedule-dependent:     {nondeterministic}");
    assert!(deterministic && nondeterministic);
}

fn bench(c: &mut Criterion) {
    shape_report();
    let mut group = c.benchmark_group("fig7_ccd_rules");
    for &n in &[4usize, 16, 64, 256] {
        let mut model = Model::new("bench");
        let ccd = random_ccd(&mut model, n, 99, &[]);
        let policy = FixedPriorityDataIntegrityPolicy::new();
        group.bench_with_input(BenchmarkId::new("validate_clusters", n), &n, |b, _| {
            b.iter(|| ccd.validate_against(&model, &policy).unwrap())
        });
    }
    group.finish();

    // Fig. 7 CCD end-to-end validation cost.
    let mut model = Model::new("fig7");
    let (ccd, _) = build_engine_ccd(&mut model, 10, 100).unwrap();
    c.bench_function("fig7_engine_ccd_validate", |b| {
        b.iter(|| {
            ccd.validate_against(&model, &FixedPriorityDataIntegrityPolicy::new())
                .unwrap()
        })
    });

    // OSEK simulation cost per simulated second — ablation over the IPC
    // regime: the data-integrity mechanism's snapshot/publish overhead vs
    // direct shared memory.
    for (label, regime, delayed) in [
        (
            "fig7_osek_sim_1s_copyinout_delayed",
            IpcRegime::CopyInCopyOut,
            true,
        ),
        (
            "fig7_osek_sim_1s_copyinout",
            IpcRegime::CopyInCopyOut,
            false,
        ),
        ("fig7_osek_sim_1s_direct", IpcRegime::Direct, false),
    ] {
        c.bench_function(label, |b| {
            let msg = MessageConfig::new("m", 2);
            let msg = if delayed { msg.delayed() } else { msg };
            let sim = OsekSim::new(regime)
                .task(SimTask::new("fast", 0, 10_000).runnable(SimRunnable::reader("r", "m")))
                .unwrap()
                .task(
                    SimTask::new("slow", 1, 100_000)
                        .runnable(SimRunnable::writer("w", "m", 2, 1_000)),
                )
                .unwrap()
                .message(msg)
                .unwrap();
            b.iter(|| sim.run(1_000_000).unwrap())
        });
    }
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench
}
criterion_main!(benches);
