//! Experiment E3 (Fig. 3): the abstraction-level pipeline as a whole.
//!
//! Measures the cost of each tool-supported step on the engine case study:
//! FDA validation, clock-based clustering, LA validation, and deployment
//! (task formation + communication matrix + OA generation).

use automode_core::ccd::FixedPriorityDataIntegrityPolicy;
use automode_engine::ccd::{build_engine_ccd, engine_cluster_wcets};
use automode_engine::reengineered::{engine_periods, reengineer_engine};
use automode_transform::deploy::{deploy, DeploymentSpec};
use automode_transform::refine::cluster_by_clocks;
use criterion::{criterion_group, criterion_main, Criterion};

fn shape_report() {
    let r = reengineer_engine().unwrap();
    let mut model = r.model.clone();
    let ccd = cluster_by_clocks(&mut model, r.root, &engine_periods()).unwrap();
    eprintln!("\n[E3 report] engine model through the pipeline:");
    eprintln!(
        "  FDA components: {}, clusters after clock clustering: {} (periods {:?})",
        r.metrics_after.components,
        ccd.clusters.len(),
        ccd.clusters.iter().map(|c| c.period).collect::<Vec<_>>()
    );
    let cross = ccd.channels.len();
    let delayed = ccd.channels.iter().filter(|c| c.delays > 0).count();
    eprintln!("  cross-cluster channels: {cross}, auto-delayed (slow->fast): {delayed}");
}

fn bench(c: &mut Criterion) {
    shape_report();
    let r = reengineer_engine().unwrap();

    c.bench_function("fig3_fda_validation", |b| {
        b.iter(|| automode_core::levels::validate_fda(&r.model).unwrap())
    });

    c.bench_function("fig3_clock_clustering", |b| {
        b.iter(|| {
            let mut model = r.model.clone();
            cluster_by_clocks(&mut model, r.root, &engine_periods()).unwrap()
        })
    });

    c.bench_function("fig3_full_reengineering", |b| {
        b.iter(|| reengineer_engine().unwrap())
    });

    c.bench_function("fig3_deployment", |b| {
        let mut model = automode_core::model::Model::new("fig3");
        let (ccd, _) = build_engine_ccd(&mut model, 10, 100).unwrap();
        let mut spec = DeploymentSpec::new(["engine_ecu", "diag_ecu"])
            .pin("fuel_control", "engine_ecu")
            .pin("ignition_control", "engine_ecu")
            .pin("diagnosis_monitoring", "diag_ecu");
        for (cl, w) in engine_cluster_wcets() {
            spec = spec.wcet(cl, w);
        }
        b.iter(|| {
            deploy(
                &model,
                &ccd,
                &FixedPriorityDataIntegrityPolicy::new(),
                &spec,
            )
            .unwrap()
        })
    });
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench
}
criterion_main!(benches);
