//! Experiment E11 (Sec. 4): black-box reengineering of communication
//! matrices into partial FAA models (validated in the paper on a
//! body-electronics case study).
//!
//! Shape claims: the generated FAA model reproduces every ECU dependency of
//! the matrix, and the step scales with the number of signals.

use automode_platform::comm_matrix::synthetic_body_matrix;
use automode_transform::reengineer::reengineer_comm_matrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn shape_report() {
    eprintln!("\n[E11 report] black-box reengineering structure preservation:");
    for (modules, signals) in [(5usize, 4usize), (20, 8), (50, 10)] {
        let matrix = synthetic_body_matrix(modules, signals, 42);
        let model = reengineer_comm_matrix(&matrix, "body").unwrap();
        let deps = matrix.dependencies().len();
        eprintln!(
            "  {modules:>3} modules, {:>4} signals -> {:>3} FAA functions, {deps:>4} dependencies preserved",
            matrix.signals.len(),
            model.component_count() - 1,
        );
        assert_eq!(model.component_count() - 1, matrix.ecus().len());
    }
}

fn bench(c: &mut Criterion) {
    shape_report();
    let mut group = c.benchmark_group("blackbox_reengineering");
    for &modules in &[10usize, 50, 200] {
        let matrix = synthetic_body_matrix(modules, 8, 7);
        group.bench_with_input(
            BenchmarkId::new("matrix_to_faa", modules),
            &modules,
            |b, _| b.iter(|| reengineer_comm_matrix(&matrix, "body").unwrap()),
        );
    }
    for &modules in &[10usize, 50] {
        group.bench_with_input(
            BenchmarkId::new("generate_matrix", modules),
            &modules,
            |b, &m| b.iter(|| synthetic_body_matrix(m, 8, 7)),
        );
    }
    group.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench
}
criterion_main!(benches);
