//! Experiment E10 (Sec. 3.3): the MTD-to-dataflow transformation.
//!
//! Shape claims: the transformation produces a *semantically equivalent*
//! model (verified by trace comparison across mode counts) with bounded,
//! linear structural overhead (one selector + one instance per mode + one
//! mux per output), and its runtime scales with the number of modes.

use automode_bench::ring_mtd;
use automode_kernel::TraceEquivalence;
use automode_sim::{simulate_component, stimulus};
use automode_transform::mode_dataflow::{mtd_to_dataflow, partition_count};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn shape_report() {
    eprintln!("\n[E10 report] MTD -> dataflow equivalence and overhead:");
    for modes in [2usize, 4, 8, 16, 32] {
        let (mut model, owner) = ring_mtd(modes, modes as u64);
        let df = mtd_to_dataflow(&mut model, owner).unwrap();
        let parts = partition_count(&model, df).unwrap();

        let x = stimulus::seeded_random(-1.0, 2.0, 200, modes as u64);
        let a = simulate_component(&model, owner, &[("x", x.clone())], 200).unwrap();
        let b = simulate_component(&model, df, &[("x", x)], 200).unwrap();
        let rel = TraceEquivalence::exact().on_signals(["y"]);
        let equivalent = a.trace.equivalent(&b.trace, &rel);
        eprintln!(
            "  modes = {modes:>2}: partitions = {parts:>2} (modes + selector), trace-equivalent = {equivalent}"
        );
        assert!(equivalent, "{:?}", a.trace.diff(&b.trace, &rel));
        assert_eq!(parts, modes + 1);
    }
}

fn bench(c: &mut Criterion) {
    shape_report();
    let mut group = c.benchmark_group("fig7b_mtd_to_dataflow");
    for &modes in &[2usize, 8, 32] {
        group.bench_with_input(BenchmarkId::new("transform", modes), &modes, |b, &modes| {
            b.iter(|| {
                let (mut model, owner) = ring_mtd(modes, 1);
                mtd_to_dataflow(&mut model, owner).unwrap()
            })
        });

        // Execution overhead: MTD interpreter vs. generated dataflow.
        let (mut model, owner) = ring_mtd(modes, 1);
        let df = mtd_to_dataflow(&mut model, owner).unwrap();
        let x = stimulus::seeded_random(-1.0, 2.0, 500, 5);
        group.bench_with_input(BenchmarkId::new("run_mtd", modes), &modes, |b, _| {
            b.iter(|| simulate_component(&model, owner, &[("x", x.clone())], 500).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("run_dataflow", modes), &modes, |b, _| {
            b.iter(|| simulate_component(&model, df, &[("x", x.clone())], 500).unwrap())
        });
    }
    group.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench
}
criterion_main!(benches);
