//! Experiments E5/E9 (Fig. 5 / Sec. 3.2): DFD instantaneous semantics and
//! the causality check.
//!
//! Shape claims: the causality check accepts exactly the loop-free
//! networks (soundness/completeness checked over random instances) and
//! scales near-linearly with network size.

use automode_bench::{random_causal_dfd, random_looped_dfd};
use automode_core::causality_struct::check_component;
use automode_core::model::Model;
use automode_engine::momentum::{build_momentum_controller, MomentumGains};
use automode_kernel::causality;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn shape_report() {
    eprintln!("\n[E5/E9 report] causality check over random DFDs:");
    let mut accepted = 0;
    let mut rejected = 0;
    for seed in 0..50u64 {
        let (m, top) = random_causal_dfd(40, seed);
        if check_component(&m, top).is_ok() {
            accepted += 1;
        }
        let (m, top) = random_looped_dfd(40, seed);
        if check_component(&m, top).is_err() {
            rejected += 1;
        }
    }
    eprintln!("  50/50 causal DFDs accepted: {}", accepted == 50);
    eprintln!("  50/50 looped DFDs rejected: {}", rejected == 50);
    assert_eq!((accepted, rejected), (50, 50));

    // The Fig. 5 controller itself is causal despite its feedback loop.
    let mut m = Model::new("fig5");
    let id = build_momentum_controller(&mut m, MomentumGains::default()).unwrap();
    assert!(check_component(&m, id).is_ok());
    eprintln!("  momentum controller (delayed integrator feedback): causal");
}

/// Random edge list with `n` nodes and ~2n forward edges (a DAG).
fn random_dag(n: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..2 * n)
        .map(|_| {
            let a = rng.gen_range(0..n - 1);
            let b = rng.gen_range(a + 1..n);
            (a, b)
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    shape_report();
    let mut group = c.benchmark_group("fig5_causality_scaling");
    for &n in &[100usize, 1_000, 10_000, 50_000] {
        let edges = random_dag(n, 7);
        group.bench_with_input(BenchmarkId::new("kernel_analyze", n), &n, |b, &n| {
            b.iter(|| causality::analyze(n, &edges))
        });
    }
    for &n in &[50usize, 200, 800] {
        let (m, top) = random_causal_dfd(n, 11);
        group.bench_with_input(BenchmarkId::new("structural_check", n), &n, |b, _| {
            b.iter(|| check_component(&m, top).unwrap())
        });
        // Ablation: the same property checked at the kernel level, i.e.
        // full elaboration + schedule computation. The structural check on
        // the meta-model avoids elaborating at all.
        group.bench_with_input(BenchmarkId::new("elaborate_and_prepare", n), &n, |b, _| {
            b.iter(|| automode_sim::elaborate(&m, top).unwrap().prepare().unwrap())
        });
    }
    group.finish();

    // Simulation throughput of the Fig. 5 controller.
    let mut m = Model::new("fig5");
    let id = build_momentum_controller(&mut m, MomentumGains::default()).unwrap();
    let v = automode_sim::stimulus::ramp(0.0, 30.0, 1_000);
    c.bench_function("fig5_momentum_1000_ticks", |b| {
        b.iter(|| {
            automode_sim::simulate_component(
                &m,
                id,
                &[("v_des", v.clone()), ("v_act", v.clone())],
                1_000,
            )
            .unwrap()
        })
    });
    // Ablations of the same run: a reused `CompiledSim` (no per-run
    // elaborate/prepare) and a 16-lane batch of target-speed variants.
    c.bench_function("fig5_momentum_1000_ticks_compiled", |b| {
        let mut sim = automode_sim::CompiledSim::new(&m, id).unwrap();
        let inputs = [("v_des", v.clone()), ("v_act", v.clone())];
        b.iter(|| sim.run(&inputs, 1_000).unwrap())
    });
    c.bench_function("fig5_momentum_1000_ticks_batch16", |b| {
        let sim = automode_sim::CompiledSim::new(&m, id).unwrap();
        let lanes: Vec<Vec<(&str, automode_kernel::Stream)>> = (0..16)
            .map(|l| {
                let top = 15.0 + l as f64 * 2.0;
                vec![
                    ("v_des", automode_sim::stimulus::ramp(0.0, top, 1_000)),
                    ("v_act", automode_sim::stimulus::ramp(0.0, top * 0.8, 1_000)),
                ]
            })
            .collect();
        let specs: Vec<automode_sim::BatchScenario<'_>> = lanes
            .iter()
            .map(|inp| automode_sim::BatchScenario::new(inp, 1_000))
            .collect();
        b.iter(|| sim.run_batch(&specs).unwrap())
    });
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench
}
criterion_main!(benches);
