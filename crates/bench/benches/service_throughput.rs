//! End-to-end sweep-service throughput: scenarios/second over real
//! loopback HTTP, comparing the two extremes of the service's hot path:
//!
//! * `uncached` — the naive single-threaded baseline: every request
//!   submits a *distinct* `.amdl` model (a fresh random causal DFD per
//!   request), so each sweep pays the full elaborate + causality +
//!   prepare pipeline before its first tick, then runs scenarios one
//!   lane at a time (`lanes = 1`) on a single simulation worker;
//! * `cached` — the service hot path: every request submits the *same*
//!   model text, so after one warm-up miss each sweep is a
//!   sharded-cache hit sharing one `CompiledSim`, with K = 32-lane
//!   batch shards fanned across the work-stealing pool.
//!
//! Both sides sweep the same scenario count and tick horizon through
//! the same chunked-ndjson streaming path (including the sampled
//! differential oracle at its production 1/16 rate), so the measured
//! gap is exactly what the compiled-model cache plus K-lane sharding
//! buy over recompile-and-loop.
//!
//! Per-request wall latency is recorded client-side in a
//! `core::metrics::LatencyHistogram`; p50/p99/max land in the report.
//!
//! Writes `BENCH_service.json` at the repository root.
//!
//! Env knobs: `AUTOMODE_BENCH_QUICK=1` shrinks the workload for CI;
//! `AUTOMODE_BENCH_ENFORCE=1` exits nonzero unless cached throughput is
//! >= 3x uncached at K = 32.

use std::net::SocketAddr;
use std::time::Instant;

use automode_bench::random_causal_dfd;
use automode_core::json::JsonWriter;
use automode_core::metrics::LatencyHistogram;
use automode_core::text::to_text;
use automode_service::{post_sweep, serve, ServerConfig};

/// Lanes per batch shard — the gate is defined at K = 32.
const K: usize = 32;

/// One sweep-request body: the (escaped) model text plus a flat spec
/// sweeping `count` ramp scenarios of `ticks` ticks at `lanes` lanes
/// per batch shard.
fn sweep_body(model_text: &str, count: usize, ticks: usize, lanes: usize) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field("model").string(model_text);
    w.end_object();
    let base = w.finish();
    format!(
        r#"{},"count":{count},"ticks":{ticks},"lanes":{lanes},"inputs":[{{"port":"in","kind":"ramp","from":0.0,"to":3.0,"to_step":0.1}}]}}"#,
        &base[..base.len() - 1]
    )
}

struct Measured {
    requests: usize,
    scenarios: u64,
    secs: f64,
    p50_us: u64,
    p99_us: u64,
    max_us: u64,
}

impl Measured {
    fn scenarios_per_second(&self) -> f64 {
        self.scenarios as f64 / self.secs
    }
}

/// Posts every body in order, asserting each stream arrives complete
/// with one line per scenario, and returns wall throughput + latency
/// quantiles.
fn drive(addr: SocketAddr, bodies: &[String], count: usize) -> Measured {
    let hist = LatencyHistogram::new();
    let mut scenarios = 0u64;
    let start = Instant::now();
    for body in bodies {
        let t0 = Instant::now();
        let resp = post_sweep(addr, body).expect("sweep request");
        hist.record(t0.elapsed().as_micros() as u64);
        assert_eq!(resp.status, 200, "sweep rejected: {:?}", resp.lines.first());
        assert!(resp.complete, "truncated stream");
        // Header line + one line per scenario + done line.
        assert_eq!(resp.lines.len(), count + 2, "short stream");
        let done = resp.lines.last().unwrap();
        assert!(done.contains(r#""status":"ok""#), "sweep failed: {done}");
        scenarios += count as u64;
    }
    let secs = start.elapsed().as_secs_f64();
    Measured {
        requests: bodies.len(),
        scenarios,
        secs,
        p50_us: hist.quantile(0.5),
        p99_us: hist.quantile(0.99),
        max_us: hist.quantile(1.0),
    }
}

fn report(side: &str, m: &Measured) {
    println!(
        "service_throughput/{side:<9} {:>8.1} scen/s   ({} requests, {} scenarios, {:.3}s)   p50: {}us   p99: {}us   max: {}us",
        m.scenarios_per_second(),
        m.requests,
        m.scenarios,
        m.secs,
        m.p50_us,
        m.p99_us,
        m.max_us
    );
}

fn main() {
    let quick = std::env::var("AUTOMODE_BENCH_QUICK").is_ok_and(|v| v == "1");
    // `count = 16 * K` gives the cached side exactly 16 shards per
    // sweep, so the 1/16 differential oracle samples one shard per
    // request — its steady-state production rate — instead of rounding
    // up to a larger fraction.
    let (nodes, requests, count, ticks) = if quick {
        (48, 6, 16 * K, 20)
    } else {
        (64, 16, 16 * K, 40)
    };

    // Distinct model per request, one lane per shard — every submission
    // is a cache miss that recompiles from scratch, then loops
    // scenarios sequentially.
    let uncached_bodies: Vec<String> = (0..requests)
        .map(|i| {
            let (m, _) = random_causal_dfd(nodes, 1000 + i as u64);
            sweep_body(&to_text(&m), count, ticks, 1)
        })
        .collect();
    // One model for every request — after the warm-up miss, all hits.
    let (m, _) = random_causal_dfd(nodes, 7);
    let cached_body = sweep_body(&to_text(&m), count, ticks, K);
    let cached_bodies: Vec<String> = (0..requests).map(|_| cached_body.clone()).collect();

    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    // Uncached single-threaded baseline: one simulation worker, and the
    // per-request distinct models above guarantee a miss every time.
    let uncached = {
        let server = serve(ServerConfig {
            workers: 1,
            conn_threads: 1,
            ..ServerConfig::default()
        })
        .expect("bind uncached server");
        let m = drive(server.addr(), &uncached_bodies, count);
        server.shutdown();
        m
    };
    report("uncached", &uncached);

    // Cached sharded path: full worker pool, one warm-up request to
    // populate the cache, then every timed request is a hit.
    let cached = {
        let server = serve(ServerConfig {
            workers,
            conn_threads: 2,
            ..ServerConfig::default()
        })
        .expect("bind cached server");
        let warm = post_sweep(server.addr(), &cached_body).expect("warm-up sweep");
        assert_eq!(warm.status, 200);
        assert!(
            warm.lines[0].contains(r#""cache":"miss""#),
            "warm-up was not a miss"
        );
        let m = drive(server.addr(), &cached_bodies, count);
        server.shutdown();
        m
    };
    report("cached", &cached);

    let speedup = cached.scenarios_per_second() / uncached.scenarios_per_second();
    println!("service_throughput/speedup  cached vs uncached at K={K}: {speedup:.2}x");

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"service_throughput\",\n",
            "  \"unit\": \"scenarios_per_second\",\n",
            "  \"k_lanes\": {k},\n",
            "  \"model_nodes\": {nodes},\n",
            "  \"scenarios_per_request\": {count},\n",
            "  \"ticks_per_scenario\": {ticks},\n",
            "  \"requests_per_side\": {requests},\n",
            "  \"sim_workers_cached\": {workers},\n",
            "  \"quick\": {quick},\n",
            "  \"uncached_single_threaded\": {{ \"lanes\": 1, \"workers\": 1, \"scenarios_per_second\": {u_tp:.1}, \"latency_us\": {{ \"p50\": {u50}, \"p99\": {u99}, \"max\": {umax} }} }},\n",
            "  \"cached_sharded\": {{ \"lanes\": {k}, \"workers\": {workers}, \"scenarios_per_second\": {c_tp:.1}, \"latency_us\": {{ \"p50\": {c50}, \"p99\": {c99}, \"max\": {cmax} }} }},\n",
            "  \"speedup_cached_vs_uncached\": {speedup:.2}\n",
            "}}\n"
        ),
        k = K,
        nodes = nodes,
        count = count,
        ticks = ticks,
        requests = requests,
        workers = workers,
        quick = quick,
        u_tp = uncached.scenarios_per_second(),
        u50 = uncached.p50_us,
        u99 = uncached.p99_us,
        umax = uncached.max_us,
        c_tp = cached.scenarios_per_second(),
        c50 = cached.p50_us,
        c99 = cached.p99_us,
        cmax = cached.max_us,
        speedup = speedup,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    std::fs::write(path, &json).expect("write BENCH_service.json");
    println!("wrote {path}");

    if std::env::var("AUTOMODE_BENCH_ENFORCE").is_ok_and(|v| v == "1") {
        if speedup < 3.0 {
            eprintln!("FAIL: cached sharded vs uncached single-threaded at K={K} is {speedup:.2}x (< 3x gate)");
            std::process::exit(1);
        }
        println!("gate: cached sharded >= 3x uncached single-threaded at K={K}");
    }
}
