//! Experiment E1 (Fig. 1): message-based, time-synchronous communication.
//!
//! Regenerates the Fig. 1 trace of `DoorLockControl` (values and `-`
//! absences per tick) and measures simulation throughput of the
//! event-triggered component.

use automode_core::model::Model;
use automode_engine::build_door_lock;
use automode_kernel::{Message, Value};
use automode_sim::elaborate;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn fig1_trace_report() {
    let mut model = Model::new("fig1");
    let ctrl = build_door_lock(&mut model).unwrap();
    let ticks = 6usize;
    let mut t4s = vec![Message::Absent; ticks];
    t4s[1] = Message::present(Value::sym("Locked"));
    t4s[4] = Message::present(Value::sym("Unlocked"));
    let run = automode_sim::simulate_component(
        &model,
        ctrl,
        &[
            ("T4S", t4s.into_iter().collect()),
            ("CRSH", automode_kernel::Stream::absent(ticks)),
            (
                "FZG_V",
                automode_sim::stimulus::constant(Value::Float(12.0), ticks),
            ),
        ],
        ticks,
    )
    .unwrap();
    eprintln!("\n[E1 report] Fig. 1 regenerated trace:");
    eprintln!("{}", run.trace.project(&["in:T4S", "T1C", "T4C"]));
}

fn bench(c: &mut Criterion) {
    fig1_trace_report();
    let mut model = Model::new("fig1");
    let ctrl = build_door_lock(&mut model).unwrap();

    let mut group = c.benchmark_group("fig1_communication");
    for &ticks in &[100usize, 1_000, 10_000] {
        // Sporadic events at 10% density.
        let t4s = automode_sim::stimulus::sporadic(0.1, ticks, 1);
        let t4s: automode_kernel::Stream = t4s
            .iter()
            .map(|m| m.clone().map(|_| Value::sym("Locked")))
            .collect();
        let crsh = automode_kernel::Stream::absent(ticks);
        let volt = automode_sim::stimulus::constant(Value::Float(12.0), ticks);
        // Declaration order of DoorLockControl inputs: T4S, CRSH, FZG_V.
        let stim: Vec<Vec<Message>> = (0..ticks)
            .map(|t| {
                vec![
                    t4s.get(t).cloned().unwrap_or(Message::Absent),
                    crsh.get(t).cloned().unwrap_or(Message::Absent),
                    volt.get(t).cloned().unwrap_or(Message::Absent),
                ]
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("simulate_ticks", ticks), &ticks, |b, _| {
            b.iter(|| {
                let net = elaborate(&model, ctrl).unwrap();
                let mut ready = net.prepare().unwrap();
                for row in &stim {
                    ready.step_tick(row).unwrap();
                }
            })
        });
    }
    group.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench
}
criterion_main!(benches);
