//! Multi-scenario simulation throughput: how fast can K variants of a
//! drive scenario be swept?
//!
//! Three strategies, each measured over three workload shapes that stress
//! different parts of the vectorized batch executor:
//!
//! * `fresh` — the repeated single-run loop: one compile (elaborate +
//!   causality + prepare) *per scenario*, then `run`;
//! * `reuse` — one compiled handle, K sequential `run` calls (amortizes
//!   compilation, still one lane per pass);
//! * `batch` — one compiled handle, one `run_batch` over all K lanes
//!   (amortizes compilation *and* steps every lane per plan pass through
//!   the typed-column lane executor).
//!
//! Shapes:
//!
//! * `stateless_heavy` — a kernel-level network of `Lift2`/`AddN` float
//!   operators: every node takes the lane-kernel path and uniform `f64`
//!   columns hit the tight bit-column loops;
//! * `delay_heavy` — an SSD chain: per-hop delays exercise the stateful
//!   lane kernels' contiguous commit rotations;
//! * `expr_heavy` — a random causal DFD of expression blocks: the
//!   bytecode VM's lane-batched column interpreter.
//!
//! A mode-rich controller (opaque MTD blocks, per-lane fallback path) is
//! cross-checked for batch == sequential correctness before timing, but
//! not timed — its work hides inside a single monolithic block that no
//! lane kernel can see.
//!
//! Writes `BENCH_batch.json` at the repository root with
//! scenarios/second per strategy and the pairwise speedups, per shape,
//! for K in {1, 8, 32, 128}.
//!
//! Env knobs: `AUTOMODE_BENCH_QUICK=1` shrinks the workload for CI;
//! `AUTOMODE_BENCH_ENFORCE=1` exits nonzero unless at K = 32 every shape
//! has batch >= 2x fresh AND batch >= 2x reuse.

use std::hint::black_box;
use std::time::Instant;

use automode_bench::{moded_controller, random_causal_dfd, ssd_chain, stateless_ops_network};
use automode_kernel::{Message, Network, ReadyNetwork, Stream, Value};
use automode_sim::{stimulus, BatchScenario, CompiledSim};

/// K lane-scaled ramp scenarios: lane `l` ramps the boundary input to a
/// lane-specific peak, so each variant explores its own value region while
/// compilation is shared.
fn scenarios(k: usize, ticks: usize) -> Vec<Vec<(&'static str, Stream)>> {
    (0..k)
        .map(|l| {
            let top = 3.0 + l as f64 * 0.1;
            vec![("in", stimulus::ramp(0.0, top, ticks))]
        })
        .collect()
}

/// The same ramp scenarios as raw kernel stimulus rows (one float input).
fn kernel_stimuli(k: usize, ticks: usize) -> Vec<Vec<Vec<Message>>> {
    (0..k)
        .map(|l| {
            let top = 3.0 + l as f64 * 0.1;
            (0..ticks)
                .map(|t| {
                    let v = top * t as f64 / ticks.max(1) as f64;
                    vec![Message::present(Value::Float(v))]
                })
                .collect()
        })
        .collect()
}

struct KResult {
    k: usize,
    fresh: f64,
    reuse: f64,
    batch: f64,
}

struct ShapeResult {
    shape: &'static str,
    results: Vec<KResult>,
}

/// Measures one model-backed shape through `CompiledSim` for every K.
fn measure_model_shape(
    shape: &'static str,
    m: &automode_core::model::Model,
    id: automode_core::model::ComponentId,
    ks: &[usize],
    ticks: usize,
    rounds: usize,
) -> ShapeResult {
    // Correctness cross-check before timing anything: the batch must agree
    // with sequential runs on the exact scenarios being measured.
    {
        let inputs = scenarios(4, ticks);
        let specs: Vec<BatchScenario<'_>> = inputs
            .iter()
            .map(|lane| BatchScenario::new(lane, ticks))
            .collect();
        let mut sim = CompiledSim::new(m, id).unwrap();
        let batch = sim.run_batch(&specs).unwrap();
        for (lane, inp) in inputs.iter().enumerate() {
            assert_eq!(
                batch[lane],
                sim.run(inp, ticks).unwrap(),
                "{shape}: lane {lane}"
            );
        }
    }
    let mut results = Vec::new();
    for &k in ks {
        let inputs = scenarios(k, ticks);
        let (mut fresh, mut reuse, mut batch) = (0.0f64, 0.0f64, 0.0f64);
        // Best of `rounds` interleaved rounds per strategy, so a scheduler
        // hiccup cannot skew one side.
        for _ in 0..rounds {
            fresh = fresh.max({
                let start = Instant::now();
                for lane in &inputs {
                    let mut sim = CompiledSim::new(m, id).unwrap();
                    black_box(sim.run(lane, ticks).unwrap());
                }
                inputs.len() as f64 / start.elapsed().as_secs_f64()
            });
            reuse = reuse.max({
                let mut sim = CompiledSim::new(m, id).unwrap();
                let start = Instant::now();
                for lane in &inputs {
                    black_box(sim.run(lane, ticks).unwrap());
                }
                inputs.len() as f64 / start.elapsed().as_secs_f64()
            });
            batch = batch.max({
                let sim = CompiledSim::new(m, id).unwrap();
                let specs: Vec<BatchScenario<'_>> = inputs
                    .iter()
                    .map(|lane| BatchScenario::new(lane, ticks))
                    .collect();
                let start = Instant::now();
                black_box(sim.run_batch(&specs).unwrap());
                inputs.len() as f64 / start.elapsed().as_secs_f64()
            });
        }
        report_k(shape, k, fresh, reuse, batch);
        results.push(KResult {
            k,
            fresh,
            reuse,
            batch,
        });
    }
    ShapeResult { shape, results }
}

/// Measures the kernel-level stateless-ops shape (no model layer — the
/// network is built and prepared directly) for every K.
fn measure_kernel_shape(
    shape: &'static str,
    build: &dyn Fn() -> Network,
    ks: &[usize],
    ticks: usize,
    rounds: usize,
) -> ShapeResult {
    {
        let stimuli = kernel_stimuli(4, ticks);
        let mut ready: ReadyNetwork = build().prepare().unwrap();
        let batch = ready.run_batch(&stimuli).unwrap();
        for (lane, stim) in stimuli.iter().enumerate() {
            ready.reset();
            assert_eq!(
                batch[lane],
                ready.run(stim).unwrap(),
                "{shape}: lane {lane}"
            );
        }
    }
    let mut results = Vec::new();
    for &k in ks {
        let stimuli = kernel_stimuli(k, ticks);
        let (mut fresh, mut reuse, mut batch) = (0.0f64, 0.0f64, 0.0f64);
        for _ in 0..rounds {
            fresh = fresh.max({
                let start = Instant::now();
                for lane in &stimuli {
                    let mut ready = build().prepare().unwrap();
                    black_box(ready.run(lane).unwrap());
                }
                stimuli.len() as f64 / start.elapsed().as_secs_f64()
            });
            reuse = reuse.max({
                let mut ready = build().prepare().unwrap();
                let start = Instant::now();
                for lane in &stimuli {
                    ready.reset();
                    black_box(ready.run(lane).unwrap());
                }
                stimuli.len() as f64 / start.elapsed().as_secs_f64()
            });
            batch = batch.max({
                let ready = build().prepare().unwrap();
                let start = Instant::now();
                black_box(ready.run_batch(&stimuli).unwrap());
                stimuli.len() as f64 / start.elapsed().as_secs_f64()
            });
        }
        report_k(shape, k, fresh, reuse, batch);
        results.push(KResult {
            k,
            fresh,
            reuse,
            batch,
        });
    }
    ShapeResult { shape, results }
}

fn report_k(shape: &str, k: usize, fresh: f64, reuse: f64, batch: f64) {
    println!(
        "batch_throughput/{shape}/K={k:<4} fresh: {fresh:>9.1}/s   reuse: {reuse:>9.1}/s   batch: {batch:>9.1}/s   batch/reuse: {:.2}x   batch/fresh: {:.2}x",
        batch / reuse,
        batch / fresh
    );
}

fn main() {
    let quick = std::env::var("AUTOMODE_BENCH_QUICK").is_ok_and(|v| v == "1");
    let (ticks, rounds, ks): (usize, usize, &[usize]) = if quick {
        (60, 2, &[1, 8, 32])
    } else {
        (200, 3, &[1, 8, 32, 128])
    };

    // Opaque-MTD correctness cross-check: the moded controller's work hides
    // inside one monolithic block, so it exercises the per-lane fallback
    // path of the batch executor (and is not worth timing as a "shape").
    {
        let (m, id) = moded_controller(if quick { 10 } else { 40 }, 40, 7);
        let inputs = scenarios(4, ticks);
        let specs: Vec<BatchScenario<'_>> = inputs
            .iter()
            .map(|lane| BatchScenario::new(lane, ticks))
            .collect();
        let mut sim = CompiledSim::new(&m, id).unwrap();
        let batch = sim.run_batch(&specs).unwrap();
        for (lane, inp) in inputs.iter().enumerate() {
            assert_eq!(
                batch[lane],
                sim.run(inp, ticks).unwrap(),
                "moded_controller: lane {lane}"
            );
        }
    }

    let mut shapes: Vec<ShapeResult> = Vec::new();
    {
        let n = if quick { 48 } else { 96 };
        shapes.push(measure_kernel_shape(
            "stateless_heavy",
            &|| stateless_ops_network(n, 11),
            ks,
            ticks,
            rounds,
        ));
    }
    {
        let (m, id) = ssd_chain(if quick { 32 } else { 64 });
        shapes.push(measure_model_shape(
            "delay_heavy",
            &m,
            id,
            ks,
            ticks,
            rounds,
        ));
    }
    {
        let (m, id) = random_causal_dfd(if quick { 40 } else { 64 }, 7);
        shapes.push(measure_model_shape("expr_heavy", &m, id, ks, ticks, rounds));
    }

    let mut json = String::from(
        "{\n  \"bench\": \"batch_throughput\",\n  \"unit\": \"scenarios_per_second\",\n",
    );
    json.push_str(&format!(
        "  \"ticks_per_scenario\": {ticks},\n  \"quick\": {quick},\n  \"shapes\": {{\n"
    ));
    for (s, shape) in shapes.iter().enumerate() {
        json.push_str(&format!("    \"{}\": {{\n", shape.shape));
        for (i, r) in shape.results.iter().enumerate() {
            json.push_str(&format!(
                "      \"{}\": {{ \"fresh\": {:.1}, \"reuse\": {:.1}, \"batch\": {:.1}, \"speedup_reuse_vs_fresh\": {:.2}, \"speedup_batch_vs_reuse\": {:.2}, \"speedup_batch_vs_fresh\": {:.2} }}{}\n",
                r.k,
                r.fresh,
                r.reuse,
                r.batch,
                r.reuse / r.fresh,
                r.batch / r.reuse,
                r.batch / r.fresh,
                if i + 1 < shape.results.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!(
            "    }}{}\n",
            if s + 1 < shapes.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch.json");
    std::fs::write(path, &json).expect("write BENCH_batch.json");
    println!("wrote {path}");

    if std::env::var("AUTOMODE_BENCH_ENFORCE").is_ok_and(|v| v == "1") {
        let mut ok = true;
        for shape in &shapes {
            let Some(r) = shape.results.iter().find(|r| r.k == 32) else {
                continue;
            };
            let vs_fresh = r.batch / r.fresh;
            let vs_reuse = r.batch / r.reuse;
            if vs_fresh < 2.0 {
                eprintln!(
                    "FAIL: {}: batch vs fresh at K=32 is {vs_fresh:.2}x (< 2x gate)",
                    shape.shape
                );
                ok = false;
            }
            if vs_reuse < 2.0 {
                eprintln!(
                    "FAIL: {}: batch vs reuse at K=32 is {vs_reuse:.2}x (< 2x gate)",
                    shape.shape
                );
                ok = false;
            }
        }
        if !ok {
            std::process::exit(1);
        }
        println!("gate: every shape has batch >= 2x fresh and >= 2x reuse at K=32");
    }
}
