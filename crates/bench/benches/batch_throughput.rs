//! Multi-scenario simulation throughput: how fast can K variants of a
//! drive scenario be swept?
//!
//! Three strategies over a mode-rich controller (40 operating modes, each
//! mode a 40-block random causal DFD — compilation elaborates every mode's
//! network, a run steps only the modes its scenario actually reaches), K
//! lane-scaled ramp scenarios each:
//!
//! * `fresh` — the repeated single-run loop: one `CompiledSim::new`
//!   (elaborate + causality + prepare) *per scenario*, then `run`;
//! * `reuse` — one `CompiledSim`, K sequential `run` calls (amortizes
//!   compilation, still one lane per pass);
//! * `batch` — one `CompiledSim`, one `run_batch` over all K lanes
//!   (amortizes compilation *and* steps every lane per plan pass).
//!
//! Writes `BENCH_batch.json` at the repository root with scenarios/second
//! per strategy and the pairwise speedups for K in {1, 8, 32, 128}
//! (acceptance gate: batch >= 4x fresh at K = 32, with reuse and lane
//! batching each contributing).
//!
//! Env knobs: `AUTOMODE_BENCH_QUICK=1` shrinks the workload for CI;
//! `AUTOMODE_BENCH_ENFORCE=1` exits nonzero if batch < 2x fresh at K = 32.

use std::hint::black_box;
use std::time::Instant;

use automode_bench::moded_controller;
use automode_core::model::{ComponentId, Model};
use automode_kernel::Stream;
use automode_sim::{stimulus, BatchScenario, CompiledSim};

fn workload() -> (Model, ComponentId) {
    moded_controller(40, 40, 7)
}

/// K lane-scaled ramp scenarios: lane `l` ramps the boundary input to a
/// lane-specific peak, so each variant explores its own operating region
/// (a handful of the controller's modes) while compilation covers all of
/// them.
fn scenarios(k: usize, ticks: usize) -> Vec<Vec<(&'static str, Stream)>> {
    (0..k)
        .map(|l| {
            let top = 3.0 + l as f64 * 0.1;
            vec![("in", stimulus::ramp(0.0, top, ticks))]
        })
        .collect()
}

/// Scenarios/second of the repeated single-run loop (compile per scenario).
fn measure_fresh(
    m: &Model,
    id: ComponentId,
    inputs: &[Vec<(&'static str, Stream)>],
    ticks: usize,
) -> f64 {
    let start = Instant::now();
    for lane in inputs {
        let mut sim = CompiledSim::new(m, id).unwrap();
        black_box(sim.run(lane, ticks).unwrap());
    }
    inputs.len() as f64 / start.elapsed().as_secs_f64()
}

/// Scenarios/second of one reused handle stepping lanes sequentially.
fn measure_reuse(
    m: &Model,
    id: ComponentId,
    inputs: &[Vec<(&'static str, Stream)>],
    ticks: usize,
) -> f64 {
    let mut sim = CompiledSim::new(m, id).unwrap();
    let start = Instant::now();
    for lane in inputs {
        black_box(sim.run(lane, ticks).unwrap());
    }
    inputs.len() as f64 / start.elapsed().as_secs_f64()
}

/// Scenarios/second of one lane-major `run_batch` over all lanes.
fn measure_batch(
    m: &Model,
    id: ComponentId,
    inputs: &[Vec<(&'static str, Stream)>],
    ticks: usize,
) -> f64 {
    let sim = CompiledSim::new(m, id).unwrap();
    let specs: Vec<BatchScenario<'_>> = inputs
        .iter()
        .map(|lane| BatchScenario::new(lane, ticks))
        .collect();
    let start = Instant::now();
    black_box(sim.run_batch(&specs).unwrap());
    inputs.len() as f64 / start.elapsed().as_secs_f64()
}

struct KResult {
    k: usize,
    fresh: f64,
    reuse: f64,
    batch: f64,
}

fn main() {
    let quick = std::env::var("AUTOMODE_BENCH_QUICK").is_ok_and(|v| v == "1");
    let (ticks, rounds, ks): (usize, usize, &[usize]) = if quick {
        (60, 2, &[1, 8, 32])
    } else {
        (200, 3, &[1, 8, 32, 128])
    };

    let (m, id) = workload();
    // Correctness cross-check before timing anything: the batch must agree
    // with sequential runs on the exact scenarios being measured.
    {
        let inputs = scenarios(4, ticks);
        let specs: Vec<BatchScenario<'_>> = inputs
            .iter()
            .map(|lane| BatchScenario::new(lane, ticks))
            .collect();
        let mut sim = CompiledSim::new(&m, id).unwrap();
        let batch = sim.run_batch(&specs).unwrap();
        for (lane, inp) in inputs.iter().enumerate() {
            assert_eq!(batch[lane], sim.run(inp, ticks).unwrap(), "lane {lane}");
        }
    }

    let mut results: Vec<KResult> = Vec::new();
    for &k in ks {
        let inputs = scenarios(k, ticks);
        // Best of `rounds` interleaved rounds per strategy, so a scheduler
        // hiccup cannot skew one side.
        let (mut fresh, mut reuse, mut batch) = (0.0f64, 0.0f64, 0.0f64);
        for _ in 0..rounds {
            fresh = fresh.max(measure_fresh(&m, id, &inputs, ticks));
            reuse = reuse.max(measure_reuse(&m, id, &inputs, ticks));
            batch = batch.max(measure_batch(&m, id, &inputs, ticks));
        }
        println!(
            "batch_throughput/K={k:<4} fresh: {fresh:>9.1}/s   reuse: {reuse:>9.1}/s   batch: {batch:>9.1}/s   batch/fresh: {:.2}x",
            batch / fresh
        );
        results.push(KResult {
            k,
            fresh,
            reuse,
            batch,
        });
    }

    let mut json = String::from(
        "{\n  \"bench\": \"batch_throughput\",\n  \"unit\": \"scenarios_per_second\",\n",
    );
    json.push_str(&format!(
        "  \"ticks_per_scenario\": {ticks},\n  \"quick\": {quick},\n  \"k\": {{\n"
    ));
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{ \"fresh\": {:.1}, \"reuse\": {:.1}, \"batch\": {:.1}, \"speedup_reuse_vs_fresh\": {:.2}, \"speedup_batch_vs_reuse\": {:.2}, \"speedup_batch_vs_fresh\": {:.2} }}{}\n",
            r.k,
            r.fresh,
            r.reuse,
            r.batch,
            r.reuse / r.fresh,
            r.batch / r.reuse,
            r.batch / r.fresh,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch.json");
    std::fs::write(path, &json).expect("write BENCH_batch.json");
    println!("wrote {path}");

    if std::env::var("AUTOMODE_BENCH_ENFORCE").is_ok_and(|v| v == "1") {
        let gate = results
            .iter()
            .find(|r| r.k == 32)
            .map(|r| r.batch / r.fresh)
            .unwrap_or(0.0);
        if gate < 2.0 {
            eprintln!("FAIL: batch speedup at K=32 is {gate:.2}x (< 2x gate)");
            std::process::exit(1);
        }
        println!("gate: batch speedup at K=32 is {gate:.2}x (>= 2x)");
    }
}
