//! Experiment E2 (Fig. 2): explicit signal sampling with the `when`
//! operator and `every(n, true)` clocks.
//!
//! Sweeps the downsampling factor and verifies the sampled stream's rate
//! (the shape claim: `when` with `every(n)` passes exactly 1/n of the
//! messages), measuring kernel throughput.

use automode_kernel::network::stimulus_from_streams;
use automode_kernel::ops::{EveryClockGen, When};
use automode_kernel::{Clock, Network, Stream};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn build(factor: u32) -> Network {
    let mut net = Network::new("fig2");
    let a = net.add_input("a");
    let clk = net.add_block(EveryClockGen::new(factor, 0));
    let when = net.add_block(When::new());
    net.connect_input(a, when.input(0)).unwrap();
    net.connect(clk.output(0), when.input(1)).unwrap();
    net.expose_output("a_sampled", when.output(0)).unwrap();
    net
}

fn shape_report() {
    eprintln!("\n[E2 report] sampled message counts over 1024 ticks:");
    for factor in [2u32, 4, 8, 16, 32, 64] {
        let net = build(factor);
        let stim = stimulus_from_streams(&[Stream::from_values(0i64..1024)]);
        let trace = net.run(&stim).unwrap();
        let s = trace.signal("a_sampled").unwrap();
        let conforms = s.conforms_to_clock(&Clock::every(factor, 0));
        eprintln!(
            "  every({factor:>2}, true): {:>4} messages (expected {:>4}), clock-conformant: {conforms}",
            s.present_count(),
            1024 / factor as usize
        );
        assert_eq!(s.present_count(), 1024 / factor as usize);
        assert!(conforms);
    }
}

fn bench(c: &mut Criterion) {
    shape_report();
    let mut group = c.benchmark_group("fig2_sampling");
    let ticks = 4096usize;
    group.throughput(Throughput::Elements(ticks as u64));
    for &factor in &[2u32, 8, 64] {
        let stim = stimulus_from_streams(&[Stream::from_values(0i64..ticks as i64)]);
        group.bench_with_input(BenchmarkId::new("when_every", factor), &factor, |b, &f| {
            b.iter(|| {
                let mut ready = build(f).prepare().unwrap();
                for row in &stim {
                    ready.step_tick(row).unwrap();
                }
            })
        });
    }
    group.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench
}
criterion_main!(benches);
