//! Clock-gated scheduling and expression-bytecode throughput.
//!
//! Two scenarios, each measuring steady-state ticks/second of the compiled
//! executor:
//!
//! * `multirate_sparse` — a small always-active base subsystem plus two
//!   large sampled subsystems clocked at 1/10 and 1/100 of the base rate.
//!   Compares the clock-gated execution plan (per-phase node lists skip
//!   provably-inert nodes) against the same prepared network with gating
//!   disabled. The slow chains dominate the node count, so gating should
//!   approach the sparsity ratio.
//! * `expr_heavy` — 64 expression blocks with ~25-node arithmetic
//!   expressions. Compares the bytecode-VM `ExprBlock` against a
//!   bench-local block that interprets the same AST through `SliceScope`
//!   name resolution per tick (the pre-VM execution path).
//!
//! Writes `BENCH_clock.json` at the repository root.
//! `AUTOMODE_BENCH_QUICK=1` shrinks the workload for CI smoke runs;
//! `AUTOMODE_BENCH_ENFORCE=1` exits nonzero if gating yields < 2x on
//! `multirate_sparse`.

use std::sync::Arc;
use std::time::Instant;

use automode_kernel::network::Network;
use automode_kernel::ops::{BinOp, Block, Const, Delay, EveryClockGen, Lift1, Lift2, UnOp, When};
use automode_kernel::{Clock, KernelError, Message, Tick, Value};
use automode_lang::{parse, Expr, ExprBlock, SliceScope};
use criterion::black_box;

/// One sampled subsystem: `when(every(period))` feeding a strict `Lift1`
/// chain of `depth` nodes, closed by a clocked `Delay` probe. Inactive at
/// `period - 1` of every `period` ticks — exactly what the gated plan
/// should skip.
fn add_sampled_chain(
    net: &mut Network,
    input: automode_kernel::network::InputId,
    tag: &str,
    period: u32,
    depth: usize,
) {
    let clk = net.add_block(EveryClockGen::new(period, 0));
    let when = net.add_block(When::new());
    net.connect_input(input, when.input(0)).unwrap();
    net.connect(clk.output(0), when.input(1)).unwrap();
    let mut src = when.output(0);
    for _ in 0..depth {
        let l = net.add_block(Lift1::new(UnOp::Neg));
        net.connect(src, l.input(0)).unwrap();
        src = l.output(0);
    }
    let gain = net.add_block(Const::on_clock(3i64, Clock::every(period, 0)));
    let scale = net.add_block(Lift2::new(BinOp::Add));
    net.connect(src, scale.input(0)).unwrap();
    net.connect(gain.output(0), scale.input(1)).unwrap();
    let del = net.add_block(Delay::on_clock(
        Some(Value::Int(0)),
        Clock::every(period, 0),
    ));
    net.connect(scale.output(0), del.input(0)).unwrap();
    net.expose_output(format!("slow_{tag}"), del.output(0))
        .unwrap();
}

/// Base-rate accumulator subsystem (~16 always-active nodes) plus sampled
/// chains at 1/10 (60 nodes) and 1/100 (60 nodes) of the base rate:
/// roughly 140 nodes, of which ~6.6 are live on an average tick.
fn build_sparse() -> Network {
    let mut net = Network::new("multirate_sparse");
    let input = net.add_input("u");
    let mut prev = None;
    for _ in 0..7 {
        let one = net.add_block(Const::new(1i64));
        let add = net.add_block(Lift2::new(BinOp::Add));
        match prev {
            None => net.connect_input(input, add.input(0)).unwrap(),
            Some(p) => net.connect(p, add.input(0)).unwrap(),
        }
        net.connect(one.output(0), add.input(1)).unwrap();
        prev = Some(add.output(0));
    }
    let del = net.add_block(Delay::new(0i64));
    net.connect(prev.unwrap(), del.input(0)).unwrap();
    net.expose_output("base", del.output(0)).unwrap();

    add_sampled_chain(&mut net, input, "p10", 10, 57);
    add_sampled_chain(&mut net, input, "p100", 100, 57);
    net
}

/// The pre-VM `ExprBlock` execution path, reproduced verbatim: per tick,
/// walk the AST with `SliceScope` resolving port names by linear scan.
#[derive(Debug, Clone)]
struct AstExprBlock {
    name: Arc<str>,
    inputs: Arc<[String]>,
    expr: Arc<Expr>,
}

impl AstExprBlock {
    fn new(name: &str, inputs: &[&str], expr: Expr) -> Self {
        AstExprBlock {
            name: name.into(),
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            expr: Arc::new(expr),
        }
    }
}

impl Block for AstExprBlock {
    fn name(&self) -> &str {
        &self.name
    }
    fn input_arity(&self) -> usize {
        self.inputs.len()
    }
    fn output_arity(&self) -> usize {
        1
    }
    fn step(&mut self, t: Tick, inputs: &[Message]) -> Result<Vec<Message>, KernelError> {
        let mut out = vec![Message::Absent; 1];
        self.step_into(t, inputs, &mut out)?;
        Ok(out)
    }
    fn step_into(
        &mut self,
        _t: Tick,
        inputs: &[Message],
        out: &mut [Message],
    ) -> Result<(), KernelError> {
        let scope = SliceScope::new(&self.inputs, inputs);
        out[0] = self.expr.eval_in(&scope).map_err(|e| KernelError::Block {
            block: self.name.to_string(),
            message: e.to_string(),
        })?;
        Ok(())
    }
    fn needs_commit(&self) -> bool {
        false
    }
    fn clone_block(&self) -> Box<dyn Block + Send + Sync> {
        Box::new(self.clone())
    }
}

const EXPR_SRC: &str =
    "clamp(a * b + b * c + a * c, a + b, a * b + 100) + abs(a - b) + min(a * c, b * c) + max(a + c, b + 10)";

/// 64 expression blocks over three shared inputs; `vm` selects the
/// bytecode-compiled `ExprBlock` or the AST-interpreting baseline.
fn build_expr_heavy(vm: bool) -> Network {
    let mut net = Network::new("expr_heavy");
    let a = net.add_input("a");
    let b = net.add_input("b");
    let c = net.add_input("c");
    let expr = parse(EXPR_SRC).unwrap();
    for i in 0..64 {
        let h = if vm {
            net.add_block(ExprBlock::with_inputs(
                format!("vm{i}"),
                ["a", "b", "c"],
                expr.clone(),
            ))
        } else {
            net.add_block(AstExprBlock::new(
                &format!("ast{i}"),
                &["a", "b", "c"],
                expr.clone(),
            ))
        };
        net.connect_input(a, h.input(0)).unwrap();
        net.connect_input(b, h.input(1)).unwrap();
        net.connect_input(c, h.input(2)).unwrap();
        if i % 16 == 0 {
            net.expose_output(format!("y{i}"), h.output(0)).unwrap();
        }
    }
    net
}

/// Steady-state ticks/second of a prepared network over `row`.
fn measure(mut ready: automode_kernel::ReadyNetwork, row: &[Message], ticks: usize) -> f64 {
    for _ in 0..ticks / 10 {
        black_box(ready.step_tick_observed(row).unwrap());
    }
    let start = Instant::now();
    for _ in 0..ticks {
        black_box(ready.step_tick_observed(row).unwrap());
    }
    ticks as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let quick = std::env::var("AUTOMODE_BENCH_QUICK").is_ok_and(|v| v == "1");
    let ticks = if quick { 4_000 } else { 20_000 };

    // Interleave and take the best of three rounds per variant so one
    // scheduler hiccup cannot skew either side.
    let sparse_row = [Message::present(Value::Int(1))];
    let mut gated = 0.0f64;
    let mut ungated = 0.0f64;
    for _ in 0..3 {
        let ready = build_sparse().prepare().unwrap();
        assert_eq!(ready.gated_hyperperiod(), Some(100), "plan must compile");
        gated = gated.max(measure(ready, &sparse_row, ticks));
        let mut plain = build_sparse().prepare().unwrap();
        plain.disable_clock_gating();
        ungated = ungated.max(measure(plain, &sparse_row, ticks));
    }
    let sparse_speedup = gated / ungated;
    println!(
        "multirate_sparse/gating     ungated: {ungated:>12.0} ticks/s   gated: {gated:>12.0} ticks/s   speedup: {sparse_speedup:.2}x"
    );

    let expr_row = [
        Message::present(Value::Int(7)),
        Message::present(Value::Int(-3)),
        Message::present(Value::Int(11)),
    ];
    let mut bytecode = 0.0f64;
    let mut ast = 0.0f64;
    for _ in 0..3 {
        bytecode = bytecode.max(measure(
            build_expr_heavy(true).prepare().unwrap(),
            &expr_row,
            ticks,
        ));
        ast = ast.max(measure(
            build_expr_heavy(false).prepare().unwrap(),
            &expr_row,
            ticks,
        ));
    }
    let expr_speedup = bytecode / ast;
    println!(
        "expr_heavy/bytecode         ast:     {ast:>12.0} ticks/s   vm:    {bytecode:>12.0} ticks/s   speedup: {expr_speedup:.2}x"
    );

    let json = format!(
        "{{\n  \"bench\": \"multirate_sparse\",\n  \"unit\": \"ticks_per_second\",\n  \"scenarios\": {{\n    \"multirate_sparse\": {{ \"ticks\": {ticks}, \"ungated\": {ungated:.0}, \"gated\": {gated:.0}, \"speedup\": {sparse_speedup:.2} }},\n    \"expr_heavy\": {{ \"ticks\": {ticks}, \"ast\": {ast:.0}, \"bytecode\": {bytecode:.0}, \"speedup\": {expr_speedup:.2} }}\n  }}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_clock.json");
    std::fs::write(path, &json).expect("write BENCH_clock.json");
    println!("wrote {path}");

    if std::env::var("AUTOMODE_BENCH_ENFORCE").is_ok_and(|v| v == "1") {
        if sparse_speedup < 2.0 {
            eprintln!("FAIL: clock-gating speedup is {sparse_speedup:.2}x (< 2x gate)");
            std::process::exit(1);
        }
        println!("gate: clock-gating speedup is {sparse_speedup:.2}x (>= 2x)");
    }
}
