//! Discrete-event scheduling throughput.
//!
//! Five scenarios, each measuring steady-state ticks/second of the compiled
//! executor, pinning the event engine's wins and its no-regression guards:
//!
//! * `mixed` — rates 1/1, 1/64, and 1/1000 in one network. The clock lcm
//!   (8000) exceeds the hyperperiod wheel cap, so before the event engine
//!   this shape lost gating wholesale and ran the full dense schedule every
//!   tick; the heap backend must now beat that fallback by the sparsity
//!   ratio (gate: >= 5x full mode).
//! * `silent` — zero-input clusters of clocked sources at 1/1000 and
//!   1/4000 with probed outputs: a wheel plan where most phases are
//!   provably silent. Compares the fast-forwarding `run` against the
//!   per-tick gated walk (the PR-4 status quo) on the same wheel plan.
//!   Both sides still materialize one dense trace row per tick, and that
//!   `Vec<Message>` write is memory-bandwidth-bound (~30 ns/tick for two
//!   columns on the reference runner — the bulk fill alone, with zero
//!   engine work, costs that much), so the win saturates near 2x
//!   (gate: >= 1.5x full mode).
//! * `silent_headless` — the same clusters with nothing probed, i.e.
//!   fast-forward to a future state without a per-tick observation. With
//!   the output floor gone this isolates the engine itself: quiet
//!   stretches collapse to an O(1) horizon lookup plus one bulk row count
//!   (gate: >= 8x full mode).
//! * `dense_guard` — a base-rate-dominated multirate shape (hyperperiod
//!   100, no quiet phase): `run` with the event engine must not regress
//!   against the per-tick walk (gate: >= 0.95x full mode).
//! * `batch_guard` — the same dense shape through `run_batch` (K = 8
//!   lanes): the unified event-driven batch loop must not regress against
//!   the dense batch walk (gate: >= 0.95x full mode).
//!
//! Writes `BENCH_event.json` at the repository root.
//! `AUTOMODE_BENCH_QUICK=1` shrinks the workload for CI smoke runs (with
//! proportionally looser gates); `AUTOMODE_BENCH_ENFORCE=1` exits nonzero
//! when a gate fails.

use std::time::Instant;

use automode_kernel::network::Network;
use automode_kernel::ops::{BinOp, Const, Delay, EveryClockGen, Lift1, Lift2, UnOp, When};
use automode_kernel::{Clock, EngineKind, Message, Trace, Value};
use criterion::black_box;

/// One sampled subsystem: `when(every(period))` feeding a strict `Lift1`
/// chain of `depth` nodes, closed by a clocked `Delay` probe.
fn add_sampled_chain(
    net: &mut Network,
    input: automode_kernel::network::InputId,
    tag: &str,
    period: u32,
    depth: usize,
) {
    let clk = net.add_block(EveryClockGen::new(period, 0));
    let when = net.add_block(When::new());
    net.connect_input(input, when.input(0)).unwrap();
    net.connect(clk.output(0), when.input(1)).unwrap();
    let mut src = when.output(0);
    for _ in 0..depth {
        let l = net.add_block(Lift1::new(UnOp::Neg));
        net.connect(src, l.input(0)).unwrap();
        src = l.output(0);
    }
    let gain = net.add_block(Const::on_clock(3i64, Clock::every(period, 0)));
    let scale = net.add_block(Lift2::new(BinOp::Add));
    net.connect(src, scale.input(0)).unwrap();
    net.connect(gain.output(0), scale.input(1)).unwrap();
    let del = net.add_block(Delay::on_clock(
        Some(Value::Int(0)),
        Clock::every(period, 0),
    ));
    net.connect(scale.output(0), del.input(0)).unwrap();
    net.expose_output(format!("slow_{tag}"), del.output(0))
        .unwrap();
}

/// A small always-active base accumulator (~16 nodes).
fn add_base(net: &mut Network, input: automode_kernel::network::InputId) {
    let mut prev = None;
    for _ in 0..7 {
        let one = net.add_block(Const::new(1i64));
        let add = net.add_block(Lift2::new(BinOp::Add));
        match prev {
            None => net.connect_input(input, add.input(0)).unwrap(),
            Some(p) => net.connect(p, add.input(0)).unwrap(),
        }
        net.connect(one.output(0), add.input(1)).unwrap();
        prev = Some(add.output(0));
    }
    let del = net.add_block(Delay::new(0i64));
    net.connect(prev.unwrap(), del.input(0)).unwrap();
    net.expose_output("base", del.output(0)).unwrap();
}

/// Rates 1/1, 1/64, 1/1000: clock lcm 8000 exceeds the wheel cap, so this
/// shape is exactly the "hyperperiod-cap cliff" — heap backend territory.
fn build_mixed() -> Network {
    let mut net = Network::new("mixed_event");
    let input = net.add_input("u");
    add_base(&mut net, input);
    add_sampled_chain(&mut net, input, "p64", 64, 97);
    add_sampled_chain(&mut net, input, "p1000", 1000, 97);
    net
}

/// Zero-input clusters of clocked sources (no clock generators, no
/// base-rate nodes): most ticks are provably silent under the wheel plan.
/// `probed` controls whether the cluster tails are exposed — headless runs
/// measure the engine without the per-tick trace materialization floor.
fn build_silent(probed: bool) -> Network {
    let mut net = Network::new("silent_event");
    for (k, period) in [(0usize, 1000u32), (1, 4000)] {
        let clock = Clock::every(period, 0);
        let src = net.add_block(Const::on_clock(7i64 + k as i64, clock.clone()));
        let mut out = src.output(0);
        for _ in 0..57 {
            let l = net.add_block(Lift1::new(UnOp::Neg));
            net.connect(out, l.input(0)).unwrap();
            out = l.output(0);
        }
        let del = net.add_block(Delay::on_clock(Some(Value::Int(0)), clock));
        net.connect(out, del.input(0)).unwrap();
        if probed {
            net.expose_output(format!("d{k}"), del.output(0)).unwrap();
        }
    }
    net
}

/// Base-heavy multirate shape (hyperperiod 100): every tick does base work,
/// so the event engine has nothing to skip — the no-regression guard.
fn build_dense() -> Network {
    let mut net = Network::new("dense_event");
    let input = net.add_input("u");
    add_base(&mut net, input);
    add_sampled_chain(&mut net, input, "p10", 10, 17);
    add_sampled_chain(&mut net, input, "p100", 100, 17);
    net
}

/// Ticks/second of `run` over `stim` (trace building included), best of
/// one warmup plus timed repetition.
fn measure_run(ready: &mut automode_kernel::ReadyNetwork, stim: &[Vec<Message>]) -> f64 {
    ready.reset();
    black_box(ready.run(stim).unwrap());
    ready.reset();
    let start = Instant::now();
    black_box(ready.run(stim).unwrap());
    stim.len() as f64 / start.elapsed().as_secs_f64()
}

/// Ticks/second of a per-tick `step_tick_observed` + `push_row_indexed`
/// loop — exactly what `run` did before silent-stretch fast-forwarding.
fn measure_step_loop(ready: &mut automode_kernel::ReadyNetwork, stim: &[Vec<Message>]) -> f64 {
    let names: Vec<String> = {
        ready.reset();
        let t = ready.run(&stim[..1.min(stim.len())]).unwrap();
        t.signal_names().map(str::to_string).collect()
    };
    let go = |ready: &mut automode_kernel::ReadyNetwork| {
        ready.reset();
        let mut trace = Trace::new();
        for n in &names {
            trace.declare(n.clone());
        }
        for row in stim {
            let observed = ready.step_tick_observed(row).unwrap();
            trace.push_row_indexed(observed).unwrap();
        }
        trace
    };
    black_box(go(ready));
    let start = Instant::now();
    black_box(go(ready));
    stim.len() as f64 / start.elapsed().as_secs_f64()
}

/// Lane-ticks/second of `run_batch` over `k` equal lanes.
fn measure_batch(ready: &automode_kernel::ReadyNetwork, stim: &[Vec<Message>], k: usize) -> f64 {
    let lanes: Vec<Vec<Vec<Message>>> = (0..k).map(|_| stim.to_vec()).collect();
    black_box(ready.run_batch(&lanes).unwrap());
    let start = Instant::now();
    black_box(ready.run_batch(&lanes).unwrap());
    (stim.len() * k) as f64 / start.elapsed().as_secs_f64()
}

fn present_rows(ticks: usize) -> Vec<Vec<Message>> {
    (0..ticks)
        .map(|_| vec![Message::present(Value::Int(1))])
        .collect()
}

struct Gate {
    name: &'static str,
    speedup: f64,
    min: f64,
}

fn main() {
    let quick = std::env::var("AUTOMODE_BENCH_QUICK").is_ok_and(|v| v == "1");
    let ticks = if quick { 4_000 } else { 20_000 };
    let silent_ticks = if quick { 20_000 } else { 200_000 };

    // mixed: heap backend vs the dense fallback these nets were stuck with.
    let mixed_stim = present_rows(ticks);
    let mut event = 0.0f64;
    let mut dense = 0.0f64;
    for _ in 0..3 {
        let mut ready = build_mixed().prepare().unwrap();
        let info = ready.plan_info();
        assert_eq!(
            info.kind,
            EngineKind::Heap,
            "mixed must use the heap: {info}"
        );
        event = event.max(measure_step_loop(&mut ready, &mixed_stim));
        let mut plain = build_mixed().prepare().unwrap();
        plain.disable_clock_gating();
        dense = dense.max(measure_step_loop(&mut plain, &mixed_stim));
    }
    let mixed_speedup = event / dense;
    println!(
        "mixed/heap_vs_dense         dense: {dense:>12.0} ticks/s   event: {event:>12.0} ticks/s   speedup: {mixed_speedup:.2}x"
    );

    // silent: fast-forwarding run vs the per-tick gated walk on one wheel.
    let silent_stim: Vec<Vec<Message>> = vec![Vec::new(); silent_ticks];
    let mut ff = 0.0f64;
    let mut walk = 0.0f64;
    for _ in 0..3 {
        let mut ready = build_silent(true).prepare().unwrap();
        let info = ready.plan_info();
        assert_eq!(
            info.kind,
            EngineKind::Wheel,
            "silent must compile a wheel: {info}"
        );
        ff = ff.max(measure_run(&mut ready, &silent_stim));
        walk = walk.max(measure_step_loop(&mut ready, &silent_stim));
    }
    let silent_speedup = ff / walk;
    println!(
        "silent/ff_vs_gated_walk     walk:  {walk:>12.0} ticks/s   event: {ff:>12.0} ticks/s   speedup: {silent_speedup:.2}x"
    );

    // silent_headless: same clusters, nothing probed — the engine alone.
    let mut ff_hl = 0.0f64;
    let mut walk_hl = 0.0f64;
    for _ in 0..3 {
        let mut ready = build_silent(false).prepare().unwrap();
        let info = ready.plan_info();
        assert_eq!(
            info.kind,
            EngineKind::Wheel,
            "headless must compile a wheel: {info}"
        );
        ff_hl = ff_hl.max(measure_run(&mut ready, &silent_stim));
        walk_hl = walk_hl.max(measure_step_loop(&mut ready, &silent_stim));
    }
    let headless_speedup = ff_hl / walk_hl;
    println!(
        "silent_headless/ff_vs_walk  walk:  {walk_hl:>12.0} ticks/s   event: {ff_hl:>12.0} ticks/s   speedup: {headless_speedup:.2}x"
    );

    // dense_guard: run must not regress vs the per-tick walk when nothing
    // can be skipped.
    let dense_stim = present_rows(ticks);
    let mut guarded = 0.0f64;
    let mut walk_dense = 0.0f64;
    for _ in 0..3 {
        let mut ready = build_dense().prepare().unwrap();
        assert_eq!(ready.gated_hyperperiod(), Some(100), "dense shape wheel");
        guarded = guarded.max(measure_run(&mut ready, &dense_stim));
        walk_dense = walk_dense.max(measure_step_loop(&mut ready, &dense_stim));
    }
    let dense_ratio = guarded / walk_dense;
    println!(
        "dense_guard/run_vs_walk     walk:  {walk_dense:>12.0} ticks/s   run:   {guarded:>12.0} ticks/s   ratio:   {dense_ratio:.2}x"
    );

    // batch_guard: the unified event-driven batch loop vs the dense batch
    // walk on the same shape, K = 8 lanes.
    let batch_stim = present_rows(ticks / 4);
    let mut batch_event = 0.0f64;
    let mut batch_dense = 0.0f64;
    for _ in 0..3 {
        let ready = build_dense().prepare().unwrap();
        batch_event = batch_event.max(measure_batch(&ready, &batch_stim, 8));
        let mut plain = build_dense().prepare().unwrap();
        plain.disable_clock_gating();
        batch_dense = batch_dense.max(measure_batch(&plain, &batch_stim, 8));
    }
    let batch_ratio = batch_event / batch_dense;
    println!(
        "batch_guard/event_vs_dense  dense: {batch_dense:>12.0} lane-ticks/s   event: {batch_event:>12.0} lane-ticks/s   ratio:   {batch_ratio:.2}x"
    );

    let json = format!(
        "{{\n  \"bench\": \"sparse_multirate_event\",\n  \"unit\": \"ticks_per_second\",\n  \"scenarios\": {{\n    \"mixed\": {{ \"ticks\": {ticks}, \"dense\": {dense:.0}, \"event\": {event:.0}, \"speedup\": {mixed_speedup:.2} }},\n    \"silent\": {{ \"ticks\": {silent_ticks}, \"gated_walk\": {walk:.0}, \"event\": {ff:.0}, \"speedup\": {silent_speedup:.2} }},\n    \"silent_headless\": {{ \"ticks\": {silent_ticks}, \"gated_walk\": {walk_hl:.0}, \"event\": {ff_hl:.0}, \"speedup\": {headless_speedup:.2} }},\n    \"dense_guard\": {{ \"ticks\": {ticks}, \"walk\": {walk_dense:.0}, \"run\": {guarded:.0}, \"ratio\": {dense_ratio:.2} }},\n    \"batch_guard\": {{ \"lane_ticks\": {}, \"dense\": {batch_dense:.0}, \"event\": {batch_event:.0}, \"ratio\": {batch_ratio:.2} }}\n  }}\n}}\n",
        batch_stim.len() * 8
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_event.json");
    std::fs::write(path, &json).expect("write BENCH_event.json");
    println!("wrote {path}");

    if std::env::var("AUTOMODE_BENCH_ENFORCE").is_ok_and(|v| v == "1") {
        // Quick mode runs tiny workloads on noisy CI runners; gates scale
        // accordingly. Full-mode gates match the acceptance criteria.
        // The probed `silent` gate is deliberately modest: both sides pay
        // the memory-bandwidth-bound dense trace fill (see module docs),
        // so the engine's win there tops out near 2x. `silent_headless`
        // carries the uncapped engine-only gate.
        let gates = if quick {
            [
                Gate {
                    name: "mixed",
                    speedup: mixed_speedup,
                    min: 2.5,
                },
                Gate {
                    name: "silent",
                    speedup: silent_speedup,
                    min: 1.3,
                },
                Gate {
                    name: "silent_headless",
                    speedup: headless_speedup,
                    min: 5.0,
                },
                Gate {
                    name: "dense_guard",
                    speedup: dense_ratio,
                    min: 0.85,
                },
                Gate {
                    name: "batch_guard",
                    speedup: batch_ratio,
                    min: 0.85,
                },
            ]
        } else {
            [
                Gate {
                    name: "mixed",
                    speedup: mixed_speedup,
                    min: 5.0,
                },
                Gate {
                    name: "silent",
                    speedup: silent_speedup,
                    min: 1.5,
                },
                Gate {
                    name: "silent_headless",
                    speedup: headless_speedup,
                    min: 8.0,
                },
                Gate {
                    name: "dense_guard",
                    speedup: dense_ratio,
                    min: 0.95,
                },
                Gate {
                    name: "batch_guard",
                    speedup: batch_ratio,
                    min: 0.95,
                },
            ]
        };
        let mut failed = false;
        for g in &gates {
            if g.speedup < g.min {
                eprintln!(
                    "FAIL: {} is {:.2}x (< {:.2}x gate)",
                    g.name, g.speedup, g.min
                );
                failed = true;
            } else {
                println!("gate: {} is {:.2}x (>= {:.2}x)", g.name, g.speedup, g.min);
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
