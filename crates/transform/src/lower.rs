//! Lowering: LA clusters → ASCET modules (the code-generation front half).
//!
//! Deployment generates "ASCET-SD projects for each ECU" (paper, Sec. 3.4).
//! This module converts one cluster's behaviour — an expression component
//! or a DFD of expression/delay blocks — into an imperative ASCET module:
//! internal channels become local messages, delay blocks become state
//! messages read at the top and updated at the bottom of the process body,
//! and the block evaluation order is the DFD's causal schedule.

use std::collections::BTreeMap;

use automode_ascet::model::{AscetType, MessageDecl, MessageKind, Module, Process, Stmt};
use automode_core::ccd::Cluster;
use automode_core::model::{Behavior, CompositeKind, Endpoint, Model, Primitive};
use automode_core::types::DataType;
use automode_kernel::{causality, Value};
use automode_lang::Expr;

use crate::error::TransformError;

fn to_ascet_type(ty: &DataType) -> Result<AscetType, TransformError> {
    match ty {
        DataType::Bool => Ok(AscetType::Log),
        DataType::Int => Ok(AscetType::SDisc),
        DataType::Float | DataType::Physical { .. } => Ok(AscetType::Cont),
        DataType::Enum(e) => Err(TransformError::Unsupported(format!(
            "enum type `{}` has no ASCET lowering; refine it to an integer first",
            e.name
        ))),
    }
}

fn default_init(ty: AscetType) -> Value {
    ty.default_value()
}

/// Lowers one cluster into an ASCET module whose single process runs at the
/// cluster's period (interpreting one base tick as one millisecond).
///
/// # Errors
///
/// [`TransformError::Unsupported`] for behaviours outside the supported
/// fragment (MTDs must be transformed to dataflow first; STDs are not
/// lowered).
pub fn cluster_to_module(model: &Model, cluster: &Cluster) -> Result<Module, TransformError> {
    let comp = model.component(cluster.component);
    let mut module = Module::new(cluster.name.clone());

    // Interface messages are qualified with the cluster name: ASCET
    // messages are bound project-wide, so two clusters on one ECU must not
    // collide; the qualified names also match the communication matrix's
    // `{cluster}_{port}` signal names.
    let q = |port: &str| format!("{}_{port}", cluster.name);
    for p in comp.inputs() {
        module = module.message(MessageDecl::new(
            q(&p.name),
            to_ascet_type(&p.ty)?,
            MessageKind::Receive,
        ));
    }
    for p in comp.outputs() {
        module = module.message(MessageDecl::new(
            q(&p.name),
            to_ascet_type(&p.ty)?,
            MessageKind::Send,
        ));
    }

    let mut body: Vec<Stmt> = Vec::new();
    match &comp.behavior {
        Behavior::Expr(defs) => {
            let input_names: Vec<String> = comp.inputs().map(|p| p.name.clone()).collect();
            for p in comp.outputs() {
                let expr = defs.get(&p.name).ok_or_else(|| {
                    TransformError::Precondition(format!(
                        "output `{}.{}` has no defining expression",
                        comp.name, p.name
                    ))
                })?;
                let qualified = expr.substitute(&|ident| {
                    input_names
                        .iter()
                        .any(|n| n == ident)
                        .then(|| Expr::ident(q(ident)))
                });
                body.push(Stmt::assign(q(&p.name), qualified));
            }
        }
        Behavior::Composite(net) if net.kind == CompositeKind::Dfd => {
            // Message name of the value produced at an endpoint. Boundary
            // ports use the qualified interface names; internal channels
            // use cluster-qualified locals.
            let source_msg = |ep: &Endpoint| -> String {
                match &ep.instance {
                    None => q(&ep.port),
                    Some(inst) => format!("{}__{inst}_{}", cluster.name, ep.port),
                }
            };
            // For each child input port, the message that drives it.
            let mut drive: BTreeMap<(String, String), String> = BTreeMap::new();
            for ch in &net.channels {
                if let Some(ti) = &ch.to.instance {
                    drive.insert((ti.clone(), ch.to.port.clone()), source_msg(&ch.from));
                }
            }

            // Declare one local message per child output.
            for inst in &net.instances {
                let child = model.component(inst.component);
                for p in child.outputs() {
                    let name = format!("{}__{}_{}", cluster.name, inst.name, p.name);
                    module = module.message(MessageDecl::new(
                        name,
                        to_ascet_type(&p.ty)?,
                        MessageKind::Local,
                    ));
                }
            }

            // Topological order over instantaneous channels (delay children
            // read their input at the end of the body).
            let idx_of: BTreeMap<&str, usize> = net
                .instances
                .iter()
                .enumerate()
                .map(|(i, inst)| (inst.name.as_str(), i))
                .collect();
            let is_delay = |i: usize| {
                matches!(
                    model.component(net.instances[i].component).behavior,
                    Behavior::Primitive(Primitive::Delay { .. })
                        | Behavior::Primitive(Primitive::UnitDelay { .. })
                )
            };
            let mut edges = Vec::new();
            for ch in &net.channels {
                if let (Some(fi), Some(ti)) = (&ch.from.instance, &ch.to.instance) {
                    let (a, b) = (idx_of[fi.as_str()], idx_of[ti.as_str()]);
                    if !is_delay(b) {
                        edges.push((a, b));
                    }
                }
            }
            let order = causality::check(net.instances.len(), &edges, |i| {
                net.instances[i].name.clone()
            })
            .map_err(|e| TransformError::Unsupported(format!("cluster not causal: {e}")))?;

            // Delay blocks: read state first.
            let mut tail: Vec<Stmt> = Vec::new();
            for (i, inst) in net.instances.iter().enumerate() {
                if !is_delay(i) {
                    continue;
                }
                let child = model.component(inst.component);
                let out = child.outputs().next().ok_or_else(|| {
                    TransformError::Unsupported(format!("delay `{}` has no output", inst.name))
                })?;
                let in_port = child.inputs().next().ok_or_else(|| {
                    TransformError::Unsupported(format!("delay `{}` has no input", inst.name))
                })?;
                let state_msg = format!("{}__{}__state", cluster.name, inst.name);
                let init = match &child.behavior {
                    Behavior::Primitive(Primitive::Delay { init })
                    | Behavior::Primitive(Primitive::UnitDelay { init }) => init
                        .clone()
                        .unwrap_or_else(|| default_init(to_ascet_type(&out.ty).expect("checked"))),
                    _ => unreachable!("is_delay checked"),
                };
                module = module.message(
                    MessageDecl::new(
                        state_msg.clone(),
                        to_ascet_type(&out.ty)?,
                        MessageKind::Local,
                    )
                    .init(init),
                );
                body.push(Stmt::assign(
                    format!("{}__{}_{}", cluster.name, inst.name, out.name),
                    Expr::ident(state_msg.clone()),
                ));
                let driver = drive
                    .get(&(inst.name.clone(), in_port.name.clone()))
                    .cloned()
                    .ok_or_else(|| {
                        TransformError::Precondition(format!(
                            "delay `{}` input is unconnected",
                            inst.name
                        ))
                    })?;
                tail.push(Stmt::assign(state_msg, Expr::ident(driver)));
            }

            // Instantaneous blocks in causal order.
            for &i in &order {
                if is_delay(i) {
                    continue;
                }
                let inst = &net.instances[i];
                let child = model.component(inst.component);
                let driver_of = |port: &str| -> Result<String, TransformError> {
                    drive
                        .get(&(inst.name.clone(), port.to_string()))
                        .cloned()
                        .ok_or_else(|| {
                            TransformError::Precondition(format!(
                                "input `{}.{port}` is unconnected",
                                inst.name
                            ))
                        })
                };
                match &child.behavior {
                    Behavior::Expr(defs) => {
                        for p in child.outputs() {
                            let expr = defs.get(&p.name).ok_or_else(|| {
                                TransformError::Precondition(format!(
                                    "output `{}.{}` undefined",
                                    inst.name, p.name
                                ))
                            })?;
                            let substituted = expr.substitute(&|ident| {
                                drive
                                    .get(&(inst.name.clone(), ident.to_string()))
                                    .map(|m| Expr::ident(m.clone()))
                            });
                            body.push(Stmt::assign(
                                format!("{}__{}_{}", cluster.name, inst.name, p.name),
                                substituted,
                            ));
                        }
                    }
                    // `when` lowers to the canonical imperative idiom:
                    // update only while the condition holds (the hold in
                    // the else branch replaces the model's absence).
                    Behavior::Primitive(Primitive::When) => {
                        let mut ins = child.inputs();
                        let data = ins.next().ok_or_else(|| {
                            TransformError::Unsupported(format!(
                                "when `{}` needs a data input",
                                inst.name
                            ))
                        })?;
                        let cond = ins.next().ok_or_else(|| {
                            TransformError::Unsupported(format!(
                                "when `{}` needs a condition input",
                                inst.name
                            ))
                        })?;
                        let out = child.outputs().next().ok_or_else(|| {
                            TransformError::Unsupported(format!(
                                "when `{}` needs an output",
                                inst.name
                            ))
                        })?;
                        let target = format!("{}__{}_{}", cluster.name, inst.name, out.name);
                        body.push(Stmt::If {
                            cond: Expr::ident(driver_of(&cond.name)?),
                            then_branch: vec![Stmt::assign(
                                target.clone(),
                                Expr::ident(driver_of(&data.name)?),
                            )],
                            else_branch: vec![Stmt::assign(target.clone(), Expr::ident(target))],
                        });
                    }
                    // `current` is the identity in an imperative target:
                    // every message always carries its latest value.
                    Behavior::Primitive(Primitive::Current { .. }) => {
                        let input = child.inputs().next().ok_or_else(|| {
                            TransformError::Unsupported(format!(
                                "current `{}` needs an input",
                                inst.name
                            ))
                        })?;
                        let out = child.outputs().next().ok_or_else(|| {
                            TransformError::Unsupported(format!(
                                "current `{}` needs an output",
                                inst.name
                            ))
                        })?;
                        body.push(Stmt::assign(
                            format!("{}__{}_{}", cluster.name, inst.name, out.name),
                            Expr::ident(driver_of(&input.name)?),
                        ));
                    }
                    other => {
                        return Err(TransformError::Unsupported(format!(
                            "block `{}` has unsupported behaviour {:?} for lowering; \
                             transform MTDs to dataflow and inline composites first",
                            inst.name,
                            std::mem::discriminant(other)
                        )))
                    }
                }
            }

            // Boundary outputs.
            for ch in &net.channels {
                if ch.to.instance.is_none() {
                    body.push(Stmt::assign(
                        q(&ch.to.port),
                        Expr::ident(source_msg(&ch.from)),
                    ));
                }
            }
            body.extend(tail);
        }
        Behavior::Mtd(_) => {
            return Err(TransformError::Unsupported(format!(
                "cluster `{}` wraps an MTD; apply mtd_to_dataflow before deployment",
                cluster.name
            )))
        }
        other => {
            return Err(TransformError::Unsupported(format!(
                "cluster `{}` behaviour {:?} cannot be lowered",
                cluster.name,
                std::mem::discriminant(other)
            )))
        }
    }

    module = module.process(Process::new(
        format!("{}_step", cluster.name),
        cluster.period,
        body,
    ));
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use automode_ascet::{AscetInterp, AscetModel, Stimulus};
    use automode_core::model::{Component, Composite};
    use automode_lang::parse;

    #[test]
    fn expr_cluster_lowers_to_assignments() {
        let mut m = Model::new("t");
        let c = m
            .add_component(
                Component::new("Gain")
                    .input("u", DataType::Float)
                    .output("y", DataType::Float)
                    .with_behavior(Behavior::expr("y", parse("u * 3.0").unwrap())),
            )
            .unwrap();
        let cluster = Cluster::new("gain", c, 10);
        let module = cluster_to_module(&m, &cluster).unwrap();
        assert_eq!(module.processes.len(), 1);
        assert_eq!(module.processes[0].period_ms, 10);
        assert_eq!(module.processes[0].writes(), vec!["gain_y"]);
        // The lowered module actually runs.
        let ascet = AscetModel::new("p").module(module);
        let mut interp = AscetInterp::new(&ascet).unwrap();
        let mut stim = Stimulus::new();
        stim.insert("gain_u".into(), Box::new(|_| Some(Value::Float(2.0))));
        interp.step_ms(&stim).unwrap();
        assert_eq!(interp.value("gain_y"), Some(&Value::Float(6.0)));
    }

    #[test]
    fn dfd_cluster_lowers_with_locals_and_state() {
        // acc = delay(acc_next); acc_next = acc + u  (integrator).
        let mut m = Model::new("t");
        let add = m
            .add_component(
                Component::new("Add")
                    .input("a", DataType::Float)
                    .input("b", DataType::Float)
                    .output("s", DataType::Float)
                    .with_behavior(Behavior::expr("s", parse("a + b").unwrap())),
            )
            .unwrap();
        let dly = m
            .add_component(
                Component::new("Dly")
                    .input("x", DataType::Float)
                    .output("y", DataType::Float)
                    .with_behavior(Behavior::Primitive(Primitive::Delay {
                        init: Some(Value::Float(0.0)),
                    })),
            )
            .unwrap();
        let mut net = Composite::new(CompositeKind::Dfd);
        net.instantiate("add", add);
        net.instantiate("dly", dly);
        net.connect(Endpoint::boundary("u"), Endpoint::child("add", "a"));
        net.connect(Endpoint::child("dly", "y"), Endpoint::child("add", "b"));
        net.connect(Endpoint::child("add", "s"), Endpoint::child("dly", "x"));
        net.connect(Endpoint::child("add", "s"), Endpoint::boundary("acc"));
        let top = m
            .add_component(
                Component::new("Integrator")
                    .input("u", DataType::Float)
                    .output("acc", DataType::Float)
                    .with_behavior(Behavior::Composite(net)),
            )
            .unwrap();
        let cluster = Cluster::new("integ", top, 1);
        let module = cluster_to_module(&m, &cluster).unwrap();
        let ascet = AscetModel::new("p").module(module);
        let mut interp = AscetInterp::new(&ascet).unwrap();
        let mut stim = Stimulus::new();
        stim.insert("integ_u".into(), Box::new(|_| Some(Value::Float(1.0))));
        for _ in 0..4 {
            interp.step_ms(&stim).unwrap();
        }
        // acc = 1, 2, 3, 4 over four activations.
        assert_eq!(interp.value("integ_acc"), Some(&Value::Float(4.0)));
    }

    #[test]
    fn mtd_cluster_rejected_with_guidance() {
        let mut m = Model::new("t");
        let a = m
            .add_component(
                Component::new("A")
                    .input("x", DataType::Float)
                    .output("y", DataType::Float)
                    .with_behavior(Behavior::expr("y", parse("x").unwrap())),
            )
            .unwrap();
        let mut mtd = automode_core::Mtd::new();
        mtd.add_mode("Only", a);
        let owner = m
            .add_component(
                Component::new("M")
                    .input("x", DataType::Float)
                    .output("y", DataType::Float)
                    .with_behavior(Behavior::Mtd(mtd)),
            )
            .unwrap();
        let err = cluster_to_module(&m, &Cluster::new("c", owner, 10)).unwrap_err();
        assert!(matches!(err, TransformError::Unsupported(msg) if msg.contains("mtd_to_dataflow")));
    }

    #[test]
    fn enum_ports_rejected() {
        let mut m = Model::new("t");
        let e = automode_core::types::EnumType::new("Mode", ["A", "B"]);
        let c = m
            .add_component(
                Component::new("C")
                    .input("m", DataType::Enum(e))
                    .output("y", DataType::Float)
                    .with_behavior(Behavior::expr("y", parse("1.0").unwrap())),
            )
            .unwrap();
        assert!(matches!(
            cluster_to_module(&m, &Cluster::new("c", c, 10)),
            Err(TransformError::Unsupported(_))
        ));
    }
}

#[cfg(test)]
mod primitive_lowering_tests {
    use super::*;
    use automode_ascet::{AscetInterp, AscetModel, Stimulus};
    use automode_core::model::{Component, Composite};

    /// A cluster containing a `when`-gated path: the lowered module updates
    /// the gated value only while the condition holds.
    #[test]
    fn when_primitive_lowers_to_conditional_hold() {
        let mut m = Model::new("t");
        let gate = m
            .add_component(
                Component::new("Gate")
                    .input("data", DataType::Float)
                    .input("cond", DataType::Bool)
                    .output("out", DataType::Float)
                    .with_behavior(Behavior::Primitive(Primitive::When)),
            )
            .unwrap();
        let mut net = Composite::new(CompositeKind::Dfd);
        net.instantiate("g", gate);
        net.connect(Endpoint::boundary("u"), Endpoint::child("g", "data"));
        net.connect(Endpoint::boundary("en"), Endpoint::child("g", "cond"));
        net.connect(Endpoint::child("g", "out"), Endpoint::boundary("y"));
        let top = m
            .add_component(
                Component::new("Gated")
                    .input("u", DataType::Float)
                    .input("en", DataType::Bool)
                    .output("y", DataType::Float)
                    .with_behavior(Behavior::Composite(net)),
            )
            .unwrap();
        let module = cluster_to_module(&m, &Cluster::new("gated", top, 1)).unwrap();
        let ascet = AscetModel::new("p").module(module);
        let mut interp = AscetInterp::new(&ascet).unwrap();
        let mut stim = Stimulus::new();
        stim.insert("gated_u".into(), Box::new(|t| Some(Value::Float(t as f64))));
        stim.insert("gated_en".into(), Box::new(|t| Some(Value::Bool(t < 2))));
        for _ in 0..5 {
            interp.step_ms(&stim).unwrap();
        }
        // Updated at t=0,1 (value 1.0 at t=1), held afterwards.
        assert_eq!(interp.value("gated_y"), Some(&Value::Float(1.0)));
    }

    /// `current` lowers to a plain copy.
    #[test]
    fn current_primitive_lowers_to_copy() {
        let mut m = Model::new("t");
        let cur = m
            .add_component(
                Component::new("Cur")
                    .input("x", DataType::Float)
                    .output("y", DataType::Float)
                    .with_behavior(Behavior::Primitive(Primitive::Current {
                        init: Value::Float(0.0),
                    })),
            )
            .unwrap();
        let mut net = Composite::new(CompositeKind::Dfd);
        net.instantiate("c", cur);
        net.connect(Endpoint::boundary("u"), Endpoint::child("c", "x"));
        net.connect(Endpoint::child("c", "y"), Endpoint::boundary("y"));
        let top = m
            .add_component(
                Component::new("Held")
                    .input("u", DataType::Float)
                    .output("y", DataType::Float)
                    .with_behavior(Behavior::Composite(net)),
            )
            .unwrap();
        let module = cluster_to_module(&m, &Cluster::new("held", top, 1)).unwrap();
        let ascet = AscetModel::new("p").module(module);
        let mut interp = AscetInterp::new(&ascet).unwrap();
        let mut stim = Stimulus::new();
        stim.insert("held_u".into(), Box::new(|_| Some(Value::Float(7.5))));
        interp.step_ms(&stim).unwrap();
        assert_eq!(interp.value("held_y"), Some(&Value::Float(7.5)));
    }
}
