//! The MTD-to-dataflow transformation.
//!
//! "In order to represent high-level MTDs as a network of clusters on the
//! LA level, the AutoMoDe tool prototype features an algorithm to transform
//! an MTD into a semantically equivalent, partitionable data-flow model"
//! (paper, Sec. 3.3). This module implements that algorithm:
//!
//! * a **mode selector** sub-network computes the current mode as an
//!   explicit enum signal: `mode = delay(next_mode, initial)` where
//!   `next_mode` encodes the MTD's transition relation as a nested
//!   conditional over the triggers (absent triggers default to "not
//!   fired", matching MTD semantics);
//! * every mode's behaviour becomes an ordinary component instance fed by
//!   all inputs — the "DFDs having explicit mode-ports" of Sec. 4;
//! * per output, a **mux** selects the active mode's result based on the
//!   mode signal.
//!
//! The result is partitionable: each mode behaviour is a separate
//! component instance that clustering may place independently.
//!
//! ## Equivalence
//!
//! For mode behaviours without internal state the transformation is trace
//! equivalent to the original MTD (verified by simulation in the tests and
//! by property tests in the workspace). Stateful mode behaviours differ in
//! general because the dataflow version executes *all* modes every tick,
//! whereas an MTD freezes inactive modes; the transformation refuses such
//! inputs.

use automode_core::model::{
    Behavior, Component, ComponentId, Composite, CompositeKind, Endpoint, Model, Primitive,
};
use automode_core::types::{DataType, EnumType};
use automode_core::CoreError;
use automode_kernel::Value;
use automode_lang::Expr;

use crate::error::TransformError;

/// Applies the MTD-to-dataflow algorithm to `owner` (whose behaviour must
/// be an MTD), adding the generated components to the model and returning
/// the new, interface-identical dataflow component.
///
/// ```
/// use automode_core::model::{Behavior, Component, Model};
/// use automode_core::types::DataType;
/// use automode_core::Mtd;
/// use automode_lang::parse;
/// use automode_transform::mode_dataflow::{mtd_to_dataflow, partition_count};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut model = Model::new("demo");
/// let iface = |name: &str| {
///     Component::new(name)
///         .input("x", DataType::Float)
///         .output("y", DataType::Float)
/// };
/// let low = model.add_component(
///     iface("Low").with_behavior(Behavior::expr("y", parse("x * 0.5")?)),
/// )?;
/// let high = model.add_component(
///     iface("High").with_behavior(Behavior::expr("y", parse("x * 2.0")?)),
/// )?;
/// let mut mtd = Mtd::new();
/// let a = mtd.add_mode("Low", low);
/// let b = mtd.add_mode("High", high);
/// mtd.add_transition(a, b, parse("x > 1.0")?, 0);
/// let owner = model.add_component(iface("Sel").with_behavior(Behavior::Mtd(mtd)))?;
///
/// let dataflow = mtd_to_dataflow(&mut model, owner)?;
/// assert_eq!(partition_count(&model, dataflow)?, 3); // 2 modes + selector
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`TransformError::Precondition`] if `owner` is not an MTD component;
/// * [`TransformError::Unsupported`] if a mode behaviour is stateful
///   (contains delays or state machines), where equivalence would be lost;
/// * meta-model errors while building the result.
pub fn mtd_to_dataflow(
    model: &mut Model,
    owner: ComponentId,
) -> Result<ComponentId, TransformError> {
    let comp = model.component(owner).clone();
    let mtd = match &comp.behavior {
        Behavior::Mtd(mtd) => mtd.clone(),
        _ => {
            return Err(TransformError::Precondition(format!(
                "component `{}` has no MTD behaviour",
                comp.name
            )))
        }
    };
    mtd.validate(model, owner)?;
    for mode in &mtd.modes {
        ensure_stateless(model, mode.behavior)?;
    }

    let input_ports: Vec<_> = comp.inputs().cloned().collect();
    let output_ports: Vec<_> = comp.outputs().cloned().collect();
    let mode_enum = EnumType::new(
        format!("{}Mode", comp.name),
        mtd.modes.iter().map(|m| m.name.clone()),
    );
    let mode_ty = DataType::Enum(mode_enum);

    // --- Mode selector -----------------------------------------------
    // next_mode = per-mode nested conditional over triggers.
    let initial_name = mtd.modes[mtd.initial].name.clone();
    let mut next_expr = Expr::sym(initial_name.clone());
    for (idx, mode) in mtd.modes.iter().enumerate().rev() {
        // Innermost: triggers in priority order; fall back to staying.
        let mut stay = Expr::sym(mode.name.clone());
        for t in mtd.transitions_from(idx).into_iter().rev() {
            let fired = Expr::OrElse(Box::new(t.trigger.clone()), Box::new(Expr::lit(false)));
            stay = Expr::ite(fired, Expr::sym(mtd.modes[t.to].name.clone()), stay);
        }
        let is_mode = Expr::bin(
            automode_kernel::ops::BinOp::Eq,
            Expr::ident("mode_prev"),
            Expr::sym(mode.name.clone()),
        );
        next_expr = Expr::ite(is_mode, stay, next_expr);
    }
    let mut next_comp = Component::new(format!("{}_NextMode", comp.name));
    for p in &input_ports {
        next_comp = next_comp.input(p.name.clone(), p.ty.clone());
    }
    next_comp = next_comp
        .input("mode_prev", mode_ty.clone())
        .output("mode_next", mode_ty.clone())
        .with_behavior(Behavior::expr("mode_next", next_expr));
    let next_id = model.add_component(next_comp)?;

    let delay_id = model.add_component(
        Component::new(format!("{}_ModeDelay", comp.name))
            .input("x", mode_ty.clone())
            .output("y", mode_ty.clone())
            .with_behavior(Behavior::Primitive(Primitive::Delay {
                init: Some(Value::sym(initial_name)),
            })),
    )?;

    let mut selector_net = Composite::new(CompositeKind::Dfd);
    selector_net.instantiate("next", next_id);
    selector_net.instantiate("dly", delay_id);
    for p in &input_ports {
        selector_net.connect(
            Endpoint::boundary(p.name.clone()),
            Endpoint::child("next", p.name.clone()),
        );
    }
    selector_net.connect(
        Endpoint::child("dly", "y"),
        Endpoint::child("next", "mode_prev"),
    );
    selector_net.connect(
        Endpoint::child("next", "mode_next"),
        Endpoint::child("dly", "x"),
    );
    // Immediate switching: the mode that rules this tick is the one
    // *reached* after applying the transition relation to the current
    // inputs, i.e. `mode_next`, not the delayed state.
    selector_net.connect(
        Endpoint::child("next", "mode_next"),
        Endpoint::boundary("mode"),
    );

    let mut selector_comp = Component::new(format!("{}_ModeSelector", comp.name));
    for p in &input_ports {
        selector_comp = selector_comp.input(p.name.clone(), p.ty.clone());
    }
    selector_comp = selector_comp
        .output("mode", mode_ty.clone())
        .with_behavior(Behavior::Composite(selector_net));
    let selector_id = model.add_component(selector_comp)?;

    // --- Output muxes --------------------------------------------------
    let mut mux_ids = Vec::with_capacity(output_ports.len());
    for out in &output_ports {
        let mut expr = Expr::ident(format!("y_{}", mtd.modes.last().expect("nonempty").name));
        for mode in mtd.modes.iter().rev().skip(1) {
            let cond = Expr::bin(
                automode_kernel::ops::BinOp::Eq,
                Expr::ident("mode"),
                Expr::sym(mode.name.clone()),
            );
            expr = Expr::ite(cond, Expr::ident(format!("y_{}", mode.name)), expr);
        }
        let mut mux = Component::new(format!("{}_Mux_{}", comp.name, out.name))
            .input("mode", mode_ty.clone());
        for mode in &mtd.modes {
            mux = mux.input(format!("y_{}", mode.name), out.ty.clone());
        }
        mux = mux
            .output("y", out.ty.clone())
            .with_behavior(Behavior::expr("y", expr));
        mux_ids.push(model.add_component(mux)?);
    }

    // --- Top-level dataflow ---------------------------------------------
    let mut net = Composite::new(CompositeKind::Dfd);
    net.instantiate("selector", selector_id);
    for mode in &mtd.modes {
        net.instantiate(format!("mode_{}", mode.name), mode.behavior);
    }
    for (out, mux_id) in output_ports.iter().zip(&mux_ids) {
        net.instantiate(format!("mux_{}", out.name), *mux_id);
    }
    for p in &input_ports {
        net.connect(
            Endpoint::boundary(p.name.clone()),
            Endpoint::child("selector", p.name.clone()),
        );
        for mode in &mtd.modes {
            net.connect(
                Endpoint::boundary(p.name.clone()),
                Endpoint::child(format!("mode_{}", mode.name), p.name.clone()),
            );
        }
    }
    for out in &output_ports {
        let mux = format!("mux_{}", out.name);
        net.connect(
            Endpoint::child("selector", "mode"),
            Endpoint::child(mux.clone(), "mode"),
        );
        for mode in &mtd.modes {
            net.connect(
                Endpoint::child(format!("mode_{}", mode.name), out.name.clone()),
                Endpoint::child(mux.clone(), format!("y_{}", mode.name)),
            );
        }
        net.connect(
            Endpoint::child(mux, "y"),
            Endpoint::boundary(out.name.clone()),
        );
    }

    let mut result = Component::new(format!("{}_dataflow", comp.name));
    for p in &comp.ports {
        result.ports.push(p.clone());
    }
    result.behavior = Behavior::Composite(net);
    let result_id = model.add_component(result)?;
    model.validate_composite(result_id)?;
    Ok(result_id)
}

/// Rejects mode behaviours whose semantics depend on per-mode private
/// state (the equivalence restriction documented in the module docs).
fn ensure_stateless(model: &Model, id: ComponentId) -> Result<(), TransformError> {
    let comp = model.component(id);
    match &comp.behavior {
        Behavior::Expr(_) | Behavior::Unspecified => Ok(()),
        Behavior::Primitive(Primitive::When) => Ok(()),
        Behavior::Primitive(_) => Err(TransformError::Unsupported(format!(
            "mode behaviour `{}` is stateful (delay/current)",
            comp.name
        ))),
        Behavior::Std(_) => Err(TransformError::Unsupported(format!(
            "mode behaviour `{}` is a state machine",
            comp.name
        ))),
        Behavior::Mtd(mtd) => {
            for mode in &mtd.modes {
                ensure_stateless(model, mode.behavior)?;
            }
            Ok(())
        }
        Behavior::Composite(net) => {
            if net.kind == CompositeKind::Ssd {
                return Err(TransformError::Unsupported(format!(
                    "mode behaviour `{}` contains SSD delays",
                    comp.name
                )));
            }
            for inst in &net.instances {
                ensure_stateless(model, inst.component)?;
            }
            Ok(())
        }
    }
}

/// The number of independently placeable partitions in a generated
/// dataflow component: the mode behaviours plus the selector (the paper's
/// "partitionable" property, used by experiment E10).
pub fn partition_count(model: &Model, dataflow: ComponentId) -> Result<usize, CoreError> {
    match &model.component(dataflow).behavior {
        Behavior::Composite(net) => Ok(net
            .instances
            .iter()
            .filter(|i| i.name.starts_with("mode_") || i.name == "selector")
            .count()),
        _ => Ok(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automode_core::Mtd;
    use automode_kernel::TraceEquivalence;
    use automode_lang::parse;
    use automode_sim::{simulate_component, stimulus};

    /// An MTD mirroring Fig. 8: FuelEnabled / CrankingOverrun.
    fn throttle_mtd(model: &mut Model) -> ComponentId {
        let iface = |name: &str| {
            Component::new(name)
                .input("rpm", DataType::Float)
                .input("throttle", DataType::Float)
                .output("rate", DataType::Float)
        };
        let cranking = model
            .add_component(iface("CrankingBehavior").with_behavior(Behavior::expr(
                "rate",
                parse("0.2 + rpm * 0.0 + throttle * 0.0").unwrap(),
            )))
            .unwrap();
        let enabled = model
            .add_component(iface("FuelEnabledBehavior").with_behavior(Behavior::expr(
                "rate",
                parse("clamp(throttle * 2.0 + rpm * 0.0001, 0.0, 2.0)").unwrap(),
            )))
            .unwrap();
        let mut mtd = Mtd::new();
        let mc = mtd.add_mode("CrankingOverrun", cranking);
        let mf = mtd.add_mode("FuelEnabled", enabled);
        mtd.add_transition(mc, mf, parse("rpm > 600.0").unwrap(), 0);
        mtd.add_transition(mf, mc, parse("rpm < 300.0 or throttle < 0.01").unwrap(), 0);

        model
            .add_component(iface("ThrottleRateOfChange").with_behavior(Behavior::Mtd(mtd)))
            .unwrap()
    }

    #[test]
    fn transformation_builds_valid_component_with_same_interface() {
        let mut m = Model::new("t");
        let owner = throttle_mtd(&mut m);
        let df = mtd_to_dataflow(&mut m, owner).unwrap();
        assert_eq!(m.component(df).signature(), m.component(owner).signature());
        automode_core::levels::validate_fda(&m).unwrap();
        assert_eq!(partition_count(&m, df).unwrap(), 3);
    }

    #[test]
    fn traces_are_equivalent_over_a_drive_cycle() {
        let mut m = Model::new("t");
        let owner = throttle_mtd(&mut m);
        let df = mtd_to_dataflow(&mut m, owner).unwrap();
        let (rpm, throttle) = automode_sim::stimulus::standard_engine_cycle();
        let ticks = rpm.len();
        let inputs = [("rpm", rpm), ("throttle", throttle)];
        let a = simulate_component(&m, owner, &inputs, ticks).unwrap();
        let b = simulate_component(&m, df, &inputs, ticks).unwrap();
        let rel = TraceEquivalence::exact().on_signals(["rate"]);
        assert!(
            a.trace.equivalent(&b.trace, &rel),
            "diff: {:?}",
            a.trace.diff(&b.trace, &rel)
        );
    }

    #[test]
    fn traces_equivalent_under_random_inputs() {
        let mut m = Model::new("t");
        let owner = throttle_mtd(&mut m);
        let df = mtd_to_dataflow(&mut m, owner).unwrap();
        for seed in 0..5 {
            let rpm = stimulus::seeded_random(0.0, 7000.0, 120, seed);
            let thr = stimulus::seeded_random(0.0, 1.0, 120, seed + 1000);
            let inputs = [("rpm", rpm), ("throttle", thr)];
            let a = simulate_component(&m, owner, &inputs, 120).unwrap();
            let b = simulate_component(&m, df, &inputs, 120).unwrap();
            let rel = TraceEquivalence::exact().on_signals(["rate"]);
            assert!(
                a.trace.equivalent(&b.trace, &rel),
                "seed {seed}: {:?}",
                a.trace.diff(&b.trace, &rel)
            );
        }
    }

    #[test]
    fn non_mtd_component_rejected() {
        let mut m = Model::new("t");
        let plain = m
            .add_component(
                Component::new("Plain")
                    .input("x", DataType::Float)
                    .output("y", DataType::Float)
                    .with_behavior(Behavior::expr("y", parse("x").unwrap())),
            )
            .unwrap();
        assert!(matches!(
            mtd_to_dataflow(&mut m, plain),
            Err(TransformError::Precondition(_))
        ));
    }

    #[test]
    fn stateful_mode_behaviour_rejected() {
        let mut m = Model::new("t");
        let stateful = m
            .add_component(
                Component::new("Integrator")
                    .input("x", DataType::Float)
                    .output("y", DataType::Float)
                    .with_behavior(Behavior::Primitive(Primitive::Delay { init: None })),
            )
            .unwrap();
        let other = m
            .add_component(
                Component::new("Pass")
                    .input("x", DataType::Float)
                    .output("y", DataType::Float)
                    .with_behavior(Behavior::expr("y", parse("x").unwrap())),
            )
            .unwrap();
        let mut mtd = Mtd::new();
        let a = mtd.add_mode("A", stateful);
        let b = mtd.add_mode("B", other);
        mtd.add_transition(a, b, parse("x > 0.0").unwrap(), 0);
        let owner = m
            .add_component(
                Component::new("Owner")
                    .input("x", DataType::Float)
                    .output("y", DataType::Float)
                    .with_behavior(Behavior::Mtd(mtd)),
            )
            .unwrap();
        assert!(matches!(
            mtd_to_dataflow(&mut m, owner),
            Err(TransformError::Unsupported(_))
        ));
    }

    #[test]
    fn absent_triggers_default_to_staying() {
        // Drive rpm with absences: the MTD and its dataflow version must
        // both hold the current mode through absent triggers.
        let mut m = Model::new("t");
        let owner = throttle_mtd(&mut m);
        let df = mtd_to_dataflow(&mut m, owner).unwrap();
        let rpm = stimulus::sporadic(0.4, 80, 5); // int-valued events
                                                  // Convert to floats to fit the port type.
        let rpm: automode_kernel::Stream = rpm
            .iter()
            .map(|msg| {
                msg.clone()
                    .map(|v| Value::Float(v.as_int().unwrap_or(0) as f64 * 100.0))
            })
            .collect();
        let thr = stimulus::constant(Value::Float(0.5), 80);
        let inputs = [("rpm", rpm), ("throttle", thr)];
        let a = simulate_component(&m, owner, &inputs, 80).unwrap();
        let b = simulate_component(&m, df, &inputs, 80).unwrap();
        let rel = TraceEquivalence::exact().on_signals(["rate"]);
        assert!(
            a.trace.equivalent(&b.trace, &rel),
            "{:?}",
            a.trace.diff(&b.trace, &rel)
        );
    }
}
