//! Refactoring: structural transformations on the same abstraction level.
//!
//! "Refactoring is mainly seen as a structural transformation on the same
//! abstraction level. An example is the integration of an independently
//! designed control algorithm into an FAA-level functional network. The
//! algorithm has to be restructured considerably because e.g. other
//! functions access the same actuator ... Other refactoring steps will
//! replace an MTD by several DFDs having explicit mode-ports, or change
//! the structural hierarchy" (paper, Sec. 4).
//!
//! * [`introduce_coordinator`] — the paper's FAA countermeasure: resolve an
//!   actuator conflict by inserting a coordinating functionality.
//! * [`replace_mtd_by_mode_port_dfds`] — the MTD refactoring, delegating to
//!   the [`crate::mode_dataflow`] module's algorithm.
//! * [`flatten_composite`] — dissolve one level of structural hierarchy
//!   (same-kind composites only, so channel semantics are preserved).

use automode_core::model::{Behavior, Component, ComponentId, Composite, Endpoint, Model};
use automode_core::rules::conflicting_components;
use automode_core::types::DataType;
use automode_lang::Expr;

use crate::error::TransformError;
use crate::mode_dataflow;

/// Resolves an actuator conflict by adding a coordinator component:
///
/// * each conflicting function keeps its output port, but loses the
///   actuator resource tag (it now *requests* rather than *drives*);
/// * a new `<Resource>Coordinator` component takes one request input per
///   function, owns the actuator resource on its single output, and
///   arbitrates by fixed function priority (first listed wins when its
///   request is present).
///
/// Returns the coordinator's id.
///
/// # Errors
///
/// [`TransformError::Precondition`] if the resource is not actually
/// conflicting (fewer than two drivers).
pub fn introduce_coordinator(
    model: &mut Model,
    resource: &str,
) -> Result<ComponentId, TransformError> {
    let conflicts = conflicting_components(model);
    let (_, drivers) = conflicts
        .into_iter()
        .find(|(r, _)| r == resource)
        .ok_or_else(|| {
            TransformError::Precondition(format!(
                "resource `{resource}` has no conflict to resolve"
            ))
        })?;

    // Gather (component, port, type) of each conflicting driver, then strip
    // the resource tags.
    let mut requests = Vec::new();
    for id in &drivers {
        let comp = model.component_mut(*id);
        let comp_name = comp.name.clone();
        for port in &mut comp.ports {
            if port.resource.as_deref() == Some(resource) {
                port.resource = None;
                requests.push((comp_name.clone(), port.name.clone(), port.ty.clone()));
            }
        }
    }

    // Priority arbitration: first present request wins.
    let mut expr = Expr::ident(format!("req_{}", requests.len() - 1));
    for (i, _) in requests.iter().enumerate().rev().skip(1) {
        expr = Expr::OrElse(Box::new(Expr::ident(format!("req_{i}"))), Box::new(expr));
    }
    let out_ty = requests
        .first()
        .map(|(_, _, t)| t.clone())
        .unwrap_or(DataType::Bool);
    let mut coordinator = Component::new(format!("{resource}Coordinator"));
    for (i, (func, port, ty)) in requests.iter().enumerate() {
        let mut p = automode_core::model::Port::new(
            format!("req_{i}"),
            automode_core::model::Direction::In,
            ty.clone(),
        );
        p.resource = None;
        coordinator = coordinator.port(p);
        let _ = (func, port);
    }
    coordinator = coordinator
        .output("cmd", out_ty)
        .resource("cmd", resource)
        .with_behavior(Behavior::expr("cmd", expr));
    Ok(model.add_component(coordinator)?)
}

/// Replaces an MTD component by its explicit-mode-port DFD equivalent
/// (paper: "replace an MTD by several DFDs having explicit mode-ports"),
/// returning the new component. The original is left in place so callers
/// can validate equivalence before swapping references.
///
/// # Errors
///
/// See [`mode_dataflow::mtd_to_dataflow`].
pub fn replace_mtd_by_mode_port_dfds(
    model: &mut Model,
    owner: ComponentId,
) -> Result<ComponentId, TransformError> {
    mode_dataflow::mtd_to_dataflow(model, owner)
}

/// Flattens one level of hierarchy: child instances that are themselves
/// composites *of the same kind* are inlined into their parent (their
/// grandchildren become children; boundary channels are spliced).
///
/// Returns the number of instances inlined.
///
/// # Errors
///
/// [`TransformError::Precondition`] if `owner` is not a composite.
pub fn flatten_composite(model: &mut Model, owner: ComponentId) -> Result<usize, TransformError> {
    let comp = model.component(owner).clone();
    let net = match &comp.behavior {
        Behavior::Composite(net) => net.clone(),
        _ => {
            return Err(TransformError::Precondition(format!(
                "component `{}` is not a composite",
                comp.name
            )))
        }
    };
    let mut flat = Composite::new(net.kind);
    let mut inlined = 0usize;

    // Map (old endpoint) -> new endpoint for splicing.
    // For an inlined child c: its boundary port p maps through its own
    // internal channels.
    struct InlinedChild {
        prefix: String,
        inner: Composite,
    }
    let mut inlined_children: Vec<(String, InlinedChild)> = Vec::new();

    for inst in &net.instances {
        let child = model.component(inst.component).clone();
        match &child.behavior {
            Behavior::Composite(inner) if inner.kind == net.kind => {
                let prefix = format!("{}__", inst.name);
                for gi in &inner.instances {
                    flat.instantiate(format!("{prefix}{}", gi.name), gi.component);
                }
                inlined_children.push((
                    inst.name.clone(),
                    InlinedChild {
                        prefix,
                        inner: inner.clone(),
                    },
                ));
                inlined += 1;
            }
            _ => {
                flat.instantiate(inst.name.clone(), inst.component);
            }
        }
    }

    let find_inlined = |name: &str| inlined_children.iter().find(|(n, _)| n == name);

    // Inner channels of inlined children that stay fully internal.
    for (_, ic) in &inlined_children {
        for ch in &ic.inner.channels {
            if let (Some(fi), Some(ti)) = (&ch.from.instance, &ch.to.instance) {
                flat.connect(
                    Endpoint::child(format!("{}{fi}", ic.prefix), ch.from.port.clone()),
                    Endpoint::child(format!("{}{ti}", ic.prefix), ch.to.port.clone()),
                );
            }
        }
    }

    // Parent channels, splicing through inlined boundaries.
    for ch in &net.channels {
        // Resolve source: if it is an inlined child's output, find the
        // internal producer feeding that boundary port.
        let sources: Vec<Endpoint> = match &ch.from.instance {
            Some(name) => match find_inlined(name) {
                Some((_, ic)) => ic
                    .inner
                    .channels
                    .iter()
                    .filter(|c| c.to.instance.is_none() && c.to.port == ch.from.port)
                    .filter_map(|c| {
                        c.from.instance.as_ref().map(|fi| {
                            Endpoint::child(format!("{}{fi}", ic.prefix), c.from.port.clone())
                        })
                    })
                    .collect(),
                None => vec![ch.from.clone()],
            },
            None => vec![ch.from.clone()],
        };
        // Resolve destination(s): if it is an inlined child's input, fan
        // out to every internal consumer of that boundary port.
        let destinations: Vec<Endpoint> = match &ch.to.instance {
            Some(name) => match find_inlined(name) {
                Some((_, ic)) => ic
                    .inner
                    .channels
                    .iter()
                    .filter(|c| c.from.instance.is_none() && c.from.port == ch.to.port)
                    .filter_map(|c| {
                        c.to.instance.as_ref().map(|ti| {
                            Endpoint::child(format!("{}{ti}", ic.prefix), c.to.port.clone())
                        })
                    })
                    .collect(),
                None => vec![ch.to.clone()],
            },
            None => vec![ch.to.clone()],
        };
        for src in &sources {
            for dst in &destinations {
                flat.connect(src.clone(), dst.clone());
            }
        }
    }

    model.component_mut(owner).behavior = Behavior::Composite(flat);
    model.validate_composite(owner)?;
    Ok(inlined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use automode_core::model::CompositeKind;
    use automode_core::rules::{actuator_conflicts, check_faa_rules};
    use automode_kernel::{Stream, TraceEquivalence, Value};
    use automode_lang::parse;
    use automode_sim::simulate_component;

    fn conflicted_model() -> Model {
        let mut m = Model::new("body");
        m.add_component(
            Component::new("CentralLocking")
                .input("speed", DataType::Float)
                .output("lock_cmd", DataType::Bool)
                .resource("lock_cmd", "DoorLockActuator"),
        )
        .unwrap();
        m.add_component(
            Component::new("CrashUnlock")
                .input("crash", DataType::Bool)
                .output("unlock_cmd", DataType::Bool)
                .resource("unlock_cmd", "DoorLockActuator"),
        )
        .unwrap();
        m
    }

    #[test]
    fn coordinator_resolves_conflict() {
        let mut m = conflicted_model();
        assert_eq!(actuator_conflicts(&m).len(), 1);
        let coord = introduce_coordinator(&mut m, "DoorLockActuator").unwrap();
        // Conflict gone: only the coordinator owns the resource now.
        assert!(actuator_conflicts(&m).is_empty());
        let c = m.component(coord);
        assert_eq!(c.name, "DoorLockActuatorCoordinator");
        assert_eq!(c.inputs().count(), 2);
        assert_eq!(
            c.find_port("cmd").unwrap().resource.as_deref(),
            Some("DoorLockActuator")
        );
        // Findings clean (modulo info-level ones).
        assert!(check_faa_rules(&m)
            .iter()
            .all(|f| f.severity != automode_core::rules::Severity::Conflict));
    }

    #[test]
    fn coordinator_arbitrates_first_present_request() {
        let mut m = conflicted_model();
        let coord = introduce_coordinator(&mut m, "DoorLockActuator").unwrap();
        let req0 = Stream::from_values([Value::Bool(true), Value::Bool(false)]);
        let mut req1 = Stream::new();
        req1.push(automode_kernel::Message::present(false));
        req1.push(automode_kernel::Message::present(true));
        let run = simulate_component(&m, coord, &[("req_0", req0), ("req_1", req1)], 2).unwrap();
        let cmd = run.trace.signal("cmd").unwrap();
        // req_0 present both ticks -> wins both ticks.
        assert_eq!(
            cmd.present_values(),
            vec![Value::Bool(true), Value::Bool(false)]
        );
    }

    #[test]
    fn no_conflict_means_precondition_error() {
        let mut m = Model::new("t");
        m.add_component(
            Component::new("Solo")
                .output("cmd", DataType::Bool)
                .resource("cmd", "A"),
        )
        .unwrap();
        assert!(matches!(
            introduce_coordinator(&mut m, "A"),
            Err(TransformError::Precondition(_))
        ));
    }

    fn nested_model() -> (Model, ComponentId) {
        let mut m = Model::new("t");
        let leaf = m
            .add_component(
                Component::new("Inc")
                    .input("x", DataType::Float)
                    .output("y", DataType::Float)
                    .with_behavior(Behavior::expr("y", parse("x + 1.0").unwrap())),
            )
            .unwrap();
        let mut inner = Composite::new(CompositeKind::Dfd);
        inner.instantiate("a", leaf);
        inner.instantiate("b", leaf);
        inner.connect(Endpoint::boundary("in"), Endpoint::child("a", "x"));
        inner.connect(Endpoint::child("a", "y"), Endpoint::child("b", "x"));
        inner.connect(Endpoint::child("b", "y"), Endpoint::boundary("out"));
        let mid = m
            .add_component(
                Component::new("Mid")
                    .input("in", DataType::Float)
                    .output("out", DataType::Float)
                    .with_behavior(Behavior::Composite(inner)),
            )
            .unwrap();
        let mut outer = Composite::new(CompositeKind::Dfd);
        outer.instantiate("m", mid);
        outer.instantiate("tail", leaf);
        outer.connect(Endpoint::boundary("in"), Endpoint::child("m", "in"));
        outer.connect(Endpoint::child("m", "out"), Endpoint::child("tail", "x"));
        outer.connect(Endpoint::child("tail", "y"), Endpoint::boundary("out"));
        let top = m
            .add_component(
                Component::new("Top")
                    .input("in", DataType::Float)
                    .output("out", DataType::Float)
                    .with_behavior(Behavior::Composite(outer)),
            )
            .unwrap();
        (m, top)
    }

    #[test]
    fn flatten_preserves_semantics() {
        let (mut m, top) = nested_model();
        let xs = Stream::from_values([Value::Float(0.0), Value::Float(10.0)]);
        let before = simulate_component(&m, top, &[("in", xs.clone())], 2).unwrap();
        let inlined = flatten_composite(&mut m, top).unwrap();
        assert_eq!(inlined, 1);
        let after = simulate_component(&m, top, &[("in", xs)], 2).unwrap();
        assert!(before
            .trace
            .equivalent(&after.trace, &TraceEquivalence::exact()));
        // Structure is flat now: three instances at top level.
        match &m.component(top).behavior {
            Behavior::Composite(net) => {
                assert_eq!(net.instances.len(), 3);
                assert!(net.instances.iter().any(|i| i.name == "m__a"));
            }
            _ => panic!("still composite"),
        }
    }

    #[test]
    fn flatten_non_composite_rejected() {
        let mut m = Model::new("t");
        let plain = m
            .add_component(
                Component::new("P")
                    .input("x", DataType::Float)
                    .output("y", DataType::Float)
                    .with_behavior(Behavior::expr("y", parse("x").unwrap())),
            )
            .unwrap();
        assert!(matches!(
            flatten_composite(&mut m, plain),
            Err(TransformError::Precondition(_))
        ));
    }

    #[test]
    fn flatten_skips_different_kind_children() {
        // An SSD child inside a DFD parent must NOT be inlined: its channel
        // delays would be lost.
        let mut m = Model::new("t");
        let leaf = m
            .add_component(
                Component::new("Id")
                    .input("x", DataType::Float)
                    .output("y", DataType::Float)
                    .with_behavior(Behavior::expr("y", parse("x").unwrap())),
            )
            .unwrap();
        let mut ssd = Composite::new(CompositeKind::Ssd);
        ssd.instantiate("a", leaf);
        ssd.connect(Endpoint::boundary("in"), Endpoint::child("a", "x"));
        ssd.connect(Endpoint::child("a", "y"), Endpoint::boundary("out"));
        let mid = m
            .add_component(
                Component::new("SsdMid")
                    .input("in", DataType::Float)
                    .output("out", DataType::Float)
                    .with_behavior(Behavior::Composite(ssd)),
            )
            .unwrap();
        let mut outer = Composite::new(CompositeKind::Dfd);
        outer.instantiate("m", mid);
        outer.connect(Endpoint::boundary("in"), Endpoint::child("m", "in"));
        outer.connect(Endpoint::child("m", "out"), Endpoint::boundary("out"));
        let top = m
            .add_component(
                Component::new("Top")
                    .input("in", DataType::Float)
                    .output("out", DataType::Float)
                    .with_behavior(Behavior::Composite(outer)),
            )
            .unwrap();
        let inlined = flatten_composite(&mut m, top).unwrap();
        assert_eq!(inlined, 0);
    }

    #[test]
    fn replace_mtd_delegates_to_mode_dataflow() {
        let mut m = Model::new("t");
        let a = m
            .add_component(
                Component::new("A")
                    .input("x", DataType::Float)
                    .output("y", DataType::Float)
                    .with_behavior(Behavior::expr("y", parse("0.0 + x * 0.0").unwrap())),
            )
            .unwrap();
        let b = m
            .add_component(
                Component::new("B")
                    .input("x", DataType::Float)
                    .output("y", DataType::Float)
                    .with_behavior(Behavior::expr("y", parse("x").unwrap())),
            )
            .unwrap();
        let mut mtd = automode_core::Mtd::new();
        let ma = mtd.add_mode("Off", a);
        let mb = mtd.add_mode("On", b);
        mtd.add_transition(ma, mb, parse("x > 1.0").unwrap(), 0);
        let owner = m
            .add_component(
                Component::new("Sw")
                    .input("x", DataType::Float)
                    .output("y", DataType::Float)
                    .with_behavior(Behavior::Mtd(mtd)),
            )
            .unwrap();
        let df = replace_mtd_by_mode_port_dfds(&mut m, owner).unwrap();
        assert!(m.component(df).name.contains("dataflow"));
    }
}
