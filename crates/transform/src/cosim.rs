//! Bridging deployments into the platform co-simulator.
//!
//! `automode-platform`'s [`CoSim`] is generic over the functional bodies it
//! schedules; this module closes the loop for real AutoMoDe deployments:
//! it maps a validated `(Model, Ccd, Deployment)` triple onto the
//! co-simulation specification (clusters → runnables, CCD channels →
//! local stores or CAN frames, TA tasks → OSEK tasks), elaborates each
//! cluster's component into a prepared kernel network as its body, and
//! wraps the run with the two checks the LA/TA refinement owes the
//! developer:
//!
//! 1. **LA differential** — the same stimulus is run through the LA
//!    reference semantics ([`automode_sim::elaborate_ccd`]); for
//!    single-ECU deployments the TA trace must match the LA trace
//!    *bit-for-bit* (fault-free), for multi-ECU deployments each cross-ECU
//!    channel is checked against its loose-synchronization envelope.
//! 2. **Robustness contracts** — every cross-ECU channel's delivery
//!    stream (`bus:` columns of [`CosimOutcome::deliveries`]) carries an
//!    exact presence contract on the writer clock; platform faults that
//!    lose or starve deliveries surface as [`RobustnessReport`]
//!    violations, distilled into detection-latency metrics
//!    ([`RobustnessMetrics`]).

use std::collections::BTreeMap;

use automode_core::ccd::Ccd;
use automode_core::metrics::RobustnessMetrics;
use automode_core::model::{Direction, Model};
use automode_kernel::{
    ChannelContract, Clock, ContractMonitor, KernelError, Message, PlanInfo, RobustnessReport,
    Tick, Trace, TraceEquivalence, Value,
};
use automode_platform::cosim::{
    ChannelSpec, ClusterStep, CoSim, CosimConfig, CosimOutcome, EcuSpec, FrameSpec, InputSource,
    LinkKind, PlatformFault, RunnableSpec, TaskSpec,
};
use automode_platform::Publication;
use automode_sim::{elaborate, elaborate_ccd};

use crate::deploy::{Deployment, DeploymentSpec};
use crate::error::TransformError;

/// A cluster body backed by the cluster's elaborated component network —
/// the *same* network the LA `ClusterBlock` steps, so fault-free
/// trajectories coincide by construction.
struct NetBody {
    net: automode_kernel::ReadyNetwork,
}

impl ClusterStep for NetBody {
    fn step(&mut self, _k: u64, inputs: &[Message]) -> Result<Vec<Message>, KernelError> {
        Ok(self.net.step_tick_observed(inputs)?.to_vec())
    }
}

/// A deployment bound to the platform co-simulator, ready to run.
#[derive(Debug)]
pub struct CosimHarness<'a> {
    model: &'a Model,
    ccd: &'a Ccd,
    cosim: CoSim,
    contracts: Vec<ChannelContract>,
    /// Earliest tick any configured platform fault can first fire
    /// (ground truth for detection latency; `None` without faults).
    fault_tick: Option<Tick>,
    single_ecu: bool,
}

/// One co-simulation run with its differential and robustness verdicts.
#[derive(Debug, Clone)]
pub struct CosimReport {
    /// The raw platform outcome (traces, task/frame/channel statistics).
    pub outcome: CosimOutcome,
    /// The LA reference trace of the same stimulus.
    pub la_trace: Trace,
    /// First TA-vs-LA divergence on the cluster output columns.
    /// `None` = bit-for-bit equal. Only expected to be `None` for
    /// single-ECU, fault-free deployments; cross-ECU deployments diverge
    /// by design (frame latency) and are judged by the envelope instead.
    pub la_divergence: Option<String>,
    /// `true` when every cluster landed on one ECU (bit-for-bit applies).
    pub single_ecu: bool,
    /// Delivery-contract check over the `bus:` streams.
    pub robustness: RobustnessReport,
    /// Distilled robustness metrics (first violation, detection latency).
    pub metrics: RobustnessMetrics,
}

impl CosimReport {
    /// The refinement verdict: single-ECU deployments must match LA
    /// bit-for-bit; multi-ECU deployments must hold every envelope.
    pub fn semantics_preserved(&self) -> bool {
        if self.single_ecu {
            self.la_divergence.is_none()
        } else {
            self.outcome.envelope_preserved()
        }
    }
}

impl<'a> CosimHarness<'a> {
    /// Binds a deployment to the co-simulator.
    ///
    /// `config.tick_us` and `config.bitrate` are overridden from the
    /// deployment spec so the three artifacts cannot disagree.
    ///
    /// # Errors
    ///
    /// Fails when the deployment references phases that cannot be realized
    /// by task offsets (clusters of differing phase in one task), or when
    /// the derived specification is invalid.
    pub fn new(
        model: &'a Model,
        ccd: &'a Ccd,
        deployment: &Deployment,
        spec: &DeploymentSpec,
        mut config: CosimConfig,
    ) -> Result<Self, TransformError> {
        config.tick_us = spec.tick_us;
        config.bitrate = spec.bitrate;

        let cluster_idx: BTreeMap<&str, usize> = ccd
            .clusters
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.as_str(), i))
            .collect();
        let ecu_of: BTreeMap<&str, &str> = deployment
            .assignments
            .iter()
            .map(|(c, (e, _))| (c.as_str(), e.as_str()))
            .collect();
        let wcet_of: BTreeMap<&str, u64> = deployment
            .ta
            .ecus
            .iter()
            .flat_map(|e| e.tasks.iter())
            .flat_map(|t| t.runnables.iter())
            .map(|r| (r.name.as_str(), r.wcet_us))
            .collect();

        // --- Runnables (one per cluster, CCD order) ---------------------
        let mut runnables = Vec::with_capacity(ccd.clusters.len());
        for cluster in &ccd.clusters {
            let comp = model.component(cluster.component);
            let inputs = comp
                .inputs()
                .map(|port| {
                    match ccd
                        .channels
                        .iter()
                        .position(|ch| ch.to_cluster == cluster.name && ch.to_port == port.name)
                    {
                        Some(chi) => InputSource::Channel(chi),
                        None => InputSource::External(format!("{}.{}", cluster.name, port.name)),
                    }
                })
                .collect();
            runnables.push(RunnableSpec {
                cluster: cluster.name.clone(),
                wcet_us: wcet_of.get(cluster.name.as_str()).copied().unwrap_or(100),
                period_ticks: cluster.period as u64,
                phase_ticks: cluster.phase as u64,
                inputs,
                outputs: comp.outputs().map(|p| p.name.clone()).collect(),
            });
        }

        // --- ECUs and tasks from the TA ---------------------------------
        let mut ecus = Vec::new();
        for ecu in &deployment.ta.ecus {
            let mut tasks = Vec::new();
            for task in &ecu.tasks {
                let idxs: Vec<usize> = task
                    .runnables
                    .iter()
                    .map(|r| cluster_idx[r.name.as_str()])
                    .collect();
                // A task releases all its runnables together: their phases
                // must agree so one offset serves every cluster.
                let phases: Vec<u64> = idxs.iter().map(|&i| runnables[i].phase_ticks).collect();
                let phase = phases.first().copied().unwrap_or(0);
                if phases.iter().any(|&p| p != phase) {
                    return Err(TransformError::Unsupported(format!(
                        "task `{}` hosts clusters with differing phases",
                        task.name
                    )));
                }
                tasks.push(TaskSpec {
                    name: task.name.clone(),
                    priority: task.priority,
                    period_us: task.period_us,
                    offset_us: phase * spec.tick_us,
                    runnables: idxs,
                });
            }
            if !tasks.is_empty() {
                ecus.push(EcuSpec {
                    name: ecu.name.clone(),
                    tasks,
                });
            }
        }

        // --- Frames from the deployment bus ------------------------------
        let bus = deployment.ta.buses.first();
        let frames: Vec<FrameSpec> = bus
            .map(|b| {
                b.frames
                    .iter()
                    .map(|f| FrameSpec {
                        name: f.name.clone(),
                        id: f.id,
                        tx_us: b.tx_time_us(f),
                    })
                    .collect()
            })
            .unwrap_or_default();
        let frame_idx: BTreeMap<&str, usize> = frames
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.as_str(), i))
            .collect();

        // --- Channels -----------------------------------------------------
        let port_pos = |cluster: usize, port: &str, dir: Direction| {
            model
                .component(ccd.clusters[cluster].component)
                .ports
                .iter()
                .filter(|p| p.direction == dir)
                .position(|p| p.name == port)
                .ok_or_else(|| {
                    TransformError::Precondition(format!(
                        "port `{port}` missing on cluster `{}`",
                        ccd.clusters[cluster].name
                    ))
                })
        };
        let mut channels = Vec::with_capacity(ccd.channels.len());
        let mut contracts = Vec::new();
        for ch in &ccd.channels {
            let from = cluster_idx[ch.from_cluster.as_str()];
            let to = cluster_idx[ch.to_cluster.as_str()];
            let from_comp = model.component(ccd.clusters[from].component);
            let seed = match &from_comp
                .find_port(&ch.from_port)
                .ok_or_else(|| {
                    TransformError::Precondition(format!(
                        "port `{}` missing on cluster `{}`",
                        ch.from_port, ch.from_cluster
                    ))
                })?
                .ty
            {
                automode_core::types::DataType::Bool => Value::Bool(false),
                automode_core::types::DataType::Int => Value::Int(0),
                automode_core::types::DataType::Enum(e) => {
                    Value::sym(e.literals.first().cloned().unwrap_or_default())
                }
                _ => Value::Float(0.0),
            };
            let signal = format!(
                "{}.{}->{}.{}",
                ch.from_cluster, ch.from_port, ch.to_cluster, ch.to_port
            );
            let cross = ecu_of.get(ch.from_cluster.as_str()) != ecu_of.get(ch.to_cluster.as_str());
            let link = if cross {
                let from_ecu = ecu_of[ch.from_cluster.as_str()];
                let frame_name = format!("f_{}_{}tick", from_ecu, ccd.clusters[from].period);
                let fi = frame_idx.get(frame_name.as_str()).copied().ok_or_else(|| {
                    TransformError::Precondition(format!(
                        "deployment bus lacks frame `{frame_name}` for channel `{signal}`"
                    ))
                })?;
                LinkKind::Frame(fi)
            } else {
                LinkKind::Local
            };
            if cross {
                // Exact presence contract on the delivery stream: one
                // delivery at every writer boundary once the delay stages
                // have filled.
                let w = &ccd.clusters[from];
                let stages = if ch.delays > 0 {
                    ch.delays
                } else if config.publication == Publication::NextPeriodBoundary {
                    1
                } else {
                    0
                };
                let first = w.phase as u64 + stages as u64 * w.period as u64;
                contracts.push(ChannelContract {
                    signal: format!("bus:{signal}"),
                    clock: Clock::every(w.period, (first % w.period as u64) as u32),
                    exact: true,
                    from: first,
                });
            }
            channels.push(ChannelSpec {
                signal,
                writer: from,
                writer_port: port_pos(from, &ch.from_port, Direction::Out)?,
                reader: to,
                reader_port: port_pos(to, &ch.to_port, Direction::In)?,
                delays: ch.delays,
                link,
                seed,
            });
        }

        let fault_tick = first_fault_tick(&config, &ccd_writer_schedule(ccd, &channels), &ecus);
        let single_ecu = deployment.comm_matrix.frames.is_empty();
        let cosim = CoSim::new(config, ecus, runnables, channels, frames)?;
        Ok(CosimHarness {
            model,
            ccd,
            cosim,
            contracts,
            fault_tick,
            single_ecu,
        })
    }

    /// The underlying co-simulator specification.
    pub fn cosim(&self) -> &CoSim {
        &self.cosim
    }

    /// The delivery contracts installed for cross-ECU channels.
    pub fn contracts(&self) -> &[ChannelContract] {
        &self.contracts
    }

    /// `true` when the whole CCD landed on one ECU.
    pub fn single_ecu(&self) -> bool {
        self.single_ecu
    }

    /// Per-cluster execution plans (the `--explain-plan` payload): each
    /// cluster body is elaborated exactly as [`CosimHarness::run`] does and
    /// its prepared kernel plan is returned — engine backend, gated
    /// hyperperiod, and the [`automode_kernel::PlanRejection`] reason
    /// whenever the wheel fast path fell off.
    ///
    /// # Errors
    ///
    /// Propagates elaboration and preparation errors.
    pub fn explain_plans(&self) -> Result<Vec<(String, PlanInfo)>, TransformError> {
        let mut plans = Vec::with_capacity(self.ccd.clusters.len());
        for cluster in &self.ccd.clusters {
            let net = elaborate(self.model, cluster.component)?
                .prepare()
                .map_err(automode_sim::SimError::from)?;
            plans.push((cluster.name.clone(), net.plan_info()));
        }
        Ok(plans)
    }

    /// Runs the co-simulation and both checks for `ticks` base ticks.
    ///
    /// Bodies are elaborated fresh on every call, so repeated runs replay
    /// deterministically from the same initial state.
    ///
    /// # Errors
    ///
    /// Propagates elaboration, platform, and kernel errors.
    pub fn run(&self, stimulus: &Trace, ticks: u64) -> Result<CosimReport, TransformError> {
        let mut bodies: Vec<Box<dyn ClusterStep>> = Vec::with_capacity(self.ccd.clusters.len());
        for cluster in &self.ccd.clusters {
            let net = elaborate(self.model, cluster.component)?
                .prepare()
                .map_err(automode_sim::SimError::from)?;
            bodies.push(Box::new(NetBody { net }));
        }
        let outcome = self.cosim.run(&mut bodies, stimulus, ticks)?;

        // LA reference run over the same stimulus.
        let la_net = elaborate_ccd(self.model, self.ccd)?;
        let names: Vec<String> = la_net.input_names().map(str::to_owned).collect();
        let rows: Vec<Vec<Message>> = (0..ticks as usize)
            .map(|t| {
                names
                    .iter()
                    .map(|n| {
                        stimulus
                            .signal(n)
                            .and_then(|s| s.get(t))
                            .cloned()
                            .unwrap_or(Message::Absent)
                    })
                    .collect()
            })
            .collect();
        let la_trace = la_net.run(&rows).map_err(automode_sim::SimError::from)?;

        let outputs: Vec<String> = outcome.trace.signal_names().map(str::to_owned).collect();
        let equiv = TraceEquivalence::exact().on_signals(outputs);
        let la_divergence = outcome.trace.diff(&la_trace, &equiv).map(|d| d.to_string());

        let mut monitor = ContractMonitor::new();
        for c in &self.contracts {
            monitor.push(c.clone());
        }
        let robustness = monitor.check(&outcome.deliveries);
        let metrics = RobustnessMetrics::from_report(&robustness, self.fault_tick);

        Ok(CosimReport {
            outcome,
            la_trace,
            la_divergence,
            single_ecu: self.single_ecu,
            robustness,
            metrics,
        })
    }
}

/// (writer period, writer phase, carrying frame index) per cross channel —
/// the schedule needed to locate a frame fault's first strike in time.
fn ccd_writer_schedule(ccd: &Ccd, channels: &[ChannelSpec]) -> Vec<(u64, u64, usize)> {
    channels
        .iter()
        .filter_map(|ch| match ch.link {
            LinkKind::Frame(fi) => {
                let w = &ccd.clusters[ch.writer];
                Some((w.period as u64, w.phase as u64, fi))
            }
            LinkKind::Local => None,
        })
        .collect()
}

/// Estimates the earliest base tick any configured fault first fires.
///
/// Frame faults strike instance `phase % every`; frame instances track the
/// writer boundary schedule with one instance *per channel* sharing the
/// frame (same-task writers complete at distinct microsecond instants, so
/// their payloads never coalesce), so instance `n` belongs to boundary
/// `n / channels_on_frame`. Task overruns strike the matching activation's
/// release; corruption and bus load are active from their start.
fn first_fault_tick(
    config: &CosimConfig,
    frame_writers: &[(u64, u64, usize)],
    ecus: &[EcuSpec],
) -> Option<Tick> {
    let mut per_frame: BTreeMap<usize, u64> = BTreeMap::new();
    for &(_, _, fi) in frame_writers {
        *per_frame.entry(fi).or_insert(0) += 1;
    }
    let mut first: Option<Tick> = None;
    let mut consider = |t: Tick| first = Some(first.map_or(t, |f| f.min(t)));
    for f in &config.faults {
        match f {
            PlatformFault::LostFrame { every, phase, .. }
            | PlatformFault::DelayedFrame { every, phase, .. } => {
                let n0 = phase % every;
                for &(period, wphase, fi) in frame_writers {
                    let lanes = per_frame.get(&fi).copied().unwrap_or(1).max(1);
                    consider(wphase + (n0 / lanes) * period);
                }
            }
            PlatformFault::CorruptChannel { .. } => consider(0),
            PlatformFault::TaskOverrun {
                ecu,
                task,
                every,
                phase,
                ..
            } => {
                let n0 = phase % every;
                for e in ecus.iter().filter(|e| &e.name == ecu) {
                    for t in e.tasks.iter().filter(|t| &t.name == task) {
                        consider((t.offset_us + n0 * t.period_us) / config.tick_us);
                    }
                }
            }
            PlatformFault::BusLoad { offset_us, .. } => consider(offset_us / config.tick_us),
        }
    }
    first
}
