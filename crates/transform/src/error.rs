//! Errors of the transformation framework.

use std::error::Error;
use std::fmt;

use automode_ascet::AscetError;
use automode_core::CoreError;
use automode_platform::PlatformError;
use automode_sim::SimError;

/// Errors raised by transformation steps.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TransformError {
    /// A meta-model error.
    Core(CoreError),
    /// An ASCET substrate error.
    Ascet(AscetError),
    /// A platform substrate error.
    Platform(PlatformError),
    /// A simulation error (from transformation validation).
    Sim(SimError),
    /// The input model does not satisfy the step's precondition.
    Precondition(String),
    /// The step's restriction on supported constructs was hit.
    Unsupported(String),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::Core(e) => write!(f, "{e}"),
            TransformError::Ascet(e) => write!(f, "{e}"),
            TransformError::Platform(e) => write!(f, "{e}"),
            TransformError::Sim(e) => write!(f, "{e}"),
            TransformError::Precondition(msg) => write!(f, "precondition violated: {msg}"),
            TransformError::Unsupported(msg) => write!(f, "unsupported construct: {msg}"),
        }
    }
}

impl Error for TransformError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TransformError::Core(e) => Some(e),
            TransformError::Ascet(e) => Some(e),
            TransformError::Platform(e) => Some(e),
            TransformError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for TransformError {
    fn from(e: CoreError) -> Self {
        TransformError::Core(e)
    }
}

impl From<AscetError> for TransformError {
    fn from(e: AscetError) -> Self {
        TransformError::Ascet(e)
    }
}

impl From<PlatformError> for TransformError {
    fn from(e: PlatformError) -> Self {
        TransformError::Platform(e)
    }
}

impl From<SimError> for TransformError {
    fn from(e: SimError) -> Self {
        TransformError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let e: TransformError = CoreError::DuplicateName("x".into()).into();
        assert!(e.to_string().contains("duplicate"));
        assert!(Error::source(&e).is_some());
        let e = TransformError::Precondition("needs an MTD".into());
        assert!(e.to_string().contains("precondition"));
    }
}
