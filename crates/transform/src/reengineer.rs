//! Reengineering: lifting implementation-level artifacts to FDA/FAA models.
//!
//! "Reengineering is seen as the step to extract the relevant information
//! from a system description on the implementation level in order to
//! describe the system on a more abstract level (FAA or FDA)" (paper,
//! Sec. 4). Two classes are implemented, as in the paper:
//!
//! * **White-box** ([`reengineer_module`]): lifts a complete ASCET module
//!   to FDA components. Process bodies are symbolically executed into
//!   per-output expressions; self-state (messages a process both reads and
//!   writes) becomes an explicit delay feedback; and If-Then-Else cascades
//!   guarded by flag messages are extracted into explicit MTDs
//!   (the `ThrottleRateOfChange` pattern of Sec. 5 / Fig. 8).
//! * **Black-box** ([`reengineer_comm_matrix`]): lifts a communication
//!   matrix to a partial FAA model — one unspecified vehicle function per
//!   ECU, channels per signal (validated in the paper on a
//!   body-electronics case study).

use std::collections::BTreeMap;

use automode_ascet::model::{AscetModel, AscetType, Module, Process, Stmt};
use automode_ascet::{mode_candidates, ModeCandidate};
use automode_core::model::{
    Behavior, Component, ComponentId, Composite, CompositeKind, Endpoint, Model, Primitive,
};
use automode_core::types::DataType;
use automode_core::Mtd;
use automode_lang::Expr;

use crate::error::TransformError;

/// What a white-box reengineering run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ReengineeringReport {
    /// One entry per reengineered process: `(component, period_ms)`.
    pub components: Vec<(ComponentId, u32)>,
    /// Number of MTDs extracted from If-Then-Else cascades.
    pub mtds_extracted: usize,
    /// Number of implicit modes made explicit (total MTD modes created).
    pub modes_made_explicit: usize,
    /// If-Then-Else statements removed from the surviving expressions.
    pub ifs_removed: usize,
}

fn ascet_to_datatype(ty: AscetType) -> DataType {
    match ty {
        AscetType::Cont => DataType::Float,
        AscetType::SDisc => DataType::Int,
        AscetType::Log => DataType::Bool,
    }
}

/// Symbolically executes a statement list: returns the final
/// `message → expression` map, substituting earlier assignments into later
/// reads.
///
/// # Errors
///
/// Returns [`TransformError::Unsupported`] when a conditional assigns a
/// message on only one path and the message has no prior definition — the
/// value would then depend on the *previous* activation, which the caller
/// must model as explicit state instead.
pub fn symbolic_exec(
    stmts: &[Stmt],
    env: &mut BTreeMap<String, Expr>,
) -> Result<(), TransformError> {
    for stmt in stmts {
        match stmt {
            Stmt::Assign { target, expr } => {
                let substituted = expr.substitute(&|n| env.get(n).cloned());
                env.insert(target.clone(), substituted);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = cond.substitute(&|n| env.get(n).cloned());
                let mut then_env = env.clone();
                let mut else_env = env.clone();
                symbolic_exec(then_branch, &mut then_env)?;
                symbolic_exec(else_branch, &mut else_env)?;
                let mut keys: Vec<String> = then_env.keys().cloned().collect();
                for k in else_env.keys() {
                    if !keys.contains(k) {
                        keys.push(k.clone());
                    }
                }
                for k in keys {
                    let t = then_env.get(&k);
                    let e = else_env.get(&k);
                    match (t, e) {
                        (Some(t), Some(e)) if t == e => {
                            env.insert(k, t.clone());
                        }
                        (Some(t), Some(e)) => {
                            env.insert(k, Expr::ite(c.clone(), t.clone(), e.clone()));
                        }
                        (Some(_), None) | (None, Some(_)) => {
                            return Err(TransformError::Unsupported(format!(
                                "message `{k}` is assigned on only one branch of an \
                                 If-Then-Else without a prior definition; model it as state"
                            )))
                        }
                        (None, None) => unreachable!("key came from one env"),
                    }
                }
            }
        }
    }
    Ok(())
}

/// The roles a process's messages play, derived from read/write analysis.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct ProcessInterface {
    inputs: Vec<String>,
    outputs: Vec<String>,
    state: Vec<String>,
}

fn process_interface(process: &Process) -> ProcessInterface {
    let reads = process.reads();
    let writes = process.writes();
    let state: Vec<String> = writes
        .iter()
        .filter(|w| reads.contains(w))
        .cloned()
        .collect();
    let inputs = reads.into_iter().filter(|r| !writes.contains(r)).collect();
    ProcessInterface {
        inputs,
        outputs: writes,
        state,
    }
}

/// Builds the symbolic environment for a process with state: state
/// messages read before being written refer to `<m>__prev`.
fn seeded_env(iface: &ProcessInterface) -> BTreeMap<String, Expr> {
    iface
        .state
        .iter()
        .map(|m| (m.clone(), Expr::ident(format!("{m}__prev"))))
        .collect()
}

fn message_type(model: &AscetModel, name: &str) -> Result<DataType, TransformError> {
    model
        .find_message(name)
        .map(|d| ascet_to_datatype(d.ty))
        .ok_or_else(|| TransformError::Precondition(format!("message `{name}` is not declared")))
}

/// Reengineers one process into an FDA component (without MTD extraction):
/// inputs = messages read only, outputs = messages written, and state
/// messages become an explicit delay feedback inside a DFD.
fn process_to_component(
    ascet: &AscetModel,
    module: &Module,
    process: &Process,
    model: &mut Model,
) -> Result<ComponentId, TransformError> {
    let iface = process_interface(process);
    let mut env = seeded_env(&iface);
    symbolic_exec(&process.body, &mut env)?;

    let base_name = format!("{}_{}", module.name, process.name);
    // Core expression component: inputs + state-prev ports, one output per
    // written message.
    let mut core = Component::new(format!("{base_name}_core"));
    for i in &iface.inputs {
        core = core.input(i.clone(), message_type(ascet, i)?);
    }
    for s in &iface.state {
        core = core.input(format!("{s}__prev"), message_type(ascet, s)?);
    }
    let mut defs = BTreeMap::new();
    for o in &iface.outputs {
        let expr = env.get(o).cloned().ok_or_else(|| {
            TransformError::Unsupported(format!(
                "process `{}` writes `{o}` only conditionally",
                process.name
            ))
        })?;
        core = core.output(o.clone(), message_type(ascet, o)?);
        defs.insert(o.clone(), expr);
    }
    core = core.with_behavior(Behavior::Expr(defs));
    let core_id = model.add_component(core)?;

    if iface.state.is_empty() {
        // Wrap in a component with the clean name.
        let mut outer = Component::new(base_name);
        for i in &iface.inputs {
            outer = outer.input(i.clone(), message_type(ascet, i)?);
        }
        for o in &iface.outputs {
            outer = outer.output(o.clone(), message_type(ascet, o)?);
        }
        let mut net = Composite::new(CompositeKind::Dfd);
        net.instantiate("core", core_id);
        for i in &iface.inputs {
            net.connect(
                Endpoint::boundary(i.clone()),
                Endpoint::child("core", i.clone()),
            );
        }
        for o in &iface.outputs {
            net.connect(
                Endpoint::child("core", o.clone()),
                Endpoint::boundary(o.clone()),
            );
        }
        outer = outer.with_behavior(Behavior::Composite(net));
        return Ok(model.add_component(outer)?);
    }

    // State feedback: one Delay per state message, initialized from the
    // message's declared init.
    let mut net = Composite::new(CompositeKind::Dfd);
    net.instantiate("core", core_id);
    for s in &iface.state {
        let decl = ascet
            .find_message(s)
            .expect("validated by message_type above");
        let dly = model.add_component(
            Component::new(format!("{base_name}_state_{s}"))
                .input("x", ascet_to_datatype(decl.ty))
                .output("y", ascet_to_datatype(decl.ty))
                .with_behavior(Behavior::Primitive(Primitive::Delay {
                    init: Some(decl.init.clone()),
                })),
        )?;
        net.instantiate(format!("dly_{s}"), dly);
        net.connect(
            Endpoint::child("core", s.clone()),
            Endpoint::child(format!("dly_{s}"), "x"),
        );
        net.connect(
            Endpoint::child(format!("dly_{s}"), "y"),
            Endpoint::child("core", format!("{s}__prev")),
        );
    }
    let mut outer = Component::new(base_name);
    for i in &iface.inputs {
        outer = outer.input(i.clone(), message_type(ascet, i)?);
        net.connect(
            Endpoint::boundary(i.clone()),
            Endpoint::child("core", i.clone()),
        );
    }
    for o in &iface.outputs {
        outer = outer.output(o.clone(), message_type(ascet, o)?);
        net.connect(
            Endpoint::child("core", o.clone()),
            Endpoint::boundary(o.clone()),
        );
    }
    outer = outer.with_behavior(Behavior::Composite(net));
    Ok(model.add_component(outer)?)
}

/// Reengineers a process whose body is one flag-guarded If-Then-Else into
/// an MTD component with two explicit modes.
fn candidate_to_mtd(
    ascet: &AscetModel,
    module: &Module,
    process: &Process,
    candidate: &ModeCandidate,
    model: &mut Model,
) -> Result<ComponentId, TransformError> {
    let iface = process_interface(process);
    if !iface.state.is_empty() {
        return Err(TransformError::Unsupported(format!(
            "process `{}` has state; extract the stateless part first",
            process.name
        )));
    }
    let base_name = format!("{}_{}", module.name, process.name);
    let build_mode = |branch: &[Stmt],
                      mode_name: &str,
                      model: &mut Model|
     -> Result<ComponentId, TransformError> {
        let mut env = BTreeMap::new();
        symbolic_exec(branch, &mut env)?;
        let mut comp = Component::new(format!("{base_name}_{mode_name}"));
        for i in &iface.inputs {
            comp = comp.input(i.clone(), message_type(ascet, i)?);
        }
        let mut defs = BTreeMap::new();
        for o in &iface.outputs {
            let expr = env.get(o).cloned().ok_or_else(|| {
                TransformError::Unsupported(format!("branch `{mode_name}` does not define `{o}`"))
            })?;
            comp = comp.output(o.clone(), message_type(ascet, o)?);
            defs.insert(o.clone(), expr);
        }
        Ok(model.add_component(comp.with_behavior(Behavior::Expr(defs)))?)
    };
    let then_id = build_mode(&candidate.then_branch, "ThenMode", model)?;
    let else_id = build_mode(&candidate.else_branch, "ElseMode", model)?;

    let mut mtd = Mtd::new();
    let then_mode = mtd.add_mode(format!("{base_name}_ThenMode"), then_id);
    let else_mode = mtd.add_mode(format!("{base_name}_ElseMode"), else_id);
    mtd.add_transition(else_mode, then_mode, candidate.condition.clone(), 0);
    mtd.add_transition(
        then_mode,
        else_mode,
        Expr::un(automode_kernel::ops::UnOp::Not, candidate.condition.clone()),
        0,
    );
    // Initial mode: evaluate which branch the declared flag inits select.
    // Conservatively start in the Else mode (flags initialize false in the
    // engine model); the first tick's immediate switching corrects it.
    mtd.initial = else_mode;

    let mut owner = Component::new(base_name);
    for i in &iface.inputs {
        owner = owner.input(i.clone(), message_type(ascet, i)?);
    }
    for o in &iface.outputs {
        owner = owner.output(o.clone(), message_type(ascet, o)?);
    }
    owner = owner.with_behavior(Behavior::Mtd(mtd));
    let id = model.add_component(owner)?;
    Ok(id)
}

/// White-box reengineering of one ASCET module into FDA components added
/// to `model`.
///
/// Processes whose body is a single exhaustive flag-guarded If-Then-Else
/// become MTD components (implicit modes made explicit); all other
/// processes become expression/DFD components.
///
/// # Errors
///
/// Fails on ASCET validation errors or unsupported constructs.
pub fn reengineer_module(
    ascet: &AscetModel,
    module_name: &str,
    model: &mut Model,
) -> Result<ReengineeringReport, TransformError> {
    ascet.validate()?;
    let module = ascet
        .modules
        .iter()
        .find(|m| m.name == module_name)
        .ok_or_else(|| TransformError::Precondition(format!("module `{module_name}` not found")))?;
    let candidates = mode_candidates(ascet);
    let mut report = ReengineeringReport {
        components: Vec::new(),
        mtds_extracted: 0,
        modes_made_explicit: 0,
        ifs_removed: 0,
    };
    for process in &module.processes {
        let candidate = candidates.iter().find(|c| {
            c.module == module.name
                && c.process == process.name
                && c.is_exhaustive()
                && process.body.len() == 1
                && process_interface(process).state.is_empty()
        });
        let id = match candidate {
            Some(c) => {
                let id = candidate_to_mtd(ascet, module, process, c, model)?;
                report.mtds_extracted += 1;
                report.modes_made_explicit += 2;
                report.ifs_removed += 1;
                id
            }
            None => process_to_component(ascet, module, process, model)?,
        };
        report.components.push((id, process.period_ms));
    }
    Ok(report)
}

/// Black-box reengineering: a communication matrix becomes a partial FAA
/// model — one unspecified vehicle function per ECU, one SSD channel per
/// (signal, receiver).
///
/// # Errors
///
/// Fails on meta-model construction errors.
pub fn reengineer_comm_matrix(
    matrix: &automode_platform::CommMatrix,
    model_name: &str,
) -> Result<Model, TransformError> {
    let mut model = Model::new(model_name);
    let signal_type = |bits: u8| {
        if bits == 1 {
            DataType::Bool
        } else {
            DataType::Int
        }
    };
    // Index the matrix once (per-signal sender lookups are O(signals),
    // which would make the per-ECU port collection quadratic otherwise).
    let frame_sender: BTreeMap<&str, &str> = matrix
        .frames
        .iter()
        .map(|f| (f.name.as_str(), f.sender.as_str()))
        .collect();
    let mut sent_by: BTreeMap<&str, Vec<&automode_platform::SignalDef>> = BTreeMap::new();
    let mut received_by: BTreeMap<&str, Vec<&automode_platform::SignalDef>> = BTreeMap::new();
    let mut sender_of: BTreeMap<&str, &str> = BTreeMap::new();
    for s in &matrix.signals {
        if let Some(&sender) = frame_sender.get(s.frame.as_str()) {
            sent_by.entry(sender).or_default().push(s);
            sender_of.insert(s.name.as_str(), sender);
        }
        for r in &s.receivers {
            received_by.entry(r.as_str()).or_default().push(s);
        }
    }
    // One component per ECU with ports per sent/received signal.
    let mut ecu_ids = BTreeMap::new();
    for ecu in matrix.ecus() {
        let mut comp = Component::new(ecu.clone());
        for s in sent_by.get(ecu.as_str()).into_iter().flatten() {
            comp = comp.output(s.name.clone(), signal_type(s.length_bits));
        }
        for s in received_by.get(ecu.as_str()).into_iter().flatten() {
            comp = comp.input(s.name.clone(), signal_type(s.length_bits));
        }
        let id = model.add_component(comp)?;
        ecu_ids.insert(ecu, id);
    }
    // Root SSD: instances per ECU, channels per (signal, receiver).
    let mut net = Composite::new(CompositeKind::Ssd);
    for (ecu, id) in &ecu_ids {
        net.instantiate(ecu.clone(), *id);
    }
    for s in &matrix.signals {
        let Some(&sender) = sender_of.get(s.name.as_str()) else {
            continue;
        };
        for r in &s.receivers {
            if r == sender {
                continue;
            }
            net.connect(
                Endpoint::child(sender, s.name.clone()),
                Endpoint::child(r.clone(), s.name.clone()),
            );
        }
    }
    let root = model.add_component(
        Component::new(format!("{model_name}_faa")).with_behavior(Behavior::Composite(net)),
    )?;
    model.set_root(root);
    model.validate_structure()?;
    automode_core::levels::validate_faa(&model)?;
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use automode_ascet::model::{MessageDecl, MessageKind};
    use automode_ascet::{AscetInterp, Stimulus};
    use automode_core::metrics::ModelMetrics;
    use automode_kernel::{Message, Stream, TraceEquivalence, Value};
    use automode_lang::parse;
    use automode_platform::comm_matrix::synthetic_body_matrix;
    use automode_sim::simulate_component;

    fn throttle_model() -> AscetModel {
        AscetModel::new("engine").module(
            Module::new("throttle")
                .message(MessageDecl::new(
                    "rpm",
                    AscetType::Cont,
                    MessageKind::Receive,
                ))
                .message(MessageDecl::new(
                    "b_cranking",
                    AscetType::Log,
                    MessageKind::Receive,
                ))
                .message(MessageDecl::new("rate", AscetType::Cont, MessageKind::Send))
                .process(Process::new(
                    "calc_rate",
                    10,
                    vec![Stmt::If {
                        cond: parse("b_cranking").unwrap(),
                        then_branch: vec![Stmt::assign("rate", parse("0.2").unwrap())],
                        else_branch: vec![Stmt::assign(
                            "rate",
                            parse("clamp(rpm * 0.001, 0.0, 2.0)").unwrap(),
                        )],
                    }],
                )),
        )
    }

    #[test]
    fn symbolic_exec_sequences_and_substitutes() {
        let stmts = vec![
            Stmt::assign("a", parse("x + 1").unwrap()),
            Stmt::assign("b", parse("a * 2").unwrap()),
            Stmt::assign("a", parse("a + b").unwrap()),
        ];
        let mut env = BTreeMap::new();
        symbolic_exec(&stmts, &mut env).unwrap();
        assert_eq!(env["b"].to_string(), "((x + 1) * 2)");
        assert_eq!(env["a"].to_string(), "((x + 1) + ((x + 1) * 2))");
    }

    #[test]
    fn symbolic_exec_merges_branches() {
        let stmts = vec![Stmt::If {
            cond: parse("c").unwrap(),
            then_branch: vec![Stmt::assign("y", parse("1").unwrap())],
            else_branch: vec![Stmt::assign("y", parse("2").unwrap())],
        }];
        let mut env = BTreeMap::new();
        symbolic_exec(&stmts, &mut env).unwrap();
        assert_eq!(env["y"].to_string(), "(if c then 1 else 2)");
    }

    #[test]
    fn symbolic_exec_rejects_one_sided_assignment() {
        let stmts = vec![Stmt::If {
            cond: parse("c").unwrap(),
            then_branch: vec![Stmt::assign("y", parse("1").unwrap())],
            else_branch: vec![],
        }];
        let mut env = BTreeMap::new();
        assert!(matches!(
            symbolic_exec(&stmts, &mut env),
            Err(TransformError::Unsupported(_))
        ));
        // ...but is fine with a prior definition.
        let stmts = vec![
            Stmt::assign("y", parse("0").unwrap()),
            Stmt::If {
                cond: parse("c").unwrap(),
                then_branch: vec![Stmt::assign("y", parse("1").unwrap())],
                else_branch: vec![],
            },
        ];
        let mut env = BTreeMap::new();
        symbolic_exec(&stmts, &mut env).unwrap();
        assert_eq!(env["y"].to_string(), "(if c then 1 else 0)");
    }

    #[test]
    fn throttle_process_becomes_mtd() {
        let ascet = throttle_model();
        let mut model = Model::new("fda");
        let report = reengineer_module(&ascet, "throttle", &mut model).unwrap();
        assert_eq!(report.mtds_extracted, 1);
        assert_eq!(report.modes_made_explicit, 2);
        let metrics = ModelMetrics::measure(&model);
        assert_eq!(metrics.mtds, 1);
        assert_eq!(metrics.modes, 2);
        // The original If disappeared from the expressions.
        assert_eq!(metrics.if_count, 0);
    }

    #[test]
    fn reengineered_mtd_is_trace_equivalent_to_original() {
        let ascet = throttle_model();
        let mut model = Model::new("fda");
        let report = reengineer_module(&ascet, "throttle", &mut model).unwrap();
        let (comp, _) = report.components[0];

        // Original ASCET execution at 1ms grid, process at 10ms: compare on
        // the 10ms grid (one tick per activation).
        let rpm_profile = |k: u64| 100.0 * k as f64;
        let cranking_profile = |k: u64| k < 3;
        let mut stim = Stimulus::new();
        stim.insert(
            "rpm".into(),
            Box::new(move |t| Some(Value::Float(rpm_profile(t / 10)))),
        );
        stim.insert(
            "b_cranking".into(),
            Box::new(move |t| Some(Value::Bool(cranking_profile(t / 10)))),
        );
        let mut interp = AscetInterp::new(&ascet).unwrap();
        let ascet_trace = interp.run(100, &stim, &["rate"]).unwrap();
        // Sample activation results: value at t = 10k (written at that ms).
        let ascet_rates: Vec<Value> = (0..10)
            .map(|k| {
                ascet_trace.signal("rate").unwrap()[10 * k]
                    .value()
                    .unwrap()
                    .clone()
            })
            .collect();

        // Reengineered model: one tick per activation.
        let rpm: Stream = (0..10)
            .map(|k| Message::present(Value::Float(rpm_profile(k))))
            .collect();
        let crank: Stream = (0..10)
            .map(|k| Message::present(Value::Bool(cranking_profile(k))))
            .collect();
        let run =
            simulate_component(&model, comp, &[("rpm", rpm), ("b_cranking", crank)], 10).unwrap();
        let model_rates = run.trace.signal("rate").unwrap().present_values();
        assert_eq!(ascet_rates, model_rates);
    }

    #[test]
    fn stateful_process_gets_delay_feedback() {
        let ascet = AscetModel::new("acc").module(
            Module::new("m")
                .message(MessageDecl::new(
                    "inc",
                    AscetType::SDisc,
                    MessageKind::Receive,
                ))
                .message(MessageDecl::new(
                    "total",
                    AscetType::SDisc,
                    MessageKind::Send,
                ))
                .process(Process::new(
                    "accumulate",
                    10,
                    vec![Stmt::assign("total", parse("total + inc").unwrap())],
                )),
        );
        let mut model = Model::new("fda");
        let report = reengineer_module(&ascet, "m", &mut model).unwrap();
        let (comp, period) = report.components[0];
        assert_eq!(period, 10);
        automode_core::levels::validate_fda(&model).unwrap();

        let inc = Stream::from_values([1i64, 2, 3, 4]);
        let run = simulate_component(&model, comp, &[("inc", inc)], 4).unwrap();
        let totals: Vec<i64> = run
            .trace
            .signal("total")
            .unwrap()
            .present_values()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(totals, vec![1, 3, 6, 10]);
    }

    #[test]
    fn unknown_module_rejected() {
        let ascet = throttle_model();
        let mut model = Model::new("fda");
        assert!(matches!(
            reengineer_module(&ascet, "ghost", &mut model),
            Err(TransformError::Precondition(_))
        ));
    }

    #[test]
    fn blackbox_builds_partial_faa() {
        let matrix = synthetic_body_matrix(5, 3, 11);
        let model = reengineer_comm_matrix(&matrix, "body").unwrap();
        // One component per ECU plus the root.
        assert_eq!(model.component_count(), matrix.ecus().len() + 1);
        let root = model.root().unwrap();
        let net = match &model.component(root).behavior {
            Behavior::Composite(net) => net,
            _ => panic!("root must be a composite"),
        };
        assert_eq!(net.kind, CompositeKind::Ssd);
        // Channel count equals the matrix's (signal, receiver) pairs minus
        // self-loops.
        let expected: usize = matrix
            .signals
            .iter()
            .map(|s| {
                let sender = matrix.sender_of(&s.name).unwrap().to_string();
                s.receivers.iter().filter(|r| **r != sender).count()
            })
            .sum();
        assert_eq!(net.channels.len(), expected);
        automode_core::levels::validate_faa(&model).unwrap();
    }

    #[test]
    fn blackbox_structure_matches_dependencies() {
        let matrix = synthetic_body_matrix(4, 2, 3);
        let model = reengineer_comm_matrix(&matrix, "body").unwrap();
        let root = model.root().unwrap();
        let net = match &model.component(root).behavior {
            Behavior::Composite(net) => net.clone(),
            _ => unreachable!(),
        };
        // Every matrix dependency appears as at least one channel.
        for (from, to) in matrix.dependencies() {
            assert!(
                net.channels.iter().any(|ch| {
                    ch.from.instance.as_deref() == Some(from.as_str())
                        && ch.to.instance.as_deref() == Some(to.as_str())
                }),
                "missing channel {from} -> {to}"
            );
        }
    }

    #[test]
    fn equivalence_holds_under_trace_relation_helper() {
        // The white-box path and a plain expr reengineering agree under the
        // exact relation restricted to outputs.
        let ascet = throttle_model();
        let mut m1 = Model::new("a");
        let r1 = reengineer_module(&ascet, "throttle", &mut m1).unwrap();
        let mut m2 = Model::new("b");
        let r2 = reengineer_module(&ascet, "throttle", &mut m2).unwrap();
        let rpm = automode_sim::stimulus::seeded_random(0.0, 6000.0, 50, 1);
        let crank = automode_sim::stimulus::seeded_random_bool(0.3, 50, 2);
        let a = simulate_component(
            &m1,
            r1.components[0].0,
            &[("rpm", rpm.clone()), ("b_cranking", crank.clone())],
            50,
        )
        .unwrap();
        let b = simulate_component(
            &m2,
            r2.components[0].0,
            &[("rpm", rpm), ("b_cranking", crank)],
            50,
        )
        .unwrap();
        assert!(a
            .trace
            .equivalent(&b.trace, &TraceEquivalence::exact().on_signals(["rate"])));
    }
}
