//! Refinement: transformations from higher to lower abstraction levels.
//!
//! "Examples for refinement transformations include the transformation of
//! physical signals to implementation signals (i.e. the choice of encoding
//! and data type), clustering of DFDs according to their clocks neglecting
//! their functional coherency and last but not least the mapping of CCDs
//! to ECUs and tasks" (paper, Sec. 4). The first two live here (the third
//! is [`deploy`](mod@crate::deploy)):
//!
//! * [`auto_refine`] — choose implementation types and encodings for every
//!   port of the given components, from declared physical ranges;
//! * [`cluster_by_clocks`] — group the instances of a DFD by their
//!   execution period into LA clusters, auto-inserting delay operators on
//!   slow→fast channels so the OSEK well-definedness conditions hold;
//! * [`dissolve_ssd`] — flatten a top-level SSD into a CCD, turning each
//!   SSD channel's implicit message delay into an explicit delay operator
//!   (Sec. 3.3: "some of the topmost SSD hierarchies may be dissolved in
//!   favor of a flat CCD representation").

use std::collections::BTreeMap;

use automode_core::ccd::{Ccd, CcdChannel, Cluster};
use automode_core::model::{Behavior, Component, ComponentId, Composite, CompositeKind, Model};
use automode_core::types::{DataType, Encoding, ImplType, Refinement};
use automode_core::{CoreError, Endpoint};

use crate::error::TransformError;

/// Report of an automatic type refinement.
#[derive(Debug, Clone, PartialEq)]
pub struct RefinementReport {
    /// `(component.port, chosen implementation type)` per refined port.
    pub choices: Vec<(String, ImplType)>,
    /// The worst quantization error bound across all fixed-point choices.
    pub max_quantization_error: f64,
}

/// Chooses an implementation type for one abstract type and range.
fn choose_impl(ty: &DataType, range: Option<(f64, f64)>) -> (ImplType, Encoding) {
    match ty {
        DataType::Bool => (ImplType::Bool, Encoding::identity()),
        DataType::Enum(e) => (ImplType::Enum(e.clone()), Encoding::identity()),
        DataType::Int => {
            let it = match range {
                Some((lo, hi)) if lo >= i8::MIN as f64 && hi <= i8::MAX as f64 => ImplType::Int8,
                Some((lo, hi)) if lo >= i16::MIN as f64 && hi <= i16::MAX as f64 => ImplType::Int16,
                _ => ImplType::Int32,
            };
            (it, Encoding::identity())
        }
        DataType::Float | DataType::Physical { .. } => match range {
            Some((lo, hi)) => {
                let max_abs = lo.abs().max(hi.abs()).max(1e-9);
                // fixed16: raw in [-32768, 32767]; pick the largest frac
                // that still fits the range.
                let mut frac = 0u8;
                while frac < 14 && max_abs * f64::from(1u32 << (frac + 1)) <= 32767.0 {
                    frac += 1;
                }
                (
                    ImplType::Fixed {
                        width: 16,
                        frac_bits: frac,
                    },
                    Encoding::scaled(1.0 / f64::from(1u32 << frac)),
                )
            }
            None => (ImplType::Float32, Encoding::identity()),
        },
    }
}

/// Automatically refines every port of the given components: each port gets
/// an implementation type and encoding chosen from `ranges` (keyed by
/// `(component, port)`), validated against the abstract type.
///
/// # Errors
///
/// Propagates [`Refinement::checked`] failures.
pub fn auto_refine(
    model: &mut Model,
    components: &[ComponentId],
    ranges: &BTreeMap<(String, String), (f64, f64)>,
) -> Result<RefinementReport, TransformError> {
    let mut report = RefinementReport {
        choices: Vec::new(),
        max_quantization_error: 0.0,
    };
    for &cid in components {
        let comp_name = model.component(cid).name.clone();
        let ports: Vec<String> = model
            .component(cid)
            .ports
            .iter()
            .map(|p| p.name.clone())
            .collect();
        for port_name in ports {
            let key = (comp_name.clone(), port_name.clone());
            let range = ranges.get(&key).copied();
            let ty = model
                .component(cid)
                .find_port(&port_name)
                .expect("listed above")
                .ty
                .clone();
            let (impl_ty, encoding) = choose_impl(&ty, range);
            let refinement = Refinement::checked(&ty, impl_ty.clone(), encoding, range)?;
            report.max_quantization_error = report.max_quantization_error.max(
                refinement.encoding.max_quantization_error()
                    * matches!(impl_ty, ImplType::Fixed { .. }) as u8 as f64,
            );
            report
                .choices
                .push((format!("{comp_name}.{port_name}"), impl_ty));
            let comp = model.component_mut(cid);
            let port = comp
                .ports
                .iter_mut()
                .find(|p| p.name == port_name)
                .expect("listed above");
            port.refinement = Some(refinement);
        }
    }
    Ok(report)
}

/// Groups the child instances of a DFD composite into LA clusters by their
/// execution period ("clustering of DFDs according to their clocks
/// neglecting their functional coherency").
///
/// `periods` assigns each instance its period in base ticks. Instances
/// sharing a period form one cluster component (a DFD wrapping them);
/// channels crossing clusters become CCD channels, with a delay operator
/// auto-inserted when data flows slow→fast. Channels touching the
/// composite's own boundary become open cluster ports (driven by the
/// environment).
///
/// Returns the CCD; the cluster components are added to the model.
///
/// # Errors
///
/// [`TransformError::Precondition`] if `owner` is not a DFD composite or an
/// instance has no period assigned.
pub fn cluster_by_clocks(
    model: &mut Model,
    owner: ComponentId,
    periods: &BTreeMap<String, u32>,
) -> Result<Ccd, TransformError> {
    let comp = model.component(owner).clone();
    let net = match &comp.behavior {
        Behavior::Composite(net) if net.kind == CompositeKind::Dfd => net.clone(),
        _ => {
            return Err(TransformError::Precondition(format!(
                "component `{}` is not a DFD composite",
                comp.name
            )))
        }
    };
    for inst in &net.instances {
        if !periods.contains_key(&inst.name) {
            return Err(TransformError::Precondition(format!(
                "instance `{}` has no period assigned",
                inst.name
            )));
        }
    }
    // Group instances by period.
    let mut groups: BTreeMap<u32, Vec<String>> = BTreeMap::new();
    for inst in &net.instances {
        groups
            .entry(periods[&inst.name])
            .or_default()
            .push(inst.name.clone());
    }
    let group_of = |inst: &str| periods[inst];

    // Pre-resolve the type of every child port referenced by a channel, so
    // the builder loop below can mutate the model freely.
    let mut port_types: BTreeMap<(String, String), DataType> = BTreeMap::new();
    for ch in &net.channels {
        for ep in [&ch.from, &ch.to] {
            if let Some(inst_name) = &ep.instance {
                let inst = net.instance(inst_name).expect("validated");
                let child = model.component(inst.component);
                let port = child
                    .find_port(&ep.port)
                    .ok_or_else(|| CoreError::UnknownPort {
                        component: child.name.clone(),
                        port: ep.port.clone(),
                    })?;
                port_types.insert((inst_name.clone(), ep.port.clone()), port.ty.clone());
            }
        }
    }
    let port_type = |inst_name: &str, port: &str| -> DataType {
        port_types[&(inst_name.to_string(), port.to_string())].clone()
    };

    // Build one cluster component per group.
    let mut ccd = Ccd::new();
    let mut cluster_names: BTreeMap<u32, String> = BTreeMap::new();
    for (&period, members) in &groups {
        let cname = format!("{}_cluster_{}t", comp.name, period);
        let mut inner = Composite::new(CompositeKind::Dfd);
        for m in members {
            let inst = net.instance(m).expect("validated");
            inner.instantiate(m.clone(), inst.component);
        }
        let mut cluster_comp = Component::new(cname.clone());
        // Wire channels; create boundary ports for anything crossing the
        // cluster boundary.
        for ch in &net.channels {
            let from_in = ch
                .from
                .instance
                .as_ref()
                .map(|i| members.contains(i))
                .unwrap_or(false);
            let to_in = ch
                .to
                .instance
                .as_ref()
                .map(|i| members.contains(i))
                .unwrap_or(false);
            match (from_in, to_in) {
                (true, true) => inner.connect(ch.from.clone(), ch.to.clone()),
                (true, false) => {
                    // Export an output port.
                    let fi = ch.from.instance.as_ref().expect("child");
                    let pname = format!("{fi}_{}", ch.from.port);
                    if cluster_comp.find_port(&pname).is_none() {
                        cluster_comp =
                            cluster_comp.output(pname.clone(), port_type(fi, &ch.from.port));
                        inner.connect(ch.from.clone(), Endpoint::boundary(pname));
                    }
                }
                (false, true) => {
                    let ti = ch.to.instance.as_ref().expect("child");
                    let pname = format!("{ti}_{}", ch.to.port);
                    if cluster_comp.find_port(&pname).is_none() {
                        cluster_comp =
                            cluster_comp.input(pname.clone(), port_type(ti, &ch.to.port));
                        inner.connect(Endpoint::boundary(pname), ch.to.clone());
                    }
                }
                (false, false) => {}
            }
        }
        cluster_comp = cluster_comp.with_behavior(Behavior::Composite(inner));
        let cid = model.add_component(cluster_comp)?;
        ccd = ccd.cluster(Cluster::new(cname.clone(), cid, period));
        cluster_names.insert(period, cname);
    }

    // CCD channels for cross-cluster flows (delay on slow->fast).
    for ch in &net.channels {
        let (Some(fi), Some(ti)) = (&ch.from.instance, &ch.to.instance) else {
            continue;
        };
        let (fp, tp) = (group_of(fi), group_of(ti));
        if fp == tp {
            continue;
        }
        let mut ccd_ch = CcdChannel::direct(
            cluster_names[&fp].clone(),
            format!("{fi}_{}", ch.from.port),
            cluster_names[&tp].clone(),
            format!("{ti}_{}", ch.to.port),
        );
        if fp > tp {
            // Slow-rate producer to fast-rate consumer: the OSEK target
            // requires at least one delay operator (Sec. 3.3).
            ccd_ch = ccd_ch.with_delays(1);
        }
        ccd = ccd.channel(ccd_ch);
    }
    ccd.validate_structure(model)?;
    Ok(ccd)
}

/// Dissolves a top-level SSD into a flat CCD: every instance becomes a
/// cluster (period from `periods`), and every SSD channel becomes a CCD
/// channel with **one explicit delay operator**, preserving the SSD's
/// channel-delay semantics.
///
/// Channels touching the SSD boundary are dropped (driven by/observed from
/// the environment).
///
/// # Errors
///
/// [`TransformError::Precondition`] if `owner` is not an SSD composite or
/// an instance has no period assigned.
pub fn dissolve_ssd(
    model: &Model,
    owner: ComponentId,
    periods: &BTreeMap<String, u32>,
) -> Result<Ccd, TransformError> {
    let comp = model.component(owner);
    let net = match &comp.behavior {
        Behavior::Composite(net) if net.kind == CompositeKind::Ssd => net,
        _ => {
            return Err(TransformError::Precondition(format!(
                "component `{}` is not an SSD composite",
                comp.name
            )))
        }
    };
    let mut ccd = Ccd::new();
    for inst in &net.instances {
        let period = *periods.get(&inst.name).ok_or_else(|| {
            TransformError::Precondition(format!("instance `{}` has no period assigned", inst.name))
        })?;
        ccd = ccd.cluster(Cluster::new(inst.name.clone(), inst.component, period));
    }
    for ch in &net.channels {
        let (Some(fi), Some(ti)) = (&ch.from.instance, &ch.to.instance) else {
            continue;
        };
        ccd = ccd.channel(
            CcdChannel::direct(
                fi.clone(),
                ch.from.port.clone(),
                ti.clone(),
                ch.to.port.clone(),
            )
            .with_delays(1),
        );
    }
    ccd.validate_structure(model)?;
    Ok(ccd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use automode_core::ccd::FixedPriorityDataIntegrityPolicy;
    use automode_core::types::EnumType;
    use automode_lang::parse;

    #[test]
    fn choose_impl_covers_kinds() {
        assert_eq!(choose_impl(&DataType::Bool, None).0, ImplType::Bool);
        assert_eq!(
            choose_impl(&DataType::Int, Some((-100.0, 100.0))).0,
            ImplType::Int8
        );
        assert_eq!(
            choose_impl(&DataType::Int, Some((-30000.0, 30000.0))).0,
            ImplType::Int16
        );
        assert_eq!(choose_impl(&DataType::Int, None).0, ImplType::Int32);
        assert_eq!(choose_impl(&DataType::Float, None).0, ImplType::Float32);
        let e = EnumType::new("E", ["A"]);
        assert_eq!(
            choose_impl(&DataType::Enum(e.clone()), None).0,
            ImplType::Enum(e)
        );
        // Physical with a range -> fixed point with max usable precision.
        let (it, enc) = choose_impl(&DataType::physical("Voltage", "V"), Some((0.0, 16.0)));
        match it {
            ImplType::Fixed {
                width: 16,
                frac_bits,
            } => {
                assert!(frac_bits >= 10, "expected fine scale, got q{frac_bits}");
                // Range must fit.
                assert!(enc.quantize(16.0) <= 32767);
            }
            other => panic!("expected fixed, got {other}"),
        }
    }

    #[test]
    fn auto_refine_sets_refinements() {
        let mut m = Model::new("t");
        let c = m
            .add_component(
                Component::new("Ctrl")
                    .input("v", DataType::physical("Voltage", "V"))
                    .output("ok", DataType::Bool),
            )
            .unwrap();
        let mut ranges = BTreeMap::new();
        ranges.insert(("Ctrl".to_string(), "v".to_string()), (0.0, 16.0));
        let report = auto_refine(&mut m, &[c], &ranges).unwrap();
        assert_eq!(report.choices.len(), 2);
        assert!(m.component(c).find_port("v").unwrap().refinement.is_some());
        assert!(report.max_quantization_error > 0.0);
        assert!(report.max_quantization_error < 0.01);
    }

    fn rated_dfd(m: &mut Model) -> (ComponentId, BTreeMap<String, u32>) {
        let fast = m
            .add_component(
                Component::new("FastBlock")
                    .input("x", DataType::Float)
                    .output("y", DataType::Float)
                    .with_behavior(Behavior::expr("y", parse("x * 2.0").unwrap())),
            )
            .unwrap();
        let slow = m
            .add_component(
                Component::new("SlowBlock")
                    .input("x", DataType::Float)
                    .output("y", DataType::Float)
                    .with_behavior(Behavior::expr("y", parse("x + 1.0").unwrap())),
            )
            .unwrap();
        let mut net = Composite::new(CompositeKind::Dfd);
        net.instantiate("f1", fast);
        net.instantiate("f2", fast);
        net.instantiate("s1", slow);
        net.connect(Endpoint::boundary("in"), Endpoint::child("f1", "x"));
        net.connect(Endpoint::child("f1", "y"), Endpoint::child("f2", "x"));
        net.connect(Endpoint::child("f2", "y"), Endpoint::child("s1", "x"));
        net.connect(Endpoint::child("s1", "y"), Endpoint::boundary("out"));
        let top = m
            .add_component(
                Component::new("Ctrl")
                    .input("in", DataType::Float)
                    .output("out", DataType::Float)
                    .with_behavior(Behavior::Composite(net)),
            )
            .unwrap();
        let mut periods = BTreeMap::new();
        periods.insert("f1".to_string(), 10);
        periods.insert("f2".to_string(), 10);
        periods.insert("s1".to_string(), 100);
        (top, periods)
    }

    #[test]
    fn cluster_by_clocks_groups_by_period() {
        let mut m = Model::new("t");
        let (top, periods) = rated_dfd(&mut m);
        let ccd = cluster_by_clocks(&mut m, top, &periods).unwrap();
        assert_eq!(ccd.clusters.len(), 2);
        let fast = ccd.find_cluster("Ctrl_cluster_10t").unwrap();
        let slow = ccd.find_cluster("Ctrl_cluster_100t").unwrap();
        assert_eq!(fast.period, 10);
        assert_eq!(slow.period, 100);
        // Exactly one cross-cluster channel: f2 -> s1 (fast->slow, direct).
        assert_eq!(ccd.channels.len(), 1);
        assert_eq!(ccd.channels[0].delays, 0);
        ccd.validate_against(&m, &FixedPriorityDataIntegrityPolicy::new())
            .unwrap();
    }

    #[test]
    fn cluster_by_clocks_inserts_delay_on_slow_to_fast() {
        let mut m = Model::new("t");
        let (top, mut periods) = rated_dfd(&mut m);
        // Reverse the rate assignment so f2 -> s1 becomes slow -> fast.
        periods.insert("f1".to_string(), 100);
        periods.insert("f2".to_string(), 100);
        periods.insert("s1".to_string(), 10);
        let ccd = cluster_by_clocks(&mut m, top, &periods).unwrap();
        assert_eq!(ccd.channels.len(), 1);
        assert_eq!(ccd.channels[0].delays, 1);
        ccd.validate_against(&m, &FixedPriorityDataIntegrityPolicy::new())
            .unwrap();
    }

    #[test]
    fn cluster_by_clocks_requires_periods() {
        let mut m = Model::new("t");
        let (top, mut periods) = rated_dfd(&mut m);
        periods.remove("s1");
        assert!(matches!(
            cluster_by_clocks(&mut m, top, &periods),
            Err(TransformError::Precondition(_))
        ));
    }

    #[test]
    fn dissolve_ssd_preserves_delays_as_operators() {
        let mut m = Model::new("t");
        let a = m
            .add_component(
                Component::new("A")
                    .input("x", DataType::Float)
                    .output("y", DataType::Float)
                    .with_behavior(Behavior::expr("y", parse("x").unwrap())),
            )
            .unwrap();
        let mut ssd = Composite::new(CompositeKind::Ssd);
        ssd.instantiate("a1", a);
        ssd.instantiate("a2", a);
        ssd.connect(Endpoint::child("a1", "y"), Endpoint::child("a2", "x"));
        ssd.connect(Endpoint::child("a2", "y"), Endpoint::child("a1", "x"));
        let top = m
            .add_component(Component::new("Sys").with_behavior(Behavior::Composite(ssd)))
            .unwrap();
        let mut periods = BTreeMap::new();
        periods.insert("a1".to_string(), 10);
        periods.insert("a2".to_string(), 20);
        let ccd = dissolve_ssd(&m, top, &periods).unwrap();
        assert_eq!(ccd.clusters.len(), 2);
        assert_eq!(ccd.channels.len(), 2);
        assert!(ccd.channels.iter().all(|c| c.delays == 1));
        // Both directions pass the OSEK policy thanks to the delays.
        ccd.validate_against(&m, &FixedPriorityDataIntegrityPolicy::new())
            .unwrap();
    }

    #[test]
    fn dissolve_requires_ssd() {
        let mut m = Model::new("t");
        let (top, periods) = rated_dfd(&mut m);
        assert!(matches!(
            dissolve_ssd(&m, top, &periods),
            Err(TransformError::Precondition(_))
        ));
    }
}
