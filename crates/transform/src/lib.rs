//! # automode-transform
//!
//! The AutoMoDe **transformation framework** — "besides adequate modeling
//! means, the core of the AutoMoDe approach is the investigation of and
//! tool support for model transformations" (paper, Sec. 4). Three kinds of
//! steps are implemented, mirroring the paper's taxonomy:
//!
//! * **Reengineering** (up, [`reengineer`]) — *white-box*: lift complete
//!   ASCET implementations to FDA models, extracting the implicit modes of
//!   If-Then-Else cascades into explicit MTDs (the Sec. 5 case study);
//!   *black-box*: lift communication matrices to partial FAA models.
//! * **Refactoring** (same level, [`refactor`], [`mode_dataflow`]) —
//!   replace an MTD by a semantically equivalent, partitionable data-flow
//!   network with explicit mode ports (Sec. 3.3); introduce coordinating
//!   functionality for actuator conflicts (Sec. 3.1); flatten hierarchy.
//! * **Refinement** (down, [`refine`], [`deploy`](mod@deploy)) — choose implementation
//!   types and encodings for physical signals; cluster DFD blocks by their
//!   clocks; dissolve SSD hierarchy into a flat CCD; deploy clusters to
//!   ECUs/tasks and generate the OA (ASCET projects + communication
//!   matrix, Sec. 3.4).
//!
//! Every semantics-preserving transformation is validated in this
//! workspace by trace equivalence via `automode-sim`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cosim;
pub mod deploy;
pub mod error;
pub mod global_modes;
pub mod lower;
pub mod mode_dataflow;
pub mod reengineer;
pub mod refactor;
pub mod refine;

pub use cosim::{CosimHarness, CosimReport};
pub use deploy::{deploy, Deployment, DeploymentSpec};
pub use error::TransformError;
pub use global_modes::{flag_overlap_report, mtd_from_flag_component, FlagOverlapReport};
pub use mode_dataflow::mtd_to_dataflow;
pub use reengineer::{reengineer_comm_matrix, reengineer_module, ReengineeringReport};
pub use refactor::introduce_coordinator;
pub use refine::{auto_refine, cluster_by_clocks, dissolve_ssd};
