//! Global mode systems from flag components.
//!
//! The case study's central pathology: "a centralized software component
//! emits a large number of flags which altogether represent the global
//! state of the engine. Due to the high complexity of this central
//! component, it is unclear which disjunctive states or modes exist at all"
//! (Sec. 5). And the remedy: "the different modes in MTDs can be used in
//! order to determine a global mode transition system which is then correct
//! by construction."
//!
//! Two tools implement that remedy:
//!
//! * [`flag_overlap_report`] quantifies the pathology: it samples the flag
//!   component's inputs and reports which flag pairs can be active
//!   simultaneously (not disjunctive states at all) and which flags are
//!   never active (dead modes).
//! * [`mtd_from_flag_component`] builds the explicit global MTD: one mode
//!   per flag plus a default mode; the flag-defining expressions become
//!   transition triggers, and the MTD's priority-ordered, single-active-
//!   mode semantics makes the result deterministic *by construction* even
//!   where the flags overlap.

use std::collections::BTreeMap;

use automode_core::model::{Behavior, Component, ComponentId, Model};
use automode_core::Mtd;
use automode_kernel::ops::{BinOp, UnOp};
use automode_kernel::{Message, Value};
use automode_lang::{Env, Expr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::TransformError;

/// The result of sampling a flag component for mode disjointness.
#[derive(Debug, Clone, PartialEq)]
pub struct FlagOverlapReport {
    /// Samples drawn.
    pub samples: usize,
    /// `(flag_a, flag_b, count)` for every pair observed simultaneously
    /// true at least once.
    pub overlaps: Vec<(String, String, usize)>,
    /// Flags never observed true — candidate dead modes.
    pub never_active: Vec<String>,
    /// Samples on which *no* flag was true (the implicit default mode).
    pub uncovered: usize,
}

impl FlagOverlapReport {
    /// `true` if the flags form disjunctive states on the sampled space.
    pub fn is_disjoint(&self) -> bool {
        self.overlaps.is_empty()
    }
}

fn flag_exprs(model: &Model, flags: ComponentId) -> Result<Vec<(String, Expr)>, TransformError> {
    let comp = model.component(flags);
    let defs = match &comp.behavior {
        Behavior::Expr(defs) => defs,
        _ => {
            return Err(TransformError::Precondition(format!(
                "flag component `{}` must be an expression component",
                comp.name
            )))
        }
    };
    let mut out = Vec::new();
    for p in comp.outputs() {
        if p.ty != automode_core::types::DataType::Bool {
            continue;
        }
        let expr = defs.get(&p.name).ok_or_else(|| {
            TransformError::Precondition(format!("flag `{}` has no definition", p.name))
        })?;
        out.push((p.name.clone(), expr.clone()));
    }
    if out.is_empty() {
        return Err(TransformError::Precondition(format!(
            "component `{}` emits no Boolean flags",
            comp.name
        )));
    }
    Ok(out)
}

/// Samples the flag component's input space and reports overlaps and dead
/// flags. `ranges` gives the sampling interval per float input; Boolean
/// inputs are sampled uniformly.
///
/// # Errors
///
/// Fails if the component is not an expression component, or an input has
/// no range, or a flag expression fails to evaluate.
pub fn flag_overlap_report(
    model: &Model,
    flags: ComponentId,
    ranges: &BTreeMap<String, (f64, f64)>,
    samples: usize,
    seed: u64,
) -> Result<FlagOverlapReport, TransformError> {
    let comp = model.component(flags);
    let exprs = flag_exprs(model, flags)?;
    let inputs: Vec<_> = comp.inputs().cloned().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut overlap_counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    let mut active_counts: BTreeMap<&str, usize> =
        exprs.iter().map(|(n, _)| (n.as_str(), 0)).collect();
    let mut uncovered = 0usize;

    for _ in 0..samples {
        let mut env = Env::new();
        for p in &inputs {
            let v = match p.ty.lang_type() {
                automode_lang::Type::Bool => Value::Bool(rng.gen_bool(0.5)),
                _ => {
                    let (lo, hi) = ranges.get(&p.name).copied().ok_or_else(|| {
                        TransformError::Precondition(format!(
                            "no sampling range for input `{}`",
                            p.name
                        ))
                    })?;
                    Value::Float(rng.gen_range(lo..=hi))
                }
            };
            env.bind(p.name.clone(), Message::Present(v));
        }
        let mut active = Vec::new();
        for (name, expr) in &exprs {
            let v = expr
                .eval(&env)
                .map_err(|e| TransformError::Precondition(e.to_string()))?;
            if v.value().and_then(Value::as_bool) == Some(true) {
                active.push(name.clone());
                *active_counts.get_mut(name.as_str()).expect("known") += 1;
            }
        }
        if active.is_empty() {
            uncovered += 1;
        }
        for i in 0..active.len() {
            for j in i + 1..active.len() {
                *overlap_counts
                    .entry((active[i].clone(), active[j].clone()))
                    .or_default() += 1;
            }
        }
    }
    Ok(FlagOverlapReport {
        samples,
        overlaps: overlap_counts
            .into_iter()
            .map(|((a, b), c)| (a, b, c))
            .collect(),
        never_active: active_counts
            .iter()
            .filter(|(_, &c)| c == 0)
            .map(|(n, _)| n.to_string())
            .collect(),
        uncovered,
    })
}

/// Builds the explicit global MTD from a flag component.
///
/// One mode per entry of `mode_behaviors` (`flag name → behaviour
/// component`), plus a default mode active when no flag holds. Triggers are
/// the flag-defining expressions; priorities follow the order of
/// `mode_behaviors`, so overlapping flags are disambiguated
/// deterministically — the "correct by construction" property.
///
/// All behaviour components (and the default) must share one interface;
/// the flag component's inputs must be a subset of it.
///
/// # Errors
///
/// Propagates precondition and meta-model errors.
pub fn mtd_from_flag_component(
    model: &mut Model,
    flags: ComponentId,
    mode_behaviors: &[(String, ComponentId)],
    default_mode: (&str, ComponentId),
    owner_name: &str,
) -> Result<ComponentId, TransformError> {
    let exprs: BTreeMap<String, Expr> = flag_exprs(model, flags)?.into_iter().collect();
    for (flag, _) in mode_behaviors {
        if !exprs.contains_key(flag) {
            return Err(TransformError::Precondition(format!(
                "`{flag}` is not a flag of the component"
            )));
        }
    }
    let iface_src = model.component(default_mode.1).clone();

    let mut mtd = Mtd::new();
    let default_idx = mtd.add_mode(default_mode.0, default_mode.1);
    let mut mode_idx = Vec::new();
    for (flag, behavior) in mode_behaviors {
        mode_idx.push((
            flag.clone(),
            mtd.add_mode(format!("Mode_{flag}"), *behavior),
        ));
    }
    mtd.initial = default_idx;

    // From every mode, the highest-priority true flag wins; if none is
    // true, fall back to the default mode.
    let all_modes: Vec<usize> = std::iter::once(default_idx)
        .chain(mode_idx.iter().map(|(_, i)| *i))
        .collect();
    let none_true = exprs
        .iter()
        .filter(|(f, _)| mode_behaviors.iter().any(|(mf, _)| mf == *f))
        .map(|(_, e)| Expr::OrElse(Box::new(e.clone()), Box::new(Expr::lit(false))))
        .reduce(|a, b| Expr::bin(BinOp::Or, a, b))
        .map(|any| Expr::un(UnOp::Not, any))
        .unwrap_or_else(|| Expr::lit(true));
    for &from in &all_modes {
        for (prio, (flag, to)) in mode_idx.iter().enumerate() {
            if from != *to {
                mtd.add_transition(from, *to, exprs[flag].clone(), prio as u32);
            }
        }
        if from != default_idx {
            mtd.add_transition(from, default_idx, none_true.clone(), mode_idx.len() as u32);
        }
    }

    let mut owner = Component::new(owner_name);
    for p in &iface_src.ports {
        owner.ports.push(p.clone());
    }
    owner.behavior = Behavior::Mtd(mtd);
    let id = model.add_component(owner)?;
    // Validate: interfaces match, triggers well-typed over inputs.
    match &model.component(id).behavior {
        Behavior::Mtd(mtd) => mtd.validate(model, id)?,
        _ => unreachable!(),
    }
    Ok(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use automode_core::types::DataType;
    use automode_lang::parse;
    use automode_sim::{simulate_component, stimulus};

    /// A miniature of the engine_state flag component.
    fn flag_model() -> (Model, ComponentId) {
        let mut m = Model::new("t");
        let flags = m
            .add_component(
                Component::new("EngineState")
                    .input("rpm", DataType::Float)
                    .input("throttle", DataType::Float)
                    .output("b_cranking", DataType::Bool)
                    .output("b_idle", DataType::Bool)
                    .output("b_running", DataType::Bool)
                    .with_behavior(Behavior::Expr(
                        [
                            ("b_cranking".to_string(), parse("rpm < 600.0").unwrap()),
                            (
                                "b_idle".to_string(),
                                parse("rpm >= 600.0 and throttle < 0.05").unwrap(),
                            ),
                            ("b_running".to_string(), parse("rpm >= 600.0").unwrap()),
                        ]
                        .into_iter()
                        .collect(),
                    )),
            )
            .unwrap();
        (m, flags)
    }

    fn ranges() -> BTreeMap<String, (f64, f64)> {
        let mut r = BTreeMap::new();
        r.insert("rpm".to_string(), (0.0, 7000.0));
        r.insert("throttle".to_string(), (0.0, 1.0));
        r
    }

    #[test]
    fn overlap_report_finds_the_pathology() {
        let (m, flags) = flag_model();
        let report = flag_overlap_report(&m, flags, &ranges(), 2000, 1).unwrap();
        // b_idle implies b_running: flags are NOT disjunctive states.
        assert!(!report.is_disjoint());
        assert!(report
            .overlaps
            .iter()
            .any(|(a, b, _)| (a == "b_idle" && b == "b_running")
                || (a == "b_running" && b == "b_idle")));
        // cranking/running partition the space: nothing uncovered.
        assert_eq!(report.uncovered, 0);
        assert!(report.never_active.is_empty());
    }

    #[test]
    fn dead_flags_reported() {
        let mut m = Model::new("t");
        let flags = m
            .add_component(
                Component::new("F")
                    .input("x", DataType::Float)
                    .output("b_dead", DataType::Bool)
                    .with_behavior(Behavior::expr("b_dead", parse("x > 10.0").unwrap())),
            )
            .unwrap();
        let mut r = BTreeMap::new();
        r.insert("x".to_string(), (0.0, 1.0));
        let report = flag_overlap_report(&m, flags, &r, 500, 2).unwrap();
        assert_eq!(report.never_active, vec!["b_dead"]);
        assert_eq!(report.uncovered, 500);
    }

    #[test]
    fn missing_range_is_a_precondition_error() {
        let (m, flags) = flag_model();
        assert!(matches!(
            flag_overlap_report(&m, flags, &BTreeMap::new(), 10, 0),
            Err(TransformError::Precondition(_))
        ));
    }

    fn behavior(m: &mut Model, name: &str, expr: &str) -> ComponentId {
        m.add_component(
            Component::new(name)
                .input("rpm", DataType::Float)
                .input("throttle", DataType::Float)
                .output("ti", DataType::Float)
                .with_behavior(Behavior::expr("ti", parse(expr).unwrap())),
        )
        .unwrap()
    }

    #[test]
    fn global_mtd_is_deterministic_despite_overlaps() {
        let (mut m, flags) = flag_model();
        let crank = behavior(&mut m, "CrankB", "4.0 + rpm * 0.0 + throttle * 0.0");
        let idle = behavior(&mut m, "IdleB", "1.0 + rpm * 0.0 + throttle * 0.0");
        let run = behavior(&mut m, "RunB", "1.0 + throttle * 8.0 + rpm * 0.0");
        let default = behavior(&mut m, "DefaultB", "0.0 + rpm * 0.0 + throttle * 0.0");
        // Priority order: cranking, then idle, then running — so the
        // idle/running overlap resolves to idle.
        let owner = mtd_from_flag_component(
            &mut m,
            flags,
            &[
                ("b_cranking".to_string(), crank),
                ("b_idle".to_string(), idle),
                ("b_running".to_string(), run),
            ],
            ("Default", default),
            "GlobalEngineModes",
        )
        .unwrap();
        automode_core::levels::validate_fda(&m).unwrap();

        // Idle region (rpm 800, throttle 0): both b_idle and b_running are
        // true; the MTD deterministically picks idle (ti = 1.0).
        let run_out = simulate_component(
            &m,
            owner,
            &[
                ("rpm", stimulus::constant(Value::Float(800.0), 4)),
                ("throttle", stimulus::constant(Value::Float(0.0), 4)),
            ],
            4,
        )
        .unwrap();
        let ti = run_out.trace.signal("ti").unwrap();
        for t in 0..4 {
            assert_eq!(ti[t].value().unwrap().as_float().unwrap(), 1.0);
        }
    }

    #[test]
    fn global_mtd_covers_every_sample_with_exactly_one_mode() {
        // The "correct by construction" claim, checked dynamically: over a
        // random drive, the output always equals exactly one of the mode
        // behaviours' outputs.
        let (mut m, flags) = flag_model();
        let crank = behavior(&mut m, "CrankB", "4.0 + rpm * 0.0 + throttle * 0.0");
        let idle = behavior(&mut m, "IdleB", "1.0 + rpm * 0.0 + throttle * 0.0");
        let run = behavior(&mut m, "RunB", "2.0 + rpm * 0.0 + throttle * 0.0");
        let default = behavior(&mut m, "DefaultB", "0.0 + rpm * 0.0 + throttle * 0.0");
        let owner = mtd_from_flag_component(
            &mut m,
            flags,
            &[
                ("b_cranking".to_string(), crank),
                ("b_idle".to_string(), idle),
                ("b_running".to_string(), run),
            ],
            ("Default", default),
            "GlobalEngineModes",
        )
        .unwrap();
        let rpm = stimulus::seeded_random(0.0, 7000.0, 100, 3);
        let throttle = stimulus::seeded_random(0.0, 1.0, 100, 4);
        let out =
            simulate_component(&m, owner, &[("rpm", rpm), ("throttle", throttle)], 100).unwrap();
        for t in 0..100 {
            let v = out.trace.signal("ti").unwrap()[t]
                .value()
                .unwrap()
                .as_float()
                .unwrap();
            assert!([0.0, 1.0, 2.0, 4.0].contains(&v), "tick {t}: ti = {v}");
        }
    }

    #[test]
    fn unknown_flag_rejected() {
        let (mut m, flags) = flag_model();
        let b = behavior(&mut m, "B", "0.0 + rpm * 0.0 + throttle * 0.0");
        assert!(matches!(
            mtd_from_flag_component(
                &mut m,
                flags,
                &[("b_ghost".to_string(), b)],
                ("Default", b),
                "G"
            ),
            Err(TransformError::Precondition(_))
        ));
    }
}
