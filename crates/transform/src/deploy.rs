//! Deployment: mapping CCDs to ECUs and tasks, and generating the OA.
//!
//! "The LA/TA abstraction level ... provides all means necessary to
//! defining the deployment of SW components to the target platform. ...
//! several clusters may be mapped to a given operating system task, but a
//! given cluster will not be split across several tasks" (paper, Sec. 3.3).
//! "All signals between clusters deployed to different ECUs will be mapped
//! to a communication network, e.g. CAN ... the AutoMoDe tool prototype
//! will generate ASCET-SD projects for each ECU" (Sec. 3.4).
//!
//! [`deploy`] performs exactly this chain:
//!
//! 1. check the CCD's well-definedness for the chosen target policy;
//! 2. assign clusters to ECUs (explicitly or first-fit by utilisation);
//! 3. group same-ECU clusters by period into rate-monotonic tasks — a
//!    cluster is never split;
//! 4. derive the communication matrix for inter-ECU signals and a CAN bus
//!    configuration from it;
//! 5. lower each cluster to an ASCET module and emit one project per ECU.

use std::collections::BTreeMap;

use automode_ascet::model::AscetModel;
use automode_ascet::{generate_project, Project};
use automode_core::ccd::{Ccd, TargetPolicy};
use automode_core::model::Model;
use automode_platform::comm_matrix::{CommMatrix, FrameDef, SignalDef};
use automode_platform::ta::{Ecu, Runnable, Task, TechnicalArchitecture};

use crate::error::TransformError;
use crate::lower::cluster_to_module;

/// Parameters of a deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentSpec {
    /// Available ECUs, in priority order for first-fit assignment.
    pub ecus: Vec<String>,
    /// Worst-case execution time per cluster step, in microseconds.
    pub cluster_wcet_us: BTreeMap<String, u64>,
    /// Explicit cluster→ECU assignments; unassigned clusters are placed
    /// first-fit by utilisation.
    pub pinned: BTreeMap<String, String>,
    /// Real-time duration of one base tick in microseconds (a cluster with
    /// period `p` ticks runs every `p * tick_us` µs).
    pub tick_us: u64,
    /// CAN bitrate for the generated bus.
    pub bitrate: u64,
}

impl DeploymentSpec {
    /// A spec with 1 ms ticks, 500 kbit/s CAN, and a default 100 µs WCET
    /// for every cluster.
    pub fn new(ecus: impl IntoIterator<Item = impl Into<String>>) -> Self {
        DeploymentSpec {
            ecus: ecus.into_iter().map(Into::into).collect(),
            cluster_wcet_us: BTreeMap::new(),
            pinned: BTreeMap::new(),
            tick_us: 1_000,
            bitrate: 500_000,
        }
    }

    /// Sets a cluster's WCET (builder style).
    pub fn wcet(mut self, cluster: impl Into<String>, wcet_us: u64) -> Self {
        self.cluster_wcet_us.insert(cluster.into(), wcet_us);
        self
    }

    /// Pins a cluster to an ECU (builder style).
    pub fn pin(mut self, cluster: impl Into<String>, ecu: impl Into<String>) -> Self {
        self.pinned.insert(cluster.into(), ecu.into());
        self
    }

    fn wcet_of(&self, cluster: &str) -> u64 {
        self.cluster_wcet_us.get(cluster).copied().unwrap_or(100)
    }
}

/// The result of a deployment.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// The populated technical architecture (ECUs, tasks, bus).
    pub ta: TechnicalArchitecture,
    /// cluster → (ecu, task).
    pub assignments: BTreeMap<String, (String, String)>,
    /// The generated communication matrix for inter-ECU signals.
    pub comm_matrix: CommMatrix,
    /// One generated ASCET project per ECU that received clusters.
    pub projects: Vec<Project>,
}

impl Deployment {
    /// `true` if no cluster is split across tasks (always holds by
    /// construction; exposed for the test suite and benches).
    pub fn clusters_unsplit(&self) -> bool {
        // Each cluster appears exactly once in the assignment map and each
        // task lists it at most once.
        let mut seen = BTreeMap::new();
        for ecu in &self.ta.ecus {
            for task in &ecu.tasks {
                for r in &task.runnables {
                    *seen.entry(r.name.clone()).or_insert(0usize) += 1;
                }
            }
        }
        seen.values().all(|&n| n == 1)
    }
}

/// Deploys a validated CCD onto the target platform and generates the OA.
///
/// # Errors
///
/// Fails if the CCD violates the target policy, an ECU reference is
/// unknown, a cluster cannot be lowered, or the generated bus is invalid.
pub fn deploy(
    model: &Model,
    ccd: &Ccd,
    policy: &dyn TargetPolicy,
    spec: &DeploymentSpec,
) -> Result<Deployment, TransformError> {
    if spec.ecus.is_empty() {
        return Err(TransformError::Precondition("no ECUs available".into()));
    }
    ccd.validate_against(model, policy)?;

    // --- Cluster -> ECU assignment -------------------------------------
    let mut load: BTreeMap<&str, f64> = spec.ecus.iter().map(|e| (e.as_str(), 0.0)).collect();
    let mut ecu_of: BTreeMap<String, String> = BTreeMap::new();
    for cluster in &ccd.clusters {
        let util =
            spec.wcet_of(&cluster.name) as f64 / (cluster.period as u64 * spec.tick_us) as f64;
        let ecu = match spec.pinned.get(&cluster.name) {
            Some(e) => {
                if !spec.ecus.contains(e) {
                    return Err(TransformError::Precondition(format!(
                        "cluster `{}` pinned to unknown ecu `{e}`",
                        cluster.name
                    )));
                }
                e.clone()
            }
            None => {
                // First fit: the first ECU whose load stays under 0.7.
                spec.ecus
                    .iter()
                    .find(|e| load[e.as_str()] + util <= 0.7)
                    .or_else(|| {
                        // Fall back to the least-loaded ECU.
                        spec.ecus.iter().min_by(|a, b| {
                            load[a.as_str()]
                                .partial_cmp(&load[b.as_str()])
                                .expect("finite")
                        })
                    })
                    .expect("ecus nonempty")
                    .clone()
            }
        };
        *load.get_mut(ecu.as_str()).expect("known") += util;
        ecu_of.insert(cluster.name.clone(), ecu);
    }

    // --- Task formation: one task per (ecu, period) ---------------------
    // Rate-monotonic priorities per ECU.
    let mut ta = TechnicalArchitecture::new();
    let mut assignments = BTreeMap::new();
    for ecu_name in &spec.ecus {
        let mut periods: Vec<u32> = ccd
            .clusters
            .iter()
            .filter(|c| ecu_of[&c.name] == *ecu_name)
            .map(|c| c.period)
            .collect();
        periods.sort_unstable();
        periods.dedup();
        let mut ecu = Ecu::new(ecu_name.clone());
        for (prio, period) in periods.iter().enumerate() {
            let task_name = format!("t_{period}tick");
            let mut task = Task::new(
                task_name.clone(),
                prio as u32,
                *period as u64 * spec.tick_us,
            );
            for cluster in ccd
                .clusters
                .iter()
                .filter(|c| ecu_of[&c.name] == *ecu_name && c.period == *period)
            {
                task = task.runnable(Runnable::new(
                    cluster.name.clone(),
                    spec.wcet_of(&cluster.name),
                ));
                assignments.insert(cluster.name.clone(), (ecu_name.clone(), task_name.clone()));
            }
            ecu = ecu.with_task(task)?;
        }
        if !ecu.tasks.is_empty() {
            ta = ta.with_ecu(ecu)?;
        }
    }

    // --- Communication matrix for inter-ECU channels ---------------------
    let mut matrix = CommMatrix::new();
    let mut frames_created: BTreeMap<(String, u32), String> = BTreeMap::new();
    let mut next_id = 0x100u32;
    for ch in &ccd.channels {
        let from_ecu = ecu_of[&ch.from_cluster].clone();
        let to_ecu = ecu_of[&ch.to_cluster].clone();
        if from_ecu == to_ecu {
            continue;
        }
        let from_cluster = ccd.find_cluster(&ch.from_cluster).expect("validated");
        let key = (from_ecu.clone(), from_cluster.period);
        if !frames_created.contains_key(&key) {
            let frame_name = format!("f_{}_{}tick", from_ecu, from_cluster.period);
            matrix = matrix.frame(FrameDef {
                name: frame_name.clone(),
                can_id: next_id,
                sender: from_ecu.clone(),
                period_ms: (from_cluster.period as u64 * spec.tick_us / 1_000).max(1) as u32,
            })?;
            next_id += 1;
            frames_created.insert(key.clone(), frame_name);
        }
        let signal = format!("{}_{}", ch.from_cluster, ch.from_port);
        let bits = model
            .component(from_cluster.component)
            .find_port(&ch.from_port)
            .and_then(|p| p.refinement.as_ref())
            .map(|r| r.impl_type.bits())
            .unwrap_or(8);
        // A signal may feed several receivers; extend rather than duplicate.
        if let Some(existing) = matrix.signals.iter_mut().find(|s| s.name == signal) {
            if !existing.receivers.contains(&to_ecu) {
                existing.receivers.push(to_ecu.clone());
            }
        } else {
            matrix = matrix.signal(SignalDef {
                name: signal,
                frame: frames_created[&key].clone(),
                length_bits: bits,
                receivers: vec![to_ecu.clone()],
            })?;
        }
    }
    if !matrix.frames.is_empty() {
        ta = ta.with_bus(matrix.to_bus("deployment_can", spec.bitrate)?)?;
    }

    // --- Per-ECU ASCET projects ------------------------------------------
    let mut projects = Vec::new();
    for ecu_name in &spec.ecus {
        let clusters: Vec<_> = ccd
            .clusters
            .iter()
            .filter(|c| ecu_of[&c.name] == *ecu_name)
            .collect();
        if clusters.is_empty() {
            continue;
        }
        let mut ascet = AscetModel::new(format!("{}_{}", model.name(), ecu_name));
        for cluster in &clusters {
            ascet = ascet.module(cluster_to_module(model, cluster)?);
        }
        // Bus bindings: tx for signals this ECU sends, rx for receives.
        let mut bindings = Vec::new();
        for s in &matrix.signals {
            if matrix.sender_of(&s.name) == Some(ecu_name.as_str()) {
                bindings.push((s.name.clone(), "tx"));
            } else if s.receivers.contains(ecu_name) {
                bindings.push((s.name.clone(), "rx"));
            }
        }
        let mut project = generate_project(ecu_name, &ascet, &bindings)?;
        // Intra-ECU message bindings: CCD channels whose both ends landed
        // on this ECU connect a Send message of one module to a Receive
        // message of another (ASCET project-level binding).
        let mut local_bindings = String::new();
        for ch in &ccd.channels {
            if ecu_of[&ch.from_cluster] == *ecu_name && ecu_of[&ch.to_cluster] == *ecu_name {
                use std::fmt::Write as _;
                let _ = writeln!(
                    local_bindings,
                    "bind {}.{} -> {}.{} delays {}",
                    ch.from_cluster, ch.from_port, ch.to_cluster, ch.to_port, ch.delays
                );
            }
        }
        if !local_bindings.is_empty() {
            project
                .files
                .push((format!("{ecu_name}/bindings.amdesc"), local_bindings));
        }
        projects.push(project);
    }

    Ok(Deployment {
        ta,
        assignments,
        comm_matrix: matrix,
        projects,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use automode_core::ccd::{CcdChannel, Cluster, FixedPriorityDataIntegrityPolicy};
    use automode_core::model::{Behavior, Component};
    use automode_core::types::DataType;
    use automode_lang::parse;

    fn two_cluster_setup() -> (Model, Ccd) {
        let mut m = Model::new("engine");
        let fuel = m
            .add_component(
                Component::new("FuelCtrl")
                    .input("rpm", DataType::Float)
                    .output("inj", DataType::Float)
                    .with_behavior(Behavior::expr("inj", parse("rpm * 0.001").unwrap())),
            )
            .unwrap();
        let diag = m
            .add_component(
                Component::new("Diag")
                    .input("inj", DataType::Float)
                    .output("warn", DataType::Bool)
                    .with_behavior(Behavior::expr("warn", parse("inj > 5.0").unwrap())),
            )
            .unwrap();
        let ccd = Ccd::new()
            .cluster(Cluster::new("fuel", fuel, 10))
            .cluster(Cluster::new("diag", diag, 100))
            .channel(CcdChannel::direct("fuel", "inj", "diag", "inj"));
        (m, ccd)
    }

    #[test]
    fn single_ecu_deployment() {
        let (m, ccd) = two_cluster_setup();
        let spec = DeploymentSpec::new(["engine_ecu"]);
        let d = deploy(&m, &ccd, &FixedPriorityDataIntegrityPolicy::new(), &spec).unwrap();
        assert!(d.clusters_unsplit());
        assert_eq!(d.assignments["fuel"].0, "engine_ecu");
        assert_eq!(d.assignments["diag"].0, "engine_ecu");
        // Different periods -> different tasks; rate-monotonic priorities.
        let ecu = d.ta.ecu("engine_ecu").unwrap();
        assert_eq!(ecu.tasks.len(), 2);
        let fast = ecu.task("t_10tick").unwrap();
        let slow = ecu.task("t_100tick").unwrap();
        assert!(fast.priority < slow.priority);
        // Same ECU: no comm matrix entries, one project.
        assert!(d.comm_matrix.frames.is_empty());
        assert_eq!(d.projects.len(), 1);
    }

    #[test]
    fn pinned_two_ecu_deployment_generates_bus() {
        let (m, ccd) = two_cluster_setup();
        let spec = DeploymentSpec::new(["engine_ecu", "body_ecu"])
            .pin("fuel", "engine_ecu")
            .pin("diag", "body_ecu");
        let d = deploy(&m, &ccd, &FixedPriorityDataIntegrityPolicy::new(), &spec).unwrap();
        assert_eq!(d.assignments["diag"].0, "body_ecu");
        // The fuel->diag signal crosses ECUs: a frame and a signal exist.
        assert_eq!(d.comm_matrix.frames.len(), 1);
        assert_eq!(d.comm_matrix.signals.len(), 1);
        assert_eq!(d.comm_matrix.sender_of("fuel_inj"), Some("engine_ecu"));
        assert_eq!(d.ta.buses.len(), 1);
        assert_eq!(d.projects.len(), 2);
        // The sender project carries a tx com component.
        let engine_project = d.projects.iter().find(|p| p.ecu == "engine_ecu").unwrap();
        let com = engine_project.file("engine_ecu/com.c").unwrap();
        assert!(com.contains("com_tx_fuel_inj"));
        let body_project = d.projects.iter().find(|p| p.ecu == "body_ecu").unwrap();
        assert!(body_project
            .file("body_ecu/com.c")
            .unwrap()
            .contains("com_rx_fuel_inj"));
    }

    #[test]
    fn policy_violation_blocks_deployment() {
        let (m, _) = two_cluster_setup();
        let fuel = m.find("FuelCtrl").unwrap();
        let diag = m.find("Diag").unwrap();
        // Slow->fast without delay: ill-defined for the OSEK target.
        let bad = Ccd::new()
            .cluster(Cluster::new("fuel", fuel, 10))
            .cluster(Cluster::new("diag", diag, 100))
            .channel(CcdChannel::direct("diag", "warn", "fuel", "rpm"));
        let spec = DeploymentSpec::new(["e"]);
        assert!(matches!(
            deploy(&m, &bad, &FixedPriorityDataIntegrityPolicy::new(), &spec),
            Err(TransformError::Core(_))
        ));
    }

    #[test]
    fn first_fit_balances_by_utilization() {
        let mut m = Model::new("t");
        let mut ccd = Ccd::new();
        for i in 0..4 {
            let c = m
                .add_component(
                    Component::new(format!("C{i}"))
                        .input("x", DataType::Float)
                        .output("y", DataType::Float)
                        .with_behavior(Behavior::expr("y", parse("x").unwrap())),
                )
                .unwrap();
            ccd = ccd.cluster(Cluster::new(format!("c{i}"), c, 10));
        }
        // Each cluster uses 60% of an ECU: they cannot share.
        let mut spec = DeploymentSpec::new(["e0", "e1", "e2", "e3"]);
        for i in 0..4 {
            spec = spec.wcet(format!("c{i}"), 6_000);
        }
        let d = deploy(&m, &ccd, &FixedPriorityDataIntegrityPolicy::new(), &spec).unwrap();
        let ecus: std::collections::BTreeSet<&str> =
            d.assignments.values().map(|(e, _)| e.as_str()).collect();
        assert_eq!(ecus.len(), 4, "each heavy cluster gets its own ECU");
    }

    #[test]
    fn unknown_pin_and_empty_ecus_rejected() {
        let (m, ccd) = two_cluster_setup();
        let spec = DeploymentSpec::new(Vec::<String>::new());
        assert!(matches!(
            deploy(&m, &ccd, &FixedPriorityDataIntegrityPolicy::new(), &spec),
            Err(TransformError::Precondition(_))
        ));
        let spec = DeploymentSpec::new(["e"]).pin("fuel", "ghost");
        assert!(matches!(
            deploy(&m, &ccd, &FixedPriorityDataIntegrityPolicy::new(), &spec),
            Err(TransformError::Precondition(_))
        ));
    }

    #[test]
    fn fan_out_signal_lists_all_receivers() {
        let mut m = Model::new("t");
        let src = m
            .add_component(
                Component::new("Src")
                    .output("v", DataType::Float)
                    .with_behavior(Behavior::expr("v", parse("1.0").unwrap())),
            )
            .unwrap();
        let sink = m
            .add_component(
                Component::new("Sink")
                    .input("v", DataType::Float)
                    .output("o", DataType::Float)
                    .with_behavior(Behavior::expr("o", parse("v").unwrap())),
            )
            .unwrap();
        let ccd = Ccd::new()
            .cluster(Cluster::new("src", src, 10))
            .cluster(Cluster::new("s1", sink, 10))
            .cluster(Cluster::new("s2", sink, 10))
            .channel(CcdChannel::direct("src", "v", "s1", "v"))
            .channel(CcdChannel::direct("src", "v", "s2", "v"));
        let spec = DeploymentSpec::new(["e0", "e1", "e2"])
            .pin("src", "e0")
            .pin("s1", "e1")
            .pin("s2", "e2");
        let d = deploy(&m, &ccd, &FixedPriorityDataIntegrityPolicy::new(), &spec).unwrap();
        assert_eq!(d.comm_matrix.signals.len(), 1);
        assert_eq!(d.comm_matrix.signals[0].receivers.len(), 2);
    }
}
