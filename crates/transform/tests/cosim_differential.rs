//! Differential tests: the timing-accurate platform co-simulation against
//! the LA reference semantics.
//!
//! * Fault-free single-ECU deployments must match the LA trace
//!   **bit-for-bit**, across preemption on/off, both inter-task
//!   communication regimes, and randomized harmonic rates/delays.
//! * `NextPeriodBoundary` publication behaves as one extra delay operator:
//!   the co-simulated trace equals the LA trace of the CCD with every
//!   direct channel upgraded to one delay.
//! * Runs replay deterministically under seeded bus faults.

use automode_core::ccd::{Ccd, CcdChannel, Cluster, FixedPriorityDataIntegrityPolicy};
use automode_core::model::{Behavior, Component, Model};
use automode_core::types::DataType;
use automode_kernel::{Message, Stream, Trace, TraceEquivalence, Value};
use automode_lang::parse;
use automode_platform::cosim::{CosimConfig, PlatformFault};
use automode_platform::{IpcRegime, Publication};
use automode_transform::cosim::CosimHarness;
use automode_transform::{deploy, DeploymentSpec};
use proptest::prelude::*;

/// Chain model: src(x)->y, mid(y)->z, sink(z)->w, all Int arithmetic.
fn chain_model() -> Model {
    let mut m = Model::new("chain");
    m.add_component(
        Component::new("Src")
            .input("x", DataType::Int)
            .output("y", DataType::Int)
            .with_behavior(Behavior::expr("y", parse("x * 2").unwrap())),
    )
    .unwrap();
    m.add_component(
        Component::new("Mid")
            .input("y", DataType::Int)
            .output("z", DataType::Int)
            .with_behavior(Behavior::expr("z", parse("y + 1").unwrap())),
    )
    .unwrap();
    m.add_component(
        Component::new("Sink")
            .input("z", DataType::Int)
            .output("w", DataType::Int)
            .with_behavior(Behavior::expr("w", parse("z * 3").unwrap())),
    )
    .unwrap();
    m
}

/// A 3-cluster chain CCD. Channel delays are bumped to satisfy the OSEK
/// policy (slow-to-fast needs at least one delay).
fn chain_ccd(m: &Model, periods: [u32; 3], delays: [u32; 2]) -> Ccd {
    let src = m.find("Src").unwrap();
    let mid = m.find("Mid").unwrap();
    let sink = m.find("Sink").unwrap();
    let d01 = if periods[0] > periods[1] {
        delays[0].max(1)
    } else {
        delays[0]
    };
    let d12 = if periods[1] > periods[2] {
        delays[1].max(1)
    } else {
        delays[1]
    };
    Ccd::new()
        .cluster(Cluster::new("src", src, periods[0]))
        .cluster(Cluster::new("mid", mid, periods[1]))
        .cluster(Cluster::new("sink", sink, periods[2]))
        .channel(CcdChannel::direct("src", "y", "mid", "y").with_delays(d01))
        .channel(CcdChannel::direct("mid", "z", "sink", "z").with_delays(d12))
}

fn ramp_stimulus(ticks: u64) -> Trace {
    let mut t = Trace::new();
    let s: Stream = (0..ticks)
        .map(|k| Message::present(Value::Int(k as i64)))
        .collect();
    t.insert("src.x", s);
    t
}

fn run_single_ecu(
    periods: [u32; 3],
    delays: [u32; 2],
    preemption: bool,
    regime: IpcRegime,
    ticks: u64,
) -> (bool, Option<String>) {
    let m = chain_model();
    let ccd = chain_ccd(&m, periods, delays);
    let spec = DeploymentSpec::new(["ecu0"]);
    let d = deploy(&m, &ccd, &FixedPriorityDataIntegrityPolicy::new(), &spec).unwrap();
    let config = CosimConfig {
        preemption,
        regime,
        ..CosimConfig::default()
    };
    let harness = CosimHarness::new(&m, &ccd, &d, &spec, config).unwrap();
    let report = harness.run(&ramp_stimulus(ticks), ticks).unwrap();
    assert!(report.single_ecu);
    assert!(report.robustness.is_clean(), "no bus, no contracts");
    (report.semantics_preserved(), report.la_divergence)
}

proptest! {
    /// Fault-free single-ECU deployments are bit-for-bit LA-equal for any
    /// harmonic rate assignment, channel delay count, scheduling mode, and
    /// communication regime.
    #[test]
    fn single_ecu_cosim_is_bit_for_bit_la_equal(
        p0 in prop_oneof![Just(1u32), Just(2), Just(4)],
        p1 in prop_oneof![Just(1u32), Just(2), Just(4)],
        p2 in prop_oneof![Just(1u32), Just(2), Just(4)],
        d0 in 0u32..3,
        d1 in 0u32..3,
        preemption in any::<bool>(),
        cico in any::<bool>(),
    ) {
        let regime = if cico { IpcRegime::CopyInCopyOut } else { IpcRegime::Direct };
        let (ok, diff) = run_single_ecu([p0, p1, p2], [d0, d1], preemption, regime, 24);
        prop_assert!(ok, "diverged: {diff:?}");
    }
}

#[test]
fn next_period_boundary_equals_one_extra_delay() {
    // Publication at the next period boundary = one staged boundary per
    // direct channel: the TA trace must equal the LA semantics of the CCD
    // with `delays = 1` on every direct channel.
    let m = chain_model();
    let ccd = chain_ccd(&m, [1, 2, 4], [0, 0]);
    let spec = DeploymentSpec::new(["ecu0"]);
    let d = deploy(&m, &ccd, &FixedPriorityDataIntegrityPolicy::new(), &spec).unwrap();
    let config = CosimConfig {
        publication: Publication::NextPeriodBoundary,
        ..CosimConfig::default()
    };
    let harness = CosimHarness::new(&m, &ccd, &d, &spec, config).unwrap();
    let ticks = 24;
    let stim = ramp_stimulus(ticks);
    let report = harness.run(&stim, ticks).unwrap();
    // Direct channels now lag one writer period: the plain LA diff is
    // expected to fire...
    assert!(report.la_divergence.is_some());
    // ...but the effective-delay CCD matches bit-for-bit.
    let shifted = chain_ccd(&m, [1, 2, 4], [1, 1]);
    let net = automode_sim::elaborate_ccd(&m, &shifted).unwrap();
    let names: Vec<String> = net.input_names().map(str::to_owned).collect();
    let rows: Vec<Vec<Message>> = (0..ticks as usize)
        .map(|t| {
            names
                .iter()
                .map(|n| {
                    stim.signal(n)
                        .and_then(|s| s.get(t))
                        .cloned()
                        .unwrap_or(Message::Absent)
                })
                .collect()
        })
        .collect();
    let la = net.run(&rows).unwrap();
    let outputs: Vec<String> = report
        .outcome
        .trace
        .signal_names()
        .map(str::to_owned)
        .collect();
    let equiv = TraceEquivalence::exact().on_signals(outputs);
    assert!(
        report.outcome.trace.diff(&la, &equiv).is_none(),
        "NextPeriodBoundary must equal the one-extra-delay LA semantics"
    );
}

fn two_ecu_harness_parts() -> (Model, Ccd, DeploymentSpec) {
    let m = chain_model();
    let ccd = chain_ccd(&m, [2, 2, 4], [0, 0]);
    let spec = DeploymentSpec::new(["ecu0", "ecu1"])
        .pin("src", "ecu0")
        .pin("mid", "ecu0")
        .pin("sink", "ecu1");
    (m, ccd, spec)
}

#[test]
fn two_ecu_fault_free_holds_envelope() {
    let (m, ccd, spec) = two_ecu_harness_parts();
    let d = deploy(&m, &ccd, &FixedPriorityDataIntegrityPolicy::new(), &spec).unwrap();
    let harness = CosimHarness::new(&m, &ccd, &d, &spec, CosimConfig::default()).unwrap();
    let report = harness.run(&ramp_stimulus(32), 32).unwrap();
    assert!(!report.single_ecu);
    assert!(
        report.outcome.envelope_preserved(),
        "{:?}",
        report.outcome.channels
    );
    assert!(report.semantics_preserved());
    assert!(report.robustness.is_clean(), "{:?}", report.robustness);
    // Worst slack stays within one writer period of the bound.
    for ch in &report.outcome.channels {
        assert!(ch.envelope.worst_slack_us > 0, "{ch:?}");
    }
}

#[test]
fn lost_frame_detected_with_finite_latency() {
    let (m, ccd, spec) = two_ecu_harness_parts();
    let d = deploy(&m, &ccd, &FixedPriorityDataIntegrityPolicy::new(), &spec).unwrap();
    let config = CosimConfig {
        faults: vec![PlatformFault::LostFrame {
            frame: "f_ecu0_2tick".into(),
            every: 4,
            phase: 2,
        }],
        ..CosimConfig::default()
    };
    let harness = CosimHarness::new(&m, &ccd, &d, &spec, config).unwrap();
    let report = harness.run(&ramp_stimulus(32), 32).unwrap();
    assert!(!report.robustness.is_clean());
    assert!(report.metrics.first_violation_tick.is_some());
    let latency = report
        .metrics
        .detection_latency()
        .expect("finite detection latency");
    // The monitor sees the hole at the lost instance's visibility tick.
    assert!(latency <= 32);
    assert!(!report.outcome.envelope_preserved());
    assert_eq!(
        report.outcome.envelope_misses(),
        report.outcome.frames.iter().map(|f| f.lost).sum::<u64>()
    );
}

#[test]
fn seeded_bus_faults_replay_deterministically() {
    let (m, ccd, spec) = two_ecu_harness_parts();
    let d = deploy(&m, &ccd, &FixedPriorityDataIntegrityPolicy::new(), &spec).unwrap();
    let config = CosimConfig {
        faults: vec![
            PlatformFault::LostFrame {
                frame: "f_ecu0_2tick".into(),
                every: 5,
                phase: 1,
            },
            PlatformFault::DelayedFrame {
                frame: "f_ecu0_2tick".into(),
                extra_us: 700,
                every: 3,
                phase: 0,
            },
            PlatformFault::BusLoad {
                id: 0x20,
                dlc: 8,
                period_us: 900,
                offset_us: 100,
            },
        ],
        ..CosimConfig::default()
    };
    let harness = CosimHarness::new(&m, &ccd, &d, &spec, config).unwrap();
    let a = harness.run(&ramp_stimulus(40), 40).unwrap();
    let b = harness.run(&ramp_stimulus(40), 40).unwrap();
    assert_eq!(
        a.outcome.trace.to_canonical_text(),
        b.outcome.trace.to_canonical_text()
    );
    assert_eq!(
        a.outcome.deliveries.to_canonical_text(),
        b.outcome.deliveries.to_canonical_text()
    );
    assert_eq!(a.outcome.tasks, b.outcome.tasks);
    assert_eq!(a.outcome.frames, b.outcome.frames);
    assert_eq!(a.outcome.channels, b.outcome.channels);
    assert_eq!(a.robustness, b.robustness);
}

proptest! {
    /// The differential also holds under heavy compute: wcets near the
    /// period force real preemption without changing the data trajectory.
    #[test]
    fn preemption_pressure_preserves_la_equality(
        wcet_src in 100u64..500,
        wcet_sink in 500u64..1300,
    ) {
        let m = chain_model();
        let ccd = chain_ccd(&m, [1, 1, 4], [0, 0]);
        let spec = DeploymentSpec::new(["ecu0"])
            .wcet("src", wcet_src)
            .wcet("mid", 50)
            .wcet("sink", wcet_sink);
        let d = deploy(&m, &ccd, &FixedPriorityDataIntegrityPolicy::new(), &spec).unwrap();
        let harness =
            CosimHarness::new(&m, &ccd, &d, &spec, CosimConfig::default()).unwrap();
        let report = harness.run(&ramp_stimulus(24), 24).unwrap();
        prop_assert!(
            report.la_divergence.is_none(),
            "diverged: {:?}",
            report.la_divergence
        );
    }
}
