//! Property-based tests of the transformation framework: symbolic
//! execution agreement with interpretation, and MTD-to-dataflow trace
//! equivalence over random mode machines.

use std::collections::BTreeMap;

use automode_ascet::model::{
    AscetModel, AscetType, MessageDecl, MessageKind, Module, Process, Stmt,
};
use automode_ascet::{AscetInterp, Stimulus};
use automode_core::model::{Behavior, Component, Model};
use automode_core::types::DataType;
use automode_core::Mtd;
use automode_kernel::ops::BinOp;
use automode_kernel::{TraceEquivalence, Value};
use automode_lang::Expr;
use automode_sim::{simulate_component, stimulus};
use automode_transform::mode_dataflow::mtd_to_dataflow;
use automode_transform::reengineer::{reengineer_module, symbolic_exec};
use proptest::prelude::*;

/// Random straight-line + conditional statement lists over inputs `a`, `b`
/// and outputs `o0`, `o1` (every branch assigns both outputs first so the
/// one-sided-assignment restriction never triggers).
fn arb_stmts() -> impl Strategy<Value = Vec<Stmt>> {
    let num = prop_oneof![
        Just(Expr::ident("a")),
        Just(Expr::ident("b")),
        (0i64..10).prop_map(Expr::lit),
    ];
    let arith = (
        num.clone(),
        num.clone(),
        prop_oneof![
            Just(BinOp::Add),
            Just(BinOp::Sub),
            Just(BinOp::Mul),
            Just(BinOp::Min),
            Just(BinOp::Max)
        ],
    )
        .prop_map(|(x, y, op)| Expr::bin(op, x, y));
    let assign =
        (prop_oneof![Just("o0"), Just("o1")], arith.clone()).prop_map(|(t, e)| Stmt::assign(t, e));
    let init = Just(vec![
        Stmt::assign("o0", Expr::lit(0i64)),
        Stmt::assign("o1", Expr::lit(0i64)),
    ]);
    let cond = (num, arith.clone(), arith).prop_map(|(c, t, e)| Stmt::If {
        cond: Expr::bin(BinOp::Gt, c, Expr::lit(3i64)),
        then_branch: vec![Stmt::assign("o0", t)],
        else_branch: vec![Stmt::assign("o0", e)],
    });
    (
        init,
        prop::collection::vec(prop_oneof![3 => assign, 1 => cond], 0..6),
    )
        .prop_map(|(mut i, rest)| {
            i.extend(rest);
            i
        })
}

fn make_process_model(body: Vec<Stmt>) -> AscetModel {
    AscetModel::new("p").module(
        Module::new("m")
            .message(MessageDecl::new(
                "a",
                AscetType::SDisc,
                MessageKind::Receive,
            ))
            .message(MessageDecl::new(
                "b",
                AscetType::SDisc,
                MessageKind::Receive,
            ))
            .message(MessageDecl::new("o0", AscetType::SDisc, MessageKind::Send))
            .message(MessageDecl::new("o1", AscetType::SDisc, MessageKind::Send))
            .process(Process::new("p", 1, body)),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Symbolic execution agrees with the ASCET interpreter: evaluating the
    /// derived output expressions equals running the statements.
    #[test]
    fn symbolic_exec_agrees_with_interpreter(
        body in arb_stmts(),
        a in -20i64..20,
        b in -20i64..20
    ) {
        let model = make_process_model(body.clone());
        // Interpreter result after one activation.
        let mut interp = AscetInterp::new(&model).unwrap();
        let mut stim = Stimulus::new();
        stim.insert("a".into(), Box::new(move |_| Some(Value::Int(a))));
        stim.insert("b".into(), Box::new(move |_| Some(Value::Int(b))));
        interp.step_ms(&stim).unwrap();

        // Symbolic result evaluated over the same inputs.
        let mut env = BTreeMap::new();
        symbolic_exec(&body, &mut env).unwrap();
        let mut eval_env = automode_lang::Env::new();
        eval_env.bind_value("a", a).bind_value("b", b);
        for out in ["o0", "o1"] {
            let expr = env.get(out).expect("assigned by init");
            let sym = expr.eval(&eval_env).unwrap().into_value().unwrap();
            prop_assert_eq!(Some(&sym), interp.value(out), "output {}", out);
        }
    }

    /// White-box reengineering of a random stateless process is trace
    /// equivalent to the ASCET interpretation on the activation grid.
    #[test]
    fn reengineering_preserves_traces(body in arb_stmts(), seed in 0u64..1000) {
        let model = make_process_model(body);
        let mut fda = Model::new("fda");
        let report = reengineer_module(&model, "m", &mut fda).unwrap();
        let (comp, _) = report.components[0];

        let a_stream = stimulus::seeded_random(-20.0, 20.0, 10, seed);
        let a_vals: Vec<i64> = a_stream
            .present_values()
            .iter()
            .map(|v| v.as_float().unwrap() as i64)
            .collect();
        let b_vals: Vec<i64> = stimulus::seeded_random(-20.0, 20.0, 10, seed + 1)
            .present_values()
            .iter()
            .map(|v| v.as_float().unwrap() as i64)
            .collect();

        let mut interp = AscetInterp::new(&model).unwrap();
        let av = a_vals.clone();
        let bv = b_vals.clone();
        let mut stim = Stimulus::new();
        stim.insert("a".into(), Box::new(move |t| Some(Value::Int(av[t as usize % av.len()]))));
        stim.insert("b".into(), Box::new(move |t| Some(Value::Int(bv[t as usize % bv.len()]))));
        let ascet_trace = interp.run(10, &stim, &["o0", "o1"]).unwrap();

        let inputs: Vec<(&str, automode_kernel::Stream)> = {
            let comp_ref = fda.component(comp);
            comp_ref
                .inputs()
                .map(|p| {
                    let vals = if p.name == "a" { &a_vals } else { &b_vals };
                    let s: automode_kernel::Stream = vals
                        .iter()
                        .map(|&v| automode_kernel::Message::present(Value::Int(v)))
                        .collect();
                    (if p.name == "a" { "a" } else { "b" }, s)
                })
                .collect()
        };
        let run = simulate_component(&fda, comp, &inputs, 10).unwrap();
        for out in ["o0", "o1"] {
            if run.trace.signal(out).is_none() {
                continue; // output optimized away (never written)
            }
            prop_assert_eq!(
                run.trace.signal(out).unwrap().present_values(),
                ascet_trace.signal(out).unwrap().present_values(),
                "output {}", out
            );
        }
    }

    /// MTD-to-dataflow equivalence over random two-mode machines with
    /// random thresholds.
    #[test]
    fn mtd_to_dataflow_equivalence(
        ta in -5.0f64..5.0,
        tb in -5.0f64..5.0,
        ga in -3.0f64..3.0,
        gb in -3.0f64..3.0,
        seed in 0u64..500
    ) {
        let mut model = Model::new("t");
        let mk = |name: &str, gain: f64, model: &mut Model| {
            model
                .add_component(
                    Component::new(name)
                        .input("x", DataType::Float)
                        .output("y", DataType::Float)
                        .with_behavior(Behavior::expr(
                            "y",
                            Expr::bin(
                                BinOp::Mul,
                                Expr::ident("x"),
                                Expr::lit(Value::Float(gain)),
                            ),
                        )),
                )
                .unwrap()
        };
        let ma = mk("A", ga, &mut model);
        let mb = mk("B", gb, &mut model);
        let mut mtd = Mtd::new();
        let ia = mtd.add_mode("A", ma);
        let ib = mtd.add_mode("B", mb);
        mtd.add_transition(ia, ib, Expr::bin(BinOp::Gt, Expr::ident("x"), Expr::lit(Value::Float(ta))), 0);
        mtd.add_transition(ib, ia, Expr::bin(BinOp::Lt, Expr::ident("x"), Expr::lit(Value::Float(tb))), 0);
        let owner = model
            .add_component(
                Component::new("Owner")
                    .input("x", DataType::Float)
                    .output("y", DataType::Float)
                    .with_behavior(Behavior::Mtd(mtd)),
            )
            .unwrap();
        let df = mtd_to_dataflow(&mut model, owner).unwrap();

        let x = stimulus::seeded_random(-6.0, 6.0, 60, seed);
        let a = simulate_component(&model, owner, &[("x", x.clone())], 60).unwrap();
        let b = simulate_component(&model, df, &[("x", x)], 60).unwrap();
        let rel = TraceEquivalence::exact().on_signals(["y"]);
        prop_assert!(
            a.trace.equivalent(&b.trace, &rel),
            "diff: {:?}",
            a.trace.diff(&b.trace, &rel)
        );
    }
}
